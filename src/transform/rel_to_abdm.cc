#include "transform/rel_to_abdm.h"

#include "abdm/record.h"
#include "transform/abdm_mapping.h"

namespace mlds::transform {

namespace {

abdm::ValueKind MapColumnType(relational::ColumnType type) {
  switch (type) {
    case relational::ColumnType::kInteger:
      return abdm::ValueKind::kInteger;
    case relational::ColumnType::kFloat:
      return abdm::ValueKind::kFloat;
    case relational::ColumnType::kChar:
      return abdm::ValueKind::kString;
  }
  return abdm::ValueKind::kString;
}

}  // namespace

Result<abdm::DatabaseDescriptor> MapRelationalToAbdm(
    const relational::Schema& schema) {
  MLDS_RETURN_IF_ERROR(schema.Validate());
  abdm::DatabaseDescriptor db;
  db.name = schema.name();
  for (const auto& table : schema.tables()) {
    abdm::FileDescriptor file;
    file.name = table.name;
    file.attributes.push_back(abdm::AttributeDescriptor{
        std::string(abdm::kFileAttribute), abdm::ValueKind::kString, 0, true});
    file.attributes.push_back(abdm::AttributeDescriptor{
        KeyAttribute(table.name), abdm::ValueKind::kString, 0, true});
    // Data columns ride a secondary index rather than the keyword
    // directory: the FILE keyword and surrogate key keep clustering the
    // file, while column predicates get the secondary-index path.
    for (const auto& column : table.columns) {
      file.attributes.push_back(abdm::AttributeDescriptor{
          column.name, MapColumnType(column.type), column.length,
          /*directory=*/false, /*indexed=*/true});
    }
    db.files.push_back(std::move(file));
  }
  return db;
}

}  // namespace mlds::transform
