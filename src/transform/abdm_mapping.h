#ifndef MLDS_TRANSFORM_ABDM_MAPPING_H_
#define MLDS_TRANSFORM_ABDM_MAPPING_H_

#include <string>
#include <string_view>

#include "abdm/schema.h"
#include "common/result.h"
#include "network/schema.h"
#include "transform/fun_to_net.h"

namespace mlds::transform {

/// AB record layout conventions shared by the network-to-ABDM mapping and
/// the CODASYL-DML-to-ABDL translation (Ch. III, VI):
///
///  - every kernel record's first keyword is <FILE, record-type-name>;
///  - the second keyword is the record's database key: its attribute is
///    the record type's name and its value is an artificial unique key
///    ("course_7");
///  - each data-item of the record type contributes one keyword;
///  - for every non-system set in which the record type participates as a
///    *member*, the record carries a keyword named after the set whose
///    value is the owning record's database key (NULL when unattached);
///  - for sets representing owner-side Daplex functions (one-to-many and
///    many-to-many), the *owner* record additionally carries a keyword
///    named after the set whose value is a member's database key — with
///    the owner record repeated per member, the thesis's duplicated
///    AB(functional) record representation (Ch. VI.D.2.a).
///
/// SYSTEM-owned sets contribute no keyword: membership in them is implied
/// by the FILE keyword itself.

/// The attribute carrying a record's database key.
inline std::string KeyAttribute(std::string_view record_type) {
  return std::string(record_type);
}

/// The attribute representing membership in `set` (value: owner's dbkey on
/// member records; member's dbkey on duplicated owner-side records).
inline std::string SetAttribute(std::string_view set_name) {
  return std::string(set_name);
}

/// Builds an artificial database key ("course_7").
std::string MakeDbKey(std::string_view record_type, uint64_t ordinal);

/// Maps a network schema to its attribute-based database definition
/// (AB(network)), one kernel file per record type. When `mapping` is
/// non-null the schema is a transformed functional schema and the
/// descriptors also carry the owner-side function-set attributes
/// (AB(functional), Figure 3.3).
Result<abdm::DatabaseDescriptor> MapNetworkToAbdm(
    const network::Schema& schema, const FunNetMapping* mapping = nullptr);

}  // namespace mlds::transform

#endif  // MLDS_TRANSFORM_ABDM_MAPPING_H_
