#ifndef MLDS_CODASYL_AST_H_
#define MLDS_CODASYL_AST_H_

#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "abdm/value.h"

namespace mlds::codasyl {

/// MOVE literal TO item IN record — the host-language assignment that
/// initializes a UWA field (Ch. VI.B.1's COBOL MOVE).
struct MoveStatement {
  abdm::Value value;
  std::string item;
  std::string record;
};

/// FIND ANY record USING item_1, ..., item_n IN record
/// [RETAINING set_1, ...] (Ch. VI.B.1). The RETAINING clause suppresses
/// the currency update for the listed set types, the standard CODASYL
/// device for holding one set occurrence pinned while locating a record
/// that would otherwise reposition it.
struct FindAnyStatement {
  std::string record;
  std::vector<std::string> items;
  std::vector<std::string> retaining;
};

/// FIND CURRENT record WITHIN set (Ch. VI.B.2).
struct FindCurrentStatement {
  std::string record;
  std::string set;
};

/// FIND DUPLICATE WITHIN set USING item_1, ..., item_n IN record
/// (Ch. VI.B.3).
struct FindDuplicateStatement {
  std::string set;
  std::vector<std::string> items;
  std::string record;
};

/// Position selectors for the FIND FIRST/LAST/NEXT/PRIOR family.
enum class FindPosition {
  kFirst,
  kLast,
  kNext,
  kPrior,
};

std::string_view FindPositionToString(FindPosition position);

/// FIND FIRST|LAST|NEXT|PRIOR record WITHIN set (Ch. VI.B.4).
struct FindPositionalStatement {
  FindPosition position = FindPosition::kFirst;
  std::string record;
  std::string set;
};

/// FIND OWNER WITHIN set (Ch. VI.B.5).
struct FindOwnerStatement {
  std::string set;
};

/// FIND record WITHIN set CURRENT USING item_1, ..., item_n IN record
/// (Ch. VI.B.6).
struct FindWithinCurrentStatement {
  std::string record;
  std::string set;
  std::vector<std::string> items;
};

/// The three GET options (Ch. VI.C): bare GET, GET record_type, and
/// GET item_1, ..., item_n IN record_type.
struct GetStatement {
  enum class Kind { kAll, kRecord, kItems };
  Kind kind = Kind::kAll;
  std::string record;
  std::vector<std::string> items;
};

/// STORE record [(item = value, ...)] (Ch. VI.G).
///
/// The optional inline assignment list writes the named UWA template
/// items before the store — the one-statement equivalent of a MOVE per
/// item followed by a bare STORE. An assignment value of `?` marks a
/// prepared-template parameter: the statement then executes only through
/// the batch interface, which binds one value per `?` per row.
struct StoreStatement {
  struct Assignment {
    std::string item;
    abdm::Value value;     ///< null placeholder when `is_param`.
    bool is_param = false; ///< the value was written as `?`.
  };
  std::string record;
  std::vector<Assignment> assignments;

  bool parameterized() const {
    for (const Assignment& a : assignments) {
      if (a.is_param) return true;
    }
    return false;
  }
};

/// CONNECT record TO set_1, ..., set_n (Ch. VI.D).
struct ConnectStatement {
  std::string record;
  std::vector<std::string> sets;
};

/// DISCONNECT record FROM set_1, ..., set_n (Ch. VI.E).
struct DisconnectStatement {
  std::string record;
  std::vector<std::string> sets;
};

/// RECONNECT record IN set_1, ..., set_n: moves the current record of
/// the run-unit from its present owner to the current occurrence of each
/// set. Permitted for OPTIONAL and MANDATORY retention (MANDATORY
/// members may change owners but never detach); FIXED retention rejects
/// it.
struct ReconnectStatement {
  std::string record;
  std::vector<std::string> sets;
};

/// MODIFY record | MODIFY item_1, ..., item_n IN record (Ch. VI.F).
/// An empty item list modifies the entire record from UWA.
struct ModifyStatement {
  std::string record;
  std::vector<std::string> items;
};

/// ERASE [ALL] record (Ch. VI.H).
struct EraseStatement {
  std::string record;
  bool all = false;
};

/// WALK set_1 THEN set_2 ... — a multi-level set traversal fused into
/// JOIN plans: each level joins the set's owner file with its member
/// file in ONE RETRIEVE-COMMON kernel request instead of one FIND per
/// owner occurrence. Levels must chain: the member type of set_i is the
/// owner type of set_{i+1}. The result is the member records of the
/// last set reachable through the whole chain (each enriched with the
/// riding-along owner keywords); currency is left untouched.
struct WalkStatement {
  std::vector<std::string> sets;
};

/// One CODASYL-DML statement.
using Statement =
    std::variant<MoveStatement, FindAnyStatement, FindCurrentStatement,
                 FindDuplicateStatement, FindPositionalStatement,
                 FindOwnerStatement, FindWithinCurrentStatement, GetStatement,
                 StoreStatement, ConnectStatement, DisconnectStatement,
                 ReconnectStatement, ModifyStatement, EraseStatement,
                 WalkStatement>;

/// The statement's leading keyword(s), e.g. "FIND ANY", "CONNECT".
std::string_view StatementKind(const Statement& statement);

/// Renders the statement back to DML text.
std::string ToString(const Statement& statement);

/// A statement with its EXPLAIN prefix. EXPLAIN executes the statement
/// normally and additionally surfaces the annotated physical plans of
/// the ABDL requests the Chapter VI translation issued. EXPLAIN MOVE is
/// rejected at parse time: MOVE only writes the UWA and issues no kernel
/// request, so there is no access path to show.
struct ParsedStatement {
  Statement statement;
  bool explain = false;
};

/// Renders the statement back to DML text, with its EXPLAIN prefix.
std::string ToString(const ParsedStatement& statement);

}  // namespace mlds::codasyl

#endif  // MLDS_CODASYL_AST_H_
