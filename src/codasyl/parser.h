#ifndef MLDS_CODASYL_PARSER_H_
#define MLDS_CODASYL_PARSER_H_

#include <string_view>
#include <vector>

#include "codasyl/ast.h"
#include "common/result.h"

namespace mlds::codasyl {

/// Parses one CODASYL-DML statement in the thesis's syntax:
///
///   MOVE 'Advanced Database' TO title IN course
///   FIND ANY course USING title IN course
///   FIND CURRENT student WITHIN person_student
///   FIND DUPLICATE WITHIN person_student USING major IN student
///   FIND FIRST student WITHIN person_student
///   FIND OWNER WITHIN advisor
///   FIND student WITHIN advisor CURRENT USING major IN student
///   GET  |  GET student  |  GET major, advisor IN student
///   STORE course
///   CONNECT student TO advisor
///   DISCONNECT student FROM advisor
///   MODIFY credits IN course  |  MODIFY course
///   ERASE course  |  ERASE ALL course
///
/// Keywords are case-insensitive; identifiers preserve case. Rejects an
/// EXPLAIN prefix — use ParseDmlStatement for the explain-aware entry.
Result<Statement> ParseStatement(std::string_view text);

/// Parses one statement with an optional EXPLAIN prefix:
///
///   EXPLAIN FIND ANY course USING title IN course
///
/// EXPLAIN executes the statement and additionally returns the annotated
/// physical plans of the ABDL requests its translation issued. EXPLAIN
/// MOVE is rejected (MOVE issues no kernel request), as is a repeated
/// EXPLAIN.
Result<ParsedStatement> ParseDmlStatement(std::string_view text);

/// Parses a transaction: statements separated by newlines or semicolons.
/// Blank lines and '--' comments are skipped.
Result<std::vector<Statement>> ParseProgram(std::string_view text);

/// ParseProgram with per-statement EXPLAIN prefixes allowed.
Result<std::vector<ParsedStatement>> ParseDmlProgram(std::string_view text);

}  // namespace mlds::codasyl

#endif  // MLDS_CODASYL_PARSER_H_
