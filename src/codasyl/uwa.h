#ifndef MLDS_CODASYL_UWA_H_
#define MLDS_CODASYL_UWA_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "abdm/record.h"
#include "abdm/value.h"

namespace mlds::codasyl {

/// The User Work Area: one template per record type holding the item
/// values the host program has MOVEd in (and the values GET delivers
/// back). FIND ANY reads its search values here; STORE builds its new
/// record occurrence from here (Ch. VI.B.1, VI.G).
class UserWorkArea {
 public:
  /// MOVE value TO item IN record.
  void Move(std::string_view record, std::string_view item,
            abdm::Value value) {
    templates_[std::string(record)].Set(item, std::move(value));
  }

  /// The value of `item` in `record`'s template, if MOVEd or delivered.
  std::optional<abdm::Value> Get(std::string_view record,
                                 std::string_view item) const {
    auto it = templates_.find(std::string(record));
    if (it == templates_.end()) return std::nullopt;
    return it->second.Get(item);
  }

  /// The whole template for `record` (empty record if none).
  const abdm::Record* Template(std::string_view record) const {
    auto it = templates_.find(std::string(record));
    return it == templates_.end() ? nullptr : &it->second;
  }

  /// Delivers a retrieved record into the template (GET).
  void Deliver(std::string_view record, const abdm::Record& data) {
    abdm::Record& tmpl = templates_[std::string(record)];
    for (const auto& kw : data.keywords()) {
      tmpl.Set(kw.attribute, kw.value);
    }
  }

  /// Clears the template for `record`.
  void Clear(std::string_view record) { templates_.erase(std::string(record)); }

 private:
  std::map<std::string, abdm::Record> templates_;
};

}  // namespace mlds::codasyl

#endif  // MLDS_CODASYL_UWA_H_
