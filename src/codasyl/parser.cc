#include "codasyl/parser.h"

#include <cctype>

#include "common/strings.h"

namespace mlds::codasyl {

namespace {

/// DML statements are single-line and word-oriented; the lexer produces
/// words, quoted literals, numbers, commas, and the STORE assignment
/// punctuation '(' ')' '=' '?'.
struct Token {
  enum class Kind {
    kWord,
    kLiteral,
    kComma,
    kLParen,
    kRParen,
    kEq,
    kParam,
    kEnd
  } kind = Kind::kEnd;
  std::string text;        // word text (case preserved)
  abdm::Value literal;     // for kLiteral
};

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else if (c == ',') {
      out.push_back({Token::Kind::kComma, ",", {}});
      ++pos;
    } else if (c == '(') {
      out.push_back({Token::Kind::kLParen, "(", {}});
      ++pos;
    } else if (c == ')') {
      out.push_back({Token::Kind::kRParen, ")", {}});
      ++pos;
    } else if (c == '=') {
      out.push_back({Token::Kind::kEq, "=", {}});
      ++pos;
    } else if (c == '?') {
      out.push_back({Token::Kind::kParam, "?", {}});
      ++pos;
    } else if (c == '\'' || c == '"') {
      size_t end = pos + 1;
      while (end < text.size() && text[end] != c) ++end;
      if (end >= text.size()) {
        return Status::ParseError("unterminated literal in DML statement");
      }
      out.push_back({Token::Kind::kLiteral, "",
                     abdm::Value::String(
                         std::string(text.substr(pos + 1, end - pos - 1)))});
      pos = end + 1;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && pos + 1 < text.size() &&
                std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      size_t end = pos + 1;
      while (end < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[end])) ||
              text[end] == '.')) {
        ++end;
      }
      out.push_back({Token::Kind::kLiteral, "",
                     abdm::Value::Parse(text.substr(pos, end - pos))});
      pos = end;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos + 1;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) ||
              text[end] == '_')) {
        ++end;
      }
      out.push_back(
          {Token::Kind::kWord, std::string(text.substr(pos, end - pos)), {}});
      pos = end;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in DML statement");
    }
  }
  out.push_back({Token::Kind::kEnd, "", {}});
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    MLDS_ASSIGN_OR_RETURN(Statement stmt, ParseStatementBody());
    if (!AtEnd()) {
      return Status::ParseError("trailing input after DML statement: '" +
                                Peek().text + "'");
    }
    return stmt;
  }

  Result<ParsedStatement> ParseExplainable() {
    ParsedStatement out;
    if (ConsumeKeyword("EXPLAIN")) {
      out.explain = true;
      if (PeekKeyword("EXPLAIN")) {
        return Status::ParseError("EXPLAIN may appear only once");
      }
      if (PeekKeyword("MOVE")) {
        return Status::ParseError(
            "EXPLAIN does not apply to MOVE: it issues no kernel request");
      }
      if (AtEnd()) {
        return Status::ParseError("expected DML statement after EXPLAIN");
      }
    }
    MLDS_ASSIGN_OR_RETURN(out.statement, Parse());
    return out;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEnd() const { return Peek().kind == Token::Kind::kEnd; }

  bool PeekKeyword(std::string_view word, size_t ahead = 0) const {
    return Peek(ahead).kind == Token::Kind::kWord &&
           EqualsIgnoreCase(Peek(ahead).text, word);
  }
  bool ConsumeKeyword(std::string_view word) {
    if (PeekKeyword(word)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view word) {
    if (!ConsumeKeyword(word)) {
      return Status::ParseError("expected '" + std::string(word) + "', got '" +
                                Peek().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectName(std::string_view what) {
    if (Peek().kind != Token::Kind::kWord) {
      return Status::ParseError("expected " + std::string(what) + ", got '" +
                                Peek().text + "'");
    }
    return Advance().text;
  }

  Result<std::vector<std::string>> ParseNameList(std::string_view what) {
    std::vector<std::string> names;
    while (true) {
      MLDS_ASSIGN_OR_RETURN(std::string name, ExpectName(what));
      names.push_back(std::move(name));
      if (Peek().kind == Token::Kind::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return names;
  }

  Result<Statement> ParseStatementBody() {
    if (ConsumeKeyword("MOVE")) return ParseMove();
    if (ConsumeKeyword("FIND")) return ParseFind();
    if (ConsumeKeyword("GET")) return ParseGet();
    if (ConsumeKeyword("STORE")) {
      StoreStatement s;
      MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
      // Optional inline assignment list: STORE rec (item = value | ?, ...)
      if (Peek().kind == Token::Kind::kLParen) {
        Advance();
        while (true) {
          StoreStatement::Assignment a;
          MLDS_ASSIGN_OR_RETURN(a.item, ExpectName("item name"));
          if (Peek().kind != Token::Kind::kEq) {
            return Status::ParseError("expected '=' in STORE assignment");
          }
          Advance();
          if (Peek().kind == Token::Kind::kLiteral) {
            a.value = Advance().literal;
          } else if (Peek().kind == Token::Kind::kParam) {
            Advance();
            a.is_param = true;
          } else if (ConsumeKeyword("NULL")) {
            // a.value stays null
          } else {
            return Status::ParseError(
                "expected literal, NULL, or '?' in STORE assignment");
          }
          s.assignments.push_back(std::move(a));
          if (Peek().kind == Token::Kind::kComma) {
            Advance();
            continue;
          }
          break;
        }
        if (Peek().kind != Token::Kind::kRParen) {
          return Status::ParseError("expected ')' after STORE assignments");
        }
        Advance();
      }
      return Statement(std::move(s));
    }
    if (ConsumeKeyword("CONNECT")) {
      ConnectStatement s;
      MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
      MLDS_RETURN_IF_ERROR(ExpectKeyword("TO"));
      MLDS_ASSIGN_OR_RETURN(s.sets, ParseNameList("set type"));
      return Statement(std::move(s));
    }
    if (ConsumeKeyword("DISCONNECT")) {
      DisconnectStatement s;
      MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
      MLDS_RETURN_IF_ERROR(ExpectKeyword("FROM"));
      MLDS_ASSIGN_OR_RETURN(s.sets, ParseNameList("set type"));
      return Statement(std::move(s));
    }
    if (ConsumeKeyword("RECONNECT")) {
      ReconnectStatement s;
      MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
      MLDS_RETURN_IF_ERROR(ExpectKeyword("IN"));
      MLDS_ASSIGN_OR_RETURN(s.sets, ParseNameList("set type"));
      return Statement(std::move(s));
    }
    if (ConsumeKeyword("WALK")) {
      WalkStatement s;
      MLDS_ASSIGN_OR_RETURN(std::string first, ExpectName("set type"));
      s.sets.push_back(std::move(first));
      while (ConsumeKeyword("THEN")) {
        MLDS_ASSIGN_OR_RETURN(std::string next, ExpectName("set type"));
        s.sets.push_back(std::move(next));
      }
      return Statement(std::move(s));
    }
    if (ConsumeKeyword("MODIFY")) return ParseModify();
    if (ConsumeKeyword("ERASE")) {
      EraseStatement s;
      s.all = ConsumeKeyword("ALL");
      MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
      return Statement(std::move(s));
    }
    return Status::ParseError("unknown DML statement: '" + Peek().text + "'");
  }

  Result<Statement> ParseMove() {
    MoveStatement s;
    if (Peek().kind == Token::Kind::kLiteral) {
      s.value = Advance().literal;
    } else if (Peek().kind == Token::Kind::kWord && !PeekKeyword("TO")) {
      // Unquoted word literal, e.g. MOVE YES TO eof IN status.
      s.value = abdm::Value::String(Advance().text);
    } else {
      return Status::ParseError("expected literal after MOVE");
    }
    MLDS_RETURN_IF_ERROR(ExpectKeyword("TO"));
    MLDS_ASSIGN_OR_RETURN(s.item, ExpectName("item name"));
    MLDS_RETURN_IF_ERROR(ExpectKeyword("IN"));
    MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
    return Statement(std::move(s));
  }

  Result<Statement> ParseFind() {
    if (ConsumeKeyword("ANY")) {
      FindAnyStatement s;
      MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
      if (PeekKeyword("USING")) {
        Advance();
        MLDS_ASSIGN_OR_RETURN(s.items, ParseNameList("item name"));
        MLDS_RETURN_IF_ERROR(ExpectKeyword("IN"));
        MLDS_ASSIGN_OR_RETURN(std::string record2, ExpectName("record type"));
        if (record2 != s.record) {
          return Status::ParseError(
              "FIND ANY: USING items must be IN the same record type");
        }
      }
      if (ConsumeKeyword("RETAINING")) {
        MLDS_ASSIGN_OR_RETURN(s.retaining, ParseNameList("set type"));
      }
      return Statement(std::move(s));
    }
    if (ConsumeKeyword("CURRENT")) {
      FindCurrentStatement s;
      MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
      MLDS_RETURN_IF_ERROR(ExpectKeyword("WITHIN"));
      MLDS_ASSIGN_OR_RETURN(s.set, ExpectName("set type"));
      return Statement(std::move(s));
    }
    if (ConsumeKeyword("DUPLICATE")) {
      FindDuplicateStatement s;
      MLDS_RETURN_IF_ERROR(ExpectKeyword("WITHIN"));
      MLDS_ASSIGN_OR_RETURN(s.set, ExpectName("set type"));
      MLDS_RETURN_IF_ERROR(ExpectKeyword("USING"));
      MLDS_ASSIGN_OR_RETURN(s.items, ParseNameList("item name"));
      MLDS_RETURN_IF_ERROR(ExpectKeyword("IN"));
      MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
      return Statement(std::move(s));
    }
    if (ConsumeKeyword("OWNER")) {
      FindOwnerStatement s;
      MLDS_RETURN_IF_ERROR(ExpectKeyword("WITHIN"));
      MLDS_ASSIGN_OR_RETURN(s.set, ExpectName("set type"));
      return Statement(std::move(s));
    }
    for (FindPosition pos : {FindPosition::kFirst, FindPosition::kLast,
                             FindPosition::kNext, FindPosition::kPrior}) {
      if (ConsumeKeyword(FindPositionToString(pos))) {
        FindPositionalStatement s;
        s.position = pos;
        MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
        MLDS_RETURN_IF_ERROR(ExpectKeyword("WITHIN"));
        MLDS_ASSIGN_OR_RETURN(s.set, ExpectName("set type"));
        return Statement(std::move(s));
      }
    }
    // FIND record WITHIN set CURRENT USING items IN record.
    FindWithinCurrentStatement s;
    MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
    MLDS_RETURN_IF_ERROR(ExpectKeyword("WITHIN"));
    MLDS_ASSIGN_OR_RETURN(s.set, ExpectName("set type"));
    MLDS_RETURN_IF_ERROR(ExpectKeyword("CURRENT"));
    MLDS_RETURN_IF_ERROR(ExpectKeyword("USING"));
    MLDS_ASSIGN_OR_RETURN(s.items, ParseNameList("item name"));
    MLDS_RETURN_IF_ERROR(ExpectKeyword("IN"));
    MLDS_ASSIGN_OR_RETURN(std::string record2, ExpectName("record type"));
    if (record2 != s.record) {
      return Status::ParseError(
          "FIND WITHIN CURRENT: USING items must be IN the same record type");
    }
    return Statement(std::move(s));
  }

  Result<Statement> ParseGet() {
    GetStatement s;
    if (AtEnd()) {
      s.kind = GetStatement::Kind::kAll;
      return Statement(std::move(s));
    }
    // Either GET record, or GET items IN record.
    MLDS_ASSIGN_OR_RETURN(std::string first, ExpectName("record or item"));
    if (AtEnd()) {
      s.kind = GetStatement::Kind::kRecord;
      s.record = std::move(first);
      return Statement(std::move(s));
    }
    s.kind = GetStatement::Kind::kItems;
    s.items.push_back(std::move(first));
    while (Peek().kind == Token::Kind::kComma) {
      Advance();
      MLDS_ASSIGN_OR_RETURN(std::string item, ExpectName("item name"));
      s.items.push_back(std::move(item));
    }
    MLDS_RETURN_IF_ERROR(ExpectKeyword("IN"));
    MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
    return Statement(std::move(s));
  }

  Result<Statement> ParseModify() {
    ModifyStatement s;
    MLDS_ASSIGN_OR_RETURN(std::string first, ExpectName("record or item"));
    if (AtEnd()) {
      s.record = std::move(first);
      return Statement(std::move(s));
    }
    s.items.push_back(std::move(first));
    while (Peek().kind == Token::Kind::kComma) {
      Advance();
      MLDS_ASSIGN_OR_RETURN(std::string item, ExpectName("item name"));
      s.items.push_back(std::move(item));
    }
    MLDS_RETURN_IF_ERROR(ExpectKeyword("IN"));
    MLDS_ASSIGN_OR_RETURN(s.record, ExpectName("record type"));
    return Statement(std::move(s));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(std::string_view text) {
  MLDS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

Result<ParsedStatement> ParseDmlStatement(std::string_view text) {
  MLDS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.ParseExplainable();
}

Result<std::vector<ParsedStatement>> ParseDmlProgram(std::string_view text) {
  std::vector<ParsedStatement> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find_first_of(";\n", start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(start, end - start));
    if (!line.empty() && !line.starts_with("--")) {
      MLDS_ASSIGN_OR_RETURN(ParsedStatement stmt, ParseDmlStatement(line));
      out.push_back(std::move(stmt));
    }
    if (end >= text.size()) break;
    start = end + 1;
  }
  if (out.empty()) return Status::ParseError("empty DML program");
  return out;
}

Result<std::vector<Statement>> ParseProgram(std::string_view text) {
  MLDS_ASSIGN_OR_RETURN(std::vector<ParsedStatement> parsed,
                        ParseDmlProgram(text));
  std::vector<Statement> out;
  out.reserve(parsed.size());
  for (ParsedStatement& stmt : parsed) {
    if (stmt.explain) {
      return Status::ParseError(
          "EXPLAIN is not supported here; use ParseDmlProgram");
    }
    out.push_back(std::move(stmt.statement));
  }
  return out;
}

}  // namespace mlds::codasyl
