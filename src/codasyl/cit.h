#ifndef MLDS_CODASYL_CIT_H_
#define MLDS_CODASYL_CIT_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "abdm/record.h"

namespace mlds::codasyl {

/// The current record of the run-unit: its record type, database key, and
/// a cached copy of the (first) AB record that made it current — GET
/// serves from this copy without another kernel round trip.
struct RunUnitCurrency {
  std::string record_type;
  std::string dbkey;
  abdm::Record record;
};

/// Currency of one set type: the owning record's database key and the
/// current member's database key (either may be empty when not yet
/// established).
struct SetCurrency {
  std::string owner_dbkey;
  std::string member_dbkey;
};

/// The Currency Indicator Table (CIT): the database position of a
/// run-unit. It identifies the current record of the run-unit, the
/// current record of each record type, and the current record of each set
/// type (Ch. II.B.2, III.A). Every FIND updates it.
class CurrencyIndicatorTable {
 public:
  const std::optional<RunUnitCurrency>& run_unit() const { return run_unit_; }

  void SetRunUnit(std::string record_type, std::string dbkey,
                  abdm::Record record) {
    run_unit_ = RunUnitCurrency{std::move(record_type), std::move(dbkey),
                                std::move(record)};
  }
  void ClearRunUnit() { run_unit_.reset(); }

  /// Current record (dbkey) of a record type.
  std::optional<std::string> CurrentOfRecord(std::string_view record) const {
    auto it = record_currency_.find(std::string(record));
    if (it == record_currency_.end()) return std::nullopt;
    return it->second;
  }
  void SetCurrentOfRecord(std::string_view record, std::string dbkey) {
    record_currency_[std::string(record)] = std::move(dbkey);
  }

  /// Currency of a set type.
  const SetCurrency* CurrentOfSet(std::string_view set) const {
    auto it = set_currency_.find(std::string(set));
    return it == set_currency_.end() ? nullptr : &it->second;
  }
  void SetCurrentOfSet(std::string_view set, SetCurrency currency) {
    set_currency_[std::string(set)] = std::move(currency);
  }
  void SetSetOwner(std::string_view set, std::string owner_dbkey) {
    set_currency_[std::string(set)].owner_dbkey = std::move(owner_dbkey);
  }
  void SetSetMember(std::string_view set, std::string member_dbkey) {
    set_currency_[std::string(set)].member_dbkey = std::move(member_dbkey);
  }

  void Clear() {
    run_unit_.reset();
    record_currency_.clear();
    set_currency_.clear();
  }

 private:
  std::optional<RunUnitCurrency> run_unit_;
  std::map<std::string, std::string> record_currency_;
  std::map<std::string, SetCurrency> set_currency_;
};

/// The Request Buffer (RB): holds the records returned by the auxiliary
/// retrieve requests of a translated statement, with a cursor for the
/// FIND NEXT / PRIOR / DUPLICATE family (Ch. III.A). One buffer is kept
/// per set type (and one per record type for FIND ANY results).
class RequestBuffer {
 public:
  struct Buffer {
    std::vector<abdm::Record> records;
    /// Cursor into `records`; -1 before the first position.
    int cursor = -1;
  };

  Buffer* Find(std::string_view key) {
    auto it = buffers_.find(std::string(key));
    return it == buffers_.end() ? nullptr : &it->second;
  }
  const Buffer* Find(std::string_view key) const {
    auto it = buffers_.find(std::string(key));
    return it == buffers_.end() ? nullptr : &it->second;
  }

  Buffer& Load(std::string_view key, std::vector<abdm::Record> records) {
    Buffer& buffer = buffers_[std::string(key)];
    buffer.records = std::move(records);
    buffer.cursor = -1;
    return buffer;
  }

  void Clear() { buffers_.clear(); }

 private:
  std::map<std::string, Buffer> buffers_;
};

}  // namespace mlds::codasyl

#endif  // MLDS_CODASYL_CIT_H_
