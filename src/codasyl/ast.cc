#include "codasyl/ast.h"

#include "common/strings.h"

namespace mlds::codasyl {

namespace {

std::string JoinItems(const std::vector<std::string>& items) {
  return Join(items, ", ");
}

}  // namespace

std::string_view FindPositionToString(FindPosition position) {
  switch (position) {
    case FindPosition::kFirst:
      return "FIRST";
    case FindPosition::kLast:
      return "LAST";
    case FindPosition::kNext:
      return "NEXT";
    case FindPosition::kPrior:
      return "PRIOR";
  }
  return "?";
}

std::string_view StatementKind(const Statement& statement) {
  struct Visitor {
    std::string_view operator()(const MoveStatement&) { return "MOVE"; }
    std::string_view operator()(const FindAnyStatement&) { return "FIND ANY"; }
    std::string_view operator()(const FindCurrentStatement&) {
      return "FIND CURRENT";
    }
    std::string_view operator()(const FindDuplicateStatement&) {
      return "FIND DUPLICATE";
    }
    std::string_view operator()(const FindPositionalStatement& s) {
      switch (s.position) {
        case FindPosition::kFirst:
          return "FIND FIRST";
        case FindPosition::kLast:
          return "FIND LAST";
        case FindPosition::kNext:
          return "FIND NEXT";
        case FindPosition::kPrior:
          return "FIND PRIOR";
      }
      return "FIND";
    }
    std::string_view operator()(const FindOwnerStatement&) {
      return "FIND OWNER";
    }
    std::string_view operator()(const FindWithinCurrentStatement&) {
      return "FIND WITHIN CURRENT";
    }
    std::string_view operator()(const GetStatement&) { return "GET"; }
    std::string_view operator()(const StoreStatement&) { return "STORE"; }
    std::string_view operator()(const ConnectStatement&) { return "CONNECT"; }
    std::string_view operator()(const DisconnectStatement&) {
      return "DISCONNECT";
    }
    std::string_view operator()(const ReconnectStatement&) {
      return "RECONNECT";
    }
    std::string_view operator()(const ModifyStatement&) { return "MODIFY"; }
    std::string_view operator()(const EraseStatement& s) {
      return s.all ? "ERASE ALL" : "ERASE";
    }
    std::string_view operator()(const WalkStatement&) { return "WALK"; }
  };
  return std::visit(Visitor{}, statement);
}

std::string ToString(const Statement& statement) {
  struct Visitor {
    std::string operator()(const MoveStatement& s) {
      return "MOVE " + s.value.ToString() + " TO " + s.item + " IN " +
             s.record;
    }
    std::string operator()(const FindAnyStatement& s) {
      std::string out = "FIND ANY " + s.record;
      if (!s.items.empty()) {
        out += " USING " + JoinItems(s.items) + " IN " + s.record;
      }
      if (!s.retaining.empty()) {
        out += " RETAINING " + JoinItems(s.retaining);
      }
      return out;
    }
    std::string operator()(const FindCurrentStatement& s) {
      return "FIND CURRENT " + s.record + " WITHIN " + s.set;
    }
    std::string operator()(const FindDuplicateStatement& s) {
      return "FIND DUPLICATE WITHIN " + s.set + " USING " +
             JoinItems(s.items) + " IN " + s.record;
    }
    std::string operator()(const FindPositionalStatement& s) {
      return "FIND " + std::string(FindPositionToString(s.position)) + " " +
             s.record + " WITHIN " + s.set;
    }
    std::string operator()(const FindOwnerStatement& s) {
      return "FIND OWNER WITHIN " + s.set;
    }
    std::string operator()(const FindWithinCurrentStatement& s) {
      return "FIND " + s.record + " WITHIN " + s.set + " CURRENT USING " +
             JoinItems(s.items) + " IN " + s.record;
    }
    std::string operator()(const GetStatement& s) {
      switch (s.kind) {
        case GetStatement::Kind::kAll:
          return "GET";
        case GetStatement::Kind::kRecord:
          return "GET " + s.record;
        case GetStatement::Kind::kItems:
          return "GET " + JoinItems(s.items) + " IN " + s.record;
      }
      return "GET";
    }
    std::string operator()(const StoreStatement& s) {
      std::string out = "STORE " + s.record;
      if (!s.assignments.empty()) {
        out += " (";
        for (size_t i = 0; i < s.assignments.size(); ++i) {
          if (i > 0) out += ", ";
          const StoreStatement::Assignment& a = s.assignments[i];
          out += a.item + " = " + (a.is_param ? "?" : a.value.ToString());
        }
        out += ")";
      }
      return out;
    }
    std::string operator()(const ConnectStatement& s) {
      return "CONNECT " + s.record + " TO " + JoinItems(s.sets);
    }
    std::string operator()(const DisconnectStatement& s) {
      return "DISCONNECT " + s.record + " FROM " + JoinItems(s.sets);
    }
    std::string operator()(const ReconnectStatement& s) {
      return "RECONNECT " + s.record + " IN " + JoinItems(s.sets);
    }
    std::string operator()(const ModifyStatement& s) {
      if (s.items.empty()) return "MODIFY " + s.record;
      return "MODIFY " + JoinItems(s.items) + " IN " + s.record;
    }
    std::string operator()(const EraseStatement& s) {
      return std::string(s.all ? "ERASE ALL " : "ERASE ") + s.record;
    }
    std::string operator()(const WalkStatement& s) {
      return "WALK " + Join(s.sets, " THEN ");
    }
  };
  return std::visit(Visitor{}, statement);
}

std::string ToString(const ParsedStatement& statement) {
  std::string out = ToString(statement.statement);
  return statement.explain ? "EXPLAIN " + out : out;
}

}  // namespace mlds::codasyl
