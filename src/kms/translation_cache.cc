#include "kms/translation_cache.h"

#include <cctype>

namespace mlds::kms {

std::string NormalizeSource(std::string_view source) {
  std::string out;
  out.reserve(source.size());
  bool in_literal = false;
  bool pending_space = false;
  for (char c : source) {
    if (in_literal) {
      out.push_back(c);
      if (c == '\'') in_literal = false;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
    if (c == '\'') in_literal = true;
  }
  return out;
}

std::string TranslationCache::MakeKey(std::string_view domain,
                                      std::string_view source) {
  std::string key(domain);
  key.push_back('\x1f');  // cannot appear in normalized source
  key += NormalizeSource(source);
  return key;
}

std::shared_ptr<const void> TranslationCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second.epoch != epoch_) {
    // Compiled against a pre-DDL schema: lazily evict.
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    ++evictions_;
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

void TranslationCache::Insert(const std::string& key,
                              std::shared_ptr<const void> value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Another session compiled the same key while we were compiling (or a
    // stale entry reappeared): replace and refresh.
    it->second.value = std::move(value);
    it->second.epoch = epoch_;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (capacity_ > 0 && entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{std::move(value), epoch_, lru_.begin()});
}

void TranslationCache::InvalidateAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++epoch_;
}

TranslationCache::Stats TranslationCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.epoch = epoch_;
  s.size = entries_.size();
  return s;
}

uint64_t TranslationCache::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

}  // namespace mlds::kms
