#include "kms/dli_machine.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/strings.h"
#include "transform/abdm_mapping.h"

namespace mlds::kms {

namespace {

using abdm::Conjunction;
using abdm::Predicate;
using abdm::Query;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;
using hierarchical::Segment;
using transform::KeyAttribute;

Predicate FilePred(std::string_view segment) {
  return Predicate{std::string(abdm::kFileAttribute), RelOp::kEq,
                   Value::String(std::string(segment))};
}

abdl::RetrieveRequest RetrieveAll(Query query) {
  abdl::RetrieveRequest req;
  req.query = std::move(query);
  req.all_attributes = true;
  return req;
}

// --- DL/I call parsing ---

struct Token {
  enum class Kind {
    kWord,
    kLiteral,
    kLParen,
    kRParen,
    kComma,
    kRelOp,
    kParam,
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;
  Value literal;
  RelOp rel = RelOp::kEq;
};

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t pos = 0;
  while (pos < text.size()) {
    const char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else if (c == '(') {
      out.push_back({Token::Kind::kLParen, "(", {}, {}});
      ++pos;
    } else if (c == ')') {
      out.push_back({Token::Kind::kRParen, ")", {}, {}});
      ++pos;
    } else if (c == ',') {
      out.push_back({Token::Kind::kComma, ",", {}, {}});
      ++pos;
    } else if (c == '=') {
      out.push_back({Token::Kind::kRelOp, "=", {}, RelOp::kEq});
      ++pos;
    } else if (c == '?') {
      out.push_back({Token::Kind::kParam, "?", {}, {}});
      ++pos;
    } else if (c == '!' && pos + 1 < text.size() && text[pos + 1] == '=') {
      out.push_back({Token::Kind::kRelOp, "!=", {}, RelOp::kNe});
      pos += 2;
    } else if (c == '<') {
      if (pos + 1 < text.size() && text[pos + 1] == '=') {
        out.push_back({Token::Kind::kRelOp, "<=", {}, RelOp::kLe});
        pos += 2;
      } else {
        out.push_back({Token::Kind::kRelOp, "<", {}, RelOp::kLt});
        ++pos;
      }
    } else if (c == '>') {
      if (pos + 1 < text.size() && text[pos + 1] == '=') {
        out.push_back({Token::Kind::kRelOp, ">=", {}, RelOp::kGe});
        pos += 2;
      } else {
        out.push_back({Token::Kind::kRelOp, ">", {}, RelOp::kGt});
        ++pos;
      }
    } else if (c == '\'') {
      size_t end = pos + 1;
      while (end < text.size() && text[end] != '\'') ++end;
      if (end >= text.size()) {
        return Status::ParseError("unterminated literal in DL/I call");
      }
      out.push_back({Token::Kind::kLiteral, "",
                     Value::String(
                         std::string(text.substr(pos + 1, end - pos - 1))),
                     {}});
      pos = end + 1;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && pos + 1 < text.size() &&
                std::isdigit(static_cast<unsigned char>(text[pos + 1])))) {
      size_t end = pos + 1;
      while (end < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[end])) ||
              text[end] == '.')) {
        ++end;
      }
      out.push_back({Token::Kind::kLiteral, "",
                     Value::Parse(text.substr(pos, end - pos)), {}});
      pos = end;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos + 1;
      while (end < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[end])) ||
              text[end] == '_')) {
        ++end;
      }
      out.push_back(
          {Token::Kind::kWord, std::string(text.substr(pos, end - pos)), {}, {}});
      pos = end;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in DL/I call");
    }
  }
  out.push_back({Token::Kind::kEnd, "", {}, {}});
  return out;
}

}  // namespace

Result<DliCall> ParseDliCall(std::string_view text) {
  MLDS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  size_t pos = 0;
  auto peek = [&]() -> const Token& {
    return pos < tokens.size() ? tokens[pos] : tokens.back();
  };

  if (peek().kind != Token::Kind::kWord) {
    return Status::ParseError("expected DL/I function code");
  }
  const std::string function = ToUpper(tokens[pos++].text);
  DliCall call;
  if (function == "GU") {
    call.function = DliCall::Function::kGu;
  } else if (function == "GN") {
    call.function = DliCall::Function::kGn;
  } else if (function == "GNP") {
    call.function = DliCall::Function::kGnp;
  } else if (function == "ISRT") {
    call.function = DliCall::Function::kIsrt;
  } else if (function == "REPL") {
    call.function = DliCall::Function::kRepl;
  } else if (function == "DLET") {
    call.function = DliCall::Function::kDlet;
  } else {
    return Status::ParseError("unknown DL/I function '" + function + "'");
  }

  // SSA list: [segment] [ '(' qual [, qual]... ')' ] ...
  while (peek().kind != Token::Kind::kEnd) {
    Ssa ssa;
    if (peek().kind == Token::Kind::kWord) {
      ssa.segment = tokens[pos++].text;
    } else if (call.function != DliCall::Function::kRepl) {
      return Status::ParseError("expected segment name, got '" + peek().text +
                                "'");
    }
    if (peek().kind == Token::Kind::kLParen) {
      ++pos;
      while (true) {
        if (peek().kind != Token::Kind::kWord) {
          return Status::ParseError("expected field name in qualification");
        }
        Predicate qual;
        qual.attribute = tokens[pos++].text;
        if (peek().kind != Token::Kind::kRelOp) {
          return Status::ParseError("expected operator after '" +
                                    qual.attribute + "'");
        }
        qual.op = tokens[pos++].rel;
        bool is_param = false;
        if (peek().kind == Token::Kind::kLiteral) {
          qual.value = tokens[pos++].literal;
        } else if (peek().kind == Token::Kind::kParam) {
          ++pos;
          qual.value = Value::Null();
          is_param = true;
        } else if (peek().kind == Token::Kind::kWord &&
                   EqualsIgnoreCase(peek().text, "NULL")) {
          ++pos;
          qual.value = Value::Null();
        } else {
          return Status::ParseError("expected literal in qualification");
        }
        ssa.qualifications.push_back(std::move(qual));
        ssa.param_mask.push_back(is_param ? 1 : 0);
        if (peek().kind == Token::Kind::kComma) {
          ++pos;
          continue;
        }
        break;
      }
      if (peek().kind != Token::Kind::kRParen) {
        return Status::ParseError("expected ')' closing qualification");
      }
      ++pos;
    }
    call.ssas.push_back(std::move(ssa));
  }
  if (call.parameterized() && call.function != DliCall::Function::kIsrt) {
    return Status::ParseError(
        "parameter markers ('?') are only allowed in ISRT field lists");
  }
  return call;
}

// --- Machine ---

DliMachine::DliMachine(const hierarchical::Schema* schema,
                       kc::KernelExecutor* executor)
    : schema_(schema), executor_(executor) {}

Result<kds::Response> DliMachine::Issue(abdl::Request request) {
  trace_.push_back(abdl::ToString(request));
  return executor_->Execute(request);
}

std::string DliMachine::PositionDescription() const {
  if (!position_.has_value()) return "";
  return position_->segment + " " + position_->key;
}

Result<DliMachine::Outcome> DliMachine::Execute(const DliCall& call) {
  trace_.clear();
  switch (call.function) {
    case DliCall::Function::kGu:
      return Gu(call);
    case DliCall::Function::kGn:
      return Gn(call);
    case DliCall::Function::kGnp:
      return Gnp(call);
    case DliCall::Function::kIsrt:
      return Isrt(call);
    case DliCall::Function::kRepl:
      return Repl(call);
    case DliCall::Function::kDlet:
      return Dlet();
  }
  return Status::Internal("unreachable DL/I function");
}

Result<DliMachine::Outcome> DliMachine::ExecuteText(std::string_view text) {
  if (cache_ != nullptr) {
    MLDS_ASSIGN_OR_RETURN(std::shared_ptr<const DliCall> call,
                          cache_->GetOrCompile<DliCall>(
                              "dli", text, [&] { return ParseDliCall(text); }));
    return Execute(*call);
  }
  MLDS_ASSIGN_OR_RETURN(DliCall call, ParseDliCall(text));
  return Execute(call);
}

Result<std::vector<DliMachine::Outcome>> DliMachine::RunProgram(
    std::string_view text) {
  std::vector<Outcome> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find_first_of(";\n", start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(start, end - start));
    if (!line.empty() && !line.starts_with("--")) {
      MLDS_ASSIGN_OR_RETURN(Outcome outcome, ExecuteText(line));
      out.push_back(std::move(outcome));
    }
    if (end >= text.size()) break;
    start = end + 1;
  }
  if (out.empty()) return Status::ParseError("empty DL/I program");
  return out;
}

Result<std::vector<Record>> DliMachine::FetchLevel(
    const Segment& segment, const std::vector<Predicate>& quals,
    const std::vector<std::string>& parent_keys) {
  for (const auto& qual : quals) {
    if (segment.FindField(qual.attribute) == nullptr) {
      return Status::NotFound("field '" + qual.attribute +
                              "' does not exist in segment '" + segment.name +
                              "'");
    }
  }
  std::vector<Conjunction> disjuncts;
  if (parent_keys.empty()) {
    Conjunction conj;
    conj.predicates.push_back(FilePred(segment.name));
    conj.predicates.insert(conj.predicates.end(), quals.begin(), quals.end());
    disjuncts.push_back(std::move(conj));
  } else {
    for (const auto& parent_key : parent_keys) {
      Conjunction conj;
      conj.predicates.push_back(FilePred(segment.name));
      conj.predicates.push_back(Predicate{segment.parent, RelOp::kEq,
                                          Value::String(parent_key)});
      conj.predicates.insert(conj.predicates.end(), quals.begin(),
                             quals.end());
      disjuncts.push_back(std::move(conj));
    }
  }
  MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                        Issue(RetrieveAll(Query(std::move(disjuncts)))));
  std::vector<Record> records = std::move(resp.records);
  const std::string key_attr = KeyAttribute(segment.name);
  std::stable_sort(records.begin(), records.end(),
                   [&](const Record& a, const Record& b) {
                     return a.GetOrNull(key_attr).Compare(
                                b.GetOrNull(key_attr)) < 0;
                   });
  return records;
}

void DliMachine::SetPositionFromBuffer() {
  const Record& record = buffer_[buffer_cursor_];
  position_ = Position{
      buffer_segment_,
      record.GetOrNull(KeyAttribute(buffer_segment_)).ToDisplayString(),
      record};
}

DliMachine::Outcome DliMachine::TakeFirst(std::string segment,
                                          std::vector<Record> records) {
  buffer_segment_ = std::move(segment);
  buffer_ = std::move(records);
  buffer_cursor_ = 0;
  SetPositionFromBuffer();
  Outcome outcome;
  outcome.segments = {buffer_[0]};
  return outcome;
}

Result<DliMachine::Outcome> DliMachine::Gu(const DliCall& call) {
  if (call.ssas.empty()) {
    return Status::ParseError("GU requires at least one SSA");
  }
  // Validate the SSA path: consecutive segments must be parent -> child.
  std::vector<const Segment*> path;
  for (const auto& ssa : call.ssas) {
    const Segment* segment = schema_->FindSegment(ssa.segment);
    if (segment == nullptr) {
      return Status::NotFound("segment '" + ssa.segment +
                              "' is not declared");
    }
    if (!path.empty() && segment->parent != path.back()->name) {
      return Status::InvalidArgument("SSA path break: '" + ssa.segment +
                                     "' is not a child of '" +
                                     path.back()->name + "'");
    }
    path.push_back(segment);
  }
  // Resolve level by level.
  std::vector<std::string> parent_keys;
  std::vector<Record> level;
  for (size_t i = 0; i < path.size(); ++i) {
    MLDS_ASSIGN_OR_RETURN(
        level, FetchLevel(*path[i], call.ssas[i].qualifications, parent_keys));
    if (level.empty()) {
      return Status::NotFound("GU: no '" + path[i]->name +
                              "' segment satisfies the SSA path (GE)");
    }
    parent_keys.clear();
    const std::string key_attr = KeyAttribute(path[i]->name);
    for (const Record& r : level) {
      parent_keys.push_back(r.GetOrNull(key_attr).ToDisplayString());
    }
  }
  Outcome outcome = TakeFirst(path.back()->name, std::move(level));
  anchor_ = position_;
  return outcome;
}

Result<DliMachine::Outcome> DliMachine::Gn(const DliCall& call) {
  if (call.ssas.size() > 1) {
    return Status::InvalidArgument("GN takes at most one segment");
  }
  const std::string target =
      call.ssas.empty() ? buffer_segment_ : call.ssas[0].segment;
  if (buffer_segment_.empty()) {
    return Status::CurrencyError("GN without an established position; GU "
                                 "first");
  }
  if (target == buffer_segment_) {
    if (buffer_cursor_ + 1 >= static_cast<int>(buffer_.size())) {
      return Status::NotFound("GN: end of '" + buffer_segment_ +
                              "' segments (GB)");
    }
    ++buffer_cursor_;
    SetPositionFromBuffer();
    Outcome outcome;
    outcome.segments = {buffer_[buffer_cursor_]};
    return outcome;
  }
  // Descend: target must be a child of the current segment; the current
  // segment becomes the new parent anchor.
  const Segment* child = schema_->FindSegment(target);
  if (child == nullptr) {
    return Status::NotFound("segment '" + target + "' is not declared");
  }
  if (!position_.has_value() || child->parent != position_->segment) {
    return Status::InvalidArgument("GN " + target +
                                   ": not a child of the current segment");
  }
  anchor_ = position_;
  MLDS_ASSIGN_OR_RETURN(
      std::vector<Record> children,
      FetchLevel(*child,
                 call.ssas.empty() ? std::vector<Predicate>{}
                                   : call.ssas[0].qualifications,
                 {anchor_->key}));
  if (children.empty()) {
    return Status::NotFound("GN " + target + ": no child segments (GE)");
  }
  return TakeFirst(child->name, std::move(children));
}

Result<DliMachine::Outcome> DliMachine::Gnp(const DliCall& call) {
  if (call.ssas.size() != 1) {
    return Status::InvalidArgument("GNP takes exactly one segment");
  }
  if (!anchor_.has_value()) {
    return Status::CurrencyError("GNP without an anchored parent; GU first");
  }
  const std::string& target = call.ssas[0].segment;
  const Segment* child = schema_->FindSegment(target);
  if (child == nullptr) {
    return Status::NotFound("segment '" + target + "' is not declared");
  }
  if (child->parent != anchor_->segment) {
    return Status::InvalidArgument("GNP " + target +
                                   ": not a child of the anchored parent '" +
                                   anchor_->segment + "'");
  }
  // Iterating the same child type under the same anchor: advance.
  if (buffer_segment_ == target && buffer_cursor_ >= 0 &&
      !buffer_.empty() &&
      buffer_[0].GetOrNull(child->parent).ToDisplayString() == anchor_->key) {
    if (buffer_cursor_ + 1 >= static_cast<int>(buffer_.size())) {
      return Status::NotFound("GNP: no more '" + target +
                              "' under the parent (GE)");
    }
    ++buffer_cursor_;
    SetPositionFromBuffer();
    Outcome outcome;
    outcome.segments = {buffer_[buffer_cursor_]};
    return outcome;
  }
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> children,
                        FetchLevel(*child, call.ssas[0].qualifications,
                                   {anchor_->key}));
  if (children.empty()) {
    return Status::NotFound("GNP: no '" + target + "' under the parent (GE)");
  }
  return TakeFirst(child->name, std::move(children));
}

Result<std::string> DliMachine::AllocateKey(std::string_view segment) {
  uint64_t next = executor_->FileSize(segment) + 1;
  while (true) {
    std::string candidate = transform::MakeDbKey(segment, next);
    abdl::RetrieveRequest probe;
    probe.query = Query::And(
        {FilePred(segment), Predicate{KeyAttribute(segment), RelOp::kEq,
                                      Value::String(candidate)}});
    probe.targets = {abdl::TargetItem{KeyAttribute(segment)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
    ++next;
    if (resp.records.empty()) return candidate;
  }
}

Result<std::vector<std::string>> DliMachine::AllocateKeys(
    std::string_view segment, size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  uint64_t next = executor_->FileSize(segment) + 1;
  while (keys.size() < count) {
    std::string candidate = transform::MakeDbKey(segment, next);
    abdl::RetrieveRequest probe;
    probe.query = Query::And(
        {FilePred(segment), Predicate{KeyAttribute(segment), RelOp::kEq,
                                      Value::String(candidate)}});
    probe.targets = {abdl::TargetItem{KeyAttribute(segment)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
    ++next;
    if (resp.records.empty()) keys.push_back(std::move(candidate));
  }
  return keys;
}

Result<Record> DliMachine::BuildIsrtRecord(const Segment& segment,
                                           const Ssa& ssa,
                                           const std::vector<Value>* row,
                                           const std::string& key) {
  Record record;
  record.Set(std::string(abdm::kFileAttribute), Value::String(segment.name));
  size_t next_param = 0;
  for (size_t i = 0; i < ssa.qualifications.size(); ++i) {
    const Predicate& qual = ssa.qualifications[i];
    if (qual.op != RelOp::kEq) {
      return Status::InvalidArgument("ISRT field list uses '=' only");
    }
    if (segment.FindField(qual.attribute) == nullptr) {
      return Status::NotFound("field '" + qual.attribute +
                              "' does not exist in segment '" +
                              segment.name + "'");
    }
    const bool is_param = i < ssa.param_mask.size() && ssa.param_mask[i] != 0;
    if (is_param && row == nullptr) {
      return Status::Internal("ISRT parameter marker without a value row");
    }
    record.Set(qual.attribute, is_param ? (*row)[next_param++] : qual.value);
  }
  if (!segment.is_root()) {
    // The parent is the current position when it is of the parent type
    // (the most recent establishment wins), else the anchored segment.
    std::string parent_key;
    if (position_.has_value() && position_->segment == segment.parent) {
      parent_key = position_->key;
    } else if (anchor_.has_value() && anchor_->segment == segment.parent) {
      parent_key = anchor_->key;
    } else {
      return Status::CurrencyError("ISRT " + segment.name +
                                   ": no current '" + segment.parent +
                                   "' parent; GU it first");
    }
    record.Set(segment.parent, Value::String(parent_key));
  }
  record.Set(KeyAttribute(segment.name), Value::String(key));
  return record;
}

Result<DliMachine::Outcome> DliMachine::Isrt(const DliCall& call) {
  if (call.ssas.size() != 1) {
    return Status::InvalidArgument("ISRT takes exactly one segment");
  }
  if (call.parameterized()) {
    return Status::InvalidArgument(
        "ISRT: parameter markers ('?') require the batch interface, which "
        "binds one value per marker per row");
  }
  const Ssa& ssa = call.ssas[0];
  const Segment* segment = schema_->FindSegment(ssa.segment);
  if (segment == nullptr) {
    return Status::NotFound("segment '" + ssa.segment + "' is not declared");
  }
  MLDS_ASSIGN_OR_RETURN(std::string key, AllocateKey(segment->name));
  MLDS_ASSIGN_OR_RETURN(Record record,
                        BuildIsrtRecord(*segment, ssa, nullptr, key));
  MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                        Issue(abdl::InsertRequest{record}));
  position_ = Position{segment->name, key, record};
  Outcome outcome;
  outcome.affected = resp.affected;
  outcome.info = "inserted " + key;
  return outcome;
}

Result<DliMachine::Outcome> DliMachine::ExecuteBatch(
    std::string_view text, const std::vector<std::vector<Value>>& rows,
    const abdl::BatchLimits& limits) {
  trace_.clear();
  if (rows.empty()) {
    return Status::InvalidArgument("ISRT batch carries no rows");
  }
  std::shared_ptr<const DliCall> call;
  if (cache_ != nullptr) {
    MLDS_ASSIGN_OR_RETURN(call, cache_->GetOrCompile<DliCall>(
                                    "dli", text,
                                    [&] { return ParseDliCall(text); }));
  } else {
    MLDS_ASSIGN_OR_RETURN(DliCall parsed, ParseDliCall(text));
    call = std::make_shared<const DliCall>(std::move(parsed));
  }
  if (call->function != DliCall::Function::kIsrt || !call->parameterized()) {
    return Status::InvalidArgument(
        "batch execution requires a parameterized ISRT template "
        "(ISRT seg (field = ?, ...))");
  }
  if (call->ssas.size() != 1) {
    return Status::InvalidArgument("ISRT takes exactly one segment");
  }
  const Ssa& ssa = call->ssas[0];
  const Segment* segment = schema_->FindSegment(ssa.segment);
  if (segment == nullptr) {
    return Status::NotFound("segment '" + ssa.segment + "' is not declared");
  }
  size_t params_per_row = 0;
  for (uint8_t m : ssa.param_mask) {
    if (m != 0) ++params_per_row;
  }
  const size_t chunk = abdl::EffectiveBatchSize(limits, params_per_row);
  Outcome outcome;
  for (size_t begin = 0; begin < rows.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, rows.size());
    MLDS_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                          AllocateKeys(segment->name, end - begin));
    std::vector<Record> records;
    records.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      if (rows[i].size() != params_per_row) {
        return Status::InvalidArgument(
            "ISRT batch row " + std::to_string(i) + " carries " +
            std::to_string(rows[i].size()) + " value(s); the template has " +
            std::to_string(params_per_row) + " parameter(s)");
      }
      MLDS_ASSIGN_OR_RETURN(
          Record record,
          BuildIsrtRecord(*segment, ssa, &rows[i], keys[i - begin]));
      records.push_back(std::move(record));
    }
    position_ = Position{segment->name, keys.back(), records.back()};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                          Issue(abdl::BatchInsertRequest{std::move(records)}));
    outcome.affected += resp.affected;
  }
  outcome.info = "inserted " + std::to_string(outcome.affected) + " segment(s)";
  return outcome;
}

Result<DliMachine::Outcome> DliMachine::Repl(const DliCall& call) {
  if (!position_.has_value()) {
    return Status::CurrencyError("REPL without a current segment");
  }
  if (call.ssas.size() != 1 || call.ssas[0].qualifications.empty()) {
    return Status::InvalidArgument("REPL takes a (field = value, ...) list");
  }
  const Segment* segment = schema_->FindSegment(position_->segment);
  Outcome outcome;
  for (const auto& qual : call.ssas[0].qualifications) {
    if (qual.op != RelOp::kEq) {
      return Status::InvalidArgument("REPL assignments use '=' only");
    }
    if (segment->FindField(qual.attribute) == nullptr) {
      return Status::NotFound("field '" + qual.attribute +
                              "' does not exist in segment '" +
                              segment->name + "'");
    }
    abdl::UpdateRequest update;
    update.query = Query::And(
        {FilePred(segment->name),
         Predicate{KeyAttribute(segment->name), RelOp::kEq,
                   Value::String(position_->key)}});
    update.modifier =
        abdl::Modifier{qual.attribute, abdl::ModifierKind::kSet, qual.value};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(update));
    outcome.affected = std::max(outcome.affected, resp.affected);
    position_->record.Set(qual.attribute, qual.value);
  }
  outcome.info = "replaced " + position_->key;
  return outcome;
}

Status DliMachine::DeleteSubtree(const Segment& segment,
                                 const std::string& key, size_t* deleted) {
  for (const Segment* child : schema_->ChildrenOf(segment.name)) {
    abdl::RetrieveRequest probe;
    probe.query = Query::And(
        {FilePred(child->name),
         Predicate{child->parent, RelOp::kEq, Value::String(key)}});
    probe.targets = {abdl::TargetItem{KeyAttribute(child->name)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
    std::set<std::string> child_keys;
    for (const Record& r : resp.records) {
      child_keys.insert(
          r.GetOrNull(KeyAttribute(child->name)).ToDisplayString());
    }
    for (const auto& child_key : child_keys) {
      MLDS_RETURN_IF_ERROR(DeleteSubtree(*child, child_key, deleted));
    }
  }
  abdl::DeleteRequest del;
  del.query = Query::And(
      {FilePred(segment.name), Predicate{KeyAttribute(segment.name),
                                         RelOp::kEq, Value::String(key)}});
  MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(del));
  *deleted += resp.affected;
  return Status::OK();
}

Result<DliMachine::Outcome> DliMachine::Dlet() {
  if (!position_.has_value()) {
    return Status::CurrencyError("DLET without a current segment");
  }
  const Segment* segment = schema_->FindSegment(position_->segment);
  size_t deleted = 0;
  MLDS_RETURN_IF_ERROR(DeleteSubtree(*segment, position_->key, &deleted));
  Outcome outcome;
  outcome.affected = deleted;
  outcome.info = "deleted " + position_->key + " and " +
                 std::to_string(deleted - 1) + " dependent segment(s)";
  position_.reset();
  anchor_.reset();
  buffer_.clear();
  buffer_cursor_ = -1;
  buffer_segment_.clear();
  return outcome;
}

}  // namespace mlds::kms
