#include "kms/daplex_machine.h"

#include <algorithm>
#include <deque>

#include "transform/abdm_mapping.h"

namespace mlds::kms {

namespace {

using abdm::Conjunction;
using abdm::Predicate;
using abdm::Query;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;
using daplex::Comparison;
using daplex::DaplexAggregate;
using daplex::ForEachQuery;
using daplex::Function;
using daplex::FunctionClass;
using transform::KeyAttribute;
using transform::SetAttribute;

/// ISA-chain fetches this large lower to one fused RETRIEVE-COMMON join
/// of the two files instead of a per-key disjunct retrieve.
constexpr size_t kIsaFusionThreshold = 8;

Predicate EqStr(std::string attribute, std::string_view value) {
  return Predicate{std::move(attribute), RelOp::kEq,
                   Value::String(std::string(value))};
}

abdl::RetrieveRequest RetrieveAll(Query query) {
  abdl::RetrieveRequest req;
  req.query = std::move(query);
  req.all_attributes = true;
  return req;
}

/// True when any of `values` satisfies `cmp`.
bool Satisfies(const std::vector<Value>& values, const Comparison& cmp) {
  for (const Value& v : values) {
    Record probe;
    probe.Set(cmp.function, v);
    Predicate pred{cmp.function, cmp.op, cmp.value};
    if (pred.Matches(probe)) return true;
  }
  return false;
}

std::string JoinValues(const std::vector<Value>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ", ";
    out += values[i].ToDisplayString();
  }
  return out;
}

}  // namespace

void DaplexMachine::EntityView::Absorb(const Record& record) {
  for (const auto& kw : record.keywords()) {
    if (kw.attribute == abdm::kFileAttribute) {
      continue;
    }
    if (kw.value.is_null()) continue;
    auto& seen = values[kw.attribute];
    if (std::find(seen.begin(), seen.end(), kw.value) == seen.end()) {
      seen.push_back(kw.value);
    }
  }
}

const std::vector<Value>* DaplexMachine::EntityView::Find(
    std::string_view function) const {
  auto it = values.find(std::string(function));
  return it == values.end() ? nullptr : &it->second;
}

DaplexMachine::DaplexMachine(const daplex::FunctionalSchema* functional,
                             const network::Schema* schema,
                             const transform::FunNetMapping* mapping,
                             kc::KernelExecutor* executor)
    : functional_(functional),
      schema_(schema),
      mapping_(mapping),
      executor_(executor) {}

Result<kds::Response> DaplexMachine::Issue(abdl::Request request) {
  trace_.push_back(abdl::ToString(request));
  return executor_->Execute(request);
}

std::vector<std::string> DaplexMachine::AncestorChain(
    std::string_view type) const {
  std::vector<std::string> chain;
  std::deque<std::string> frontier;
  frontier.emplace_back(type);
  while (!frontier.empty()) {
    std::string current = std::move(frontier.front());
    frontier.pop_front();
    const daplex::Subtype* sub = functional_->FindSubtype(current);
    if (sub == nullptr) continue;
    for (const auto& super : sub->supertypes) {
      if (std::find(chain.begin(), chain.end(), super) == chain.end()) {
        chain.push_back(super);
        frontier.push_back(super);
      }
    }
  }
  return chain;
}

Result<DaplexMachine::FunctionSite> DaplexMachine::Resolve(
    std::string_view type, std::string_view function) const {
  std::vector<std::string> candidates;
  candidates.emplace_back(type);
  for (auto& ancestor : AncestorChain(type)) {
    candidates.push_back(std::move(ancestor));
  }
  for (const auto& candidate : candidates) {
    if (candidate == function) {
      // The type name itself: the database-key pseudo-function.
      return FunctionSite{nullptr, candidate, /*is_key=*/true};
    }
    const std::vector<Function>* functions = functional_->FunctionsOf(candidate);
    if (functions == nullptr) continue;
    for (const Function& fn : *functions) {
      if (fn.name == function) {
        return FunctionSite{&fn, candidate, /*is_key=*/false};
      }
    }
  }
  return Status::NotFound("function '" + std::string(function) +
                          "' is not declared on '" + std::string(type) +
                          "' or its supertypes");
}

Result<std::vector<Record>> DaplexMachine::FetchByKeys(
    std::string_view file, const std::set<std::string>& keys) {
  if (keys.empty()) return std::vector<Record>{};
  std::vector<Conjunction> disjuncts;
  disjuncts.reserve(keys.size());
  for (const auto& key : keys) {
    disjuncts.push_back(
        Conjunction{{EqStr(std::string(abdm::kFileAttribute), file),
                     EqStr(KeyAttribute(file), key)}});
  }
  MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                        Issue(RetrieveAll(Query(std::move(disjuncts)))));
  return std::move(resp.records);
}

Status DaplexMachine::AbsorbAncestors(
    std::string_view type, std::map<std::string, EntityView>* views) {
  // Walk up one ISA level at a time: collect the supertype keys present
  // in the views' ISA keywords, fetch those supertype records, merge.
  std::string current(type);
  // Map from view dbkey to the key of its record at the current level.
  std::map<std::string, std::string> level_key;
  for (auto& [dbkey, view] : *views) level_key[dbkey] = dbkey;

  while (true) {
    const daplex::Subtype* sub = functional_->FindSubtype(current);
    if (sub == nullptr) break;
    // Single-supertype chains cover the University schema; for multiple
    // supertypes every branch is merged (keys fetched per supertype).
    std::string next_level;
    for (const auto& super : sub->supertypes) {
      const std::string isa_attr =
          SetAttribute(transform::IsaSetName(super, current));
      std::set<std::string> super_keys;
      std::map<std::string, std::string> next_key;
      for (auto& [dbkey, view] : *views) {
        const std::vector<Value>* isa = view.Find(isa_attr);
        if (isa == nullptr || isa->empty() || !isa->front().is_string()) {
          continue;
        }
        super_keys.insert(isa->front().AsString());
        next_key[dbkey] = isa->front().AsString();
      }
      if (super_keys.empty()) continue;
      // Above the fusion threshold, one RETRIEVE-COMMON joins the whole
      // supertype file with the current-level file on the ISA keyword —
      // a single fused JOIN plan instead of a per-key disjunct probe.
      // The merged records carry both levels' keywords; the merge below
      // keys on (super key, current-level key) so each view absorbs only
      // its own entity's pair, and Absorb dedups the riding-along
      // current-level keywords the view already holds.
      const bool fused = super_keys.size() >= kIsaFusionThreshold;
      std::vector<Record> records;
      if (fused) {
        abdl::RetrieveCommonRequest req;
        req.left_query =
            Query::And({EqStr(std::string(abdm::kFileAttribute), super)});
        req.left_attribute = KeyAttribute(super);
        req.right_query =
            Query::And({EqStr(std::string(abdm::kFileAttribute), current)});
        req.right_attribute = isa_attr;
        MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(std::move(req)));
        records = std::move(resp.records);
      } else {
        MLDS_ASSIGN_OR_RETURN(records, FetchByKeys(super, super_keys));
      }
      std::map<std::string, std::vector<const Record*>> by_key;
      for (const Record& r : records) {
        std::string k = r.GetOrNull(KeyAttribute(super)).ToDisplayString();
        if (fused) {
          k += '\x1f';
          k += r.GetOrNull(KeyAttribute(current)).ToDisplayString();
        }
        by_key[k].push_back(&r);
      }
      for (auto& [dbkey, view] : *views) {
        auto key_it = next_key.find(dbkey);
        if (key_it == next_key.end()) continue;
        std::string lookup = key_it->second;
        if (fused) {
          lookup += '\x1f';
          lookup += level_key[dbkey];
        }
        auto recs_it = by_key.find(lookup);
        if (recs_it == by_key.end()) continue;
        for (const Record* r : recs_it->second) {
          view.Absorb(*r);
        }
      }
      // Continue the chain through the first supertype (sufficient for
      // linear hierarchies; diamond chains re-resolve per level).
      if (next_level.empty()) {
        next_level = super;
        level_key = std::move(next_key);
      }
    }
    if (next_level.empty()) break;
    current = next_level;
  }
  return Status::OK();
}

Status DaplexMachine::AbsorbManyToMany(
    const Function& fn, std::map<std::string, EntityView>* views) {
  if (mapping_ == nullptr) return Status::OK();
  const transform::SetInfo* info = mapping_->FindSetInfo(fn.name);
  if (info == nullptr ||
      info->origin != transform::SetOrigin::kManyToManyFunction) {
    return Status::OK();
  }
  // The link record carries <fn, this-side key> and <inverse, other key>.
  const std::string& link = info->link_record;
  std::string inverse_attr;
  for (const auto* set : schema_->SetsWithMember(link)) {
    if (set->name != fn.name) {
      inverse_attr = SetAttribute(set->name);
      break;
    }
  }
  if (inverse_attr.empty()) {
    return Status::Internal("many-to-many set '" + fn.name +
                            "' has no inverse over link '" + link + "'");
  }
  std::vector<Conjunction> disjuncts;
  for (const auto& [dbkey, view] : *views) {
    disjuncts.push_back(
        Conjunction{{EqStr(std::string(abdm::kFileAttribute), link),
                     EqStr(SetAttribute(fn.name), dbkey)}});
  }
  if (disjuncts.empty()) return Status::OK();
  MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                        Issue(RetrieveAll(Query(std::move(disjuncts)))));
  for (const Record& r : resp.records) {
    const std::string owner = r.GetOrNull(SetAttribute(fn.name)).ToDisplayString();
    auto it = views->find(owner);
    if (it == views->end()) continue;
    Value other = r.GetOrNull(inverse_attr);
    if (other.is_null()) continue;
    auto& seen = it->second.values[fn.name];
    if (std::find(seen.begin(), seen.end(), other) == seen.end()) {
      seen.push_back(other);
    }
  }
  return Status::OK();
}

Result<std::vector<Record>> DaplexMachine::Execute(const ForEachQuery& query) {
  trace_.clear();
  if (!functional_->IsEntityOrSubtype(query.type)) {
    return Status::NotFound("'" + query.type +
                            "' is not an entity type or subtype");
  }

  // Resolve every referenced function up front.
  std::vector<std::pair<Comparison, FunctionSite>> conditions;
  for (const auto& cmp : query.such_that) {
    MLDS_ASSIGN_OR_RETURN(FunctionSite site, Resolve(query.type, cmp.function));
    conditions.emplace_back(cmp, site);
  }
  std::vector<std::pair<daplex::PrintItem, FunctionSite>> prints;
  for (const auto& item : query.print) {
    MLDS_ASSIGN_OR_RETURN(FunctionSite site, Resolve(query.type, item.function));
    prints.emplace_back(item, site);
  }

  // Conditions on functions declared directly on the queried type (and
  // not set-valued) push into the kernel query; the rest filter after
  // the inheritance joins.
  std::vector<Predicate> pushed = {
      EqStr(std::string(abdm::kFileAttribute), query.type)};
  std::vector<std::pair<Comparison, FunctionSite>> residual;
  for (const auto& [cmp, site] : conditions) {
    const bool own = site.declared_on == query.type;
    const FunctionClass cls =
        site.is_key ? FunctionClass::kScalar
                    : functional_->Classify(*site.function);
    const bool pushable = own && (cls == FunctionClass::kScalar ||
                                  cls == FunctionClass::kSingleValued);
    if (pushable) {
      pushed.push_back(Predicate{cmp.function, cmp.op, cmp.value});
    } else {
      residual.emplace_back(cmp, site);
    }
  }

  MLDS_ASSIGN_OR_RETURN(kds::Response base,
                        Issue(RetrieveAll(Query::And(std::move(pushed)))));

  // Collapse duplicated kernel records into one view per entity.
  std::map<std::string, EntityView> views;
  const std::string key_attr = KeyAttribute(query.type);
  for (const Record& r : base.records) {
    const std::string dbkey = r.GetOrNull(key_attr).ToDisplayString();
    EntityView& view = views[dbkey];
    view.dbkey = dbkey;
    view.Absorb(r);
  }

  // Inheritance joins, when any referenced function is inherited.
  const bool needs_ancestors =
      std::any_of(conditions.begin(), conditions.end(),
                  [&](const auto& c) { return c.second.declared_on != query.type; }) ||
      std::any_of(prints.begin(), prints.end(), [&](const auto& p) {
        return p.second.declared_on != query.type;
      }) ||
      query.print_all;
  if (needs_ancestors) {
    MLDS_RETURN_IF_ERROR(AbsorbAncestors(query.type, &views));
  }

  // Many-to-many functions referenced anywhere need the link file before
  // filtering can see their values.
  for (const auto& [cmp, site] : residual) {
    if (!site.is_key &&
        functional_->Classify(*site.function) == FunctionClass::kMultiValued) {
      MLDS_RETURN_IF_ERROR(AbsorbManyToMany(*site.function, &views));
    }
  }
  for (const auto& [item, site] : prints) {
    if (!site.is_key &&
        functional_->Classify(*site.function) == FunctionClass::kMultiValued) {
      MLDS_RETURN_IF_ERROR(AbsorbManyToMany(*site.function, &views));
    }
  }

  // Residual filtering (set semantics: some value satisfies).
  for (auto it = views.begin(); it != views.end();) {
    bool keep = true;
    for (const auto& [cmp, site] : residual) {
      const std::vector<Value>* values = it->second.Find(cmp.function);
      if (values == nullptr || !Satisfies(*values, cmp)) {
        keep = false;
        break;
      }
    }
    it = keep ? std::next(it) : views.erase(it);
  }

  // Aggregates: one summary record.
  const bool has_aggregate =
      std::any_of(prints.begin(), prints.end(), [](const auto& p) {
        return p.first.aggregate != DaplexAggregate::kNone;
      });
  std::vector<Record> out;
  if (has_aggregate) {
    Record summary;
    for (const auto& [item, site] : prints) {
      std::vector<Value> all;
      for (const auto& [dbkey, view] : views) {
        const std::vector<Value>* values = view.Find(item.function);
        if (values != nullptr) {
          all.insert(all.end(), values->begin(), values->end());
        }
      }
      std::string label;
      Value result;
      switch (item.aggregate) {
        case DaplexAggregate::kCount:
          label = "COUNT(" + item.function + ")";
          result = Value::Integer(static_cast<int64_t>(all.size()));
          break;
        case DaplexAggregate::kNone:
          label = item.function;
          result = all.empty() ? Value::Null() : all.front();
          break;
        default: {
          const char* name = item.aggregate == DaplexAggregate::kAvg   ? "AVG"
                             : item.aggregate == DaplexAggregate::kMin ? "MIN"
                             : item.aggregate == DaplexAggregate::kMax ? "MAX"
                                                                       : "SUM";
          label = std::string(name) + "(" + item.function + ")";
          double sum = 0.0;
          Value min_v, max_v;
          int64_t n = 0;
          for (const Value& v : all) {
            if (!v.is_numeric()) continue;
            if (n == 0 || v.Compare(min_v) < 0) min_v = v;
            if (n == 0 || v.Compare(max_v) > 0) max_v = v;
            sum += v.AsFloat();
            ++n;
          }
          if (n == 0) {
            result = Value::Null();
          } else if (item.aggregate == DaplexAggregate::kAvg) {
            result = Value::Float(sum / static_cast<double>(n));
          } else if (item.aggregate == DaplexAggregate::kMin) {
            result = min_v;
          } else if (item.aggregate == DaplexAggregate::kMax) {
            result = max_v;
          } else {
            result = Value::Float(sum);
          }
          break;
        }
      }
      summary.Set(label, result);
    }
    out.push_back(std::move(summary));
    return out;
  }

  // One record per entity, in key order.
  for (const auto& [dbkey, view] : views) {
    Record r;
    r.Set(key_attr, Value::String(dbkey));
    if (query.print_all) {
      for (const auto& [attr, values] : view.values) {
        r.Set(attr, values.size() == 1 ? values.front()
                                       : Value::String(JoinValues(values)));
      }
    } else {
      for (const auto& [item, site] : prints) {
        const std::vector<Value>* values = view.Find(item.function);
        if (values == nullptr || values->empty()) {
          r.Set(item.function, Value::Null());
        } else if (values->size() == 1) {
          r.Set(item.function, values->front());
        } else {
          r.Set(item.function, Value::String(JoinValues(*values)));
        }
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

Result<std::vector<Record>> DaplexMachine::ExecuteText(std::string_view text) {
  if (cache_ != nullptr) {
    MLDS_ASSIGN_OR_RETURN(
        std::shared_ptr<const ForEachQuery> query,
        cache_->GetOrCompile<ForEachQuery>(
            "daplex", text, [&] { return daplex::ParseForEach(text); }));
    return Execute(*query);
  }
  MLDS_ASSIGN_OR_RETURN(ForEachQuery query, daplex::ParseForEach(text));
  return Execute(query);
}

Result<std::string> DaplexMachine::AllocateDbKey(std::string_view type) {
  uint64_t next = executor_->FileSize(type) + 1;
  while (true) {
    std::string candidate = transform::MakeDbKey(type, next);
    MLDS_ASSIGN_OR_RETURN(bool exists, EntityExists(type, candidate));
    ++next;
    if (!exists) return candidate;
  }
}

Result<bool> DaplexMachine::EntityExists(std::string_view file,
                                         std::string_view dbkey) {
  abdl::RetrieveRequest probe;
  probe.query = Query::And({EqStr(std::string(abdm::kFileAttribute), file),
                            EqStr(KeyAttribute(file), dbkey)});
  probe.targets = {abdl::TargetItem{KeyAttribute(file)}};
  MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
  return !resp.records.empty();
}

Result<std::vector<std::string>> DaplexMachine::AllocateDbKeys(
    std::string_view type, size_t count) {
  std::vector<std::string> keys;
  keys.reserve(count);
  uint64_t next = executor_->FileSize(type) + 1;
  while (keys.size() < count) {
    std::string candidate = transform::MakeDbKey(type, next);
    MLDS_ASSIGN_OR_RETURN(bool exists, EntityExists(type, candidate));
    ++next;
    if (!exists) keys.push_back(std::move(candidate));
  }
  return keys;
}

Result<Record> DaplexMachine::BuildCreateRecord(
    const daplex::CreateStatement& statement,
    const std::vector<abdm::Value>* row, const std::string& dbkey) {
  const std::string& type = statement.type;
  if (!functional_->IsEntityOrSubtype(type)) {
    return Status::NotFound("'" + type + "' is not an entity type or subtype");
  }
  const std::vector<Function>* functions = functional_->FunctionsOf(type);
  const daplex::Subtype* subtype = functional_->FindSubtype(type);

  Record record;
  record.Set(std::string(abdm::kFileAttribute), Value::String(type));
  record.Set(KeyAttribute(type), Value::String(dbkey));

  std::set<std::string> assigned_supers;
  size_t next_param = 0;
  for (size_t i = 0; i < statement.assignments.size(); ++i) {
    const std::string& fn_name = statement.assignments[i].first;
    const bool is_param =
        i < statement.param_mask.size() && statement.param_mask[i] != 0;
    if (is_param && row == nullptr) {
      return Status::Internal("CREATE parameter marker without a value row");
    }
    const Value& value =
        is_param ? (*row)[next_param++] : statement.assignments[i].second;
    // Supertype key pseudo-function: CREATE student (person = 'person_4').
    const bool is_super =
        subtype != nullptr &&
        std::find(subtype->supertypes.begin(), subtype->supertypes.end(),
                  fn_name) != subtype->supertypes.end();
    if (is_super) {
      if (!value.is_string()) {
        return Status::InvalidArgument("supertype key for '" + fn_name +
                                       "' must be a database key string");
      }
      MLDS_ASSIGN_OR_RETURN(bool exists,
                            EntityExists(fn_name, value.AsString()));
      if (!exists) {
        return Status::NotFound("CREATE " + type + ": supertype entity '" +
                                value.AsString() + "' does not exist");
      }
      record.Set(SetAttribute(transform::IsaSetName(fn_name, type)), value);
      assigned_supers.insert(fn_name);
      continue;
    }
    const Function* fn = nullptr;
    for (const Function& candidate : *functions) {
      if (candidate.name == fn_name) {
        fn = &candidate;
        break;
      }
    }
    if (fn == nullptr) {
      return Status::NotFound("CREATE " + type + ": '" + fn_name +
                              "' is not a function of the type (inherited "
                              "functions belong to the supertype entity)");
    }
    switch (functional_->Classify(*fn)) {
      case FunctionClass::kScalar:
      case FunctionClass::kScalarMultiValued:
        record.Set(fn_name, value);
        break;
      case FunctionClass::kSingleValued: {
        if (!value.is_null()) {
          if (!value.is_string()) {
            return Status::InvalidArgument("CREATE " + type + ": '" +
                                           fn_name +
                                           "' takes a database key string");
          }
          MLDS_ASSIGN_OR_RETURN(bool exists,
                                EntityExists(fn->target, value.AsString()));
          if (!exists) {
            return Status::NotFound("CREATE " + type + ": '" +
                                    value.AsString() + "' does not exist in '" +
                                    fn->target + "'");
          }
        }
        record.Set(SetAttribute(fn_name), value);
        break;
      }
      case FunctionClass::kMultiValued:
        return Status::InvalidArgument(
            "CREATE " + type + ": multi-valued function '" + fn_name +
            "' cannot be assigned directly; connect link records instead");
    }
  }

  // Every direct supertype must be linked.
  if (subtype != nullptr) {
    for (const auto& super : subtype->supertypes) {
      if (assigned_supers.count(super) == 0) {
        return Status::InvalidArgument("CREATE " + type +
                                       ": missing supertype key '" + super +
                                       "'");
      }
      // Overlap table: the supertype entity may not already belong to a
      // sibling subtype unless an OVERLAP constraint permits it.
      const std::string owner_key =
          record.GetOrNull(SetAttribute(transform::IsaSetName(super, type)))
              .AsString();
      for (const auto* sibling : functional_->SubtypesOf(super)) {
        if (sibling->name == type) continue;
        abdl::RetrieveRequest probe;
        probe.query = Query::And(
            {EqStr(std::string(abdm::kFileAttribute), sibling->name),
             EqStr(SetAttribute(transform::IsaSetName(super, sibling->name)),
                   owner_key)});
        probe.targets = {abdl::TargetItem{KeyAttribute(sibling->name)}};
        MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
        if (resp.records.empty()) continue;
        bool allowed = false;
        auto contains = [](const std::vector<std::string>& list,
                           std::string_view name) {
          return std::find(list.begin(), list.end(), name) != list.end();
        };
        for (const auto& oc : functional_->overlaps()) {
          if ((contains(oc.left, type) && contains(oc.right, sibling->name)) ||
              (contains(oc.left, sibling->name) && contains(oc.right, type))) {
            allowed = true;
            break;
          }
        }
        if (!allowed) {
          return Status::ConstraintViolation(
              "CREATE " + type + ": entity '" + owner_key +
              "' already belongs to subtype '" + sibling->name +
              "' and no OVERLAP constraint permits sharing");
        }
      }
    }
  }

  // Unassigned member-side set keywords start NULL, matching the CODASYL
  // STORE representation (so (set = NULL) predicates see both paths).
  for (const auto* set : schema_->SetsWithMember(type)) {
    if (set->IsSystemOwned()) continue;
    const transform::SetInfo* info =
        mapping_ != nullptr ? mapping_->FindSetInfo(set->name) : nullptr;
    if (info != nullptr &&
        info->origin == transform::SetOrigin::kOneToManyFunction) {
      continue;  // owner-side representation.
    }
    if (!record.Has(SetAttribute(set->name))) {
      record.Set(SetAttribute(set->name), Value::Null());
    }
  }

  // Uniqueness constraints carried into the transformed schema.
  const network::RecordType* rt = schema_->FindRecord(type);
  if (rt != nullptr) {
    std::vector<Predicate> preds = {
        EqStr(std::string(abdm::kFileAttribute), type)};
    bool any = false;
    for (const auto& attr : rt->attributes) {
      if (attr.duplicates_allowed) continue;
      Value v = record.GetOrNull(attr.name);
      if (v.is_null()) continue;
      preds.push_back(Predicate{attr.name, RelOp::kEq, v});
      any = true;
    }
    if (any) {
      abdl::RetrieveRequest probe;
      probe.query = Query::And(std::move(preds));
      probe.targets = {abdl::TargetItem{KeyAttribute(type)}};
      MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
      if (!resp.records.empty()) {
        return Status::ConstraintViolation(
            "CREATE " + type + " violates a UNIQUE constraint");
      }
    }
  }
  return record;
}

Result<DaplexMachine::Outcome> DaplexMachine::Create(
    const daplex::CreateStatement& statement) {
  trace_.clear();
  if (statement.parameterized()) {
    return Status::InvalidArgument(
        "CREATE " + statement.type + ": parameter markers ('?') require the "
        "batch interface, which binds one value per marker per row");
  }
  MLDS_ASSIGN_OR_RETURN(std::string dbkey, AllocateDbKey(statement.type));
  MLDS_ASSIGN_OR_RETURN(Record record,
                        BuildCreateRecord(statement, nullptr, dbkey));
  MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                        Issue(abdl::InsertRequest{record}));
  (void)resp;
  Outcome outcome;
  outcome.affected = 1;
  outcome.info = "created " + dbkey;
  outcome.records = {std::move(record)};
  return outcome;
}

Result<DaplexMachine::Outcome> DaplexMachine::ExecuteBatch(
    std::string_view text, const std::vector<std::vector<abdm::Value>>& rows,
    const abdl::BatchLimits& limits) {
  trace_.clear();
  if (rows.empty()) {
    return Status::InvalidArgument("CREATE batch carries no rows");
  }
  std::shared_ptr<const daplex::DaplexStatement> stmt;
  if (cache_ != nullptr) {
    MLDS_ASSIGN_OR_RETURN(
        stmt, cache_->GetOrCompile<daplex::DaplexStatement>(
                  "daplex-stmt", text,
                  [&] { return daplex::ParseDaplexStatement(text); }));
  } else {
    MLDS_ASSIGN_OR_RETURN(daplex::DaplexStatement parsed,
                          daplex::ParseDaplexStatement(text));
    stmt = std::make_shared<const daplex::DaplexStatement>(std::move(parsed));
  }
  const auto* create = std::get_if<daplex::CreateStatement>(stmt.get());
  if (create == nullptr || !create->parameterized()) {
    return Status::InvalidArgument(
        "batch execution requires a parameterized CREATE template "
        "(CREATE type (fn = ?, ...))");
  }
  size_t params_per_row = 0;
  for (uint8_t m : create->param_mask) {
    if (m != 0) ++params_per_row;
  }
  const size_t chunk = abdl::EffectiveBatchSize(limits, params_per_row);
  Outcome outcome;
  for (size_t begin = 0; begin < rows.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, rows.size());
    MLDS_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                          AllocateDbKeys(create->type, end - begin));
    std::vector<Record> records;
    records.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      if (rows[i].size() != params_per_row) {
        return Status::InvalidArgument(
            "CREATE batch row " + std::to_string(i) + " carries " +
            std::to_string(rows[i].size()) + " value(s); the template has " +
            std::to_string(params_per_row) + " parameter(s)");
      }
      MLDS_ASSIGN_OR_RETURN(
          Record record, BuildCreateRecord(*create, &rows[i], keys[i - begin]));
      records.push_back(std::move(record));
    }
    MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                          Issue(abdl::BatchInsertRequest{std::move(records)}));
    (void)resp;
    outcome.affected += end - begin;
  }
  outcome.info = "created " + std::to_string(outcome.affected) + " entities";
  return outcome;
}

Status DaplexMachine::CheckReferences(std::string_view type,
                                      std::string_view dbkey) {
  for (const auto* set : schema_->SetsWithOwner(type)) {
    const transform::SetInfo* info =
        mapping_ != nullptr ? mapping_->FindSetInfo(set->name) : nullptr;
    if (info == nullptr) continue;
    if (info->origin == transform::SetOrigin::kIsa) {
      continue;  // subtype records cascade rather than abort.
    }
    if (info->origin == transform::SetOrigin::kSystem) continue;
    // Single-valued / many-to-many sets owned by this type: any member
    // record naming this key is a live function reference.
    for (const auto& member : set->members) {
      abdl::RetrieveRequest probe;
      probe.query =
          Query::And({EqStr(std::string(abdm::kFileAttribute), member),
                      EqStr(SetAttribute(set->name), dbkey)});
      probe.targets = {abdl::TargetItem{SetAttribute(set->name)}};
      MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
      if (!resp.records.empty()) {
        return Status::Aborted("DESTROY: entity '" + std::string(dbkey) +
                               "' is referenced through function set '" +
                               set->name + "'");
      }
    }
  }
  // Owner-side one-to-many references and link records where this type is
  // the member side.
  for (const auto* set : schema_->SetsWithMember(type)) {
    const transform::SetInfo* info =
        mapping_ != nullptr ? mapping_->FindSetInfo(set->name) : nullptr;
    if (info == nullptr || info->origin != transform::SetOrigin::kOneToManyFunction) {
      continue;
    }
    abdl::RetrieveRequest probe;
    probe.query =
        Query::And({EqStr(std::string(abdm::kFileAttribute), set->owner),
                    EqStr(SetAttribute(set->name), dbkey)});
    probe.targets = {abdl::TargetItem{SetAttribute(set->name)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
    if (!resp.records.empty()) {
      return Status::Aborted("DESTROY: entity '" + std::string(dbkey) +
                             "' is referenced through function set '" +
                             set->name + "'");
    }
  }
  return Status::OK();
}

Status DaplexMachine::DestroyEntity(std::string_view type,
                                    std::string_view dbkey, size_t* deleted) {
  MLDS_RETURN_IF_ERROR(CheckReferences(type, dbkey));
  // Cascade into the subtype hierarchy first (the thesis: the entire
  // hierarchy of the entity is deleted).
  for (const auto* sub : functional_->SubtypesOf(type)) {
    const std::string isa_attr =
        SetAttribute(transform::IsaSetName(type, sub->name));
    abdl::RetrieveRequest probe;
    probe.query =
        Query::And({EqStr(std::string(abdm::kFileAttribute), sub->name),
                    EqStr(isa_attr, dbkey)});
    probe.targets = {abdl::TargetItem{KeyAttribute(sub->name)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response subtype_rows, Issue(probe));
    std::set<std::string> sub_keys;
    for (const Record& r : subtype_rows.records) {
      sub_keys.insert(r.GetOrNull(KeyAttribute(sub->name)).ToDisplayString());
    }
    for (const auto& sub_key : sub_keys) {
      MLDS_RETURN_IF_ERROR(DestroyEntity(sub->name, sub_key, deleted));
    }
  }
  abdl::DeleteRequest del;
  del.query = Query::And({EqStr(std::string(abdm::kFileAttribute), type),
                          EqStr(KeyAttribute(type), dbkey)});
  MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(del));
  *deleted += resp.affected;
  return Status::OK();
}

Result<DaplexMachine::Outcome> DaplexMachine::Update(
    const daplex::UpdateStatement& statement) {
  const std::string& type = statement.type;
  if (!functional_->IsEntityOrSubtype(type)) {
    return Status::NotFound("'" + type + "' is not an entity type or subtype");
  }
  const std::vector<Function>* functions = functional_->FunctionsOf(type);

  // Validate assignments up front: own scalar or single-valued functions
  // only; entity references must exist.
  std::vector<std::pair<std::string, Value>> writes;
  for (const auto& [fn_name, value] : statement.assignments) {
    const Function* fn = nullptr;
    for (const Function& candidate : *functions) {
      if (candidate.name == fn_name) {
        fn = &candidate;
        break;
      }
    }
    if (fn == nullptr) {
      return Status::NotFound("UPDATE " + type + ": '" + fn_name +
                              "' is not a function of the type");
    }
    switch (functional_->Classify(*fn)) {
      case FunctionClass::kScalar:
      case FunctionClass::kScalarMultiValued:
        writes.emplace_back(fn_name, value);
        break;
      case FunctionClass::kSingleValued: {
        if (!value.is_null()) {
          if (!value.is_string()) {
            return Status::InvalidArgument("UPDATE " + type + ": '" + fn_name +
                                           "' takes a database key string");
          }
          MLDS_ASSIGN_OR_RETURN(bool exists,
                                EntityExists(fn->target, value.AsString()));
          if (!exists) {
            return Status::NotFound("UPDATE " + type + ": '" +
                                    value.AsString() + "' does not exist in '" +
                                    fn->target + "'");
          }
        }
        writes.emplace_back(SetAttribute(fn_name), value);
        break;
      }
      case FunctionClass::kMultiValued:
        return Status::InvalidArgument("UPDATE " + type +
                                       ": multi-valued function '" + fn_name +
                                       "' cannot be assigned directly");
    }
  }

  // Select the entities, then issue one kernel UPDATE per (entity, item)
  // pair — hitting every duplicated record of the entity.
  ForEachQuery selector;
  selector.type = type;
  selector.such_that = statement.such_that;
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> selected, Execute(selector));

  Outcome outcome;
  for (const Record& r : selected) {
    const std::string dbkey =
        r.GetOrNull(KeyAttribute(type)).ToDisplayString();
    for (const auto& [attr, value] : writes) {
      abdl::UpdateRequest update;
      update.query =
          Query::And({EqStr(std::string(abdm::kFileAttribute), type),
                      EqStr(KeyAttribute(type), dbkey)});
      update.modifier =
          abdl::Modifier{attr, abdl::ModifierKind::kSet, value};
      MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(update));
      (void)resp;
    }
    ++outcome.affected;
  }
  outcome.info = "updated " + std::to_string(outcome.affected) +
                 " entity(ies)";
  return outcome;
}

Result<DaplexMachine::Outcome> DaplexMachine::Destroy(
    const daplex::DestroyStatement& statement) {
  // Select the target entities through the query machinery.
  ForEachQuery selector;
  selector.type = statement.type;
  selector.such_that = statement.such_that;
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> selected, Execute(selector));

  // Collect keys before mutating.
  std::vector<std::string> keys;
  keys.reserve(selected.size());
  for (const Record& r : selected) {
    keys.push_back(r.GetOrNull(KeyAttribute(statement.type)).ToDisplayString());
  }
  // Pre-flight every reference check so a mid-statement abort does not
  // leave a partial destruction behind.
  for (const auto& key : keys) {
    MLDS_RETURN_IF_ERROR(CheckReferences(statement.type, key));
  }
  Outcome outcome;
  size_t deleted = 0;
  for (const auto& key : keys) {
    MLDS_RETURN_IF_ERROR(DestroyEntity(statement.type, key, &deleted));
    ++outcome.affected;
  }
  outcome.info = "destroyed " + std::to_string(outcome.affected) +
                 " entity(ies), " + std::to_string(deleted) +
                 " kernel record(s)";
  return outcome;
}

Result<DaplexMachine::Outcome> DaplexMachine::ExecuteStatement(
    std::string_view text) {
  MLDS_ASSIGN_OR_RETURN(daplex::DaplexStatement statement,
                        daplex::ParseDaplexStatement(text));
  struct Visitor {
    DaplexMachine* self;
    Result<Outcome> operator()(const ForEachQuery& q) {
      MLDS_ASSIGN_OR_RETURN(std::vector<Record> records, self->Execute(q));
      Outcome outcome;
      outcome.records = std::move(records);
      return outcome;
    }
    Result<Outcome> operator()(const daplex::CreateStatement& s) {
      return self->Create(s);
    }
    Result<Outcome> operator()(const daplex::UpdateStatement& s) {
      return self->Update(s);
    }
    Result<Outcome> operator()(const daplex::DestroyStatement& s) {
      return self->Destroy(s);
    }
  };
  return std::visit(Visitor{this}, statement);
}

}  // namespace mlds::kms
