#ifndef MLDS_KMS_SQL_MACHINE_H_
#define MLDS_KMS_SQL_MACHINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "abdl/prepared.h"
#include "abdl/request.h"
#include "common/result.h"
#include "kc/executor.h"
#include "kds/plan.h"
#include "kms/translation_cache.h"
#include "relational/schema.h"
#include "sql/ast.h"

namespace mlds::kms {

/// The relational language interface's SQL-to-ABDL translator: the third
/// user data language of MLDS over the same kernel. Translation is close
/// to one-to-one:
///
///   SELECT (one table)  -> RETRIEVE (query) (targets) [BY col]
///   SELECT (two tables) -> RETRIEVE-COMMON over the equi-join column
///   INSERT              -> [UNIQUE probe] + INSERT
///   UPDATE              -> one kernel UPDATE per SET assignment
///   DELETE              -> DELETE
///
/// Constraints enforced: NOT NULL on INSERT, UNIQUE(cols) on INSERT,
/// column existence everywhere.
///
/// EXPLAIN statements compile to the same kernel requests with the abdl
/// explain flag set: they execute normally and additionally surface the
/// annotated physical plan in Outcome::plan. The translation cache keys
/// on the statement text, so "EXPLAIN SELECT ..." caches separately from
/// the plain statement.
class SqlMachine {
 public:
  /// `schema` and `executor` must outlive the machine.
  SqlMachine(const relational::Schema* schema, kc::KernelExecutor* executor);

  SqlMachine(const SqlMachine&) = delete;
  SqlMachine& operator=(const SqlMachine&) = delete;

  /// Degraded-mode status of the kernel this session executes against.
  kc::KernelHealth Health() const { return executor_->Health(); }

  /// Outcome of one SQL statement.
  struct Outcome {
    std::vector<abdm::Record> rows;  ///< SELECT results.
    size_t affected = 0;             ///< INSERT/UPDATE/DELETE row count.
    std::string info;
    /// For EXPLAIN statements: the annotated physical plan. A statement
    /// that issued one kernel request carries that request's plan
    /// directly; a multi-assignment UPDATE wraps its per-request plans
    /// under a SEQUENCE root.
    std::shared_ptr<const kds::PlanNode> plan;
  };

  Result<Outcome> Execute(const sql::SqlStatement& statement);
  Result<Outcome> ExecuteText(std::string_view text);

  /// Executes a prepared INSERT template — `INSERT INTO t (c, ...) VALUES
  /// (?, ...)` — once per parameter row, chunked into kernel batch
  /// INSERTs of at most EffectiveBatchSize(limits) records each. The
  /// compiled template caches on the statement text, so a bulk load pays
  /// parsing and name resolution once and the translation cache serves
  /// every subsequent call as a warm hit.
  Result<Outcome> ExecuteBatch(std::string_view statement,
                               const std::vector<std::vector<abdm::Value>>& rows,
                               const abdl::BatchLimits& limits = {});

  /// Attaches the shared compiled-translation cache. SELECT, UPDATE, and
  /// DELETE are pure functions of (statement, schema), so their
  /// translations cache as ready-to-issue ABDL requests; INSERT is impure
  /// (tuple-key allocation, constraint probes against live data), so only
  /// its parsed AST caches and the translation re-runs each time.
  void set_translation_cache(TranslationCache* cache) { cache_ = cache; }

  /// ABDL requests issued by the most recent statement.
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  /// A pure SQL statement compiled down to its ABDL requests. Replaying
  /// one skips parsing, name resolution, and query building — the cache
  /// hit executes the kernel requests directly.
  struct CompiledSql {
    enum class Kind { kSelect, kUpdate, kDelete };
    Kind kind = Kind::kSelect;
    std::vector<abdl::Request> requests;
    /// SELECT * hides the kernel FILE keyword from the returned rows.
    bool strip_file = false;
  };

  /// A parameterized INSERT compiled to a bindable kernel template: the
  /// table resolved, every column checked, constants (FILE + literal
  /// columns) baked into the record, parameter slots ordered. A warm hit
  /// skips straight to binding values.
  struct PreparedInsert {
    std::string table;
    abdl::PreparedRequest request;
  };

  /// What the cache stores per statement: the compiled requests for pure
  /// statements, the bindable template for a parameterized INSERT, and
  /// the bare AST for a literal INSERT (impure: tuple-key allocation and
  /// constraint probes run against live data each time).
  struct Translation {
    std::optional<CompiledSql> compiled;
    std::optional<PreparedInsert> prepared;
    std::optional<sql::SqlStatement> ast;
  };

  Result<Outcome> Select(const sql::SelectStatement& statement);
  Result<Outcome> Insert(const sql::InsertStatement& statement);
  Result<Outcome> Update(const sql::UpdateStatement& statement);
  Result<Outcome> Delete(const sql::DeleteStatement& statement);

  Result<CompiledSql> Compile(const sql::SqlStatement& statement);
  Result<CompiledSql> CompileSelect(const sql::SelectStatement& statement);
  Result<CompiledSql> CompileUpdate(const sql::UpdateStatement& statement);
  Result<CompiledSql> CompileDelete(const sql::DeleteStatement& statement);
  Result<PreparedInsert> CompilePreparedInsert(
      const sql::InsertStatement& statement);
  Result<Outcome> RunCompiled(const CompiledSql& compiled);
  Result<Outcome> RunPreparedBatch(
      const PreparedInsert& prepared,
      const std::vector<std::vector<abdm::Value>>& rows,
      const abdl::BatchLimits& limits);

  /// NOT NULL + UNIQUE enforcement for one record about to insert into
  /// `table`. `seen_unique` dedupes unique-column combinations *within*
  /// a batch (the kernel probe only sees already-inserted data).
  Status CheckInsertRecord(const relational::Table& table,
                           const abdm::Record& record,
                           std::set<std::string>* seen_unique);

  Result<kds::Response> Issue(abdl::Request request);

  /// Resolves the table a column reference belongs to, and checks the
  /// column exists. `tables` lists the statement's FROM tables.
  Result<const relational::Table*> ResolveColumn(
      const sql::ColumnRef& ref,
      const std::vector<const relational::Table*>& tables) const;

  /// Builds the kernel query for a single-table WHERE clause.
  Result<abdm::Query> BuildQuery(const relational::Table& table,
                                 const sql::WhereClause& where) const;

  /// Allocates a fresh tuple key for `table`.
  Result<std::string> AllocateTupleKey(std::string_view table);

  /// Allocates `count` consecutive tuple keys: probes the cursor forward
  /// to the first free key, then claims the contiguous range. The range
  /// claim assumes bulk loads are single-writer on the table (this
  /// machine's cursor never re-issues a claimed key); concurrent inserts
  /// through *another* session could collide with the tail of the range.
  Result<std::vector<std::string>> AllocateTupleKeys(std::string_view table,
                                                     size_t count);

  const relational::Schema* schema_;
  kc::KernelExecutor* executor_;
  TranslationCache* cache_ = nullptr;
  std::vector<std::string> trace_;
  std::map<std::string, uint64_t> next_key_;
};

}  // namespace mlds::kms

#endif  // MLDS_KMS_SQL_MACHINE_H_
