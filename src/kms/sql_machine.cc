#include "kms/sql_machine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/strings.h"
#include "transform/abdm_mapping.h"

namespace mlds::kms {

namespace {

using abdm::Conjunction;
using abdm::Predicate;
using abdm::Query;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;
using relational::Table;
using sql::SelectStatement;
using sql::SqlAggregate;
using sql::SqlComparison;
using sql::WhereClause;
using transform::KeyAttribute;

Predicate FilePred(std::string_view table) {
  return Predicate{std::string(abdm::kFileAttribute), RelOp::kEq,
                   Value::String(std::string(table))};
}

abdl::AggregateOp MapAggregate(SqlAggregate aggregate) {
  switch (aggregate) {
    case SqlAggregate::kNone:
      return abdl::AggregateOp::kNone;
    case SqlAggregate::kCount:
      return abdl::AggregateOp::kCount;
    case SqlAggregate::kSum:
      return abdl::AggregateOp::kSum;
    case SqlAggregate::kAvg:
      return abdl::AggregateOp::kAvg;
    case SqlAggregate::kMin:
      return abdl::AggregateOp::kMin;
    case SqlAggregate::kMax:
      return abdl::AggregateOp::kMax;
  }
  return abdl::AggregateOp::kNone;
}

}  // namespace

SqlMachine::SqlMachine(const relational::Schema* schema,
                       kc::KernelExecutor* executor)
    : schema_(schema), executor_(executor) {}

Result<kds::Response> SqlMachine::Issue(abdl::Request request) {
  trace_.push_back(abdl::ToString(request));
  return executor_->Execute(request);
}

Result<SqlMachine::Outcome> SqlMachine::Execute(
    const sql::SqlStatement& statement) {
  trace_.clear();
  struct Visitor {
    SqlMachine* self;
    Result<Outcome> operator()(const sql::SelectStatement& s) {
      return self->Select(s);
    }
    Result<Outcome> operator()(const sql::InsertStatement& s) {
      return self->Insert(s);
    }
    Result<Outcome> operator()(const sql::UpdateStatement& s) {
      return self->Update(s);
    }
    Result<Outcome> operator()(const sql::DeleteStatement& s) {
      return self->Delete(s);
    }
  };
  return std::visit(Visitor{this}, statement);
}

Result<SqlMachine::Outcome> SqlMachine::ExecuteText(std::string_view text) {
  if (cache_ == nullptr) {
    MLDS_ASSIGN_OR_RETURN(sql::SqlStatement statement, sql::ParseSql(text));
    return Execute(statement);
  }
  MLDS_ASSIGN_OR_RETURN(
      std::shared_ptr<const Translation> translation,
      cache_->GetOrCompile<Translation>(
          "sql", text, [&]() -> Result<Translation> {
            MLDS_ASSIGN_OR_RETURN(sql::SqlStatement statement,
                                  sql::ParseSql(text));
            Translation t;
            if (const auto* insert =
                    std::get_if<sql::InsertStatement>(&statement)) {
              if (insert->parameterized()) {
                MLDS_ASSIGN_OR_RETURN(t.prepared,
                                      CompilePreparedInsert(*insert));
              } else {
                t.ast = std::move(statement);
              }
            } else {
              MLDS_ASSIGN_OR_RETURN(t.compiled, Compile(statement));
            }
            return t;
          }));
  if (translation->compiled.has_value()) {
    trace_.clear();
    return RunCompiled(*translation->compiled);
  }
  if (translation->prepared.has_value()) {
    return Status::InvalidArgument(
        "parameterized INSERT template requires a parameter batch; "
        "execute it through the batch interface");
  }
  return Execute(*translation->ast);
}

Result<SqlMachine::Outcome> SqlMachine::ExecuteBatch(
    std::string_view statement,
    const std::vector<std::vector<Value>>& rows,
    const abdl::BatchLimits& limits) {
  trace_.clear();
  if (rows.empty()) {
    return Status::InvalidArgument("prepared INSERT batch carries no rows");
  }
  auto compile = [&]() -> Result<Translation> {
    MLDS_ASSIGN_OR_RETURN(sql::SqlStatement parsed, sql::ParseSql(statement));
    const auto* insert = std::get_if<sql::InsertStatement>(&parsed);
    if (insert == nullptr || !insert->parameterized()) {
      return Status::InvalidArgument(
          "batch execution requires a parameterized INSERT template "
          "(INSERT ... VALUES with '?' markers)");
    }
    Translation t;
    MLDS_ASSIGN_OR_RETURN(t.prepared, CompilePreparedInsert(*insert));
    return t;
  };
  if (cache_ != nullptr) {
    MLDS_ASSIGN_OR_RETURN(
        std::shared_ptr<const Translation> translation,
        cache_->GetOrCompile<Translation>("sql", statement, compile));
    if (!translation->prepared.has_value()) {
      return Status::InvalidArgument(
          "batch execution requires a parameterized INSERT template");
    }
    return RunPreparedBatch(*translation->prepared, rows, limits);
  }
  MLDS_ASSIGN_OR_RETURN(Translation translation, compile());
  return RunPreparedBatch(*translation.prepared, rows, limits);
}

Result<SqlMachine::CompiledSql> SqlMachine::Compile(
    const sql::SqlStatement& statement) {
  struct Visitor {
    SqlMachine* self;
    Result<CompiledSql> operator()(const sql::SelectStatement& s) {
      return self->CompileSelect(s);
    }
    Result<CompiledSql> operator()(const sql::InsertStatement&) {
      return Status::Internal("INSERT translations are not compiled");
    }
    Result<CompiledSql> operator()(const sql::UpdateStatement& s) {
      return self->CompileUpdate(s);
    }
    Result<CompiledSql> operator()(const sql::DeleteStatement& s) {
      return self->CompileDelete(s);
    }
  };
  return std::visit(Visitor{this}, statement);
}

Result<SqlMachine::Outcome> SqlMachine::RunCompiled(
    const CompiledSql& compiled) {
  Outcome outcome;
  switch (compiled.kind) {
    case CompiledSql::Kind::kSelect: {
      MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(compiled.requests[0]));
      outcome.rows = std::move(resp.records);
      outcome.plan = std::move(resp.plan);
      if (compiled.strip_file) {
        for (auto& row : outcome.rows) {
          row.Erase(std::string(abdm::kFileAttribute));
        }
      }
      return outcome;
    }
    case CompiledSql::Kind::kUpdate: {
      // One kernel UPDATE per SET assignment; every request matches the
      // same rows, so the row count is the maximum, not the sum.
      std::vector<std::shared_ptr<const kds::PlanNode>> plans;
      for (const abdl::Request& request : compiled.requests) {
        MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(request));
        outcome.affected = std::max(outcome.affected, resp.affected);
        if (resp.plan != nullptr) plans.push_back(std::move(resp.plan));
      }
      outcome.plan = kds::SequencePlans(std::move(plans));
      outcome.info =
          "updated " + std::to_string(outcome.affected) + " row(s)";
      return outcome;
    }
    case CompiledSql::Kind::kDelete: {
      MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(compiled.requests[0]));
      outcome.affected = resp.affected;
      outcome.plan = std::move(resp.plan);
      outcome.info = "deleted " + std::to_string(resp.affected) + " row(s)";
      return outcome;
    }
  }
  return Status::Internal("unreachable compiled-SQL kind");
}

Result<const Table*> SqlMachine::ResolveColumn(
    const sql::ColumnRef& ref,
    const std::vector<const Table*>& tables) const {
  if (!ref.table.empty()) {
    for (const Table* table : tables) {
      if (table->name == ref.table) {
        if (table->FindColumn(ref.column) == nullptr) {
          return Status::NotFound("column '" + ref.ToString() +
                                  "' does not exist");
        }
        return table;
      }
    }
    return Status::NotFound("table '" + ref.table +
                            "' is not in the FROM list");
  }
  const Table* found = nullptr;
  for (const Table* table : tables) {
    if (table->FindColumn(ref.column) != nullptr) {
      if (found != nullptr) {
        return Status::InvalidArgument("column '" + ref.column +
                                       "' is ambiguous; qualify it");
      }
      found = table;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("column '" + ref.column + "' does not exist");
  }
  return found;
}

Result<Query> SqlMachine::BuildQuery(const Table& table,
                                     const WhereClause& where) const {
  std::vector<Conjunction> disjuncts;
  if (where.empty()) {
    disjuncts.push_back(Conjunction{{FilePred(table.name)}});
    return Query(std::move(disjuncts));
  }
  for (const auto& conj : where.disjuncts) {
    Conjunction out;
    out.predicates.push_back(FilePred(table.name));
    for (const SqlComparison& cmp : conj) {
      if (cmp.right_column.has_value()) {
        return Status::Unimplemented(
            "column-to-column comparisons are only supported as the "
            "equi-join of a two-table SELECT");
      }
      if (!cmp.left.table.empty() && cmp.left.table != table.name) {
        return Status::NotFound("table '" + cmp.left.table +
                                "' is not in the FROM list");
      }
      if (table.FindColumn(cmp.left.column) == nullptr) {
        return Status::NotFound("column '" + cmp.left.column +
                                "' does not exist in '" + table.name + "'");
      }
      out.predicates.push_back(
          Predicate{cmp.left.column, cmp.op, cmp.value});
    }
    disjuncts.push_back(std::move(out));
  }
  return Query(std::move(disjuncts));
}

Result<std::string> SqlMachine::AllocateTupleKey(std::string_view table) {
  MLDS_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                        AllocateTupleKeys(table, 1));
  return std::move(keys.front());
}

Result<std::vector<std::string>> SqlMachine::AllocateTupleKeys(
    std::string_view table, size_t count) {
  uint64_t next = next_key_[std::string(table)];
  if (next == 0) next = executor_->FileSize(table) + 1;
  // Probe forward to the first free key, then claim `count` consecutive
  // keys from there: one probe per batch instead of one per record. The
  // cursor never re-issues a claimed key, so repeated batches through
  // this machine stay collision-free (see the header for the
  // single-writer caveat).
  while (true) {
    std::string candidate = transform::MakeDbKey(table, next);
    abdl::RetrieveRequest probe;
    probe.query = Query::And(
        {FilePred(table), Predicate{KeyAttribute(table), RelOp::kEq,
                                    Value::String(candidate)}});
    probe.targets = {abdl::TargetItem{KeyAttribute(table)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
    if (resp.records.empty()) break;
    ++next;
  }
  std::vector<std::string> keys;
  keys.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    keys.push_back(transform::MakeDbKey(table, next + i));
  }
  next_key_[std::string(table)] = next + count;
  return keys;
}

Result<SqlMachine::Outcome> SqlMachine::Select(const SelectStatement& s) {
  MLDS_ASSIGN_OR_RETURN(CompiledSql compiled, CompileSelect(s));
  return RunCompiled(compiled);
}

Result<SqlMachine::CompiledSql> SqlMachine::CompileSelect(
    const SelectStatement& s) {
  std::vector<const Table*> tables;
  for (const auto& name : s.from) {
    const Table* table = schema_->FindTable(name);
    if (table == nullptr) {
      return Status::NotFound("table '" + name + "' does not exist");
    }
    tables.push_back(table);
  }

  // Validate the select list against the FROM tables.
  for (const auto& item : s.items) {
    if (item.star) continue;
    MLDS_RETURN_IF_ERROR(ResolveColumn(item.column, tables).status());
  }

  CompiledSql compiled;
  compiled.kind = CompiledSql::Kind::kSelect;
  if (tables.size() == 1) {
    MLDS_ASSIGN_OR_RETURN(Query query, BuildQuery(*tables[0], s.where));
    abdl::RetrieveRequest req;
    req.query = std::move(query);
    req.explain = s.explain;
    const bool star =
        std::any_of(s.items.begin(), s.items.end(),
                    [](const auto& i) { return i.star && i.aggregate ==
                                               SqlAggregate::kNone; });
    if (star) {
      req.all_attributes = true;
    } else {
      for (const auto& item : s.items) {
        abdl::TargetItem target;
        target.attribute = item.star ? KeyAttribute(tables[0]->name)
                                     : item.column.column;
        target.aggregate = MapAggregate(item.aggregate);
        req.targets.push_back(std::move(target));
      }
    }
    if (s.group_by.has_value()) {
      req.by_attribute = *s.group_by;
    } else if (s.order_by.has_value()) {
      req.by_attribute = *s.order_by;
    }
    compiled.requests.push_back(std::move(req));
    // Hide the kernel FILE keyword from star results.
    compiled.strip_file = star;
    return compiled;
  }

  // Two-table SELECT: find the single equi-join comparison and split the
  // remaining conditions per table (OR across tables is not supported).
  if (!s.where.disjuncts.empty() && s.where.disjuncts.size() != 1) {
    return Status::Unimplemented(
        "two-table SELECT supports a single AND-connected WHERE clause");
  }
  const Table* left = tables[0];
  const Table* right = tables[1];
  std::string left_col, right_col;
  std::vector<Predicate> left_preds = {FilePred(left->name)};
  std::vector<Predicate> right_preds = {FilePred(right->name)};
  if (!s.where.disjuncts.empty()) {
    for (const SqlComparison& cmp : s.where.disjuncts[0]) {
      if (cmp.right_column.has_value()) {
        if (!left_col.empty()) {
          return Status::Unimplemented(
              "two-table SELECT supports exactly one equi-join comparison");
        }
        if (cmp.op != RelOp::kEq) {
          return Status::Unimplemented("joins must be equi-joins");
        }
        MLDS_ASSIGN_OR_RETURN(const Table* lt,
                              ResolveColumn(cmp.left, tables));
        MLDS_ASSIGN_OR_RETURN(const Table* rt,
                              ResolveColumn(*cmp.right_column, tables));
        if (lt == rt) {
          return Status::InvalidArgument(
              "join comparison must span both tables");
        }
        if (lt == left) {
          left_col = cmp.left.column;
          right_col = cmp.right_column->column;
        } else {
          left_col = cmp.right_column->column;
          right_col = cmp.left.column;
        }
      } else {
        MLDS_ASSIGN_OR_RETURN(const Table* owner,
                              ResolveColumn(cmp.left, tables));
        Predicate pred{cmp.left.column, cmp.op, cmp.value};
        (owner == left ? left_preds : right_preds).push_back(std::move(pred));
      }
    }
  }
  if (left_col.empty()) {
    return Status::InvalidArgument(
        "two-table SELECT requires an equi-join comparison in WHERE");
  }

  abdl::RetrieveCommonRequest join;
  join.explain = s.explain;
  join.left_query = Query::And(std::move(left_preds));
  join.left_attribute = left_col;
  join.right_query = Query::And(std::move(right_preds));
  join.right_attribute = right_col;
  const bool star = std::any_of(
      s.items.begin(), s.items.end(),
      [](const auto& i) { return i.star; });
  if (!star) {
    for (const auto& item : s.items) {
      if (item.aggregate != SqlAggregate::kNone) {
        return Status::Unimplemented(
            "aggregates over two-table SELECTs are not supported");
      }
      join.targets.push_back(abdl::TargetItem{item.column.column});
    }
  }
  compiled.requests.push_back(std::move(join));
  compiled.strip_file = star;
  return compiled;
}

Status SqlMachine::CheckInsertRecord(const Table& table, const Record& record,
                                     std::set<std::string>* seen_unique) {
  // NOT NULL enforcement.
  for (const auto& column : table.columns) {
    if (column.not_null && record.GetOrNull(column.name).is_null()) {
      return Status::ConstraintViolation("column '" + column.name +
                                         "' is NOT NULL");
    }
  }
  // UNIQUE enforcement (combination semantics, one probe) — against the
  // live data, and against earlier rows of the same batch (which the
  // kernel probe cannot see yet).
  if (table.unique_columns.empty()) return Status::OK();
  std::vector<Predicate> preds = {FilePred(table.name)};
  std::string combo;
  bool all_present = true;
  for (const auto& unique : table.unique_columns) {
    Value v = record.GetOrNull(unique);
    if (v.is_null()) {
      all_present = false;
      break;
    }
    combo += v.ToString();
    combo += '\x1f';
    preds.push_back(Predicate{unique, RelOp::kEq, std::move(v)});
  }
  if (!all_present) return Status::OK();
  const Status violation = Status::ConstraintViolation(
      "INSERT violates UNIQUE(" + Join(table.unique_columns, ", ") +
      ") on '" + table.name + "'");
  if (seen_unique != nullptr && !seen_unique->insert(combo).second) {
    return violation;
  }
  abdl::RetrieveRequest probe;
  probe.query = Query::And(std::move(preds));
  probe.targets = {abdl::TargetItem{KeyAttribute(table.name)}};
  MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
  if (!resp.records.empty()) return violation;
  return Status::OK();
}

Result<SqlMachine::Outcome> SqlMachine::Insert(const sql::InsertStatement& s) {
  if (s.parameterized()) {
    return Status::InvalidArgument(
        "parameterized INSERT template requires a parameter batch; "
        "execute it through the batch interface");
  }
  const Table* table = schema_->FindTable(s.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + s.table + "' does not exist");
  }
  for (const auto& column : s.columns) {
    if (table->FindColumn(column) == nullptr) {
      return Status::NotFound("column '" + column + "' does not exist in '" +
                              s.table + "'");
    }
  }
  std::vector<Record> records;
  records.reserve(1 + s.more_rows.size());
  std::set<std::string> seen_unique;
  auto build = [&](const std::vector<Value>& row) -> Status {
    Record record;
    record.Set(std::string(abdm::kFileAttribute), Value::String(s.table));
    for (size_t i = 0; i < s.columns.size(); ++i) {
      record.Set(s.columns[i], row[i]);
    }
    MLDS_RETURN_IF_ERROR(CheckInsertRecord(*table, record, &seen_unique));
    records.push_back(std::move(record));
    return Status::OK();
  };
  MLDS_RETURN_IF_ERROR(build(s.values));
  for (const auto& row : s.more_rows) {
    MLDS_RETURN_IF_ERROR(build(row));
  }
  MLDS_ASSIGN_OR_RETURN(std::vector<std::string> keys,
                        AllocateTupleKeys(s.table, records.size()));
  for (size_t i = 0; i < records.size(); ++i) {
    records[i].Set(KeyAttribute(s.table), Value::String(keys[i]));
  }
  Outcome outcome;
  if (records.size() == 1) {
    MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                          Issue(abdl::InsertRequest{std::move(records[0])}));
    outcome.affected = resp.affected;
    outcome.info = "inserted " + keys[0];
    return outcome;
  }
  // Multi-row VALUES: one kernel batch INSERT, one WAL entry.
  MLDS_ASSIGN_OR_RETURN(
      kds::Response resp,
      Issue(abdl::BatchInsertRequest{std::move(records)}));
  outcome.affected = resp.affected;
  outcome.info = "inserted " + std::to_string(resp.affected) + " row(s)";
  return outcome;
}

Result<SqlMachine::PreparedInsert> SqlMachine::CompilePreparedInsert(
    const sql::InsertStatement& s) {
  const Table* table = schema_->FindTable(s.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + s.table + "' does not exist");
  }
  PreparedInsert prepared;
  prepared.table = s.table;
  prepared.request.constants.Set(std::string(abdm::kFileAttribute),
                                 Value::String(s.table));
  for (size_t i = 0; i < s.columns.size(); ++i) {
    if (table->FindColumn(s.columns[i]) == nullptr) {
      return Status::NotFound("column '" + s.columns[i] +
                              "' does not exist in '" + s.table + "'");
    }
    if (i < s.param_mask.size() && s.param_mask[i] != 0) {
      prepared.request.parameters.push_back(s.columns[i]);
    } else {
      prepared.request.constants.Set(s.columns[i], s.values[i]);
    }
  }
  return prepared;
}

Result<SqlMachine::Outcome> SqlMachine::RunPreparedBatch(
    const PreparedInsert& prepared,
    const std::vector<std::vector<Value>>& rows,
    const abdl::BatchLimits& limits) {
  const Table* table = schema_->FindTable(prepared.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + prepared.table + "' does not exist");
  }
  const size_t chunk =
      abdl::EffectiveBatchSize(limits, prepared.request.params_per_row());
  Outcome outcome;
  std::set<std::string> seen_unique;
  for (size_t begin = 0; begin < rows.size(); begin += chunk) {
    const size_t end = std::min(rows.size(), begin + chunk);
    MLDS_ASSIGN_OR_RETURN(abdl::BatchInsertRequest batch,
                          prepared.request.BindBatch(rows, begin, end));
    for (const Record& record : batch.records) {
      MLDS_RETURN_IF_ERROR(CheckInsertRecord(*table, record, &seen_unique));
    }
    MLDS_ASSIGN_OR_RETURN(
        std::vector<std::string> keys,
        AllocateTupleKeys(prepared.table, batch.records.size()));
    for (size_t i = 0; i < batch.records.size(); ++i) {
      batch.records[i].Set(KeyAttribute(prepared.table),
                           Value::String(keys[i]));
    }
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(std::move(batch)));
    outcome.affected += resp.affected;
  }
  outcome.info = "inserted " + std::to_string(outcome.affected) + " row(s)";
  return outcome;
}

Result<SqlMachine::Outcome> SqlMachine::Update(const sql::UpdateStatement& s) {
  MLDS_ASSIGN_OR_RETURN(CompiledSql compiled, CompileUpdate(s));
  return RunCompiled(compiled);
}

Result<SqlMachine::CompiledSql> SqlMachine::CompileUpdate(
    const sql::UpdateStatement& s) {
  const Table* table = schema_->FindTable(s.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + s.table + "' does not exist");
  }
  for (const auto& [column, value] : s.assignments) {
    const relational::Column* c = table->FindColumn(column);
    if (c == nullptr) {
      return Status::NotFound("column '" + column + "' does not exist in '" +
                              s.table + "'");
    }
    if (c->not_null && value.is_null()) {
      return Status::ConstraintViolation("column '" + column +
                                         "' is NOT NULL");
    }
  }
  MLDS_ASSIGN_OR_RETURN(Query query, BuildQuery(*table, s.where));
  CompiledSql compiled;
  compiled.kind = CompiledSql::Kind::kUpdate;
  for (const auto& [column, value] : s.assignments) {
    abdl::UpdateRequest update;
    update.query = query;
    update.explain = s.explain;
    update.modifier =
        abdl::Modifier{column, abdl::ModifierKind::kSet, value};
    compiled.requests.push_back(std::move(update));
  }
  return compiled;
}

Result<SqlMachine::Outcome> SqlMachine::Delete(const sql::DeleteStatement& s) {
  MLDS_ASSIGN_OR_RETURN(CompiledSql compiled, CompileDelete(s));
  return RunCompiled(compiled);
}

Result<SqlMachine::CompiledSql> SqlMachine::CompileDelete(
    const sql::DeleteStatement& s) {
  const Table* table = schema_->FindTable(s.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + s.table + "' does not exist");
  }
  MLDS_ASSIGN_OR_RETURN(Query query, BuildQuery(*table, s.where));
  abdl::DeleteRequest del;
  del.query = std::move(query);
  del.explain = s.explain;
  CompiledSql compiled;
  compiled.kind = CompiledSql::Kind::kDelete;
  compiled.requests.push_back(std::move(del));
  return compiled;
}

}  // namespace mlds::kms
