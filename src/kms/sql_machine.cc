#include "kms/sql_machine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/strings.h"
#include "transform/abdm_mapping.h"

namespace mlds::kms {

namespace {

using abdm::Conjunction;
using abdm::Predicate;
using abdm::Query;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;
using relational::Table;
using sql::SelectStatement;
using sql::SqlAggregate;
using sql::SqlComparison;
using sql::WhereClause;
using transform::KeyAttribute;

Predicate FilePred(std::string_view table) {
  return Predicate{std::string(abdm::kFileAttribute), RelOp::kEq,
                   Value::String(std::string(table))};
}

abdl::AggregateOp MapAggregate(SqlAggregate aggregate) {
  switch (aggregate) {
    case SqlAggregate::kNone:
      return abdl::AggregateOp::kNone;
    case SqlAggregate::kCount:
      return abdl::AggregateOp::kCount;
    case SqlAggregate::kSum:
      return abdl::AggregateOp::kSum;
    case SqlAggregate::kAvg:
      return abdl::AggregateOp::kAvg;
    case SqlAggregate::kMin:
      return abdl::AggregateOp::kMin;
    case SqlAggregate::kMax:
      return abdl::AggregateOp::kMax;
  }
  return abdl::AggregateOp::kNone;
}

}  // namespace

SqlMachine::SqlMachine(const relational::Schema* schema,
                       kc::KernelExecutor* executor)
    : schema_(schema), executor_(executor) {}

Result<kds::Response> SqlMachine::Issue(abdl::Request request) {
  trace_.push_back(abdl::ToString(request));
  return executor_->Execute(request);
}

Result<SqlMachine::Outcome> SqlMachine::Execute(
    const sql::SqlStatement& statement) {
  trace_.clear();
  struct Visitor {
    SqlMachine* self;
    Result<Outcome> operator()(const sql::SelectStatement& s) {
      return self->Select(s);
    }
    Result<Outcome> operator()(const sql::InsertStatement& s) {
      return self->Insert(s);
    }
    Result<Outcome> operator()(const sql::UpdateStatement& s) {
      return self->Update(s);
    }
    Result<Outcome> operator()(const sql::DeleteStatement& s) {
      return self->Delete(s);
    }
  };
  return std::visit(Visitor{this}, statement);
}

Result<SqlMachine::Outcome> SqlMachine::ExecuteText(std::string_view text) {
  if (cache_ == nullptr) {
    MLDS_ASSIGN_OR_RETURN(sql::SqlStatement statement, sql::ParseSql(text));
    return Execute(statement);
  }
  MLDS_ASSIGN_OR_RETURN(
      std::shared_ptr<const Translation> translation,
      cache_->GetOrCompile<Translation>(
          "sql", text, [&]() -> Result<Translation> {
            MLDS_ASSIGN_OR_RETURN(sql::SqlStatement statement,
                                  sql::ParseSql(text));
            Translation t;
            if (std::holds_alternative<sql::InsertStatement>(statement)) {
              t.ast = std::move(statement);
            } else {
              MLDS_ASSIGN_OR_RETURN(t.compiled, Compile(statement));
            }
            return t;
          }));
  if (translation->compiled.has_value()) {
    trace_.clear();
    return RunCompiled(*translation->compiled);
  }
  return Execute(*translation->ast);
}

Result<SqlMachine::CompiledSql> SqlMachine::Compile(
    const sql::SqlStatement& statement) {
  struct Visitor {
    SqlMachine* self;
    Result<CompiledSql> operator()(const sql::SelectStatement& s) {
      return self->CompileSelect(s);
    }
    Result<CompiledSql> operator()(const sql::InsertStatement&) {
      return Status::Internal("INSERT translations are not compiled");
    }
    Result<CompiledSql> operator()(const sql::UpdateStatement& s) {
      return self->CompileUpdate(s);
    }
    Result<CompiledSql> operator()(const sql::DeleteStatement& s) {
      return self->CompileDelete(s);
    }
  };
  return std::visit(Visitor{this}, statement);
}

Result<SqlMachine::Outcome> SqlMachine::RunCompiled(
    const CompiledSql& compiled) {
  Outcome outcome;
  switch (compiled.kind) {
    case CompiledSql::Kind::kSelect: {
      MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(compiled.requests[0]));
      outcome.rows = std::move(resp.records);
      outcome.plan = std::move(resp.plan);
      if (compiled.strip_file) {
        for (auto& row : outcome.rows) {
          row.Erase(std::string(abdm::kFileAttribute));
        }
      }
      return outcome;
    }
    case CompiledSql::Kind::kUpdate: {
      // One kernel UPDATE per SET assignment; every request matches the
      // same rows, so the row count is the maximum, not the sum.
      std::vector<std::shared_ptr<const kds::PlanNode>> plans;
      for (const abdl::Request& request : compiled.requests) {
        MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(request));
        outcome.affected = std::max(outcome.affected, resp.affected);
        if (resp.plan != nullptr) plans.push_back(std::move(resp.plan));
      }
      outcome.plan = kds::SequencePlans(std::move(plans));
      outcome.info =
          "updated " + std::to_string(outcome.affected) + " row(s)";
      return outcome;
    }
    case CompiledSql::Kind::kDelete: {
      MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(compiled.requests[0]));
      outcome.affected = resp.affected;
      outcome.plan = std::move(resp.plan);
      outcome.info = "deleted " + std::to_string(resp.affected) + " row(s)";
      return outcome;
    }
  }
  return Status::Internal("unreachable compiled-SQL kind");
}

Result<const Table*> SqlMachine::ResolveColumn(
    const sql::ColumnRef& ref,
    const std::vector<const Table*>& tables) const {
  if (!ref.table.empty()) {
    for (const Table* table : tables) {
      if (table->name == ref.table) {
        if (table->FindColumn(ref.column) == nullptr) {
          return Status::NotFound("column '" + ref.ToString() +
                                  "' does not exist");
        }
        return table;
      }
    }
    return Status::NotFound("table '" + ref.table +
                            "' is not in the FROM list");
  }
  const Table* found = nullptr;
  for (const Table* table : tables) {
    if (table->FindColumn(ref.column) != nullptr) {
      if (found != nullptr) {
        return Status::InvalidArgument("column '" + ref.column +
                                       "' is ambiguous; qualify it");
      }
      found = table;
    }
  }
  if (found == nullptr) {
    return Status::NotFound("column '" + ref.column + "' does not exist");
  }
  return found;
}

Result<Query> SqlMachine::BuildQuery(const Table& table,
                                     const WhereClause& where) const {
  std::vector<Conjunction> disjuncts;
  if (where.empty()) {
    disjuncts.push_back(Conjunction{{FilePred(table.name)}});
    return Query(std::move(disjuncts));
  }
  for (const auto& conj : where.disjuncts) {
    Conjunction out;
    out.predicates.push_back(FilePred(table.name));
    for (const SqlComparison& cmp : conj) {
      if (cmp.right_column.has_value()) {
        return Status::Unimplemented(
            "column-to-column comparisons are only supported as the "
            "equi-join of a two-table SELECT");
      }
      if (!cmp.left.table.empty() && cmp.left.table != table.name) {
        return Status::NotFound("table '" + cmp.left.table +
                                "' is not in the FROM list");
      }
      if (table.FindColumn(cmp.left.column) == nullptr) {
        return Status::NotFound("column '" + cmp.left.column +
                                "' does not exist in '" + table.name + "'");
      }
      out.predicates.push_back(
          Predicate{cmp.left.column, cmp.op, cmp.value});
    }
    disjuncts.push_back(std::move(out));
  }
  return Query(std::move(disjuncts));
}

Result<std::string> SqlMachine::AllocateTupleKey(std::string_view table) {
  uint64_t next = next_key_[std::string(table)];
  if (next == 0) next = executor_->FileSize(table) + 1;
  while (true) {
    std::string candidate = transform::MakeDbKey(table, next);
    abdl::RetrieveRequest probe;
    probe.query = Query::And(
        {FilePred(table), Predicate{KeyAttribute(table), RelOp::kEq,
                                    Value::String(candidate)}});
    probe.targets = {abdl::TargetItem{KeyAttribute(table)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
    ++next;
    if (resp.records.empty()) {
      next_key_[std::string(table)] = next;
      return candidate;
    }
  }
}

Result<SqlMachine::Outcome> SqlMachine::Select(const SelectStatement& s) {
  MLDS_ASSIGN_OR_RETURN(CompiledSql compiled, CompileSelect(s));
  return RunCompiled(compiled);
}

Result<SqlMachine::CompiledSql> SqlMachine::CompileSelect(
    const SelectStatement& s) {
  std::vector<const Table*> tables;
  for (const auto& name : s.from) {
    const Table* table = schema_->FindTable(name);
    if (table == nullptr) {
      return Status::NotFound("table '" + name + "' does not exist");
    }
    tables.push_back(table);
  }

  // Validate the select list against the FROM tables.
  for (const auto& item : s.items) {
    if (item.star) continue;
    MLDS_RETURN_IF_ERROR(ResolveColumn(item.column, tables).status());
  }

  CompiledSql compiled;
  compiled.kind = CompiledSql::Kind::kSelect;
  if (tables.size() == 1) {
    MLDS_ASSIGN_OR_RETURN(Query query, BuildQuery(*tables[0], s.where));
    abdl::RetrieveRequest req;
    req.query = std::move(query);
    req.explain = s.explain;
    const bool star =
        std::any_of(s.items.begin(), s.items.end(),
                    [](const auto& i) { return i.star && i.aggregate ==
                                               SqlAggregate::kNone; });
    if (star) {
      req.all_attributes = true;
    } else {
      for (const auto& item : s.items) {
        abdl::TargetItem target;
        target.attribute = item.star ? KeyAttribute(tables[0]->name)
                                     : item.column.column;
        target.aggregate = MapAggregate(item.aggregate);
        req.targets.push_back(std::move(target));
      }
    }
    if (s.group_by.has_value()) {
      req.by_attribute = *s.group_by;
    } else if (s.order_by.has_value()) {
      req.by_attribute = *s.order_by;
    }
    compiled.requests.push_back(std::move(req));
    // Hide the kernel FILE keyword from star results.
    compiled.strip_file = star;
    return compiled;
  }

  // Two-table SELECT: find the single equi-join comparison and split the
  // remaining conditions per table (OR across tables is not supported).
  if (!s.where.disjuncts.empty() && s.where.disjuncts.size() != 1) {
    return Status::Unimplemented(
        "two-table SELECT supports a single AND-connected WHERE clause");
  }
  const Table* left = tables[0];
  const Table* right = tables[1];
  std::string left_col, right_col;
  std::vector<Predicate> left_preds = {FilePred(left->name)};
  std::vector<Predicate> right_preds = {FilePred(right->name)};
  if (!s.where.disjuncts.empty()) {
    for (const SqlComparison& cmp : s.where.disjuncts[0]) {
      if (cmp.right_column.has_value()) {
        if (!left_col.empty()) {
          return Status::Unimplemented(
              "two-table SELECT supports exactly one equi-join comparison");
        }
        if (cmp.op != RelOp::kEq) {
          return Status::Unimplemented("joins must be equi-joins");
        }
        MLDS_ASSIGN_OR_RETURN(const Table* lt,
                              ResolveColumn(cmp.left, tables));
        MLDS_ASSIGN_OR_RETURN(const Table* rt,
                              ResolveColumn(*cmp.right_column, tables));
        if (lt == rt) {
          return Status::InvalidArgument(
              "join comparison must span both tables");
        }
        if (lt == left) {
          left_col = cmp.left.column;
          right_col = cmp.right_column->column;
        } else {
          left_col = cmp.right_column->column;
          right_col = cmp.left.column;
        }
      } else {
        MLDS_ASSIGN_OR_RETURN(const Table* owner,
                              ResolveColumn(cmp.left, tables));
        Predicate pred{cmp.left.column, cmp.op, cmp.value};
        (owner == left ? left_preds : right_preds).push_back(std::move(pred));
      }
    }
  }
  if (left_col.empty()) {
    return Status::InvalidArgument(
        "two-table SELECT requires an equi-join comparison in WHERE");
  }

  abdl::RetrieveCommonRequest join;
  join.explain = s.explain;
  join.left_query = Query::And(std::move(left_preds));
  join.left_attribute = left_col;
  join.right_query = Query::And(std::move(right_preds));
  join.right_attribute = right_col;
  const bool star = std::any_of(
      s.items.begin(), s.items.end(),
      [](const auto& i) { return i.star; });
  if (!star) {
    for (const auto& item : s.items) {
      if (item.aggregate != SqlAggregate::kNone) {
        return Status::Unimplemented(
            "aggregates over two-table SELECTs are not supported");
      }
      join.targets.push_back(abdl::TargetItem{item.column.column});
    }
  }
  compiled.requests.push_back(std::move(join));
  compiled.strip_file = star;
  return compiled;
}

Result<SqlMachine::Outcome> SqlMachine::Insert(const sql::InsertStatement& s) {
  const Table* table = schema_->FindTable(s.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + s.table + "' does not exist");
  }
  Record record;
  record.Set(std::string(abdm::kFileAttribute), Value::String(s.table));
  for (size_t i = 0; i < s.columns.size(); ++i) {
    if (table->FindColumn(s.columns[i]) == nullptr) {
      return Status::NotFound("column '" + s.columns[i] +
                              "' does not exist in '" + s.table + "'");
    }
    record.Set(s.columns[i], s.values[i]);
  }
  // NOT NULL enforcement.
  for (const auto& column : table->columns) {
    if (column.not_null && record.GetOrNull(column.name).is_null()) {
      return Status::ConstraintViolation("column '" + column.name +
                                         "' is NOT NULL");
    }
  }
  // UNIQUE enforcement (combination semantics, one probe).
  if (!table->unique_columns.empty()) {
    std::vector<Predicate> preds = {FilePred(s.table)};
    bool all_present = true;
    for (const auto& unique : table->unique_columns) {
      Value v = record.GetOrNull(unique);
      if (v.is_null()) {
        all_present = false;
        break;
      }
      preds.push_back(Predicate{unique, RelOp::kEq, std::move(v)});
    }
    if (all_present) {
      abdl::RetrieveRequest probe;
      probe.query = Query::And(std::move(preds));
      probe.targets = {abdl::TargetItem{KeyAttribute(s.table)}};
      MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
      if (!resp.records.empty()) {
        return Status::ConstraintViolation(
            "INSERT violates UNIQUE(" + Join(table->unique_columns, ", ") +
            ") on '" + s.table + "'");
      }
    }
  }
  MLDS_ASSIGN_OR_RETURN(std::string key, AllocateTupleKey(s.table));
  record.Set(KeyAttribute(s.table), Value::String(key));
  MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                        Issue(abdl::InsertRequest{std::move(record)}));
  Outcome outcome;
  outcome.affected = resp.affected;
  outcome.info = "inserted " + key;
  return outcome;
}

Result<SqlMachine::Outcome> SqlMachine::Update(const sql::UpdateStatement& s) {
  MLDS_ASSIGN_OR_RETURN(CompiledSql compiled, CompileUpdate(s));
  return RunCompiled(compiled);
}

Result<SqlMachine::CompiledSql> SqlMachine::CompileUpdate(
    const sql::UpdateStatement& s) {
  const Table* table = schema_->FindTable(s.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + s.table + "' does not exist");
  }
  for (const auto& [column, value] : s.assignments) {
    const relational::Column* c = table->FindColumn(column);
    if (c == nullptr) {
      return Status::NotFound("column '" + column + "' does not exist in '" +
                              s.table + "'");
    }
    if (c->not_null && value.is_null()) {
      return Status::ConstraintViolation("column '" + column +
                                         "' is NOT NULL");
    }
  }
  MLDS_ASSIGN_OR_RETURN(Query query, BuildQuery(*table, s.where));
  CompiledSql compiled;
  compiled.kind = CompiledSql::Kind::kUpdate;
  for (const auto& [column, value] : s.assignments) {
    abdl::UpdateRequest update;
    update.query = query;
    update.explain = s.explain;
    update.modifier =
        abdl::Modifier{column, abdl::ModifierKind::kSet, value};
    compiled.requests.push_back(std::move(update));
  }
  return compiled;
}

Result<SqlMachine::Outcome> SqlMachine::Delete(const sql::DeleteStatement& s) {
  MLDS_ASSIGN_OR_RETURN(CompiledSql compiled, CompileDelete(s));
  return RunCompiled(compiled);
}

Result<SqlMachine::CompiledSql> SqlMachine::CompileDelete(
    const sql::DeleteStatement& s) {
  const Table* table = schema_->FindTable(s.table);
  if (table == nullptr) {
    return Status::NotFound("table '" + s.table + "' does not exist");
  }
  MLDS_ASSIGN_OR_RETURN(Query query, BuildQuery(*table, s.where));
  abdl::DeleteRequest del;
  del.query = std::move(query);
  del.explain = s.explain;
  CompiledSql compiled;
  compiled.kind = CompiledSql::Kind::kDelete;
  compiled.requests.push_back(std::move(del));
  return compiled;
}

}  // namespace mlds::kms
