#ifndef MLDS_KMS_DLI_MACHINE_H_
#define MLDS_KMS_DLI_MACHINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "abdl/prepared.h"
#include "abdl/request.h"
#include "abdm/query.h"
#include "common/result.h"
#include "hierarchical/schema.h"
#include "kc/executor.h"
#include "kms/translation_cache.h"

namespace mlds::kms {

/// One segment search argument of a DL/I call: a segment name plus
/// optional field qualifications. A qualification value written as `?`
/// marks a prepared-template parameter (`param_mask[i]` non-zero, value
/// a null placeholder); only ISRT field lists accept markers.
struct Ssa {
  std::string segment;
  std::vector<abdm::Predicate> qualifications;
  std::vector<uint8_t> param_mask;  ///< parallel to `qualifications`.
};

/// A parsed DL/I call.
struct DliCall {
  enum class Function {
    kGu,    ///< GU  — get unique, qualified by an SSA path.
    kGn,    ///< GN  — get next (same segment type, or descend to a child).
    kGnp,   ///< GNP — get next within the anchored parent.
    kIsrt,  ///< ISRT — insert a segment under the current parent.
    kRepl,  ///< REPL — replace fields of the current segment.
    kDlet,  ///< DLET — delete the current segment and its dependents.
  };
  Function function = Function::kGu;
  std::vector<Ssa> ssas;

  bool parameterized() const {
    for (const Ssa& ssa : ssas) {
      for (uint8_t m : ssa.param_mask) {
        if (m != 0) return true;
      }
    }
    return false;
  }
};

/// Parses one DL/I call:
///
///   GU patient (pname = 'Smith') visit (cost > 100)
///   GN            GN visit          GNP visit
///   ISRT visit (vdate = '870601', cost = 12.5)
///   REPL (cost = 99)
///   DLET
Result<DliCall> ParseDliCall(std::string_view text);

/// The hierarchical language interface: DL/I calls translated onto ABDL
/// over the AB(hierarchical) files. Position state follows a simplified
/// IMS model:
///
///  - GU resolves its SSA path level by level (one RETRIEVE per level —
///    the one-to-many call/request correspondence again), loads the final
///    level into a buffer, and anchors the parentage at the retrieved
///    segment;
///  - GN advances through the buffer; `GN <child-segment>` descends,
///    re-anchoring at the current segment;
///  - GNP iterates the children of the anchored parent;
///  - ISRT inserts under the anchored parent (root segments need none);
///  - REPL updates fields of the current segment; DLET deletes the
///    current segment together with its entire dependent subtree.
class DliMachine {
 public:
  DliMachine(const hierarchical::Schema* schema, kc::KernelExecutor* executor);

  DliMachine(const DliMachine&) = delete;
  DliMachine& operator=(const DliMachine&) = delete;

  /// Degraded-mode status of the kernel this session executes against.
  kc::KernelHealth Health() const { return executor_->Health(); }

  struct Outcome {
    std::vector<abdm::Record> segments;  ///< the retrieved segment (GU/GN).
    size_t affected = 0;
    std::string info;
  };

  Result<Outcome> Execute(const DliCall& call);
  Result<Outcome> ExecuteText(std::string_view text);

  /// Runs newline/';'-separated calls, stopping at the first error.
  Result<std::vector<Outcome>> RunProgram(std::string_view text);

  /// Executes a parameterized ISRT template — `ISRT seg (field = ?, ...)`
  /// — once per parameter row, chunked into kernel batch INSERTs of at
  /// most EffectiveBatchSize(limits) records each. Every inserted segment
  /// shares the parent established before the batch; the last one becomes
  /// the current position.
  Result<Outcome> ExecuteBatch(
      std::string_view text, const std::vector<std::vector<abdm::Value>>& rows,
      const abdl::BatchLimits& limits = {});

  /// Attaches the shared compiled-translation cache. DL/I translation
  /// depends on position state, so parsed calls cache; the call's ABDL
  /// requests are re-derived against the live position each execution.
  void set_translation_cache(TranslationCache* cache) { cache_ = cache; }

  /// ABDL requests issued by the most recent call.
  const std::vector<std::string>& trace() const { return trace_; }

  /// The current position (segment name + key), empty when unset.
  std::string PositionDescription() const;

 private:
  struct Position {
    std::string segment;
    std::string key;
    abdm::Record record;
  };

  Result<Outcome> Gu(const DliCall& call);
  Result<Outcome> Gn(const DliCall& call);
  Result<Outcome> Gnp(const DliCall& call);
  Result<Outcome> Isrt(const DliCall& call);
  Result<Outcome> Repl(const DliCall& call);
  Result<Outcome> Dlet();

  Result<kds::Response> Issue(abdl::Request request);

  /// Fetches segments of `segment` matching `quals`, restricted to the
  /// given parent keys when non-empty; sorted by key.
  Result<std::vector<abdm::Record>> FetchLevel(
      const hierarchical::Segment& segment,
      const std::vector<abdm::Predicate>& quals,
      const std::vector<std::string>& parent_keys);

  /// Loads `records` as the iteration buffer for `segment`.
  Outcome TakeFirst(std::string segment, std::vector<abdm::Record> records);

  /// Makes the record at buffer_cursor_ current.
  void SetPositionFromBuffer();

  /// Deletes `key` of `segment` and its dependent subtree; counts rows.
  Status DeleteSubtree(const hierarchical::Segment& segment,
                       const std::string& key, size_t* deleted);

  Result<std::string> AllocateKey(std::string_view segment);

  /// Allocates `count` fresh segment keys, probing each candidate so the
  /// keys are free even before any of the batch's records insert.
  Result<std::vector<std::string>> AllocateKeys(std::string_view segment,
                                                size_t count);

  /// The record-construction half of ISRT: validates the field list,
  /// resolves the parent key, and stamps `key`. `row` supplies the values
  /// bound to `?` markers in qualification order (null for a literal
  /// call). Shared by Isrt and ExecuteBatch.
  Result<abdm::Record> BuildIsrtRecord(const hierarchical::Segment& segment,
                                       const Ssa& ssa,
                                       const std::vector<abdm::Value>* row,
                                       const std::string& key);

  const hierarchical::Schema* schema_;
  kc::KernelExecutor* executor_;
  TranslationCache* cache_ = nullptr;
  std::vector<std::string> trace_;

  std::optional<Position> position_;
  std::optional<Position> anchor_;  ///< parent anchor for GNP/ISRT.
  std::string buffer_segment_;
  std::vector<abdm::Record> buffer_;
  int buffer_cursor_ = -1;
};

}  // namespace mlds::kms

#endif  // MLDS_KMS_DLI_MACHINE_H_
