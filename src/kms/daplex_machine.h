#ifndef MLDS_KMS_DAPLEX_MACHINE_H_
#define MLDS_KMS_DAPLEX_MACHINE_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "abdl/prepared.h"
#include "abdl/request.h"
#include "common/result.h"
#include "daplex/query.h"
#include "daplex/schema.h"
#include "kc/executor.h"
#include "kms/translation_cache.h"
#include "network/schema.h"
#include "transform/fun_to_net.h"

namespace mlds::kms {

/// The functional language interface's query processor: translates Daplex
/// FOR EACH queries into ABDL requests over the AB(functional) database —
/// the same kernel files the CODASYL-DML interface manipulates, which is
/// what makes MLDS multi-lingual: one database, several languages.
///
/// Supported semantics:
///  - iteration over an entity type or subtype;
///  - SUCH THAT comparisons on scalar functions, on single-valued
///    entity functions (compared against the target's database key), and
///    on *inherited* functions (value inheritance over ISA);
///  - PRINT of scalar, entity-valued, inherited, scalar multi-valued
///    (all values of the duplicated-record representation, joined), and
///    many-to-many functions (the related entities' keys, via the link
///    file);
///  - aggregates (COUNT/AVG/MIN/MAX/SUM) over the selected entities.
class DaplexMachine {
 public:
  /// All pointees must outlive the machine.
  DaplexMachine(const daplex::FunctionalSchema* functional,
                const network::Schema* schema,
                const transform::FunNetMapping* mapping,
                kc::KernelExecutor* executor);

  DaplexMachine(const DaplexMachine&) = delete;
  DaplexMachine& operator=(const DaplexMachine&) = delete;

  /// Degraded-mode status of the kernel this session executes against.
  kc::KernelHealth Health() const { return executor_->Health(); }

  /// Outcome of a Daplex DML statement (CREATE / DESTROY / FOR EACH).
  struct Outcome {
    std::vector<abdm::Record> records;  ///< FOR EACH results.
    size_t affected = 0;                ///< entities created / destroyed.
    std::string info;
  };

  /// Executes one FOR EACH query; returns one record per selected entity
  /// (or a single record of aggregates).
  Result<std::vector<abdm::Record>> Execute(const daplex::ForEachQuery& query);

  /// CREATE <type> (fn = value, ...): creates an entity, enforcing
  /// referential integrity for entity-valued assignments, the uniqueness
  /// constraints, and (for subtypes) supertype existence plus the overlap
  /// table.
  Result<Outcome> Create(const daplex::CreateStatement& statement);

  /// UPDATE <type> [SUCH THAT ...] (fn = value, ...): assigns new values
  /// to scalar and single-valued functions of the selected entities
  /// (entity-valued assignments are reference-checked).
  Result<Outcome> Update(const daplex::UpdateStatement& statement);

  /// DESTROY <type> [SUCH THAT ...]: removes the selected entities and
  /// their entire subtype hierarchies; aborts when any affected entity is
  /// referenced by a database function (Ch. VI.H).
  Result<Outcome> Destroy(const daplex::DestroyStatement& statement);

  /// Parses and executes query text (FOR EACH only).
  Result<std::vector<abdm::Record>> ExecuteText(std::string_view text);

  /// Parses and executes any Daplex statement.
  Result<Outcome> ExecuteStatement(std::string_view text);

  /// Executes a parameterized CREATE template — `CREATE type (fn = ?,
  /// ...)` — once per parameter row, chunked into kernel batch INSERTs of
  /// at most EffectiveBatchSize(limits) records each. Literal assignments
  /// in the template apply to every row; each `?` binds one row value in
  /// assignment order.
  Result<Outcome> ExecuteBatch(
      std::string_view text, const std::vector<std::vector<abdm::Value>>& rows,
      const abdl::BatchLimits& limits = {});

  /// Attaches the shared compiled-translation cache. Daplex queries
  /// resolve against live entities (ISA chains, duplicated records), so
  /// parsed query ASTs cache; translation re-runs per execution.
  void set_translation_cache(TranslationCache* cache) { cache_ = cache; }

  /// ABDL requests issued by the most recent query, in issue order.
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  /// The merged view of one entity across its duplicated kernel records
  /// and its supertype records: function name -> the set of values seen.
  /// Database keys appear under the owning type's name, so the type name
  /// acts as a key pseudo-function ("faculty = 'faculty_1'").
  struct EntityView {
    std::string dbkey;
    std::map<std::string, std::vector<abdm::Value>> values;

    void Absorb(const abdm::Record& record);
    const std::vector<abdm::Value>* Find(std::string_view function) const;
  };

  /// Where a function's values live relative to the queried type.
  /// `function == nullptr && is_key` marks the key pseudo-function of
  /// `declared_on` (the type's own name used in a query).
  struct FunctionSite {
    const daplex::Function* function = nullptr;
    std::string declared_on;  ///< type in the ISA chain declaring it.
    bool is_key = false;
  };

  Result<kds::Response> Issue(abdl::Request request);

  /// The queried type's ISA ancestor chain (nearest first, deduplicated).
  std::vector<std::string> AncestorChain(std::string_view type) const;

  /// Finds `function` on `type` or any ancestor.
  Result<FunctionSite> Resolve(std::string_view type,
                               std::string_view function) const;

  /// Fetches records of `file` whose key attribute is among `keys`.
  Result<std::vector<abdm::Record>> FetchByKeys(
      std::string_view file, const std::set<std::string>& keys);

  /// Merges supertype records into the views, walking the ISA chain.
  Status AbsorbAncestors(std::string_view type,
                         std::map<std::string, EntityView>* views);

  /// Fetches the values of a many-to-many function for every view, via
  /// the link file.
  Status AbsorbManyToMany(const daplex::Function& fn,
                          std::map<std::string, EntityView>* views);

  /// Allocates a fresh database key for `type` by probing the kernel.
  Result<std::string> AllocateDbKey(std::string_view type);

  /// Allocates `count` fresh database keys, probing each candidate so the
  /// keys are free even before any of the batch's records insert.
  Result<std::vector<std::string>> AllocateDbKeys(std::string_view type,
                                                  size_t count);

  /// The record-construction half of CREATE: validates every assignment
  /// (supertype keys, referential integrity, function class), enforces
  /// the overlap table and uniqueness constraints, and fills the
  /// member-side set keywords. `row` supplies the values bound to the
  /// statement's `?` markers, in assignment order (null for a literal
  /// statement). Shared by Create and ExecuteBatch.
  Result<abdm::Record> BuildCreateRecord(
      const daplex::CreateStatement& statement,
      const std::vector<abdm::Value>* row, const std::string& dbkey);

  /// True when a record of `file` with key `dbkey` exists.
  Result<bool> EntityExists(std::string_view file, std::string_view dbkey);

  /// Aborts when the entity `dbkey` of `type` is referenced by a Daplex
  /// function (member records of its owned non-ISA sets, owner-side
  /// duplicated records, or link records).
  Status CheckReferences(std::string_view type, std::string_view dbkey);

  /// Destroys one entity and (recursively) its subtype records; all
  /// affected entities pass CheckReferences first.
  Status DestroyEntity(std::string_view type, std::string_view dbkey,
                       size_t* deleted);

  const daplex::FunctionalSchema* functional_;
  const network::Schema* schema_;
  const transform::FunNetMapping* mapping_;
  kc::KernelExecutor* executor_;
  TranslationCache* cache_ = nullptr;
  std::vector<std::string> trace_;
};

}  // namespace mlds::kms

#endif  // MLDS_KMS_DAPLEX_MACHINE_H_
