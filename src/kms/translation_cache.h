#ifndef MLDS_KMS_TRANSLATION_CACHE_H_
#define MLDS_KMS_TRANSLATION_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

#include "common/result.h"

namespace mlds::kms {

/// Collapses runs of whitespace to single spaces and trims the ends, but
/// leaves single-quoted literals untouched, so the cache recognises
/// reformatted repeats of the same statement ("SELECT  *  FROM t" and
/// "SELECT * FROM t" share one entry) without conflating distinct string
/// constants.
std::string NormalizeSource(std::string_view source);

/// A shared compiled-translation cache for the four KMS language machines
/// (CODASYL-DML, Daplex, SQL, DL/I). The thesis's KMS re-translates every
/// statement from scratch; sessions, however, repeat the same statements
/// (loops in application programs, canned queries), so MLDS keeps the
/// translation — a parsed AST, or for pure SQL statements the
/// ready-to-issue ABDL requests — keyed by the statement's normalized
/// source text.
///
/// Keying and invalidation: every entry is stamped with the cache's
/// *schema epoch* at insert. DDL (loading any database) bumps the epoch
/// via InvalidateAll(), so entries compiled against the old schema miss
/// on their next lookup and are lazily evicted — no DDL-time sweep, and
/// no stale translation can ever be returned. Capacity overflow evicts
/// the least-recently-used entry.
///
/// Thread safety: all operations lock an internal mutex; compile
/// callbacks run *outside* the lock, so a slow compilation never blocks
/// other sessions (two sessions racing on the same cold key may both
/// compile — the second insert wins, which is harmless because
/// compilation is deterministic).
class TranslationCache {
 public:
  /// Cumulative counters plus a point-in-time size/epoch snapshot.
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Entries removed: LRU capacity evictions plus lazy removals of
    /// entries invalidated by a schema-epoch bump.
    uint64_t evictions = 0;
    uint64_t epoch = 0;
    size_t size = 0;

    double HitRate() const {
      const uint64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  explicit TranslationCache(size_t capacity = 256) : capacity_(capacity) {}

  TranslationCache(const TranslationCache&) = delete;
  TranslationCache& operator=(const TranslationCache&) = delete;

  /// Returns the cached translation for (`domain`, normalized `source`),
  /// or runs `compile` and caches its result. `domain` partitions the key
  /// space per language ("sql", "dml", ...) so identical text in two
  /// languages cannot collide. `compile` must return Result<T>; its
  /// errors pass through uncached (a failing statement is re-diagnosed
  /// each time, which keeps error messages exact and the cache free of
  /// negative entries).
  template <typename T, typename CompileFn>
  Result<std::shared_ptr<const T>> GetOrCompile(std::string_view domain,
                                                std::string_view source,
                                                CompileFn&& compile) {
    const std::string key = MakeKey(domain, source);
    if (std::shared_ptr<const void> cached = Lookup(key)) {
      return std::static_pointer_cast<const T>(std::move(cached));
    }
    Result<T> compiled = compile();
    MLDS_RETURN_IF_ERROR(compiled.status());
    auto value = std::make_shared<const T>(std::move(*compiled));
    Insert(key, value);
    return std::shared_ptr<const T>(std::move(value));
  }

  /// Bumps the schema epoch: every current entry becomes stale and will
  /// be evicted on its next lookup. Called after any DDL.
  void InvalidateAll();

  Stats stats() const;
  uint64_t epoch() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::shared_ptr<const void> value;
    uint64_t epoch = 0;
    std::list<std::string>::iterator lru_it;
  };

  static std::string MakeKey(std::string_view domain, std::string_view source);

  /// The locked half of GetOrCompile's fast path: returns the live value
  /// (counting a hit) or nullptr (counting a miss, evicting a stale hit).
  std::shared_ptr<const void> Lookup(const std::string& key);
  void Insert(const std::string& key, std::shared_ptr<const void> value);

  const size_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  /// Most-recently-used first.
  std::list<std::string> lru_;
  uint64_t epoch_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace mlds::kms

#endif  // MLDS_KMS_TRANSLATION_CACHE_H_
