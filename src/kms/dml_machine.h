#ifndef MLDS_KMS_DML_MACHINE_H_
#define MLDS_KMS_DML_MACHINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "abdl/prepared.h"
#include "abdl/request.h"
#include "codasyl/ast.h"
#include "kds/plan.h"
#include "codasyl/cit.h"
#include "codasyl/uwa.h"
#include "common/result.h"
#include "kc/executor.h"
#include "kms/translation_cache.h"
#include "network/schema.h"
#include "transform/fun_to_net.h"

namespace mlds::kms {

/// Outcome of executing one CODASYL-DML statement.
struct DmlResult {
  /// Records delivered to the user (GET) or made current (FIND family).
  std::vector<abdm::Record> records;
  /// Number of ABDL requests the translation generated — the
  /// one-to-many DML-to-ABDL correspondence the thesis discusses (III.A).
  size_t abdl_requests = 0;
  /// Human-readable note ("2 records connected", ...).
  std::string info;
  /// For EXPLAIN statements: the annotated physical plans of the issued
  /// ABDL requests — one request's plan directly, several nested under a
  /// SEQUENCE root in issue order. Null when the translation issued no
  /// plannable request (e.g. a FIND resolved purely from currency).
  std::shared_ptr<const kds::PlanNode> plan;
};

/// One entry of the translation trace: the DML statement and the ABDL
/// requests KMS issued for it, in the thesis's notation.
struct TraceEntry {
  std::string dml;
  std::vector<std::string> abdl;
};

/// Per-session translation statistics: how many statements of each kind
/// ran and how many ABDL requests of each operation they generated — the
/// session-level view of the one-to-many correspondence (Ch. III.A).
struct SessionStats {
  std::map<std::string, size_t> statements;     ///< by DML statement kind.
  std::map<std::string, size_t> abdl_requests;  ///< by ABDL operation.
  size_t total_statements = 0;
  size_t total_requests = 0;

  std::string ToString() const;
};

/// The Kernel Mapping Subsystem's CODASYL-DML translator fused with the
/// Kernel Controller's execution state. It parses nothing itself — it
/// receives statement ASTs — and implements the Chapter VI translation
/// algorithms, issuing ABDL requests through a KernelExecutor and
/// maintaining the Currency Indicator Table, the User Work Area, and the
/// Request Buffers.
///
/// Two target modes exist, as in the thesis:
///  - native network databases (`mapping == nullptr`): the Emdi
///    translation — every set relationship lives in member-side keywords;
///  - transformed functional databases (`mapping != nullptr`): the
///    thesis's extension — set provenance (ISA vs Daplex function,
///    owner-side vs member-side) alters the CONNECT / DISCONNECT / STORE /
///    ERASE translations and enforces the Daplex-imposed constraints
///    (automatic-insertion sets, overlap table, reference checks).
class DmlMachine {
 public:
  /// `schema`, `mapping` (may be null), and `executor` must outlive the
  /// machine.
  DmlMachine(const network::Schema* schema,
             const transform::FunNetMapping* mapping,
             kc::KernelExecutor* executor);

  DmlMachine(const DmlMachine&) = delete;
  DmlMachine& operator=(const DmlMachine&) = delete;

  /// Degraded-mode status of the kernel this session executes against:
  /// every language interface can tell its user when results may be
  /// partial because a backend is quarantined.
  kc::KernelHealth Health() const { return executor_->Health(); }

  /// Executes one statement, updating currency and buffers.
  Result<DmlResult> Execute(const codasyl::Statement& statement);

  /// Executes one statement with its EXPLAIN prefix honored: in explain
  /// mode every issued ABDL request carries the explain flag and the
  /// result's `plan` holds the collected annotated plans.
  Result<DmlResult> Execute(const codasyl::ParsedStatement& statement);

  /// Parses and executes one statement of DML text (EXPLAIN allowed).
  Result<DmlResult> ExecuteText(std::string_view text);

  /// Parses and executes a whole program (newline/';'-separated),
  /// stopping at the first error.
  Result<std::vector<DmlResult>> RunProgram(std::string_view text);

  /// Executes a parameterized STORE template — `STORE rec (item = ?,
  /// ...)` — once per parameter row, chunked into kernel batch INSERTs of
  /// at most EffectiveBatchSize(limits) records each. Literal assignments
  /// in the template apply to every row; each `?` binds one row value in
  /// assignment order. Currencies update per stored record, so the batch
  /// leaves the last row current.
  Result<DmlResult> ExecuteBatch(
      std::string_view text, const std::vector<std::vector<abdm::Value>>& rows,
      const abdl::BatchLimits& limits = {});

  /// Attaches the shared compiled-translation cache. DML translation is
  /// stateful (currency, UWA), so only parsed statement ASTs cache — the
  /// Chapter VI algorithms still run against live session state.
  void set_translation_cache(TranslationCache* cache) { cache_ = cache; }

  const codasyl::UserWorkArea& uwa() const { return uwa_; }
  const codasyl::CurrencyIndicatorTable& cit() const { return cit_; }

  /// The cumulative DML -> ABDL translation trace.
  const std::vector<TraceEntry>& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

  /// Cumulative session statistics (not reset by ClearTrace).
  const SessionStats& statistics() const { return stats_; }

  const network::Schema& schema() const { return *schema_; }
  bool IsFunctionalTarget() const { return mapping_ != nullptr; }

 private:
  // --- Statement handlers (Ch. VI sections B through H) ---
  Result<DmlResult> Move(const codasyl::MoveStatement& s);
  Result<DmlResult> FindAny(const codasyl::FindAnyStatement& s);
  Result<DmlResult> FindCurrent(const codasyl::FindCurrentStatement& s);
  Result<DmlResult> FindDuplicate(const codasyl::FindDuplicateStatement& s);
  Result<DmlResult> FindPositional(const codasyl::FindPositionalStatement& s);
  Result<DmlResult> FindOwner(const codasyl::FindOwnerStatement& s);
  Result<DmlResult> FindWithinCurrent(
      const codasyl::FindWithinCurrentStatement& s);
  Result<DmlResult> Get(const codasyl::GetStatement& s);
  Result<DmlResult> Store(const codasyl::StoreStatement& s);
  Result<DmlResult> Connect(const codasyl::ConnectStatement& s);
  Result<DmlResult> Disconnect(const codasyl::DisconnectStatement& s);
  Result<DmlResult> Reconnect(const codasyl::ReconnectStatement& s);
  Result<DmlResult> Modify(const codasyl::ModifyStatement& s);
  Result<DmlResult> Erase(const codasyl::EraseStatement& s);
  Result<DmlResult> Walk(const codasyl::WalkStatement& s);

  // --- Shared machinery ---

  /// Executes one ABDL request through the kernel, appending it to the
  /// current trace entry.
  Result<kds::Response> Issue(abdl::Request request);

  /// Looks up a set, a record type, and checks set membership.
  Result<const network::SetType*> RequireSet(std::string_view set) const;
  Result<const network::RecordType*> RequireRecord(
      std::string_view record) const;
  Status RequireMemberOf(const network::SetType& set,
                         std::string_view record) const;

  /// The provenance of `set` (kSystem when mapping is absent and the set
  /// is SYSTEM-owned; member-side treatment otherwise).
  const transform::SetInfo* SetInfoOf(std::string_view set) const;
  bool IsOwnerSideOneToMany(std::string_view set) const;

  /// Fetches the member records of the current occurrence of `set` whose
  /// member type is `record`, in database-key order. Issues 1 ABDL request
  /// for member-side sets, 2 for owner-side one-to-many sets.
  Result<std::vector<abdm::Record>> FetchSetMembers(
      const network::SetType& set, std::string_view record);

  /// Retrieves all AB records carrying `dbkey` in `record`'s key attribute.
  Result<std::vector<abdm::Record>> FetchByKey(std::string_view record,
                                               std::string_view dbkey);

  /// Makes `record` current: run-unit, record-type currency, and set
  /// currencies for every set the record participates in.
  void UpdateCurrencies(std::string_view record_type,
                        const abdm::Record& record);

  /// The run-unit checked against an expected record type.
  Result<const codasyl::RunUnitCurrency*> RequireRunUnit(
      std::string_view record_type) const;

  /// The owner database key of the current occurrence of `set`.
  Result<std::string> RequireSetOwner(std::string_view set) const;

  /// Allocates a fresh database key for `record` (probing the kernel so
  /// generated keys never collide with loaded ones).
  Result<std::string> AllocateDbKey(std::string_view record);

  /// One record built by the STORE translation, ready to insert: the AB
  /// record, its database key, and the (set, owner) pairs it connects to.
  struct BuiltStore {
    abdm::Record record;
    std::string dbkey;
    std::vector<std::pair<std::string, std::string>> connected;
  };

  /// The record-construction half of STORE (Ch. VI.G): allocates the
  /// database key, fills items from the UWA, checks duplicates, and
  /// resolves set membership. Shared by Store and ExecuteBatch.
  Result<BuiltStore> BuildStoreRecord(const network::RecordType& rt);

  /// Post-insert currency maintenance for one stored record.
  void CommitStoreCurrencies(std::string_view record_type,
                             const BuiltStore& built);

  /// STORE support: duplicates check (DUPLICATES ARE NOT ALLOWED) and the
  /// Daplex overlap-table check.
  Status CheckDuplicates(const network::RecordType& record,
                         const abdm::Record& candidate);
  Status CheckOverlap(std::string_view subtype, const std::string& isa_set,
                      const std::string& owner_key);

  /// True when the overlap table permits `a` and `b` to share an entity.
  bool OverlapDeclared(std::string_view a, std::string_view b) const;

  const network::Schema* schema_;
  const transform::FunNetMapping* mapping_;
  kc::KernelExecutor* executor_;
  TranslationCache* cache_ = nullptr;

  codasyl::UserWorkArea uwa_;
  codasyl::CurrencyIndicatorTable cit_;
  codasyl::RequestBuffer rb_;
  std::vector<TraceEntry> trace_;
  SessionStats stats_;
  std::map<std::string, uint64_t> next_key_;

  /// Explain mode for the statement currently executing: Issue() flags
  /// every outgoing request and collects the plans its responses carry.
  bool explain_ = false;
  std::vector<std::shared_ptr<const kds::PlanNode>> explain_plans_;
};

}  // namespace mlds::kms

#endif  // MLDS_KMS_DML_MACHINE_H_
