#include "kms/dml_machine.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "codasyl/parser.h"
#include "transform/abdm_mapping.h"

namespace mlds::kms {

namespace {

using abdl::DeleteRequest;
using abdl::InsertRequest;
using abdl::Modifier;
using abdl::ModifierKind;
using abdl::RetrieveRequest;
using abdl::UpdateRequest;
using abdm::Conjunction;
using abdm::Predicate;
using abdm::Query;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;
using codasyl::FindPosition;
using network::SetType;
using transform::KeyAttribute;
using transform::SetAttribute;
using transform::SetInfo;
using transform::SetOrigin;

Predicate Eq(std::string attribute, Value value) {
  return Predicate{std::move(attribute), RelOp::kEq, std::move(value)};
}

Predicate EqStr(std::string attribute, std::string_view value) {
  return Eq(std::move(attribute), Value::String(std::string(value)));
}

/// RETRIEVE (query) (all attributes) — the workhorse auxiliary retrieve.
RetrieveRequest RetrieveAll(Query query) {
  RetrieveRequest req;
  req.query = std::move(query);
  req.all_attributes = true;
  return req;
}

std::string KeyOf(std::string_view record_type, const Record& record) {
  return record.GetOrNull(KeyAttribute(record_type)).ToDisplayString();
}

/// Sorts AB records by database key for deterministic set ordering.
void SortByKey(std::string_view record_type, std::vector<Record>* records) {
  const std::string key_attr = KeyAttribute(record_type);
  std::stable_sort(records->begin(), records->end(),
                   [&](const Record& a, const Record& b) {
                     return a.GetOrNull(key_attr).Compare(
                                b.GetOrNull(key_attr)) < 0;
                   });
}

/// Orders set members per the set's ORDER clause: by the sorting item
/// (ties broken by database key) or by database key alone.
void SortSetMembers(const SetType& set, std::string_view record_type,
                    std::vector<Record>* records) {
  SortByKey(record_type, records);
  if (set.order == network::OrderMode::kSortedBy) {
    const std::string& item = set.order_item;
    std::stable_sort(records->begin(), records->end(),
                     [&](const Record& a, const Record& b) {
                       return a.GetOrNull(item).Compare(b.GetOrNull(item)) < 0;
                     });
  }
}

}  // namespace

std::string SessionStats::ToString() const {
  std::string out = "statements: " + std::to_string(total_statements) +
                    ", ABDL requests: " + std::to_string(total_requests) +
                    "\n";
  for (const auto& [kind, count] : statements) {
    out += "  " + kind + ": " + std::to_string(count) + "\n";
  }
  for (const auto& [op, count] : abdl_requests) {
    out += "  ABDL " + op + ": " + std::to_string(count) + "\n";
  }
  return out;
}

DmlMachine::DmlMachine(const network::Schema* schema,
                       const transform::FunNetMapping* mapping,
                       kc::KernelExecutor* executor)
    : schema_(schema), mapping_(mapping), executor_(executor) {}

Result<DmlResult> DmlMachine::Execute(const codasyl::Statement& statement) {
  trace_.push_back(TraceEntry{
      (explain_ ? "EXPLAIN " : "") + codasyl::ToString(statement), {}});
  struct Visitor {
    DmlMachine* self;
    Result<DmlResult> operator()(const codasyl::MoveStatement& s) {
      return self->Move(s);
    }
    Result<DmlResult> operator()(const codasyl::FindAnyStatement& s) {
      return self->FindAny(s);
    }
    Result<DmlResult> operator()(const codasyl::FindCurrentStatement& s) {
      return self->FindCurrent(s);
    }
    Result<DmlResult> operator()(const codasyl::FindDuplicateStatement& s) {
      return self->FindDuplicate(s);
    }
    Result<DmlResult> operator()(const codasyl::FindPositionalStatement& s) {
      return self->FindPositional(s);
    }
    Result<DmlResult> operator()(const codasyl::FindOwnerStatement& s) {
      return self->FindOwner(s);
    }
    Result<DmlResult> operator()(
        const codasyl::FindWithinCurrentStatement& s) {
      return self->FindWithinCurrent(s);
    }
    Result<DmlResult> operator()(const codasyl::GetStatement& s) {
      return self->Get(s);
    }
    Result<DmlResult> operator()(const codasyl::StoreStatement& s) {
      return self->Store(s);
    }
    Result<DmlResult> operator()(const codasyl::ConnectStatement& s) {
      return self->Connect(s);
    }
    Result<DmlResult> operator()(const codasyl::DisconnectStatement& s) {
      return self->Disconnect(s);
    }
    Result<DmlResult> operator()(const codasyl::ReconnectStatement& s) {
      return self->Reconnect(s);
    }
    Result<DmlResult> operator()(const codasyl::ModifyStatement& s) {
      return self->Modify(s);
    }
    Result<DmlResult> operator()(const codasyl::EraseStatement& s) {
      return self->Erase(s);
    }
    Result<DmlResult> operator()(const codasyl::WalkStatement& s) {
      return self->Walk(s);
    }
  };
  auto result = std::visit(Visitor{this}, statement);
  if (result.ok()) {
    result->abdl_requests = trace_.back().abdl.size();
    stats_.statements[std::string(codasyl::StatementKind(statement))] += 1;
    stats_.total_statements += 1;
  }
  return result;
}

Result<DmlResult> DmlMachine::Execute(
    const codasyl::ParsedStatement& statement) {
  if (!statement.explain) return Execute(statement.statement);
  explain_ = true;
  explain_plans_.clear();
  auto result = Execute(statement.statement);
  explain_ = false;
  if (result.ok()) {
    result->plan = kds::SequencePlans(std::move(explain_plans_));
  }
  explain_plans_.clear();
  return result;
}

Result<DmlResult> DmlMachine::ExecuteText(std::string_view text) {
  if (cache_ != nullptr) {
    MLDS_ASSIGN_OR_RETURN(
        std::shared_ptr<const codasyl::ParsedStatement> stmt,
        cache_->GetOrCompile<codasyl::ParsedStatement>(
            "dml", text, [&] { return codasyl::ParseDmlStatement(text); }));
    return Execute(*stmt);
  }
  MLDS_ASSIGN_OR_RETURN(codasyl::ParsedStatement stmt,
                        codasyl::ParseDmlStatement(text));
  return Execute(stmt);
}

Result<std::vector<DmlResult>> DmlMachine::RunProgram(std::string_view text) {
  std::shared_ptr<const std::vector<codasyl::ParsedStatement>> program;
  if (cache_ != nullptr) {
    MLDS_ASSIGN_OR_RETURN(
        program, cache_->GetOrCompile<std::vector<codasyl::ParsedStatement>>(
                     "dml-program", text,
                     [&] { return codasyl::ParseDmlProgram(text); }));
  } else {
    MLDS_ASSIGN_OR_RETURN(std::vector<codasyl::ParsedStatement> parsed,
                          codasyl::ParseDmlProgram(text));
    program = std::make_shared<const std::vector<codasyl::ParsedStatement>>(
        std::move(parsed));
  }
  std::vector<DmlResult> results;
  results.reserve(program->size());
  for (const auto& stmt : *program) {
    MLDS_ASSIGN_OR_RETURN(DmlResult result, Execute(stmt));
    results.push_back(std::move(result));
  }
  return results;
}

Result<DmlResult> DmlMachine::ExecuteBatch(
    std::string_view text, const std::vector<std::vector<abdm::Value>>& rows,
    const abdl::BatchLimits& limits) {
  if (rows.empty()) {
    return Status::InvalidArgument("STORE batch carries no rows");
  }
  std::shared_ptr<const codasyl::ParsedStatement> stmt;
  if (cache_ != nullptr) {
    MLDS_ASSIGN_OR_RETURN(
        stmt, cache_->GetOrCompile<codasyl::ParsedStatement>(
                  "dml", text,
                  [&] { return codasyl::ParseDmlStatement(text); }));
  } else {
    MLDS_ASSIGN_OR_RETURN(codasyl::ParsedStatement parsed,
                          codasyl::ParseDmlStatement(text));
    stmt = std::make_shared<const codasyl::ParsedStatement>(std::move(parsed));
  }
  const auto* store = std::get_if<codasyl::StoreStatement>(&stmt->statement);
  if (store == nullptr || !store->parameterized()) {
    return Status::InvalidArgument(
        "batch execution requires a parameterized STORE template "
        "(STORE rec (item = ?, ...))");
  }
  MLDS_ASSIGN_OR_RETURN(const network::RecordType* rt,
                        RequireRecord(store->record));
  size_t params_per_row = 0;
  for (const auto& a : store->assignments) {
    if (a.is_param) ++params_per_row;
  }
  trace_.push_back(TraceEntry{codasyl::ToString(stmt->statement) + " [" +
                                  std::to_string(rows.size()) + " rows]",
                              {}});
  const size_t chunk = abdl::EffectiveBatchSize(limits, params_per_row);
  std::vector<BuiltStore> built;
  for (size_t begin = 0; begin < rows.size(); begin += chunk) {
    const size_t end = std::min(begin + chunk, rows.size());
    built.clear();
    built.reserve(end - begin);
    std::vector<Record> records;
    records.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) {
      const std::vector<Value>& row = rows[i];
      if (row.size() != params_per_row) {
        return Status::InvalidArgument(
            "STORE batch row " + std::to_string(i) + " carries " +
            std::to_string(row.size()) + " value(s); the template has " +
            std::to_string(params_per_row) + " parameter(s)");
      }
      size_t next_param = 0;
      for (const auto& a : store->assignments) {
        uwa_.Move(store->record, a.item,
                  a.is_param ? row[next_param++] : a.value);
      }
      MLDS_ASSIGN_OR_RETURN(BuiltStore one, BuildStoreRecord(*rt));
      records.push_back(one.record);
      built.push_back(std::move(one));
    }
    MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                          Issue(abdl::BatchInsertRequest{std::move(records)}));
    (void)resp;
    for (const BuiltStore& one : built) {
      CommitStoreCurrencies(store->record, one);
    }
  }
  DmlResult result;
  result.abdl_requests = trace_.back().abdl.size();
  stats_.statements["STORE"] += 1;
  stats_.total_statements += 1;
  result.info = "stored " + std::to_string(rows.size()) + " record(s)";
  return result;
}

// --- Shared machinery ---

Result<kds::Response> DmlMachine::Issue(abdl::Request request) {
  if (explain_) abdl::SetExplain(request, true);
  trace_.back().abdl.push_back(abdl::ToString(request));
  stats_.abdl_requests[std::string(abdl::RequestOperation(request))] += 1;
  stats_.total_requests += 1;
  auto response = executor_->Execute(request);
  if (explain_ && response.ok() && response->plan != nullptr) {
    explain_plans_.push_back(response->plan);
  }
  return response;
}

Result<const SetType*> DmlMachine::RequireSet(std::string_view set) const {
  const SetType* found = schema_->FindSet(set);
  if (found == nullptr) {
    return Status::NotFound("set type '" + std::string(set) +
                            "' is not declared in the schema");
  }
  return found;
}

Result<const network::RecordType*> DmlMachine::RequireRecord(
    std::string_view record) const {
  const network::RecordType* found = schema_->FindRecord(record);
  if (found == nullptr) {
    return Status::NotFound("record type '" + std::string(record) +
                            "' is not declared in the schema");
  }
  return found;
}

Status DmlMachine::RequireMemberOf(const SetType& set,
                                   std::string_view record) const {
  if (!set.HasMember(record)) {
    return Status::InvalidArgument("record type '" + std::string(record) +
                                   "' is not a member of set '" + set.name +
                                   "'");
  }
  return Status::OK();
}

const SetInfo* DmlMachine::SetInfoOf(std::string_view set) const {
  if (mapping_ == nullptr) return nullptr;
  return mapping_->FindSetInfo(set);
}

bool DmlMachine::IsOwnerSideOneToMany(std::string_view set) const {
  const SetInfo* info = SetInfoOf(set);
  return info != nullptr && info->origin == SetOrigin::kOneToManyFunction;
}

Result<std::vector<Record>> DmlMachine::FetchByKey(std::string_view record,
                                                   std::string_view dbkey) {
  MLDS_ASSIGN_OR_RETURN(
      kds::Response resp,
      Issue(RetrieveAll(Query::And(
          {EqStr(std::string(abdm::kFileAttribute), record),
           EqStr(KeyAttribute(record), dbkey)}))));
  return std::move(resp.records);
}

Result<std::vector<Record>> DmlMachine::FetchSetMembers(
    const SetType& set, std::string_view record) {
  MLDS_RETURN_IF_ERROR(RequireMemberOf(set, record));

  if (set.IsSystemOwned()) {
    // Membership in a SYSTEM set is implied by the FILE keyword.
    MLDS_ASSIGN_OR_RETURN(
        kds::Response resp,
        Issue(RetrieveAll(Query::And(
            {EqStr(std::string(abdm::kFileAttribute), record)}))));
    std::vector<Record> members = std::move(resp.records);
    SortSetMembers(set, record, &members);
    return members;
  }

  MLDS_ASSIGN_OR_RETURN(std::string owner_key, RequireSetOwner(set.name));

  if (IsOwnerSideOneToMany(set.name)) {
    // The relationship lives in duplicated owner records: first retrieve
    // the member keys from the owner side, then the member records.
    MLDS_ASSIGN_OR_RETURN(
        kds::Response owners,
        Issue(RetrieveAll(Query::And(
            {EqStr(std::string(abdm::kFileAttribute), set.owner),
             EqStr(KeyAttribute(set.owner), owner_key)}))));
    std::set<std::string> member_keys;
    for (const Record& r : owners.records) {
      Value v = r.GetOrNull(SetAttribute(set.name));
      if (v.is_string()) member_keys.insert(v.AsString());
    }
    if (member_keys.empty()) return std::vector<Record>{};
    std::vector<Conjunction> disjuncts;
    for (const auto& key : member_keys) {
      disjuncts.push_back(
          Conjunction{{EqStr(std::string(abdm::kFileAttribute), record),
                       EqStr(KeyAttribute(record), key)}});
    }
    MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                          Issue(RetrieveAll(Query(std::move(disjuncts)))));
    std::vector<Record> members = std::move(resp.records);
    SortSetMembers(set, record, &members);
    return members;
  }

  // Member-side representation:
  //   RETRIEVE ((FILE = record) AND (set = owner-dbkey)) (all attributes).
  MLDS_ASSIGN_OR_RETURN(
      kds::Response resp,
      Issue(RetrieveAll(Query::And(
          {EqStr(std::string(abdm::kFileAttribute), record),
           EqStr(SetAttribute(set.name), owner_key)}))));
  std::vector<Record> members = std::move(resp.records);
  SortSetMembers(set, record, &members);
  return members;
}

void DmlMachine::UpdateCurrencies(std::string_view record_type,
                                  const Record& record) {
  const std::string dbkey = KeyOf(record_type, record);
  cit_.SetRunUnit(std::string(record_type), dbkey, record);
  cit_.SetCurrentOfRecord(record_type, dbkey);

  // Sets in which this record participates as a member: the owning
  // record's key is in the set keyword (member-side representation).
  for (const SetType* set : schema_->SetsWithMember(record_type)) {
    if (set->IsSystemOwned()) continue;
    if (IsOwnerSideOneToMany(set->name)) continue;  // owner unknown here.
    Value owner = record.GetOrNull(SetAttribute(set->name));
    if (owner.is_string()) {
      cit_.SetCurrentOfSet(set->name,
                           codasyl::SetCurrency{owner.AsString(), dbkey});
    }
  }
  // Sets this record owns: it becomes the current owner; for owner-side
  // one-to-many sets the record may also name a current member.
  for (const SetType* set : schema_->SetsWithOwner(record_type)) {
    codasyl::SetCurrency currency;
    currency.owner_dbkey = dbkey;
    if (IsOwnerSideOneToMany(set->name)) {
      Value member = record.GetOrNull(SetAttribute(set->name));
      if (member.is_string()) currency.member_dbkey = member.AsString();
    }
    cit_.SetCurrentOfSet(set->name, std::move(currency));
  }
}

Result<const codasyl::RunUnitCurrency*> DmlMachine::RequireRunUnit(
    std::string_view record_type) const {
  if (!cit_.run_unit().has_value()) {
    return Status::CurrencyError("no current record of the run-unit");
  }
  const codasyl::RunUnitCurrency& ru = *cit_.run_unit();
  if (!record_type.empty() && ru.record_type != record_type) {
    return Status::CurrencyError("current of run-unit is of type '" +
                                 ru.record_type + "', not '" +
                                 std::string(record_type) + "'");
  }
  return &ru;
}

Result<std::string> DmlMachine::RequireSetOwner(std::string_view set) const {
  const codasyl::SetCurrency* currency = cit_.CurrentOfSet(set);
  if (currency == nullptr || currency->owner_dbkey.empty()) {
    return Status::CurrencyError("set '" + std::string(set) +
                                 "' has no current owner");
  }
  return currency->owner_dbkey;
}

Result<std::string> DmlMachine::AllocateDbKey(std::string_view record) {
  uint64_t next = next_key_[std::string(record)];
  if (next == 0) next = executor_->FileSize(record) + 1;
  while (true) {
    std::string candidate = transform::MakeDbKey(record, next);
    RetrieveRequest probe;
    probe.query = Query::And({EqStr(std::string(abdm::kFileAttribute), record),
                              EqStr(KeyAttribute(record), candidate)});
    probe.targets = {abdl::TargetItem{KeyAttribute(record)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
    ++next;
    if (resp.records.empty()) {
      next_key_[std::string(record)] = next;
      return candidate;
    }
  }
}

Status DmlMachine::CheckDuplicates(const network::RecordType& record,
                                   const Record& candidate) {
  // The items under a DUPLICATES ARE NOT ALLOWED clause are unique in
  // combination: form one RETRIEVE over the conjunction of their values.
  std::vector<Predicate> preds = {
      EqStr(std::string(abdm::kFileAttribute), record.name)};
  bool any = false;
  for (const auto& attr : record.attributes) {
    if (attr.duplicates_allowed) continue;
    Value v = candidate.GetOrNull(attr.name);
    if (v.is_null()) continue;
    preds.push_back(Eq(attr.name, std::move(v)));
    any = true;
  }
  if (!any) return Status::OK();
  RetrieveRequest probe;
  probe.query = Query::And(std::move(preds));
  probe.targets = {abdl::TargetItem{KeyAttribute(record.name)}};
  MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
  if (!resp.records.empty()) {
    return Status::ConstraintViolation(
        "STORE " + record.name +
        " violates DUPLICATES ARE NOT ALLOWED: a record with the same "
        "unique item values exists");
  }
  return Status::OK();
}

bool DmlMachine::OverlapDeclared(std::string_view a, std::string_view b) const {
  if (mapping_ == nullptr) return false;
  auto contains = [](const std::vector<std::string>& list,
                     std::string_view name) {
    return std::find(list.begin(), list.end(), name) != list.end();
  };
  for (const auto& oc : mapping_->overlap_table) {
    const bool forward = contains(oc.left, a) && contains(oc.right, b);
    const bool backward = contains(oc.left, b) && contains(oc.right, a);
    if (forward || backward) return true;
  }
  return false;
}

Status DmlMachine::CheckOverlap(std::string_view subtype,
                                const std::string& isa_set,
                                const std::string& owner_key) {
  if (mapping_ == nullptr) return Status::OK();
  const SetType* isa = schema_->FindSet(isa_set);
  if (isa == nullptr) return Status::OK();
  // Sibling subtypes: members of other ISA sets owned by the same
  // supertype.
  for (const SetType* sibling_set : schema_->SetsWithOwner(isa->owner)) {
    const SetInfo* info = SetInfoOf(sibling_set->name);
    if (info == nullptr || info->origin != SetOrigin::kIsa) continue;
    const std::string& sibling = sibling_set->members[0];
    if (sibling == subtype) continue;
    RetrieveRequest probe;
    probe.query = Query::And(
        {EqStr(std::string(abdm::kFileAttribute), sibling),
         EqStr(SetAttribute(sibling_set->name), owner_key)});
    probe.targets = {abdl::TargetItem{KeyAttribute(sibling)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
    if (!resp.records.empty() && !OverlapDeclared(subtype, sibling)) {
      return Status::ConstraintViolation(
          "STORE " + std::string(subtype) + ": entity '" + owner_key +
          "' already belongs to subtype '" + sibling +
          "' and no OVERLAP constraint permits sharing");
    }
  }
  return Status::OK();
}

// --- Statement handlers ---

Result<DmlResult> DmlMachine::Move(const codasyl::MoveStatement& s) {
  MLDS_RETURN_IF_ERROR(RequireRecord(s.record).status());
  uwa_.Move(s.record, s.item, s.value);
  DmlResult result;
  result.info = "UWA " + s.record + "." + s.item + " set";
  return result;
}

Result<DmlResult> DmlMachine::FindAny(const codasyl::FindAnyStatement& s) {
  MLDS_RETURN_IF_ERROR(RequireRecord(s.record).status());
  std::vector<Predicate> preds = {
      EqStr(std::string(abdm::kFileAttribute), s.record)};
  for (const auto& item : s.items) {
    auto value = uwa_.Get(s.record, item);
    if (!value.has_value()) {
      return Status::CurrencyError("FIND ANY: UWA item '" + item + "' of '" +
                                   s.record + "' has no value; MOVE one first");
    }
    preds.push_back(Eq(item, *value));
  }
  RetrieveRequest req = RetrieveAll(Query::And(std::move(preds)));
  req.by_attribute = s.record;  // BY record_type_x (Ch. VI.B.1).
  MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(req));
  if (resp.records.empty()) {
    return Status::NotFound("FIND ANY " + s.record + ": no record satisfies "
                            "the UWA values");
  }
  SortByKey(s.record, &resp.records);
  auto& buffer = rb_.Load(s.record, std::move(resp.records));
  buffer.cursor = 0;
  // RETAINING: snapshot the named set currencies and restore them after
  // the currency update.
  std::vector<std::pair<std::string, codasyl::SetCurrency>> retained;
  for (const auto& set_name : s.retaining) {
    MLDS_RETURN_IF_ERROR(RequireSet(set_name).status());
    const codasyl::SetCurrency* currency = cit_.CurrentOfSet(set_name);
    retained.emplace_back(set_name, currency != nullptr
                                        ? *currency
                                        : codasyl::SetCurrency{});
  }
  UpdateCurrencies(s.record, buffer.records[0]);
  for (auto& [set_name, currency] : retained) {
    cit_.SetCurrentOfSet(set_name, std::move(currency));
  }
  DmlResult result;
  result.records = {buffer.records[0]};
  return result;
}

Result<DmlResult> DmlMachine::FindCurrent(
    const codasyl::FindCurrentStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const SetType* set, RequireSet(s.set));
  MLDS_RETURN_IF_ERROR(RequireMemberOf(*set, s.record));
  const codasyl::SetCurrency* currency = cit_.CurrentOfSet(s.set);
  if (currency == nullptr || currency->member_dbkey.empty()) {
    return Status::CurrencyError("FIND CURRENT: set '" + s.set +
                                 "' has no current member record");
  }
  // The only function of this statement is to update CIT (Ch. VI.B.2):
  // the current of the run-unit becomes the current member of the set.
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> records,
                        FetchByKey(s.record, currency->member_dbkey));
  if (records.empty()) {
    return Status::NotFound("FIND CURRENT: current member of '" + s.set +
                            "' no longer exists");
  }
  UpdateCurrencies(s.record, records[0]);
  DmlResult result;
  result.records = {records[0]};
  return result;
}

Result<DmlResult> DmlMachine::FindDuplicate(
    const codasyl::FindDuplicateStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const SetType* set, RequireSet(s.set));
  MLDS_RETURN_IF_ERROR(RequireMemberOf(*set, s.record));
  // The requested records are assumed resident in RB from a prior FIND
  // (Ch. VI.B.3); fall back to the record type's buffer from FIND ANY.
  codasyl::RequestBuffer::Buffer* buffer = rb_.Find(s.set);
  if (buffer == nullptr) buffer = rb_.Find(s.record);
  if (buffer == nullptr) {
    return Status::CurrencyError(
        "FIND DUPLICATE: no request buffer for set '" + s.set +
        "'; issue a FIND within the set first");
  }
  const codasyl::SetCurrency* currency = cit_.CurrentOfSet(s.set);
  std::string current_key =
      currency != nullptr ? currency->member_dbkey : "";
  if (current_key.empty() && cit_.run_unit().has_value()) {
    current_key = cit_.run_unit()->dbkey;
  }
  if (current_key.empty()) {
    return Status::CurrencyError("FIND DUPLICATE: set '" + s.set +
                                 "' has no current record");
  }
  // Values to match: the current record of the set.
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> current_records,
                        FetchByKey(s.record, current_key));
  if (current_records.empty()) {
    return Status::NotFound("FIND DUPLICATE: current record vanished");
  }
  const Record& current = current_records[0];
  for (int i = buffer->cursor + 1;
       i < static_cast<int>(buffer->records.size()); ++i) {
    const Record& candidate = buffer->records[i];
    if (KeyOf(s.record, candidate) == current_key) continue;
    bool all_match = true;
    for (const auto& item : s.items) {
      if (candidate.GetOrNull(item) != current.GetOrNull(item)) {
        all_match = false;
        break;
      }
    }
    if (all_match) {
      buffer->cursor = i;
      UpdateCurrencies(s.record, candidate);
      DmlResult result;
      result.records = {candidate};
      return result;
    }
  }
  return Status::NotFound("FIND DUPLICATE: no further duplicate within '" +
                          s.set + "'");
}

Result<DmlResult> DmlMachine::FindPositional(
    const codasyl::FindPositionalStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const SetType* set, RequireSet(s.set));
  MLDS_RETURN_IF_ERROR(RequireMemberOf(*set, s.record));

  codasyl::RequestBuffer::Buffer* buffer = rb_.Find(s.set);
  const bool reload = s.position == FindPosition::kFirst ||
                      s.position == FindPosition::kLast ||
                      buffer == nullptr;
  if (reload) {
    MLDS_ASSIGN_OR_RETURN(std::vector<Record> members,
                          FetchSetMembers(*set, s.record));
    buffer = &rb_.Load(s.set, std::move(members));
  }
  if (buffer->records.empty()) {
    return Status::NotFound("set '" + s.set + "' occurrence has no member "
                            "records");
  }
  int index = buffer->cursor;
  switch (s.position) {
    case FindPosition::kFirst:
      index = 0;
      break;
    case FindPosition::kLast:
      index = static_cast<int>(buffer->records.size()) - 1;
      break;
    case FindPosition::kNext:
      index = buffer->cursor + 1;
      break;
    case FindPosition::kPrior:
      index = buffer->cursor - 1;
      break;
  }
  if (index < 0 || index >= static_cast<int>(buffer->records.size())) {
    return Status::NotFound("FIND " +
                            std::string(FindPositionToString(s.position)) +
                            ": end of set '" + s.set + "'");
  }
  buffer->cursor = index;
  const Record& found = buffer->records[index];
  UpdateCurrencies(s.record, found);
  // Keep the set currency pinned to this set occurrence.
  if (!set->IsSystemOwned()) {
    const codasyl::SetCurrency* currency = cit_.CurrentOfSet(s.set);
    if (currency == nullptr || currency->member_dbkey.empty()) {
      cit_.SetSetMember(s.set, KeyOf(s.record, found));
    }
  }
  DmlResult result;
  result.records = {found};
  return result;
}

Result<DmlResult> DmlMachine::FindOwner(const codasyl::FindOwnerStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const SetType* set, RequireSet(s.set));
  if (set->IsSystemOwned()) {
    return Status::InvalidArgument("FIND OWNER: set '" + s.set +
                                   "' is owned by SYSTEM");
  }
  MLDS_ASSIGN_OR_RETURN(std::string owner_key, RequireSetOwner(s.set));
  // RETRIEVE ((FILE = owner) AND (owner = CIT.set.owner.dbkey)) (Ch. VI.B.5).
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> owners,
                        FetchByKey(set->owner, owner_key));
  if (owners.empty()) {
    return Status::NotFound("FIND OWNER: owner record '" + owner_key +
                            "' not found");
  }
  UpdateCurrencies(set->owner, owners[0]);
  DmlResult result;
  result.records = {owners[0]};
  return result;
}

Result<DmlResult> DmlMachine::FindWithinCurrent(
    const codasyl::FindWithinCurrentStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const SetType* set, RequireSet(s.set));
  MLDS_RETURN_IF_ERROR(RequireMemberOf(*set, s.record));
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> members,
                        FetchSetMembers(*set, s.record));
  // Filter by the UWA values (FIND WITHIN CURRENT uses UWA where FIND
  // DUPLICATE uses the current of set, Ch. VI.B.6).
  std::vector<Record> matching;
  for (const Record& candidate : members) {
    bool all_match = true;
    for (const auto& item : s.items) {
      auto expected = uwa_.Get(s.record, item);
      if (!expected.has_value()) {
        return Status::CurrencyError("FIND WITHIN CURRENT: UWA item '" + item +
                                     "' has no value; MOVE one first");
      }
      if (candidate.GetOrNull(item) != *expected) {
        all_match = false;
        break;
      }
    }
    if (all_match) matching.push_back(candidate);
  }
  if (matching.empty()) {
    return Status::NotFound("FIND WITHIN CURRENT: no member of '" + s.set +
                            "' matches the UWA values");
  }
  auto& buffer = rb_.Load(s.set, std::move(matching));
  buffer.cursor = 0;
  UpdateCurrencies(s.record, buffer.records[0]);
  DmlResult result;
  result.records = {buffer.records[0]};
  return result;
}

Result<DmlResult> DmlMachine::Get(const codasyl::GetStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const codasyl::RunUnitCurrency* ru, RequireRunUnit(""));
  DmlResult result;
  switch (s.kind) {
    case codasyl::GetStatement::Kind::kAll: {
      uwa_.Deliver(ru->record_type, ru->record);
      result.records = {ru->record};
      return result;
    }
    case codasyl::GetStatement::Kind::kRecord: {
      if (ru->record_type != s.record) {
        return Status::CurrencyError("GET " + s.record +
                                     ": current of run-unit is of type '" +
                                     ru->record_type + "'");
      }
      uwa_.Deliver(s.record, ru->record);
      result.records = {ru->record};
      return result;
    }
    case codasyl::GetStatement::Kind::kItems: {
      if (ru->record_type != s.record) {
        return Status::CurrencyError("GET ... IN " + s.record +
                                     ": current of run-unit is of type '" +
                                     ru->record_type + "'");
      }
      Record projected;
      for (const auto& item : s.items) {
        projected.Set(item, ru->record.GetOrNull(item));
      }
      uwa_.Deliver(s.record, projected);
      result.records = {std::move(projected)};
      return result;
    }
  }
  return Status::Internal("unreachable GET kind");
}

Result<DmlMachine::BuiltStore> DmlMachine::BuildStoreRecord(
    const network::RecordType& rt) {
  const std::string& name = rt.name;
  MLDS_ASSIGN_OR_RETURN(std::string dbkey, AllocateDbKey(name));

  Record record;
  record.Set(std::string(abdm::kFileAttribute), Value::String(name));
  record.Set(KeyAttribute(name), Value::String(dbkey));
  for (const auto& attr : rt.attributes) {
    auto value = uwa_.Get(name, attr.name);
    if (value.has_value()) record.Set(attr.name, *value);
  }

  // Duplicates condition (Ch. VI.G factor 3).
  MLDS_RETURN_IF_ERROR(CheckDuplicates(rt, record));

  // Set membership. Automatic sets connect now; manual member-side sets
  // start unattached (NULL). SYSTEM sets contribute nothing.
  std::vector<std::pair<std::string, std::string>> connected;  // set, owner.
  for (const SetType* set : schema_->SetsWithMember(name)) {
    if (set->IsSystemOwned()) continue;
    if (IsOwnerSideOneToMany(set->name)) continue;  // lives on owner side.
    std::string owner_key;
    auto uwa_value = uwa_.Get(name, SetAttribute(set->name));
    if (uwa_value.has_value() && uwa_value->is_string()) {
      owner_key = uwa_value->AsString();
    } else if (set->selection.mode == network::SelectionMode::kValue) {
      // SET SELECTION IS BY VALUE OF item IN owner-record: the owner
      // occurrence is the one whose item equals the UWA value of that
      // item (one auxiliary RETRIEVE).
      auto select_value =
          uwa_.Get(set->selection.record1_name, set->selection.item_name);
      if (select_value.has_value()) {
        RetrieveRequest probe;
        probe.query = Query::And(
            {EqStr(std::string(abdm::kFileAttribute), set->owner),
             Eq(set->selection.item_name, *select_value)});
        probe.targets = {abdl::TargetItem{KeyAttribute(set->owner)}};
        MLDS_ASSIGN_OR_RETURN(kds::Response owners, Issue(probe));
        if (owners.records.size() == 1) {
          owner_key = owners.records[0]
                          .GetOrNull(KeyAttribute(set->owner))
                          .ToDisplayString();
        } else if (owners.records.size() > 1) {
          return Status::CurrencyError(
              "STORE " + name + ": BY VALUE selection of set '" +
              set->name + "' is ambiguous (" +
              std::to_string(owners.records.size()) + " owners match)");
        }
      }
    } else if (const codasyl::SetCurrency* currency =
                   cit_.CurrentOfSet(set->name);
               currency != nullptr && !currency->owner_dbkey.empty()) {
      owner_key = currency->owner_dbkey;
    }
    if (set->insertion == network::InsertionMode::kAutomatic) {
      // STORE requires the pertinent automatic sets to have a current
      // occurrence (set selection is BY APPLICATION, Ch. VI.G).
      if (owner_key.empty()) {
        return Status::CurrencyError(
            "STORE " + name + ": automatic set '" + set->name +
            "' has no current owner; FIND the owner or MOVE its key");
      }
      const SetInfo* info = SetInfoOf(set->name);
      if (info != nullptr && info->origin == SetOrigin::kIsa) {
        MLDS_RETURN_IF_ERROR(CheckOverlap(name, set->name, owner_key));
      }
      record.Set(SetAttribute(set->name), Value::String(owner_key));
      connected.emplace_back(set->name, owner_key);
    } else {
      // Manual set: honour an explicitly MOVEd owner key, else NULL.
      if (!owner_key.empty() && uwa_value.has_value()) {
        record.Set(SetAttribute(set->name), Value::String(owner_key));
        connected.emplace_back(set->name, owner_key);
      } else {
        record.Set(SetAttribute(set->name), Value::Null());
      }
    }
  }
  return BuiltStore{std::move(record), std::move(dbkey), std::move(connected)};
}

void DmlMachine::CommitStoreCurrencies(std::string_view record_type,
                                       const BuiltStore& built) {
  UpdateCurrencies(record_type, built.record);
  for (const auto& [set_name, owner_key] : built.connected) {
    cit_.SetCurrentOfSet(set_name,
                         codasyl::SetCurrency{owner_key, built.dbkey});
  }
}

Result<DmlResult> DmlMachine::Store(const codasyl::StoreStatement& s) {
  if (s.parameterized()) {
    return Status::InvalidArgument(
        "STORE " + s.record + ": parameter markers ('?') require the batch "
        "interface, which binds one value per marker per row");
  }
  MLDS_ASSIGN_OR_RETURN(const network::RecordType* rt, RequireRecord(s.record));
  // Inline assignments are per-item MOVEs folded into the STORE.
  for (const auto& a : s.assignments) {
    uwa_.Move(s.record, a.item, a.value);
  }
  MLDS_ASSIGN_OR_RETURN(BuiltStore built, BuildStoreRecord(*rt));
  MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                        Issue(InsertRequest{built.record}));
  (void)resp;
  CommitStoreCurrencies(s.record, built);
  DmlResult result;
  result.info = "stored " + built.dbkey;
  result.records = {std::move(built.record)};
  return result;
}

Result<DmlResult> DmlMachine::Connect(const codasyl::ConnectStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const codasyl::RunUnitCurrency* ru,
                        RequireRunUnit(s.record));
  const std::string run_key = ru->dbkey;
  DmlResult result;
  for (const auto& set_name : s.sets) {
    MLDS_ASSIGN_OR_RETURN(const SetType* set, RequireSet(set_name));
    MLDS_RETURN_IF_ERROR(RequireMemberOf(*set, s.record));
    if (set->insertion != network::InsertionMode::kManual) {
      // Sets with an insertion clause of automatic cannot be used in
      // CONNECT statements (Ch. VI.D.1).
      return Status::ConstraintViolation(
          "CONNECT: set '" + set_name +
          "' has AUTOMATIC insertion and cannot be connected manually");
    }
    MLDS_ASSIGN_OR_RETURN(std::string owner_key, RequireSetOwner(set_name));

    if (IsOwnerSideOneToMany(set_name)) {
      // Ch. VI.D.2.a: the information resides in the owner record(s).
      MLDS_ASSIGN_OR_RETURN(
          kds::Response owners,
          Issue(RetrieveAll(Query::And(
              {EqStr(std::string(abdm::kFileAttribute), set->owner),
               EqStr(KeyAttribute(set->owner), owner_key)}))));
      if (owners.records.empty()) {
        return Status::NotFound("CONNECT: owner '" + owner_key +
                                "' of set '" + set_name + "' not found");
      }
      bool all_null = true;
      for (const Record& r : owners.records) {
        if (!r.GetOrNull(SetAttribute(set_name)).is_null()) {
          all_null = false;
          break;
        }
      }
      if (all_null) {
        // Cases (1)-(2): replace the null value in every owner record
        // (all scalar multi-valued duplicates update together).
        UpdateRequest update;
        update.query = Query::And(
            {EqStr(std::string(abdm::kFileAttribute), set->owner),
             EqStr(KeyAttribute(set->owner), owner_key)});
        update.modifier = Modifier{SetAttribute(set_name), ModifierKind::kSet,
                                   Value::String(run_key)};
        MLDS_ASSIGN_OR_RETURN(kds::Response r, Issue(update));
        (void)r;
      } else {
        // Cases (3)-(4): insert duplicated owner records whose set
        // keyword names the new member; one per distinct existing base
        // record so the scalar multi-valued cross product is preserved.
        std::set<std::string> seen;
        for (const Record& r : owners.records) {
          Record base = r;
          base.Set(SetAttribute(set_name), Value::String(run_key));
          const std::string signature = base.ToString();
          if (!seen.insert(signature).second) continue;
          MLDS_ASSIGN_OR_RETURN(kds::Response ins, Issue(InsertRequest{base}));
          (void)ins;
        }
      }
    } else {
      // Ch. VI.D.2.b: the member record's set keyword takes the owner's
      // database key.
      UpdateRequest update;
      update.query =
          Query::And({EqStr(std::string(abdm::kFileAttribute), s.record),
                      EqStr(KeyAttribute(s.record), run_key)});
      update.modifier = Modifier{SetAttribute(set_name), ModifierKind::kSet,
                                 Value::String(owner_key)};
      MLDS_ASSIGN_OR_RETURN(kds::Response r, Issue(update));
      if (r.affected == 0) {
        return Status::NotFound("CONNECT: current of run-unit '" + run_key +
                                "' not found in file '" + s.record + "'");
      }
    }
    cit_.SetCurrentOfSet(set_name, codasyl::SetCurrency{owner_key, run_key});
  }
  // Refresh the cached run-unit copy.
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> refreshed,
                        FetchByKey(s.record, run_key));
  if (!refreshed.empty()) {
    cit_.SetRunUnit(s.record, run_key, refreshed[0]);
  }
  result.info = "connected " + run_key;
  return result;
}

Result<DmlResult> DmlMachine::Disconnect(
    const codasyl::DisconnectStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const codasyl::RunUnitCurrency* ru,
                        RequireRunUnit(s.record));
  const std::string run_key = ru->dbkey;
  DmlResult result;
  for (const auto& set_name : s.sets) {
    MLDS_ASSIGN_OR_RETURN(const SetType* set, RequireSet(set_name));
    MLDS_RETURN_IF_ERROR(RequireMemberOf(*set, s.record));
    if (set->retention != network::RetentionMode::kOptional) {
      // Fixed/mandatory retention forbids detaching members (Ch. V.F).
      return Status::ConstraintViolation(
          "DISCONNECT: set '" + set_name +
          "' retention is not OPTIONAL; members cannot be disconnected");
    }
    MLDS_ASSIGN_OR_RETURN(std::string owner_key, RequireSetOwner(set_name));

    if (IsOwnerSideOneToMany(set_name)) {
      // Ch. VI.E: singleton function set -> null out; multiple members ->
      // delete the duplicated owner records naming this member.
      MLDS_ASSIGN_OR_RETURN(
          kds::Response owners,
          Issue(RetrieveAll(Query::And(
              {EqStr(std::string(abdm::kFileAttribute), set->owner),
               EqStr(KeyAttribute(set->owner), owner_key)}))));
      std::set<std::string> members;
      for (const Record& r : owners.records) {
        Value v = r.GetOrNull(SetAttribute(set_name));
        if (v.is_string()) members.insert(v.AsString());
      }
      if (members.count(run_key) == 0) {
        return Status::NotFound("DISCONNECT: '" + run_key +
                                "' is not connected to set '" + set_name +
                                "'");
      }
      if (members.size() == 1) {
        UpdateRequest update;
        update.query = Query::And(
            {EqStr(std::string(abdm::kFileAttribute), set->owner),
             EqStr(KeyAttribute(set->owner), owner_key)});
        update.modifier = Modifier{SetAttribute(set_name), ModifierKind::kSet,
                                   Value::Null()};
        MLDS_ASSIGN_OR_RETURN(kds::Response r, Issue(update));
        (void)r;
      } else {
        DeleteRequest del;
        del.query = Query::And(
            {EqStr(std::string(abdm::kFileAttribute), set->owner),
             EqStr(KeyAttribute(set->owner), owner_key),
             EqStr(SetAttribute(set_name), run_key)});
        MLDS_ASSIGN_OR_RETURN(kds::Response r, Issue(del));
        (void)r;
      }
    } else {
      // Member-side: null out the member's set keyword (Ch. VI.E).
      UpdateRequest update;
      update.query =
          Query::And({EqStr(std::string(abdm::kFileAttribute), s.record),
                      EqStr(KeyAttribute(s.record), run_key),
                      EqStr(SetAttribute(set_name), owner_key)});
      update.modifier = Modifier{SetAttribute(set_name), ModifierKind::kSet,
                                 Value::Null()};
      MLDS_ASSIGN_OR_RETURN(kds::Response r, Issue(update));
      if (r.affected == 0) {
        return Status::NotFound("DISCONNECT: '" + run_key +
                                "' is not connected to '" + set_name +
                                "' under owner '" + owner_key + "'");
      }
    }
    cit_.SetSetMember(set_name, "");
  }
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> refreshed,
                        FetchByKey(s.record, run_key));
  if (!refreshed.empty()) {
    cit_.SetRunUnit(s.record, run_key, refreshed[0]);
  }
  result.info = "disconnected " + run_key;
  return result;
}

Result<DmlResult> DmlMachine::Reconnect(const codasyl::ReconnectStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const codasyl::RunUnitCurrency* ru,
                        RequireRunUnit(s.record));
  const std::string run_key = ru->dbkey;
  DmlResult result;
  for (const auto& set_name : s.sets) {
    MLDS_ASSIGN_OR_RETURN(const SetType* set, RequireSet(set_name));
    MLDS_RETURN_IF_ERROR(RequireMemberOf(*set, s.record));
    if (set->retention == network::RetentionMode::kFixed) {
      // FIXED retention pins a member to its original owner forever.
      return Status::ConstraintViolation(
          "RECONNECT: set '" + set_name +
          "' retention is FIXED; members cannot change owners");
    }
    MLDS_ASSIGN_OR_RETURN(std::string owner_key, RequireSetOwner(set_name));

    if (IsOwnerSideOneToMany(set_name)) {
      // Owner-side representation: remove the member from any previous
      // owner's duplicated records, then connect to the current owner.
      MLDS_ASSIGN_OR_RETURN(
          kds::Response old_owners,
          Issue(RetrieveAll(Query::And(
              {EqStr(std::string(abdm::kFileAttribute), set->owner),
               EqStr(SetAttribute(set_name), run_key)}))));
      for (const Record& r : old_owners.records) {
        const std::string old_key = KeyOf(set->owner, r);
        if (old_key == owner_key) continue;
        // Count that owner's remaining members to pick null-out vs delete.
        MLDS_ASSIGN_OR_RETURN(
            kds::Response copies,
            Issue(RetrieveAll(Query::And(
                {EqStr(std::string(abdm::kFileAttribute), set->owner),
                 EqStr(KeyAttribute(set->owner), old_key)}))));
        std::set<std::string> members;
        for (const Record& copy : copies.records) {
          Value v = copy.GetOrNull(SetAttribute(set_name));
          if (v.is_string()) members.insert(v.AsString());
        }
        if (members.size() <= 1) {
          UpdateRequest update;
          update.query = Query::And(
              {EqStr(std::string(abdm::kFileAttribute), set->owner),
               EqStr(KeyAttribute(set->owner), old_key)});
          update.modifier = Modifier{SetAttribute(set_name),
                                     ModifierKind::kSet, Value::Null()};
          MLDS_ASSIGN_OR_RETURN(kds::Response u, Issue(update));
          (void)u;
        } else {
          DeleteRequest del;
          del.query = Query::And(
              {EqStr(std::string(abdm::kFileAttribute), set->owner),
               EqStr(KeyAttribute(set->owner), old_key),
               EqStr(SetAttribute(set_name), run_key)});
          MLDS_ASSIGN_OR_RETURN(kds::Response d, Issue(del));
          (void)d;
        }
      }
      // Connect to the new owner (null keyword -> UPDATE, else duplicate).
      MLDS_ASSIGN_OR_RETURN(
          kds::Response owners,
          Issue(RetrieveAll(Query::And(
              {EqStr(std::string(abdm::kFileAttribute), set->owner),
               EqStr(KeyAttribute(set->owner), owner_key)}))));
      bool all_null = true;
      for (const Record& r : owners.records) {
        if (!r.GetOrNull(SetAttribute(set_name)).is_null()) {
          all_null = false;
          break;
        }
      }
      if (all_null) {
        UpdateRequest update;
        update.query = Query::And(
            {EqStr(std::string(abdm::kFileAttribute), set->owner),
             EqStr(KeyAttribute(set->owner), owner_key)});
        update.modifier = Modifier{SetAttribute(set_name), ModifierKind::kSet,
                                   Value::String(run_key)};
        MLDS_ASSIGN_OR_RETURN(kds::Response u, Issue(update));
        (void)u;
      } else {
        std::set<std::string> seen;
        for (const Record& r : owners.records) {
          Record base = r;
          base.Set(SetAttribute(set_name), Value::String(run_key));
          if (!seen.insert(base.ToString()).second) continue;
          MLDS_ASSIGN_OR_RETURN(kds::Response ins, Issue(InsertRequest{base}));
          (void)ins;
        }
      }
    } else {
      // Member-side: overwrite the member's set keyword with the new
      // owner's key — one UPDATE regardless of the previous owner.
      UpdateRequest update;
      update.query =
          Query::And({EqStr(std::string(abdm::kFileAttribute), s.record),
                      EqStr(KeyAttribute(s.record), run_key)});
      update.modifier = Modifier{SetAttribute(set_name), ModifierKind::kSet,
                                 Value::String(owner_key)};
      MLDS_ASSIGN_OR_RETURN(kds::Response r, Issue(update));
      if (r.affected == 0) {
        return Status::NotFound("RECONNECT: current of run-unit '" + run_key +
                                "' not found in file '" + s.record + "'");
      }
    }
    cit_.SetCurrentOfSet(set_name, codasyl::SetCurrency{owner_key, run_key});
  }
  MLDS_ASSIGN_OR_RETURN(std::vector<Record> refreshed,
                        FetchByKey(s.record, run_key));
  if (!refreshed.empty()) {
    cit_.SetRunUnit(s.record, run_key, refreshed[0]);
  }
  result.info = "reconnected " + run_key;
  return result;
}

Result<DmlResult> DmlMachine::Modify(const codasyl::ModifyStatement& s) {
  MLDS_ASSIGN_OR_RETURN(const network::RecordType* rt, RequireRecord(s.record));
  MLDS_ASSIGN_OR_RETURN(const codasyl::RunUnitCurrency* ru,
                        RequireRunUnit(s.record));
  const std::string run_key = ru->dbkey;

  std::vector<std::string> items = s.items;
  if (items.empty()) {
    // MODIFY record: every record attribute with a UWA value changes.
    for (const auto& attr : rt->attributes) {
      if (uwa_.Get(s.record, attr.name).has_value()) {
        items.push_back(attr.name);
      }
    }
    if (items.empty()) {
      return Status::InvalidArgument(
          "MODIFY " + s.record + ": no UWA values supplied; MOVE new values "
          "first");
    }
  }

  size_t modified = 0;
  Record updated = ru->record;
  for (const auto& item : items) {
    if (rt->FindAttribute(item) == nullptr) {
      return Status::InvalidArgument("MODIFY: '" + item +
                                     "' is not a data item of '" + s.record +
                                     "'");
    }
    auto value = uwa_.Get(s.record, item);
    if (!value.has_value()) {
      return Status::CurrencyError("MODIFY: UWA item '" + item +
                                   "' has no value; MOVE one first");
    }
    // UPDATE ((FILE = r) AND (r = run-unit dbkey)) (item = value), one
    // request per modified field (Ch. VI.F).
    UpdateRequest update;
    update.query =
        Query::And({EqStr(std::string(abdm::kFileAttribute), s.record),
                    EqStr(KeyAttribute(s.record), run_key)});
    update.modifier = Modifier{item, ModifierKind::kSet, *value};
    MLDS_ASSIGN_OR_RETURN(kds::Response r, Issue(update));
    modified += r.affected;
    updated.Set(item, *value);
  }
  cit_.SetRunUnit(s.record, run_key, updated);
  DmlResult result;
  result.info = "modified " + std::to_string(items.size()) + " item(s) of " +
                run_key;
  result.records = {std::move(updated)};
  (void)modified;
  return result;
}

Result<DmlResult> DmlMachine::Erase(const codasyl::EraseStatement& s) {
  if (s.all) {
    // The CODASYL ERASE ALL constraints clash with the Daplex DESTROY
    // constraints, so the statement is not translated (Ch. VI.H.2); the
    // same effect is obtained by repeated ERASE statements.
    return Status::Unimplemented(
        "ERASE ALL is not translated: CODASYL and Daplex deletion "
        "constraints conflict (thesis Ch. VI.H.2); use repeated ERASE");
  }
  MLDS_RETURN_IF_ERROR(RequireRecord(s.record).status());
  MLDS_ASSIGN_OR_RETURN(const codasyl::RunUnitCurrency* ru,
                        RequireRunUnit(s.record));
  const std::string run_key = ru->dbkey;

  // CODASYL constraint: the record may not own a non-null set occurrence.
  for (const SetType* set : schema_->SetsWithOwner(s.record)) {
    if (IsOwnerSideOneToMany(set->name)) {
      // Members are recorded in this record's own duplicated copies.
      MLDS_ASSIGN_OR_RETURN(std::vector<Record> copies,
                            FetchByKey(s.record, run_key));
      for (const Record& copy : copies) {
        if (!copy.GetOrNull(SetAttribute(set->name)).is_null()) {
          return Status::Aborted("ERASE " + s.record + ": record owns a "
                                 "non-null occurrence of set '" + set->name +
                                 "'");
        }
      }
      continue;
    }
    for (const auto& member : set->members) {
      RetrieveRequest probe;
      probe.query =
          Query::And({EqStr(std::string(abdm::kFileAttribute), member),
                      EqStr(SetAttribute(set->name), run_key)});
      probe.targets = {abdl::TargetItem{SetAttribute(set->name)}};
      MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
      if (!resp.records.empty()) {
        return Status::Aborted("ERASE " + s.record + ": record owns a "
                               "non-null occurrence of set '" + set->name +
                               "'");
      }
    }
  }

  // Daplex constraint: an entity referenced by a database function cannot
  // be destroyed. References live in owner-side duplicated records of
  // one-to-many function sets in which this record type is the member.
  for (const SetType* set : schema_->SetsWithMember(s.record)) {
    if (!IsOwnerSideOneToMany(set->name)) continue;
    RetrieveRequest probe;
    probe.query =
        Query::And({EqStr(std::string(abdm::kFileAttribute), set->owner),
                    EqStr(SetAttribute(set->name), run_key)});
    probe.targets = {abdl::TargetItem{SetAttribute(set->name)}};
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(probe));
    if (!resp.records.empty()) {
      return Status::Aborted("ERASE " + s.record + ": entity is referenced "
                             "through Daplex function set '" + set->name +
                             "'");
    }
  }

  // DELETE ((FILE = r) AND (r = run-unit dbkey)) — removes every
  // duplicated AB record of the entity.
  DeleteRequest del;
  del.query = Query::And({EqStr(std::string(abdm::kFileAttribute), s.record),
                          EqStr(KeyAttribute(s.record), run_key)});
  MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(del));
  cit_.ClearRunUnit();
  DmlResult result;
  result.info = "erased " + run_key + " (" + std::to_string(resp.affected) +
                " kernel record(s))";
  return result;
}

/// WALK level fan-out above which the owner side of the fused join is a
/// full-file scan (page-grouped block fetches) rather than one equality
/// disjunct per reached key (one scattered block probe each).
constexpr size_t kWalkProbeLimit = 64;

Result<DmlResult> DmlMachine::Walk(const codasyl::WalkStatement& s) {
  // Resolve and validate the chain: every level is a member-side set
  // (the member record carries the owner's dbkey in the set keyword, so
  // one RETRIEVE-COMMON joins the two files), and the member type of
  // each set is the owner type of the next.
  std::vector<const SetType*> chain;
  chain.reserve(s.sets.size());
  for (const std::string& name : s.sets) {
    MLDS_ASSIGN_OR_RETURN(const SetType* set, RequireSet(name));
    if (set->IsSystemOwned()) {
      return Status::InvalidArgument(
          "WALK: set '" + name + "' is SYSTEM-owned; membership is implied "
          "by the FILE keyword and needs no traversal");
    }
    if (IsOwnerSideOneToMany(name)) {
      return Status::InvalidArgument(
          "WALK: set '" + name + "' is an owner-side function set; only "
          "member-side sets lower to a fused JOIN");
    }
    if (set->members.size() != 1) {
      return Status::InvalidArgument(
          "WALK: set '" + name + "' has " +
          std::to_string(set->members.size()) +
          " member types; WALK requires exactly one per level");
    }
    if (!chain.empty() && chain.back()->members[0] != set->owner) {
      return Status::InvalidArgument(
          "WALK: set '" + name + "' is owned by '" + set->owner +
          "' but the previous level ends at '" + chain.back()->members[0] +
          "'");
    }
    chain.push_back(set);
  }

  // One fused RETRIEVE-COMMON per level — the member file joined with
  // the owner file on (set keyword = owner dbkey) — instead of one FIND
  // per owner occurrence. The member side is the LEFT side so merged
  // records keep the member's FILE keyword; riding-along owner keywords
  // are harmless (attribute names are per-record-type).
  std::vector<Record> current;
  std::vector<std::string> reachable;  // owner keys for the next level
  for (size_t level = 0; level < chain.size(); ++level) {
    const SetType& set = *chain[level];
    const std::string& member = set.members[0];
    abdl::RetrieveCommonRequest req;
    req.left_query =
        Query::And({EqStr(std::string(abdm::kFileAttribute), member)});
    req.left_attribute = SetAttribute(set.name);
    if (level == 0) {
      req.right_query =
          Query::And({EqStr(std::string(abdm::kFileAttribute), set.owner)});
    } else {
      if (reachable.empty()) {
        current.clear();
        break;
      }
      if (reachable.size() > kWalkProbeLimit) {
        // Wide level: each per-key disjunct costs one scattered block
        // probe, so past this fan-out a page-grouped scan of the whole
        // owner file is cheaper. Reachability still prunes, below — the
        // member side carries the owner dbkey in the set keyword.
        req.right_query =
            Query::And({EqStr(std::string(abdm::kFileAttribute), set.owner)});
      } else {
        // Sparse level: restrict the owner side to the records reached
        // so far — one disjunct per key, still a single kernel request.
        std::vector<Conjunction> disjuncts;
        disjuncts.reserve(reachable.size());
        for (const std::string& key : reachable) {
          disjuncts.push_back(Conjunction{
              {EqStr(std::string(abdm::kFileAttribute), set.owner),
               EqStr(KeyAttribute(set.owner), key)}});
        }
        req.right_query = Query(std::move(disjuncts));
      }
    }
    req.right_attribute = KeyAttribute(set.owner);
    MLDS_ASSIGN_OR_RETURN(kds::Response resp, Issue(std::move(req)));
    current = std::move(resp.records);
    if (level > 0 && reachable.size() > kWalkProbeLimit) {
      // The owner side ran unrestricted; drop members whose owner was
      // never reached so the chain's pruning semantics are unchanged.
      const std::unordered_set<std::string> reached(reachable.begin(),
                                                    reachable.end());
      const std::string set_attr = SetAttribute(set.name);
      std::erase_if(current, [&](const Record& r) {
        Value owner_key = r.GetOrNull(set_attr);
        return !owner_key.is_string() ||
               reached.count(owner_key.AsString()) == 0;
      });
    }
    std::set<std::string> keys;
    for (const Record& r : current) {
      Value key = r.GetOrNull(KeyAttribute(member));
      if (key.is_string()) keys.insert(key.AsString());
    }
    reachable.assign(keys.begin(), keys.end());
  }

  SortByKey(chain.back()->members[0], &current);
  DmlResult result;
  result.info = "walked " + std::to_string(chain.size()) + " set(s): " +
                std::to_string(current.size()) + " record(s)";
  result.records = std::move(current);
  return result;
}

}  // namespace mlds::kms
