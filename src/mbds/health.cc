#include "mbds/health.h"

namespace mlds::mbds {

std::string_view BackendHealthName(BackendHealth state) {
  switch (state) {
    case BackendHealth::kHealthy:
      return "healthy";
    case BackendHealth::kSuspect:
      return "suspect";
    case BackendHealth::kQuarantined:
      return "quarantined";
    case BackendHealth::kReintegrating:
      return "reintegrating";
  }
  return "unknown";
}

void HealthTracker::OnSuccess() {
  std::lock_guard<std::mutex> lock(mutex_);
  consecutive_failures_ = 0;
  if (state_ == BackendHealth::kSuspect ||
      state_ == BackendHealth::kReintegrating) {
    state_ = BackendHealth::kHealthy;
  }
}

BackendHealth HealthTracker::OnFailure(std::string detail, bool fatal) {
  std::lock_guard<std::mutex> lock(mutex_);
  last_fault_ = std::move(detail);
  ++consecutive_failures_;
  if (fatal || consecutive_failures_ >= policy_.quarantine_after) {
    if (state_ != BackendHealth::kQuarantined) {
      state_ = BackendHealth::kQuarantined;
      ++quarantines_;
      missed_requests_ = 0;
    }
  } else if (state_ == BackendHealth::kHealthy) {
    state_ = BackendHealth::kSuspect;
  }
  return state_;
}

bool HealthTracker::OnQuarantinedRequest() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BackendHealth::kQuarantined) return false;
  ++missed_requests_;
  return missed_requests_ >=
         static_cast<uint64_t>(policy_.reintegrate_after);
}

bool HealthTracker::BeginReintegration() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BackendHealth::kQuarantined) return false;
  state_ = BackendHealth::kReintegrating;
  return true;
}

void HealthTracker::FinishReintegration(bool success) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BackendHealth::kReintegrating) return;
  if (success) {
    state_ = BackendHealth::kHealthy;
    consecutive_failures_ = 0;
  } else {
    state_ = BackendHealth::kQuarantined;
    missed_requests_ = 0;
  }
}

}  // namespace mlds::mbds
