#include "mbds/controller.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "abdl/parser.h"
#include "common/strings.h"
#include "kds/join.h"
#include "kds/planner.h"
#include "kds/snapshot.h"

namespace mlds::mbds {

namespace {

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Mutations are what the per-backend write-ahead logs record: a
/// quarantined backend must replay them before it can rejoin.
bool IsMutationRequest(const abdl::Request& request) {
  return std::holds_alternative<abdl::InsertRequest>(request) ||
         std::holds_alternative<abdl::BatchInsertRequest>(request) ||
         std::holds_alternative<abdl::DeleteRequest>(request) ||
         std::holds_alternative<abdl::UpdateRequest>(request);
}

/// Appends `warning` unless an identical one is already present (a
/// transaction can hit the same quarantined backend once per statement).
void AppendWarning(std::vector<kds::PartialResultWarning>* warnings,
                   kds::PartialResultWarning warning) {
  for (const auto& existing : *warnings) {
    if (existing == warning) return;
  }
  warnings->push_back(std::move(warning));
}

/// Merges the per-backend plans of `parts` (backend id, response) into one
/// BACKEND MERGE node, children in backend-id order, each labelled with
/// its backend id so per-backend estimated vs. actual block counts stay
/// visible side by side in the merged tree.
kds::PlanNode MergeBackendPlans(
    const std::vector<std::pair<int, const kds::Response*>>& parts) {
  kds::PlanNode root;
  root.kind = kds::PlanNodeKind::kBackendMerge;
  root.label = std::to_string(parts.size()) + " backends";
  root.executed = true;
  root.children.reserve(parts.size());
  for (const auto& [id, response] : parts) {
    if (response->plan == nullptr) continue;
    kds::PlanNode child = *response->plan;
    std::string prefix = "backend " + std::to_string(id);
    child.label = child.label.empty() ? prefix : prefix + ": " + child.label;
    root.children.push_back(std::move(child));
  }
  root.est_rows = root.SumChildren(&kds::PlanNode::est_rows);
  root.est_blocks = root.SumChildren(&kds::PlanNode::est_blocks);
  root.actual_rows = root.SumChildren(&kds::PlanNode::actual_rows);
  root.actual_blocks = root.SumChildren(&kds::PlanNode::actual_blocks);
  return root;
}

/// Replays one controller-written WAL payload (REQUEST or DEFINE) into
/// `engine`. Failures are ignored: the engine is deterministic, so a
/// request that failed when first executed fails identically on replay.
void ReplayCatchupPayload(std::string_view payload, kds::Engine* engine) {
  constexpr std::string_view kRequest = "REQUEST ";
  constexpr std::string_view kDefine = "DEFINE ";
  constexpr std::string_view kIndex = "INDEX ";
  if (payload.starts_with(kRequest)) {
    auto request = abdl::ParseRequest(payload.substr(kRequest.size()));
    if (request.ok()) (void)engine->Execute(*request);
  } else if (payload.starts_with(kDefine)) {
    auto descriptor = kds::DecodeDefineFile(payload.substr(kDefine.size()));
    if (descriptor.ok()) (void)engine->DefineFile(*descriptor);
  } else if (payload.starts_with(kIndex)) {
    std::string_view body = payload.substr(kIndex.size());
    const size_t space = body.find(' ');
    if (space != std::string_view::npos) {
      (void)engine->CreateIndex(body.substr(0, space),
                                Trim(body.substr(space + 1)));
    }
  }
}

}  // namespace

/// Shared state of one fault-tolerant fan-out. Pool tasks write their own
/// slot under `mutex`; the dispatching thread waits on `cv` up to the
/// deadline. Held by shared_ptr so a task abandoned at the deadline can
/// still complete (and be ignored) after the dispatcher moved on.
struct Controller::FanoutState {
  std::mutex mutex;
  std::condition_variable cv;
  size_t completed = 0;
  std::vector<FanoutSlot> slots;
  std::vector<std::shared_ptr<Cancellation>> tokens;
  std::vector<FanoutJob> jobs;
};

Controller::Controller(MbdsOptions options) : options_(options) {
  const int n = std::max(1, options_.num_backends);
  backends_.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Each backend models its own dedicated disk: with persistent
    // storage configured, it gets its own subdirectory of the data dir.
    kds::EngineOptions engine_options = options_.engine;
    if (!engine_options.data_dir.empty()) {
      engine_options.data_dir += "/backend" + std::to_string(i);
    }
    backends_.push_back(std::make_unique<Backend>(
        i, std::move(engine_options), options_.fault_tolerance.health));
  }
  pool_ = std::make_unique<common::ThreadPool>(n);
  txn_pool_ = std::make_unique<common::ThreadPool>(n - 1);
  latency_scale_.store(options_.latency_scale, std::memory_order_relaxed);
}

Status Controller::RunParallel(size_t tasks,
                               const std::function<Status(size_t)>& fn) {
  std::vector<Status> statuses(tasks);
  pool_->ParallelFor(tasks, [&](size_t i) { statuses[i] = fn(i); });
  for (const Status& status : statuses) {
    MLDS_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

bool Controller::AdmitBackend(size_t i,
                              const std::vector<std::string>& wal_payloads,
                              std::vector<kds::PartialResultWarning>* warnings) {
  Backend& backend = *backends_[i];
  if (backend.available()) return true;
  // Recheck under the catch-up mutex: the skip decision and the catch-up
  // append must be atomic against a reintegration hand-off, or a mutation
  // could land in the log after the replay's final drain and be lost to
  // the rebuilt engine.
  std::lock_guard<std::mutex> lock(backend.catchup_mutex());
  if (backend.available()) return true;
  for (const std::string& payload : wal_payloads) {
    (void)backend.wal().Append(payload);
  }
  backend.health().OnQuarantinedRequest();
  if (warnings != nullptr) {
    AppendWarning(warnings,
                  kds::PartialResultWarning{
                      backend.id(),
                      std::string(BackendHealthName(backend.health().state())),
                      backend.health().last_fault()});
  }
  return false;
}

void Controller::MaybeReintegrate() {
  for (auto& backend : backends_) {
    if (backend->health().due_reintegration() &&
        backend->health().BeginReintegration()) {
      (void)ReintegrateBackend(*backend);
    }
  }
}

bool Controller::ReintegrateBackend(Backend& backend) {
  kds::WalWriter& wal = backend.wal();
  // The simulated crash may have left a torn frame at the tail; repair
  // also clears the crashed flag so catch-up appends are accepted again.
  wal.RepairTail();
  // The rebuild replays checkpoint + full log into an empty engine; any
  // page files the dead engine left behind must not be restored on top
  // of that (double-apply), so wipe the backend's storage first.
  if (!backend.engine_options().data_dir.empty()) {
    kds::WipeStorageDir(backend.engine_options().data_dir);
  }
  auto fresh = std::make_shared<kds::Engine>(backend.engine_options());
  std::string log = wal.contents();
  std::istringstream snapshot(backend.checkpoint());
  auto recovered = kds::RecoverEngine(snapshot, log, fresh.get());
  if (!recovered.ok()) {
    backend.health().FinishReintegration(false);
    return false;
  }
  size_t replayed = log.size();
  // Catch-up entries may race in while the replay runs. Drain them until
  // the log is fully applied, with the final check under the catch-up
  // mutex: the healthy transition then happens-after every append whose
  // skip decision saw this backend as unavailable.
  for (;;) {
    std::string delta;
    {
      std::lock_guard<std::mutex> lock(backend.catchup_mutex());
      if (wal.bytes() == replayed) {
        backend.ReplaceEngine(std::move(fresh));
        backend.health().FinishReintegration(true);
        return true;
      }
      delta = wal.contents().substr(replayed);
    }
    for (const kds::WalEntry& entry : kds::ScanWal(delta).entries) {
      ReplayCatchupPayload(entry.payload, fresh.get());
    }
    replayed += delta.size();
  }
}

Status Controller::DefineDatabase(const abdm::DatabaseDescriptor& db) {
  MaybeReintegrate();
  std::vector<std::string> payloads;
  payloads.reserve(db.files.size());
  for (const auto& file : db.files) {
    payloads.push_back(kds::EncodeDefineFile(file));
  }
  std::vector<size_t> participants;
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (!AdmitBackend(i, payloads, nullptr)) continue;
    for (const std::string& payload : payloads) {
      (void)backends_[i]->wal().Append(payload);
    }
    participants.push_back(i);
  }
  if (participants.empty()) {
    return Status::Unavailable("no available backends to define database '" +
                               db.name + "'");
  }
  // Definitions broadcast like any other request: the available backends
  // create the files concurrently. Errors are reported in backend-id
  // order so the result is deterministic.
  return RunParallel(participants.size(), [&](size_t k) {
    return backends_[participants[k]]->engine().DefineDatabase(db);
  });
}

Status Controller::DefineFile(const abdm::FileDescriptor& descriptor) {
  MaybeReintegrate();
  const std::vector<std::string> payloads = {
      kds::EncodeDefineFile(descriptor)};
  std::vector<size_t> participants;
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (!AdmitBackend(i, payloads, nullptr)) continue;
    (void)backends_[i]->wal().Append(payloads.front());
    participants.push_back(i);
  }
  if (participants.empty()) {
    return Status::Unavailable("no available backends to define file '" +
                               descriptor.name + "'");
  }
  return RunParallel(participants.size(), [&](size_t k) {
    return backends_[participants[k]]->engine().DefineFile(descriptor);
  });
}

Status Controller::CreateIndex(std::string_view file, std::string_view attr) {
  MaybeReintegrate();
  const std::vector<std::string> payloads = {
      "INDEX " + std::string(file) + " " + std::string(attr)};
  std::vector<size_t> participants;
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (!AdmitBackend(i, payloads, nullptr)) continue;
    (void)backends_[i]->wal().Append(payloads.front());
    participants.push_back(i);
  }
  if (participants.empty()) {
    return Status::Unavailable("no available backends to index '" +
                               std::string(file) + "." + std::string(attr) +
                               "'");
  }
  return RunParallel(participants.size(), [&](size_t k) {
    return backends_[participants[k]]->engine().CreateIndex(file, attr);
  });
}

bool Controller::HasFile(std::string_view file) const {
  for (const auto& backend : backends_) {
    if (backend->available()) return backend->engine().HasFile(file);
  }
  return backends_.front()->engine().HasFile(file);
}

Result<ExecutionReport> Controller::Execute(const abdl::Request& request) {
  MaybeReintegrate();
  Result<ExecutionReport> result =
      std::holds_alternative<abdl::InsertRequest>(request)
          ? ExecuteInsert(std::get<abdl::InsertRequest>(request))
      : std::holds_alternative<abdl::BatchInsertRequest>(request)
          ? ExecuteBatchInsert(std::get<abdl::BatchInsertRequest>(request))
          : ExecuteBroadcast(request);
  if (result.ok()) {
    total_response_ms_.fetch_add(result->response_time_ms,
                                 std::memory_order_relaxed);
  }
  return result;
}

Result<std::pair<kds::Response, double>> Controller::RunOnBackend(
    size_t i, const abdl::Request& request) {
  Backend& backend = *backends_[i];
  // Hold the engine for the duration: a concurrent reintegration swapping
  // in a rebuilt engine must not free the one this request runs against.
  std::shared_ptr<kds::Engine> engine = backend.SnapshotEngine();
  MLDS_ASSIGN_OR_RETURN(kds::Response resp, engine->Execute(request));
  const double ms = options_.disk.CostMs(resp.io);
  backend.AddBusyMs(ms);
  const double scale = latency_scale_.load(std::memory_order_relaxed);
  if (scale > 0.0 && ms > 0.0) {
    // Emulate the dedicated disk: the backend is not done until its disk
    // would be. Backends sleep concurrently on the pool, so a broadcast's
    // wall-clock cost is the slowest backend's latency, not the sum —
    // the physical behaviour behind the paper's response-time curves.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms * scale));
  }
  return std::make_pair(std::move(resp), ms);
}

Controller::FanoutSlot Controller::AttemptOnBackend(
    size_t i, const abdl::Request& request, Cancellation* cancel) {
  Backend& backend = *backends_[i];
  const FaultToleranceOptions& ft = options_.fault_tolerance;
  common::Backoff backoff(
      ft.backoff,
      request_seq_.fetch_add(1, std::memory_order_relaxed) * 1000003ull + i);
  const std::string who = "backend " + std::to_string(backend.id());

  FanoutSlot slot;
  for (int attempt = 0;; ++attempt) {
    slot.attempts = attempt + 1;
    if (cancel->cancelled()) {
      // The deadline passed while this job sat in the pool queue; do not
      // touch the engine (an abandoned mutation must not apply late).
      slot.timed_out = true;
      slot.status =
          Status::Unavailable("deadline exceeded before " + who + " started");
      return slot;
    }
    switch (backend.injector().OnAttempt()) {
      case FaultKind::kStall:
        // A hung backend: park on the cancellation token until the
        // dispatcher's deadline abandons us. The request never executes.
        cancel->WaitMs(0);
        slot.fault = FaultKind::kStall;
        slot.timed_out = true;
        slot.status = Status::Unavailable(who + " stalled past the deadline");
        return slot;
      case FaultKind::kCrash:
        slot.fault = FaultKind::kCrash;
        slot.status = Status::Unavailable("injected crash on " + who);
        return slot;
      case FaultKind::kError: {
        if (attempt < ft.max_retries) {
          const double delay = backoff.NextDelayMs();
          slot.backoff_ms += delay;
          // Delays are charged to simulated time; sleeping them is opt-in
          // so fault-tolerance tests stay deterministic and sleep-free.
          if (ft.backoff_sleep && cancel->WaitMs(delay)) {
            slot.timed_out = true;
            slot.status =
                Status::Unavailable("deadline exceeded while retrying " + who);
            return slot;
          }
          continue;
        }
        slot.fault = FaultKind::kError;
        slot.status = Status::Unavailable(
            "transient fault on " + who + " persisted through " +
            std::to_string(slot.attempts) + " attempts");
        return slot;
      }
      case FaultKind::kNone:
        break;
    }
    auto outcome = RunOnBackend(i, request);
    if (outcome.ok()) {
      slot.response = std::move(outcome->first);
      slot.ms = outcome->second;
    } else {
      // Genuine engine outcome (e.g. NotFound): a property of the
      // request, reported as-is, never retried.
      slot.status = outcome.status();
    }
    return slot;
  }
}

std::vector<Controller::FanoutSlot> Controller::FanOutWithFaults(
    std::vector<FanoutJob> jobs) {
  const size_t n = jobs.size();
  auto state = std::make_shared<FanoutState>();
  state->slots.resize(n);
  state->tokens.reserve(n);
  for (size_t k = 0; k < n; ++k) {
    state->tokens.push_back(std::make_shared<Cancellation>());
  }
  state->jobs = std::move(jobs);
  for (size_t k = 0; k < n; ++k) {
    pool_->Submit([this, state, k] {
      FanoutSlot slot = AttemptOnBackend(state->jobs[k].backend,
                                         *state->jobs[k].request,
                                         state->tokens[k].get());
      std::lock_guard<std::mutex> lock(state->mutex);
      slot.done = true;
      state->slots[k] = std::move(slot);
      ++state->completed;
      state->cv.notify_all();
    });
  }

  const double deadline = options_.fault_tolerance.request_deadline_ms;
  std::unique_lock<std::mutex> lock(state->mutex);
  if (deadline > 0) {
    state->cv.wait_for(lock,
                       std::chrono::duration<double, std::milli>(deadline),
                       [&] { return state->completed == n; });
  } else {
    state->cv.wait(lock, [&] { return state->completed == n; });
  }
  std::vector<FanoutSlot> out(n);
  for (size_t k = 0; k < n; ++k) {
    if (state->slots[k].done) {
      out[k] = std::move(state->slots[k]);
    } else {
      out[k].timed_out = true;
      out[k].status = Status::Unavailable(
          "backend " + std::to_string(state->jobs[k].backend) +
          " missed the " + std::to_string(deadline) + " ms deadline");
    }
  }
  lock.unlock();
  // Release stragglers (stalled or still queued); they will observe the
  // cancellation, skip the engine, and write into the abandoned state.
  for (const auto& token : state->tokens) token->Cancel();
  return out;
}

void Controller::ApplySlotHealth(
    size_t i, const FanoutSlot& slot, bool mutation,
    std::vector<kds::PartialResultWarning>* warnings) {
  Backend& backend = *backends_[i];
  const bool faulted = slot.fault != FaultKind::kNone || slot.timed_out;
  if (!faulted) {
    // A genuine engine error is a property of the request (it fails
    // identically on every backend), not of the backend's health — with
    // one exception: a Corruption status means *this* backend's storage
    // served bad bytes. That is fatal for the backend (only a rebuild
    // from checkpoint + log realigns it), and the caller sees a partial
    // result instead of an aborted request.
    if (slot.status.IsCorruption()) {
      backend.health().OnFailure(slot.status.message(), /*fatal=*/true);
      if (warnings != nullptr) {
        AppendWarning(
            warnings,
            kds::PartialResultWarning{
                backend.id(),
                std::string(BackendHealthName(backend.health().state())),
                slot.status.message()});
      }
      return;
    }
    if (slot.status.ok()) backend.health().OnSuccess();
    return;
  }
  // A crash loses the engine outright. A failed mutation leaves the
  // backend behind its own log (the entry was appended before dispatch),
  // so only a rebuild can realign it — fatal either way.
  const bool fatal = mutation || slot.fault == FaultKind::kCrash;
  backend.health().OnFailure(slot.status.message(), fatal);
  if (warnings != nullptr) {
    AppendWarning(warnings,
                  kds::PartialResultWarning{
                      backend.id(),
                      std::string(BackendHealthName(backend.health().state())),
                      slot.status.message()});
  }
}

Result<ExecutionReport> Controller::ExecuteInsert(
    const abdl::InsertRequest& request) {
  const size_t n = backends_.size();
  // Record distribution: round-robin spreads every file evenly over the
  // disks; hash placement derives the backend from the record's database
  // key so placement is order-independent.
  size_t target =
      insert_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
  if (options_.placement == PlacementPolicy::kHashKey &&
      request.record.keywords().size() >= 2) {
    const abdm::Keyword& key = request.record.keywords()[1];
    target = std::hash<std::string>{}(key.attribute + "=" +
                                      key.value.ToString()) %
             n;
  }

  const auto start = std::chrono::steady_clock::now();
  auto shared_req =
      std::make_shared<const abdl::Request>(abdl::Request(request));
  const std::string payload = "REQUEST " + abdl::ToString(*shared_req);

  std::vector<kds::PartialResultWarning> warnings;
  Status last_failure = Status::Unavailable("no available backends");
  // Failover: if the placed backend faults, the record goes to the next
  // available one (the broadcast read path finds it wherever it lives).
  for (size_t tried = 0; tried < n; ++tried) {
    const size_t i = (target + tried) % n;
    Backend& backend = *backends_[i];
    if (!backend.available()) {
      backend.health().OnQuarantinedRequest();
      continue;
    }
    std::vector<FanoutSlot> slots = FanOutWithFaults({{i, shared_req}});
    FanoutSlot& slot = slots.front();
    if (slot.fault == FaultKind::kNone && !slot.timed_out) {
      if (!slot.status.ok()) return slot.status;  // genuine engine error
      // Success: the record now belongs to backend i's partition, so its
      // log — the partition's source of truth for rebuilds — records it.
      // (Logging after the apply, unlike broadcasts, so a failed-over
      // insert never lingers in a dead backend's log as a duplicate.)
      (void)backend.wal().Append(payload);
      backend.health().OnSuccess();
      const double total_ms = slot.ms + slot.backoff_ms;
      ExecutionReport report;
      report.backend_times_ms.assign(n, 0.0);
      report.backend_times_ms[i] = total_ms;
      report.response.affected = slot.response.affected;
      report.response.io = slot.response.io;
      report.response.warnings = std::move(warnings);
      report.response_time_ms = options_.bus.RoundTripMs() + total_ms;
      report.wall_time_ms = ElapsedMs(start);
      return report;
    }
    ApplySlotHealth(i, slot, /*mutation=*/true, &warnings);
    last_failure = slot.status;
    if (slot.timed_out && slot.fault == FaultKind::kNone) {
      // A genuine timeout (not an injected stall) is ambiguous: the
      // engine may have applied the record after we gave up. Re-placing
      // it could duplicate, so report the unknown outcome instead. The
      // backend is quarantined; its rebuild resolves the ambiguity
      // toward "not inserted", matching this error.
      return Status::Unavailable(
          "insert outcome unknown: " + slot.status.message());
    }
    // Injected error/stall/crash all fire before the engine touches the
    // record, so failing over cannot duplicate it.
  }
  return last_failure;
}

Result<ExecutionReport> Controller::ExecuteBatchInsert(
    const abdl::BatchInsertRequest& request) {
  const size_t n = backends_.size();
  if (request.records.empty()) {
    return Status::InvalidArgument("batch INSERT carries no records");
  }
  // Partition by the placement policy, one sub-batch per backend:
  // consecutive records still land on consecutive backends (round-robin)
  // or wherever their database key hashes — exactly the partitions the
  // records would form inserted one by one, so the broadcast read path is
  // oblivious to how they arrived. Each backend then pays one request and
  // one WAL entry for its whole sub-batch instead of one per record.
  std::vector<abdl::BatchInsertRequest> parts(n);
  for (const abdm::Record& record : request.records) {
    size_t target =
        insert_cursor_.fetch_add(1, std::memory_order_relaxed) % n;
    if (options_.placement == PlacementPolicy::kHashKey &&
        record.keywords().size() >= 2) {
      const abdm::Keyword& key = record.keywords()[1];
      target = std::hash<std::string>{}(key.attribute + "=" +
                                        key.value.ToString()) %
               n;
    }
    parts[target].records.push_back(record);
  }

  struct PendingPart {
    size_t target = 0;  ///< placed backend
    size_t tried = 0;   ///< failover offset from the placed backend
    std::shared_ptr<const abdl::Request> request;
    std::string payload;
  };
  std::vector<PendingPart> pending;
  for (size_t i = 0; i < n; ++i) {
    if (parts[i].records.empty()) continue;
    PendingPart part;
    part.target = i;
    part.request = std::make_shared<const abdl::Request>(
        abdl::Request(std::move(parts[i])));
    part.payload = "REQUEST " + abdl::ToString(*part.request);
    pending.push_back(std::move(part));
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<kds::PartialResultWarning> warnings;
  ExecutionReport report;
  report.backend_times_ms.assign(n, 0.0);
  double max_ms = 0.0;
  Status last_failure = Status::Unavailable("no available backends");

  // Sub-batches fan out to their backends concurrently. A sub-batch whose
  // backend faults (injected faults fire before the engine touches any
  // record) fails over whole to the next available backend in the next
  // round, mirroring the single-record failover loop.
  while (!pending.empty()) {
    std::vector<FanoutJob> jobs;
    std::vector<size_t> job_part;
    std::vector<size_t> job_backend;
    for (size_t p = 0; p < pending.size(); ++p) {
      PendingPart& part = pending[p];
      size_t chosen = n;
      while (part.tried < n) {
        const size_t i = (part.target + part.tried) % n;
        if (backends_[i]->available()) {
          chosen = i;
          break;
        }
        backends_[i]->health().OnQuarantinedRequest();
        ++part.tried;
      }
      if (chosen == n) return last_failure;
      jobs.push_back({chosen, part.request});
      job_part.push_back(p);
      job_backend.push_back(chosen);
    }
    std::vector<FanoutSlot> slots = FanOutWithFaults(std::move(jobs));
    std::vector<PendingPart> next;
    for (size_t k = 0; k < slots.size(); ++k) {
      FanoutSlot& slot = slots[k];
      const size_t i = job_backend[k];
      PendingPart& part = pending[job_part[k]];
      if (slot.fault == FaultKind::kNone && !slot.timed_out) {
        if (!slot.status.ok()) return slot.status;  // genuine engine error
        // The sub-batch now belongs to backend i's partition; its log —
        // the partition's source of truth for rebuilds — records it as
        // one entry. (After the apply, like single-record inserts, so a
        // failed-over sub-batch never lingers in a dead backend's log.)
        (void)backends_[i]->wal().Append(part.payload);
        backends_[i]->health().OnSuccess();
        const double total_ms = slot.ms + slot.backoff_ms;
        report.backend_times_ms[i] += total_ms;
        max_ms = std::max(max_ms, total_ms);
        report.response.affected += slot.response.affected;
        report.response.io += slot.response.io;
        continue;
      }
      ApplySlotHealth(i, slot, /*mutation=*/true, &warnings);
      last_failure = slot.status;
      if (slot.timed_out && slot.fault == FaultKind::kNone) {
        // Genuine timeout: the engine may have applied the sub-batch
        // after we gave up; re-placing it could duplicate every record.
        return Status::Unavailable("insert outcome unknown: " +
                                   slot.status.message());
      }
      ++part.tried;
      if (part.tried >= n) return last_failure;
      next.push_back(std::move(part));
    }
    pending = std::move(next);
  }

  report.response.warnings = std::move(warnings);
  report.response_time_ms = options_.bus.RoundTripMs() + max_ms;
  report.wall_time_ms = ElapsedMs(start);
  return report;
}

Result<ExecutionReport> Controller::ExecuteBroadcast(
    const abdl::Request& request) {
  // RETRIEVE-COMMON joins records that may live on different backends, so
  // a per-backend join would silently drop cross-partition pairs. The
  // controller instead broadcasts the two halves as plain retrieves and
  // joins the merged sides itself.
  if (const auto* join = std::get_if<abdl::RetrieveCommonRequest>(&request)) {
    return ExecuteDistributedJoin(*join);
  }

  // For retrieves, backends return raw matched records (all attributes);
  // the controller applies projection / BY / aggregation to the merged
  // set, since partial per-backend aggregates would be wrong (e.g. AVG).
  const auto* retrieve = std::get_if<abdl::RetrieveRequest>(&request);
  abdl::Request broadcast = request;
  if (retrieve != nullptr) {
    abdl::RetrieveRequest raw;
    raw.query = retrieve->query;
    raw.all_attributes = true;
    // The explain flag rides the rewritten request so every backend
    // returns its annotated plan for the controller to merge.
    raw.explain = retrieve->explain;
    broadcast = raw;
  }

  const bool mutation = IsMutationRequest(request);
  std::vector<std::string> payloads;
  if (mutation) payloads.push_back("REQUEST " + abdl::ToString(request));

  std::vector<kds::PartialResultWarning> warnings;
  std::vector<size_t> participants;
  std::vector<FanoutJob> jobs;
  auto shared_req =
      std::make_shared<const abdl::Request>(std::move(broadcast));
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (!AdmitBackend(i, payloads, &warnings)) continue;
    // Write-ahead: the mutation enters the backend's log before dispatch,
    // so the log always holds exactly what the partition should contain —
    // whether this backend applies it now or replays it after a rebuild.
    if (mutation) (void)backends_[i]->wal().Append(payloads.front());
    participants.push_back(i);
    jobs.push_back({i, shared_req});
  }
  if (participants.empty()) {
    return Status::Unavailable("no available backends (all " +
                               std::to_string(backends_.size()) +
                               " quarantined)");
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<FanoutSlot> slots = FanOutWithFaults(std::move(jobs));
  const double wall_ms = ElapsedMs(start);

  for (size_t k = 0; k < slots.size(); ++k) {
    ApplySlotHealth(participants[k], slots[k], mutation, &warnings);
  }
  // Genuine engine errors propagate in backend-id order, exactly as
  // before fault tolerance existed.
  for (const FanoutSlot& slot : slots) {
    if (slot.fault == FaultKind::kNone && !slot.timed_out &&
        !slot.status.ok()) {
      return slot.status;
    }
  }

  // Merge in backend-id order: deterministic results no matter which
  // backend finished first. Faulted backends contribute a warning, not
  // records — a partial result, never a silent truncation.
  const double deadline = options_.fault_tolerance.request_deadline_ms;
  ExecutionReport report;
  report.backend_times_ms.assign(backends_.size(), 0.0);
  std::vector<abdm::Record> merged;
  std::vector<std::pair<int, const kds::Response*>> plan_parts;
  double max_ms = 0.0;
  bool any_success = false;
  for (size_t k = 0; k < slots.size(); ++k) {
    FanoutSlot& slot = slots[k];
    const size_t i = participants[k];
    if (slot.timed_out || slot.fault != FaultKind::kNone) {
      max_ms = std::max(
          max_ms, slot.timed_out && deadline > 0 ? deadline : slot.backoff_ms);
      continue;
    }
    any_success = true;
    const double total_ms = slot.ms + slot.backoff_ms;
    report.backend_times_ms[i] = total_ms;
    max_ms = std::max(max_ms, total_ms);
    report.response.affected += slot.response.affected;
    report.response.io += slot.response.io;
    plan_parts.emplace_back(backends_[i]->id(), &slot.response);
    merged.insert(merged.end(),
                  std::make_move_iterator(slot.response.records.begin()),
                  std::make_move_iterator(slot.response.records.end()));
  }
  if (!any_success) {
    return slots.front().status;
  }
  if (retrieve != nullptr) {
    report.response.records =
        kds::PostProcessRetrieve(*retrieve, std::move(merged));
  } else {
    report.response.records = std::move(merged);
  }
  if (abdl::IsExplain(request)) {
    kds::PlanNode plan = MergeBackendPlans(plan_parts);
    if (retrieve != nullptr) {
      // Projection / BY / aggregation happened here at the controller
      // over the merged set, so its plan node sits above the merge.
      plan = kds::WrapRetrievePlan(*retrieve, std::move(plan),
                                   report.response.records.size());
    }
    report.response.plan = std::make_shared<kds::PlanNode>(std::move(plan));
  }
  report.response.warnings = std::move(warnings);
  report.response_time_ms = options_.bus.RoundTripMs() + max_ms;
  report.wall_time_ms = wall_ms;
  return report;
}

Result<ExecutionReport> Controller::ExecuteDistributedJoin(
    const abdl::RetrieveCommonRequest& request) {
  std::vector<kds::PartialResultWarning> warnings;
  std::vector<size_t> participants;
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (AdmitBackend(i, {}, &warnings)) participants.push_back(i);
  }
  if (participants.empty()) {
    return Status::Unavailable("no available backends for distributed join");
  }
  const size_t p = participants.size();

  // Pre-fan-out side estimates from every participant's planner
  // statistics: they choose the controller-side join strategy, and the
  // distinct counts of the join attributes feed the output estimate.
  kds::JoinInputs join_inputs;
  join_inputs.left_attribute = request.left_attribute;
  join_inputs.right_attribute = request.right_attribute;
  join_inputs.targets.reserve(request.targets.size());
  for (const auto& target : request.targets) {
    join_inputs.targets.push_back(target.attribute);
  }
  for (size_t i : participants) {
    std::shared_ptr<kds::Engine> engine = backends_[i]->SnapshotEngine();
    join_inputs.est_left += engine->EstimateQuery(
        request.left_query, request.left_attribute, &join_inputs.left_distinct);
    join_inputs.est_right +=
        engine->EstimateQuery(request.right_query, request.right_attribute,
                              &join_inputs.right_distinct);
  }

  // Both sides fan out as one batch of 2p concurrent single-backend
  // retrieves. Simulated time still charges the sides as consecutive
  // parallel phases (each costs its slowest backend), matching the
  // paper's two-message exchange; wall-clock overlaps everything.
  std::array<std::shared_ptr<const abdl::Request>, 2> sides;
  {
    abdl::RetrieveRequest raw;
    raw.all_attributes = true;
    raw.explain = request.explain;
    raw.query = request.left_query;
    sides[0] = std::make_shared<const abdl::Request>(raw);
    raw.query = request.right_query;
    sides[1] = std::make_shared<const abdl::Request>(raw);
  }
  std::vector<FanoutJob> jobs;
  jobs.reserve(2 * p);
  for (size_t side = 0; side < 2; ++side) {
    for (size_t k = 0; k < p; ++k) {
      jobs.push_back({participants[k], sides[side]});
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<FanoutSlot> slots = FanOutWithFaults(std::move(jobs));
  const double wall_ms = ElapsedMs(start);

  for (size_t task = 0; task < slots.size(); ++task) {
    ApplySlotHealth(participants[task % p], slots[task], /*mutation=*/false,
                    &warnings);
  }
  for (const FanoutSlot& slot : slots) {
    if (slot.fault == FaultKind::kNone && !slot.timed_out &&
        !slot.status.ok()) {
      return slot.status;
    }
  }

  const double deadline = options_.fault_tolerance.request_deadline_ms;
  ExecutionReport report;
  report.backend_times_ms.assign(backends_.size(), 0.0);
  double side_max[2] = {0.0, 0.0};
  std::vector<abdm::Record> left, right;
  std::array<std::vector<std::pair<int, const kds::Response*>>, 2> plan_parts;
  bool any_success = false;
  for (size_t task = 0; task < slots.size(); ++task) {
    FanoutSlot& slot = slots[task];
    const size_t i = participants[task % p];
    const size_t side = task / p;
    if (slot.timed_out || slot.fault != FaultKind::kNone) {
      side_max[side] = std::max(
          side_max[side],
          slot.timed_out && deadline > 0 ? deadline : slot.backoff_ms);
      continue;
    }
    any_success = true;
    const double total_ms = slot.ms + slot.backoff_ms;
    report.backend_times_ms[i] += total_ms;
    side_max[side] = std::max(side_max[side], total_ms);
    report.response.io += slot.response.io;
    plan_parts[side].emplace_back(backends_[i]->id(), &slot.response);
    std::vector<abdm::Record>& bucket = side == 0 ? left : right;
    bucket.insert(bucket.end(),
                  std::make_move_iterator(slot.response.records.begin()),
                  std::make_move_iterator(slot.response.records.end()));
  }
  if (!any_success) {
    return slots.front().status;
  }

  // Join at the controller, mirroring the kernel engine's local
  // RETRIEVE-COMMON semantics: strategy chosen from the pre-fan-out
  // estimates, re-planned adaptively when the gathered sides miss them
  // by >= 10x.
  join_inputs.left = &left;
  join_inputs.right = &right;
  kds::JoinOutcome joined = kds::ExecuteJoin(join_inputs);
  if (joined.replanned) {
    stats_counters_.replans.fetch_add(1, std::memory_order_relaxed);
  }
  auto& strategy_counter = joined.strategy == kds::JoinStrategy::kMerge
                               ? stats_counters_.merge_joins
                               : stats_counters_.hash_joins;
  strategy_counter.fetch_add(1, std::memory_order_relaxed);
  report.response.records = std::move(joined.records);
  if (request.explain) {
    kds::PlanNode join;
    join.kind = kds::PlanNodeKind::kJoin;
    join.label =
        "(" + request.left_attribute + " = " + request.right_attribute + ")";
    join.executed = true;
    join.join_strategy = joined.strategy;
    join.replanned = joined.replanned;
    join.children.push_back(MergeBackendPlans(plan_parts[0]));
    join.children.push_back(MergeBackendPlans(plan_parts[1]));
    join.est_rows = kds::EstimateJoinRows(
        join_inputs.est_left, join_inputs.est_right,
        join_inputs.left_distinct, join_inputs.right_distinct);
    join.est_blocks = join.SumChildren(&kds::PlanNode::est_blocks);
    join.est_source = join_inputs.left_distinct.has_value() &&
                              join_inputs.right_distinct.has_value()
                          ? abdm::EstimateSource::kDirectory
                          : abdm::EstimateSource::kHeuristic;
    join.actual_rows = report.response.records.size();
    join.actual_blocks = join.SumChildren(&kds::PlanNode::actual_blocks);
    report.response.plan = std::make_shared<kds::PlanNode>(std::move(join));
  }
  report.response.warnings = std::move(warnings);
  report.response_time_ms =
      2 * options_.bus.RoundTripMs() + side_max[0] + side_max[1];
  report.wall_time_ms = wall_ms;
  return report;
}

Result<ExecutionReport> Controller::ExecuteTransaction(
    const abdl::Transaction& txn) {
  // Stage assignment: a statement lands one stage after the latest earlier
  // statement whose file footprint conflicts with it (write-write,
  // write-read, or read-write overlap). Statements sharing a stage are
  // mutually independent, so executing them concurrently cannot change any
  // statement's outcome; conflicting statements stay in program order.
  const size_t count = txn.size();
  std::vector<abdl::FileFootprint> footprints;
  footprints.reserve(count);
  for (const auto& request : txn) {
    footprints.push_back(abdl::FootprintOf(request));
  }
  std::vector<size_t> stage_of(count, 0);
  size_t num_stages = count == 0 ? 0 : 1;
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (footprints[j].ConflictsWith(footprints[i])) {
        stage_of[i] = std::max(stage_of[i], stage_of[j] + 1);
      }
    }
    num_stages = std::max(num_stages, stage_of[i] + 1);
  }
  std::vector<std::vector<size_t>> stages(num_stages);
  for (size_t i = 0; i < count; ++i) {
    stages[stage_of[i]].push_back(i);
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::optional<Result<ExecutionReport>>> reports(count);
  double simulated_ms = 0.0;
  for (const std::vector<size_t>& members : stages) {
    // Statement tasks block on backend fan-outs, so they run on the
    // dedicated statement pool (see txn_pool_).
    txn_pool_->ParallelFor(members.size(), [&](size_t k) {
      reports[members[k]] = Execute(txn[members[k]]);
    });
    // Lowest-index error wins: deterministic regardless of which pool
    // thread hit its error first.
    double stage_ms = 0.0;
    for (size_t idx : members) {
      const Result<ExecutionReport>& report = *reports[idx];
      MLDS_RETURN_IF_ERROR(report.status());
      stage_ms = std::max(stage_ms, report->response_time_ms);
    }
    // Each stage's statements run in parallel, so the stage costs its
    // slowest member; stages are consecutive, so the transaction sums
    // stage costs.
    simulated_ms += stage_ms;
  }

  // Merge in statement order: records, io, and per-backend charges come
  // out identical no matter how the pool interleaved the stages.
  ExecutionReport total;
  total.backend_times_ms.assign(backends_.size(), 0.0);
  std::vector<kds::PlanNode> statement_plans;
  for (size_t i = 0; i < count; ++i) {
    ExecutionReport& report = **reports[i];
    total.response.affected += report.response.affected;
    total.response.io += report.response.io;
    for (size_t b = 0; b < report.backend_times_ms.size(); ++b) {
      total.backend_times_ms[b] += report.backend_times_ms[b];
    }
    total.response.records.insert(
        total.response.records.end(),
        std::make_move_iterator(report.response.records.begin()),
        std::make_move_iterator(report.response.records.end()));
    for (kds::PartialResultWarning& warning : report.response.warnings) {
      AppendWarning(&total.response.warnings, std::move(warning));
    }
    if (report.response.plan != nullptr) {
      statement_plans.push_back(*report.response.plan);
    }
  }
  if (!statement_plans.empty()) {
    // Explained statements of the transaction line up, in statement
    // order, under one SEQUENCE root.
    kds::PlanNode seq;
    seq.kind = kds::PlanNodeKind::kSequence;
    seq.label = std::to_string(statement_plans.size()) + " statements";
    seq.executed = true;
    seq.children = std::move(statement_plans);
    seq.est_rows = seq.SumChildren(&kds::PlanNode::est_rows);
    seq.est_blocks = seq.SumChildren(&kds::PlanNode::est_blocks);
    seq.actual_rows = seq.SumChildren(&kds::PlanNode::actual_rows);
    seq.actual_blocks = seq.SumChildren(&kds::PlanNode::actual_blocks);
    total.response.plan = std::make_shared<kds::PlanNode>(std::move(seq));
  }
  total.response_time_ms = simulated_ms;
  total.wall_time_ms = ElapsedMs(start);
  return total;
}

size_t Controller::FileSize(std::string_view file) const {
  size_t total = 0;
  for (const auto& backend : backends_) {
    if (!backend->available()) continue;
    total += backend->engine().FileSize(file);
  }
  return total;
}

uint64_t Controller::TotalBlocks() const {
  uint64_t total = 0;
  for (const auto& backend : backends_) {
    if (!backend->available()) continue;
    total += backend->engine().TotalBlocks();
  }
  return total;
}

Status Controller::CheckpointAll() {
  for (auto& backend : backends_) {
    // A quarantined backend's engine is stale: checkpointing it (and
    // truncating its log) would lose the catch-up entries its rebuild
    // depends on. It is checkpointed after it rejoins.
    if (!backend->available()) continue;
    std::ostringstream snapshot;
    MLDS_RETURN_IF_ERROR(kds::SaveSnapshot(backend->engine(), snapshot));
    backend->SetCheckpoint(std::move(snapshot).str());
    backend->wal().Truncate();
  }
  return Status::OK();
}

ControllerHealth Controller::Health() const {
  ControllerHealth health;
  health.backends.reserve(backends_.size());
  for (const auto& backend : backends_) {
    BackendStatus status;
    status.id = backend->id();
    status.state = backend->health().state();
    status.last_fault = backend->health().last_fault();
    status.wal_entries = backend->wal().entry_count();
    status.missed_requests = backend->health().missed_requests();
    status.quarantine_count = backend->health().quarantine_count();
    status.faults_injected = backend->injector().faults_served();
    if (status.state != BackendHealth::kHealthy) health.degraded = true;
    health.backends.push_back(std::move(status));
  }
  return health;
}

kds::PoolCounters Controller::PoolStats() const {
  kds::PoolCounters total;
  for (const auto& backend : backends_) {
    total += backend->SnapshotEngine()->pool_stats();
  }
  return total;
}

kds::IntegrityReport Controller::VerifyIntegrity() const {
  kds::IntegrityReport merged;
  for (const auto& backend : backends_) {
    kds::IntegrityReport report =
        backend->SnapshotEngine()->VerifyIntegrity();
    if (!report.clean) merged.clean = false;
    const std::string prefix =
        "backend" + std::to_string(backend->id()) + "/";
    for (auto& verdict : report.files) {
      verdict.file = prefix + verdict.file;
      merged.files.push_back(std::move(verdict));
    }
  }
  return merged;
}

kds::IntegrityCounters Controller::IntegrityStats() const {
  kds::IntegrityCounters total;
  for (const auto& backend : backends_) {
    total += backend->SnapshotEngine()->integrity_stats();
  }
  return total;
}

kds::StatisticsCounters Controller::StatisticsStats() const {
  kds::StatisticsCounters total = stats_counters_.Snapshot();
  for (const auto& backend : backends_) {
    total += backend->SnapshotEngine()->statistics_stats();
  }
  return total;
}

void Controller::ResetTiming() {
  total_response_ms_.store(0.0, std::memory_order_relaxed);
}

}  // namespace mlds::mbds
