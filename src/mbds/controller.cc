#include "mbds/controller.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <functional>
#include <map>
#include <optional>
#include <thread>

namespace mlds::mbds {

namespace {

/// Outcome of one backend's share of a broadcast. Each slot is written by
/// exactly one ParallelFor iteration, so the vector needs no lock.
struct BackendRun {
  kds::Response response;
  double ms = 0.0;
};

double ElapsedMs(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Merges the per-backend plans of `runs[first, first + count)` into one
/// BACKEND MERGE node, children in backend-id order, each labelled with
/// its backend id so per-backend estimated vs. actual block counts stay
/// visible side by side in the merged tree.
kds::PlanNode MergeBackendPlans(std::vector<BackendRun>& runs, size_t first,
                                size_t count) {
  kds::PlanNode root;
  root.kind = kds::PlanNodeKind::kBackendMerge;
  root.label = std::to_string(count) + " backends";
  root.executed = true;
  root.children.reserve(count);
  for (size_t k = 0; k < count; ++k) {
    const kds::Response& response = runs[first + k].response;
    if (response.plan == nullptr) continue;
    kds::PlanNode child = *response.plan;
    std::string prefix = "backend " + std::to_string(k);
    child.label =
        child.label.empty() ? prefix : prefix + ": " + child.label;
    root.children.push_back(std::move(child));
  }
  root.est_rows = root.SumChildren(&kds::PlanNode::est_rows);
  root.est_blocks = root.SumChildren(&kds::PlanNode::est_blocks);
  root.actual_rows = root.SumChildren(&kds::PlanNode::actual_rows);
  root.actual_blocks = root.SumChildren(&kds::PlanNode::actual_blocks);
  return root;
}

}  // namespace

Controller::Controller(MbdsOptions options) : options_(options) {
  const int n = std::max(1, options_.num_backends);
  backends_.reserve(n);
  for (int i = 0; i < n; ++i) {
    backends_.push_back(std::make_unique<Backend>(i, options_.engine));
  }
  pool_ = std::make_unique<common::ThreadPool>(n - 1);
  latency_scale_.store(options_.latency_scale, std::memory_order_relaxed);
}

Status Controller::RunParallel(size_t tasks,
                               const std::function<Status(size_t)>& fn) {
  std::vector<Status> statuses(tasks);
  pool_->ParallelFor(tasks, [&](size_t i) { statuses[i] = fn(i); });
  for (const Status& status : statuses) {
    MLDS_RETURN_IF_ERROR(status);
  }
  return Status::OK();
}

Status Controller::ForEachBackend(const std::function<Status(size_t)>& fn) {
  return RunParallel(backends_.size(), fn);
}

Status Controller::DefineDatabase(const abdm::DatabaseDescriptor& db) {
  // Definitions broadcast like any other request: all backends create the
  // files concurrently. Errors are reported in backend-id order so the
  // result is deterministic.
  return ForEachBackend(
      [&](size_t i) { return backends_[i]->engine().DefineDatabase(db); });
}

Status Controller::DefineFile(const abdm::FileDescriptor& descriptor) {
  return ForEachBackend(
      [&](size_t i) { return backends_[i]->engine().DefineFile(descriptor); });
}

bool Controller::HasFile(std::string_view file) const {
  return backends_.front()->engine().HasFile(file);
}

Result<ExecutionReport> Controller::Execute(const abdl::Request& request) {
  Result<ExecutionReport> result =
      std::holds_alternative<abdl::InsertRequest>(request)
          ? ExecuteInsert(std::get<abdl::InsertRequest>(request))
          : ExecuteBroadcast(request);
  if (result.ok()) {
    total_response_ms_.fetch_add(result->response_time_ms,
                                 std::memory_order_relaxed);
  }
  return result;
}

Result<std::pair<kds::Response, double>> Controller::RunOnBackend(
    size_t i, const abdl::Request& request) {
  Backend& backend = *backends_[i];
  MLDS_ASSIGN_OR_RETURN(kds::Response resp, backend.engine().Execute(request));
  const double ms = options_.disk.CostMs(resp.io);
  backend.AddBusyMs(ms);
  const double scale = latency_scale_.load(std::memory_order_relaxed);
  if (scale > 0.0 && ms > 0.0) {
    // Emulate the dedicated disk: the backend is not done until its disk
    // would be. Backends sleep concurrently on the pool, so a broadcast's
    // wall-clock cost is the slowest backend's latency, not the sum —
    // the physical behaviour behind the paper's response-time curves.
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms * scale));
  }
  return std::make_pair(std::move(resp), ms);
}

Result<ExecutionReport> Controller::ExecuteInsert(
    const abdl::InsertRequest& request) {
  // Record distribution: round-robin spreads every file evenly over the
  // disks; hash placement derives the backend from the record's database
  // key so placement is order-independent.
  size_t target_index =
      insert_cursor_.fetch_add(1, std::memory_order_relaxed) %
      backends_.size();
  if (options_.placement == PlacementPolicy::kHashKey &&
      request.record.keywords().size() >= 2) {
    const abdm::Keyword& key = request.record.keywords()[1];
    target_index = std::hash<std::string>{}(key.attribute + "=" +
                                            key.value.ToString()) %
                   backends_.size();
  }

  const auto start = std::chrono::steady_clock::now();
  ExecutionReport report;
  report.backend_times_ms.assign(backends_.size(), 0.0);
  MLDS_ASSIGN_OR_RETURN(auto outcome,
                        RunOnBackend(target_index, abdl::Request(request)));
  auto& [resp, ms] = outcome;
  report.backend_times_ms[target_index] = ms;
  report.response.affected = resp.affected;
  report.response.io = resp.io;
  report.response_time_ms = options_.bus.RoundTripMs() + ms;
  report.wall_time_ms = ElapsedMs(start);
  return report;
}

Result<ExecutionReport> Controller::ExecuteBroadcast(
    const abdl::Request& request) {
  // RETRIEVE-COMMON joins records that may live on different backends, so
  // a per-backend join would silently drop cross-partition pairs. The
  // controller instead broadcasts the two halves as plain retrieves and
  // joins the merged sides itself.
  if (const auto* join = std::get_if<abdl::RetrieveCommonRequest>(&request)) {
    return ExecuteDistributedJoin(*join);
  }

  // For retrieves, backends return raw matched records (all attributes);
  // the controller applies projection / BY / aggregation to the merged
  // set, since partial per-backend aggregates would be wrong (e.g. AVG).
  const auto* retrieve = std::get_if<abdl::RetrieveRequest>(&request);
  abdl::Request broadcast = request;
  if (retrieve != nullptr) {
    abdl::RetrieveRequest raw;
    raw.query = retrieve->query;
    raw.all_attributes = true;
    // The explain flag rides the rewritten request so every backend
    // returns its annotated plan for the controller to merge.
    raw.explain = retrieve->explain;
    broadcast = raw;
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<BackendRun> runs(backends_.size());
  MLDS_RETURN_IF_ERROR(ForEachBackend([&](size_t i) -> Status {
    auto outcome = RunOnBackend(i, broadcast);
    MLDS_RETURN_IF_ERROR(outcome.status());
    runs[i].response = std::move(outcome->first);
    runs[i].ms = outcome->second;
    return Status::OK();
  }));
  const double wall_ms = ElapsedMs(start);

  // Merge in backend-id order: deterministic results no matter which
  // backend finished first.
  ExecutionReport report;
  report.backend_times_ms.reserve(backends_.size());
  std::vector<abdm::Record> merged;
  double max_ms = 0.0;
  for (BackendRun& run : runs) {
    report.backend_times_ms.push_back(run.ms);
    max_ms = std::max(max_ms, run.ms);
    report.response.affected += run.response.affected;
    report.response.io += run.response.io;
    merged.insert(merged.end(),
                  std::make_move_iterator(run.response.records.begin()),
                  std::make_move_iterator(run.response.records.end()));
  }
  if (retrieve != nullptr) {
    report.response.records = kds::PostProcessRetrieve(*retrieve,
                                                       std::move(merged));
  } else {
    report.response.records = std::move(merged);
  }
  if (abdl::IsExplain(request)) {
    kds::PlanNode plan = MergeBackendPlans(runs, 0, runs.size());
    if (retrieve != nullptr) {
      // Projection / BY / aggregation happened here at the controller
      // over the merged set, so its plan node sits above the merge.
      plan = kds::WrapRetrievePlan(*retrieve, std::move(plan),
                                   report.response.records.size());
    }
    report.response.plan =
        std::make_shared<kds::PlanNode>(std::move(plan));
  }
  report.response_time_ms = options_.bus.RoundTripMs() + max_ms;
  report.wall_time_ms = wall_ms;
  return report;
}

Result<ExecutionReport> Controller::ExecuteDistributedJoin(
    const abdl::RetrieveCommonRequest& request) {
  const size_t n = backends_.size();

  // Both sides fan out as one batch of 2n concurrent single-backend
  // retrieves. Simulated time still charges the sides as consecutive
  // parallel phases (each costs its slowest backend), matching the
  // paper's two-message exchange; wall-clock overlaps everything.
  std::array<abdl::Request, 2> sides;
  {
    abdl::RetrieveRequest raw;
    raw.all_attributes = true;
    raw.explain = request.explain;
    raw.query = request.left_query;
    sides[0] = raw;
    raw.query = request.right_query;
    sides[1] = raw;
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<BackendRun> runs(2 * n);
  MLDS_RETURN_IF_ERROR(RunParallel(2 * n, [&](size_t task) -> Status {
    auto outcome = RunOnBackend(task % n, sides[task / n]);
    MLDS_RETURN_IF_ERROR(outcome.status());
    runs[task].response = std::move(outcome->first);
    runs[task].ms = outcome->second;
    return Status::OK();
  }));
  const double wall_ms = ElapsedMs(start);

  ExecutionReport report;
  report.backend_times_ms.assign(n, 0.0);
  double side_max[2] = {0.0, 0.0};
  std::vector<abdm::Record> left, right;
  for (size_t task = 0; task < runs.size(); ++task) {
    BackendRun& run = runs[task];
    report.backend_times_ms[task % n] += run.ms;
    side_max[task / n] = std::max(side_max[task / n], run.ms);
    report.response.io += run.response.io;
    std::vector<abdm::Record>& side = task < n ? left : right;
    side.insert(side.end(),
                std::make_move_iterator(run.response.records.begin()),
                std::make_move_iterator(run.response.records.end()));
  }

  // Hash join at the controller, mirroring the kernel engine's local
  // RETRIEVE-COMMON semantics.
  std::map<abdm::Value, std::vector<const abdm::Record*>> right_by_value;
  for (const abdm::Record& r : right) {
    abdm::Value v = r.GetOrNull(request.right_attribute);
    if (!v.is_null()) right_by_value[std::move(v)].push_back(&r);
  }
  for (const abdm::Record& l : left) {
    abdm::Value v = l.GetOrNull(request.left_attribute);
    if (v.is_null()) continue;
    auto it = right_by_value.find(v);
    if (it == right_by_value.end()) continue;
    for (const abdm::Record* r : it->second) {
      abdm::Record merged = l;
      for (const auto& kw : r->keywords()) {
        if (!merged.Has(kw.attribute)) merged.Set(kw.attribute, kw.value);
      }
      if (!request.targets.empty()) {
        abdm::Record projected;
        for (const auto& target : request.targets) {
          projected.Set(target.attribute, merged.GetOrNull(target.attribute));
        }
        merged = std::move(projected);
      }
      report.response.records.push_back(std::move(merged));
    }
  }
  if (request.explain) {
    kds::PlanNode join;
    join.kind = kds::PlanNodeKind::kJoin;
    join.label =
        "(" + request.left_attribute + " = " + request.right_attribute + ")";
    join.executed = true;
    join.children.push_back(MergeBackendPlans(runs, 0, n));
    join.children.push_back(MergeBackendPlans(runs, n, n));
    join.est_rows = join.SumChildren(&kds::PlanNode::est_rows);
    join.est_blocks = join.SumChildren(&kds::PlanNode::est_blocks);
    join.actual_rows = report.response.records.size();
    join.actual_blocks = join.SumChildren(&kds::PlanNode::actual_blocks);
    report.response.plan = std::make_shared<kds::PlanNode>(std::move(join));
  }
  report.response_time_ms =
      2 * options_.bus.RoundTripMs() + side_max[0] + side_max[1];
  report.wall_time_ms = wall_ms;
  return report;
}

Result<ExecutionReport> Controller::ExecuteTransaction(
    const abdl::Transaction& txn) {
  // Stage assignment: a statement lands one stage after the latest earlier
  // statement whose file footprint conflicts with it (write-write,
  // write-read, or read-write overlap). Statements sharing a stage are
  // mutually independent, so executing them concurrently cannot change any
  // statement's outcome; conflicting statements stay in program order.
  const size_t count = txn.size();
  std::vector<abdl::FileFootprint> footprints;
  footprints.reserve(count);
  for (const auto& request : txn) {
    footprints.push_back(abdl::FootprintOf(request));
  }
  std::vector<size_t> stage_of(count, 0);
  size_t num_stages = count == 0 ? 0 : 1;
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (footprints[j].ConflictsWith(footprints[i])) {
        stage_of[i] = std::max(stage_of[i], stage_of[j] + 1);
      }
    }
    num_stages = std::max(num_stages, stage_of[i] + 1);
  }
  std::vector<std::vector<size_t>> stages(num_stages);
  for (size_t i = 0; i < count; ++i) {
    stages[stage_of[i]].push_back(i);
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::optional<Result<ExecutionReport>>> reports(count);
  double simulated_ms = 0.0;
  for (const std::vector<size_t>& members : stages) {
    pool_->ParallelFor(members.size(), [&](size_t k) {
      reports[members[k]] = Execute(txn[members[k]]);
    });
    // Lowest-index error wins: deterministic regardless of which pool
    // thread hit its error first.
    double stage_ms = 0.0;
    for (size_t idx : members) {
      const Result<ExecutionReport>& report = *reports[idx];
      MLDS_RETURN_IF_ERROR(report.status());
      stage_ms = std::max(stage_ms, report->response_time_ms);
    }
    // Each stage's statements run in parallel, so the stage costs its
    // slowest member; stages are consecutive, so the transaction sums
    // stage costs.
    simulated_ms += stage_ms;
  }

  // Merge in statement order: records, io, and per-backend charges come
  // out identical no matter how the pool interleaved the stages.
  ExecutionReport total;
  total.backend_times_ms.assign(backends_.size(), 0.0);
  std::vector<kds::PlanNode> statement_plans;
  for (size_t i = 0; i < count; ++i) {
    ExecutionReport& report = **reports[i];
    total.response.affected += report.response.affected;
    total.response.io += report.response.io;
    for (size_t b = 0; b < report.backend_times_ms.size(); ++b) {
      total.backend_times_ms[b] += report.backend_times_ms[b];
    }
    total.response.records.insert(
        total.response.records.end(),
        std::make_move_iterator(report.response.records.begin()),
        std::make_move_iterator(report.response.records.end()));
    if (report.response.plan != nullptr) {
      statement_plans.push_back(*report.response.plan);
    }
  }
  if (!statement_plans.empty()) {
    // Explained statements of the transaction line up, in statement
    // order, under one SEQUENCE root.
    kds::PlanNode seq;
    seq.kind = kds::PlanNodeKind::kSequence;
    seq.label = std::to_string(statement_plans.size()) + " statements";
    seq.executed = true;
    seq.children = std::move(statement_plans);
    seq.est_rows = seq.SumChildren(&kds::PlanNode::est_rows);
    seq.est_blocks = seq.SumChildren(&kds::PlanNode::est_blocks);
    seq.actual_rows = seq.SumChildren(&kds::PlanNode::actual_rows);
    seq.actual_blocks = seq.SumChildren(&kds::PlanNode::actual_blocks);
    total.response.plan = std::make_shared<kds::PlanNode>(std::move(seq));
  }
  total.response_time_ms = simulated_ms;
  total.wall_time_ms = ElapsedMs(start);
  return total;
}

size_t Controller::FileSize(std::string_view file) const {
  size_t total = 0;
  for (const auto& backend : backends_) {
    total += backend->engine().FileSize(file);
  }
  return total;
}

uint64_t Controller::TotalBlocks() const {
  uint64_t total = 0;
  for (const auto& backend : backends_) {
    total += backend->engine().TotalBlocks();
  }
  return total;
}

void Controller::ResetTiming() {
  total_response_ms_.store(0.0, std::memory_order_relaxed);
}

}  // namespace mlds::mbds
