#include "mbds/controller.h"

#include <algorithm>
#include <functional>
#include <map>

namespace mlds::mbds {

Controller::Controller(MbdsOptions options) : options_(options) {
  const int n = std::max(1, options_.num_backends);
  backends_.reserve(n);
  for (int i = 0; i < n; ++i) {
    backends_.push_back(std::make_unique<Backend>(i, options_.engine));
  }
}

Status Controller::DefineDatabase(const abdm::DatabaseDescriptor& db) {
  for (auto& backend : backends_) {
    MLDS_RETURN_IF_ERROR(backend->engine().DefineDatabase(db));
  }
  return Status::OK();
}

Status Controller::DefineFile(const abdm::FileDescriptor& descriptor) {
  for (auto& backend : backends_) {
    MLDS_RETURN_IF_ERROR(backend->engine().DefineFile(descriptor));
  }
  return Status::OK();
}

bool Controller::HasFile(std::string_view file) const {
  return backends_.front()->engine().HasFile(file);
}

Result<ExecutionReport> Controller::Execute(const abdl::Request& request) {
  Result<ExecutionReport> result =
      std::holds_alternative<abdl::InsertRequest>(request)
          ? ExecuteInsert(std::get<abdl::InsertRequest>(request))
          : ExecuteBroadcast(request);
  if (result.ok()) total_response_ms_ += result->response_time_ms;
  return result;
}

Result<ExecutionReport> Controller::ExecuteInsert(
    const abdl::InsertRequest& request) {
  // Record distribution: round-robin spreads every file evenly over the
  // disks; hash placement derives the backend from the record's database
  // key so placement is order-independent.
  size_t target_index = insert_cursor_ % backends_.size();
  if (options_.placement == PlacementPolicy::kHashKey &&
      request.record.keywords().size() >= 2) {
    const abdm::Keyword& key = request.record.keywords()[1];
    target_index = std::hash<std::string>{}(key.attribute + "=" +
                                            key.value.ToString()) %
                   backends_.size();
  }
  Backend& target = *backends_[target_index];
  ++insert_cursor_;

  ExecutionReport report;
  report.backend_times_ms.assign(backends_.size(), 0.0);
  MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                        target.engine().Execute(abdl::Request(request)));
  const double ms = options_.disk.CostMs(resp.io);
  target.AddBusyMs(ms);
  report.backend_times_ms[target.id()] = ms;
  report.response.affected = resp.affected;
  report.response.io = resp.io;
  report.response_time_ms = options_.bus.RoundTripMs() + ms;
  return report;
}

Result<ExecutionReport> Controller::ExecuteBroadcast(
    const abdl::Request& request) {
  // RETRIEVE-COMMON joins records that may live on different backends, so
  // a per-backend join would silently drop cross-partition pairs. The
  // controller instead broadcasts the two halves as plain retrieves and
  // joins the merged sides itself.
  if (const auto* join = std::get_if<abdl::RetrieveCommonRequest>(&request)) {
    return ExecuteDistributedJoin(*join);
  }

  // For retrieves, backends return raw matched records (all attributes);
  // the controller applies projection / BY / aggregation to the merged
  // set, since partial per-backend aggregates would be wrong (e.g. AVG).
  const auto* retrieve = std::get_if<abdl::RetrieveRequest>(&request);
  abdl::Request broadcast = request;
  if (retrieve != nullptr) {
    abdl::RetrieveRequest raw;
    raw.query = retrieve->query;
    raw.all_attributes = true;
    broadcast = raw;
  }

  ExecutionReport report;
  report.backend_times_ms.reserve(backends_.size());
  std::vector<abdm::Record> merged;
  double max_ms = 0.0;
  for (auto& backend : backends_) {
    MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                          backend->engine().Execute(broadcast));
    const double ms = options_.disk.CostMs(resp.io);
    backend->AddBusyMs(ms);
    report.backend_times_ms.push_back(ms);
    max_ms = std::max(max_ms, ms);
    report.response.affected += resp.affected;
    report.response.io += resp.io;
    merged.insert(merged.end(),
                  std::make_move_iterator(resp.records.begin()),
                  std::make_move_iterator(resp.records.end()));
  }
  if (retrieve != nullptr) {
    report.response.records = kds::PostProcessRetrieve(*retrieve,
                                                       std::move(merged));
  } else {
    report.response.records = std::move(merged);
  }
  report.response_time_ms = options_.bus.RoundTripMs() + max_ms;
  return report;
}

Result<ExecutionReport> Controller::ExecuteDistributedJoin(
    const abdl::RetrieveCommonRequest& request) {
  auto fetch_side = [&](const abdm::Query& query, ExecutionReport* report,
                        double* max_ms) -> Result<std::vector<abdm::Record>> {
    abdl::RetrieveRequest raw;
    raw.query = query;
    raw.all_attributes = true;
    std::vector<abdm::Record> merged;
    for (size_t i = 0; i < backends_.size(); ++i) {
      MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                            backends_[i]->engine().Execute(abdl::Request(raw)));
      const double ms = options_.disk.CostMs(resp.io);
      backends_[i]->AddBusyMs(ms);
      report->backend_times_ms[i] += ms;
      *max_ms = std::max(*max_ms, ms);
      report->response.io += resp.io;
      merged.insert(merged.end(),
                    std::make_move_iterator(resp.records.begin()),
                    std::make_move_iterator(resp.records.end()));
    }
    return merged;
  };

  ExecutionReport report;
  report.backend_times_ms.assign(backends_.size(), 0.0);
  // The two sides execute as consecutive parallel phases: each phase
  // costs its slowest backend.
  double left_max = 0.0;
  double right_max = 0.0;
  MLDS_ASSIGN_OR_RETURN(std::vector<abdm::Record> left,
                        fetch_side(request.left_query, &report, &left_max));
  MLDS_ASSIGN_OR_RETURN(std::vector<abdm::Record> right,
                        fetch_side(request.right_query, &report, &right_max));

  // Hash join at the controller, mirroring the kernel engine's local
  // RETRIEVE-COMMON semantics.
  std::map<abdm::Value, std::vector<const abdm::Record*>> right_by_value;
  for (const abdm::Record& r : right) {
    abdm::Value v = r.GetOrNull(request.right_attribute);
    if (!v.is_null()) right_by_value[std::move(v)].push_back(&r);
  }
  for (const abdm::Record& l : left) {
    abdm::Value v = l.GetOrNull(request.left_attribute);
    if (v.is_null()) continue;
    auto it = right_by_value.find(v);
    if (it == right_by_value.end()) continue;
    for (const abdm::Record* r : it->second) {
      abdm::Record merged = l;
      for (const auto& kw : r->keywords()) {
        if (!merged.Has(kw.attribute)) merged.Set(kw.attribute, kw.value);
      }
      if (!request.targets.empty()) {
        abdm::Record projected;
        for (const auto& target : request.targets) {
          projected.Set(target.attribute, merged.GetOrNull(target.attribute));
        }
        merged = std::move(projected);
      }
      report.response.records.push_back(std::move(merged));
    }
  }
  report.response_time_ms =
      2 * options_.bus.RoundTripMs() + left_max + right_max;
  return report;
}

Result<ExecutionReport> Controller::ExecuteTransaction(
    const abdl::Transaction& txn) {
  ExecutionReport total;
  total.backend_times_ms.assign(backends_.size(), 0.0);
  for (const auto& request : txn) {
    MLDS_ASSIGN_OR_RETURN(ExecutionReport report, Execute(request));
    total.response_time_ms += report.response_time_ms;
    total.response.affected += report.response.affected;
    total.response.io += report.response.io;
    for (size_t i = 0; i < report.backend_times_ms.size(); ++i) {
      total.backend_times_ms[i] += report.backend_times_ms[i];
    }
    total.response.records.insert(
        total.response.records.end(),
        std::make_move_iterator(report.response.records.begin()),
        std::make_move_iterator(report.response.records.end()));
  }
  return total;
}

size_t Controller::FileSize(std::string_view file) const {
  size_t total = 0;
  for (const auto& backend : backends_) {
    total += backend->engine().FileSize(file);
  }
  return total;
}

uint64_t Controller::TotalBlocks() const {
  uint64_t total = 0;
  for (const auto& backend : backends_) {
    total += backend->engine().TotalBlocks();
  }
  return total;
}

void Controller::ResetTiming() {
  total_response_ms_ = 0.0;
}

}  // namespace mlds::mbds
