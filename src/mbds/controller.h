#ifndef MLDS_MBDS_CONTROLLER_H_
#define MLDS_MBDS_CONTROLLER_H_

#include <memory>
#include <string>
#include <vector>

#include "abdl/request.h"
#include "abdm/schema.h"
#include "common/result.h"
#include "kds/engine.h"
#include "mbds/disk_model.h"

namespace mlds::mbds {

/// One backend (slave) of MBDS: identical software (a KDS engine) over its
/// own dedicated disk, holding a partition of every file's records.
class Backend {
 public:
  Backend(int id, kds::EngineOptions options) : id_(id), engine_(options) {}

  int id() const { return id_; }
  kds::Engine& engine() { return engine_; }
  const kds::Engine& engine() const { return engine_; }

  /// Total simulated milliseconds this backend's disk has been busy.
  double busy_ms() const { return busy_ms_; }
  void AddBusyMs(double ms) { busy_ms_ += ms; }

 private:
  int id_;
  kds::Engine engine_;
  double busy_ms_ = 0.0;
};

/// Execution outcome of one request through the backend controller.
struct ExecutionReport {
  /// Merged response (records from all backends, total affected count).
  kds::Response response;
  /// Simulated response time: bus round trip + the slowest participating
  /// backend (backends execute in parallel).
  double response_time_ms = 0.0;
  /// Per-backend execution times for this request.
  std::vector<double> backend_times_ms;
};

/// How INSERTs choose a backend.
enum class PlacementPolicy {
  /// Consecutive inserts land on consecutive backends: perfectly even.
  kRoundRobin,
  /// Hash of the record's database-key keyword (second keyword); falls
  /// back to round-robin for records without one. Deterministic placement
  /// independent of arrival order, at the cost of mild skew.
  kHashKey,
};

/// Options for constructing the multi-backend system.
struct MbdsOptions {
  int num_backends = 1;
  kds::EngineOptions engine;
  DiskModel disk;
  BusModel bus;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
};

/// The MBDS backend controller (master): supervises execution of database
/// transactions across the parallel backends (Ch. I.B.2).
///
/// Record distribution: INSERTs are routed round-robin so every file's
/// records spread evenly over the backends' disks. All other requests are
/// broadcast; each backend executes against its partition, and the
/// controller merges replies. The simulated response time of a broadcast
/// is the *maximum* backend time (they run in parallel) plus the bus round
/// trip — which is exactly what yields the paper's two results: reciprocal
/// response-time decrease as backends are added at fixed database size,
/// and response-time invariance when backends grow with the database.
class Controller {
 public:
  explicit Controller(MbdsOptions options);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  int num_backends() const { return static_cast<int>(backends_.size()); }

  /// Broadcasts the database definition to every backend.
  Status DefineDatabase(const abdm::DatabaseDescriptor& db);

  /// Broadcasts one file definition to every backend.
  Status DefineFile(const abdm::FileDescriptor& descriptor);

  bool HasFile(std::string_view file) const;

  /// Executes one ABDL request across the backends.
  Result<ExecutionReport> Execute(const abdl::Request& request);

  /// Executes a transaction sequentially; the report times sum.
  Result<ExecutionReport> ExecuteTransaction(const abdl::Transaction& txn);

  /// Total live records of `file` across all backends.
  size_t FileSize(std::string_view file) const;

  /// Total allocated blocks across all backends.
  uint64_t TotalBlocks() const;

  /// Cumulative simulated response time of every executed request.
  double total_response_time_ms() const { return total_response_ms_; }
  void ResetTiming();

  const Backend& backend(int i) const { return *backends_[i]; }

 private:
  Result<ExecutionReport> ExecuteInsert(const abdl::InsertRequest& request);
  Result<ExecutionReport> ExecuteBroadcast(const abdl::Request& request);
  /// RETRIEVE-COMMON: both sides broadcast as plain retrieves, with the
  /// join performed at the controller so cross-partition pairs survive.
  Result<ExecutionReport> ExecuteDistributedJoin(
      const abdl::RetrieveCommonRequest& request);

  MbdsOptions options_;
  std::vector<std::unique_ptr<Backend>> backends_;
  uint64_t insert_cursor_ = 0;
  double total_response_ms_ = 0.0;
};

}  // namespace mlds::mbds

#endif  // MLDS_MBDS_CONTROLLER_H_
