#ifndef MLDS_MBDS_CONTROLLER_H_
#define MLDS_MBDS_CONTROLLER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "abdl/request.h"
#include "abdm/schema.h"
#include "common/backoff.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "kds/engine.h"
#include "kds/wal.h"
#include "mbds/disk_model.h"
#include "mbds/fault_injector.h"
#include "mbds/health.h"

namespace mlds::mbds {

/// One backend (slave) of MBDS: identical software (a KDS engine) over its
/// own dedicated disk, holding a partition of every file's records. The
/// controller additionally keeps, per backend, a write-ahead log of every
/// mutation routed to its partition, a fault injector (for tests and fault
/// benchmarks), and a health state machine — together these let a backend
/// die and later rejoin by replaying its log (see Controller).
class Backend {
 public:
  Backend(int id, kds::EngineOptions options, HealthPolicy health = {})
      : id_(id),
        options_(std::move(options)),
        engine_(std::make_shared<kds::Engine>(options_)),
        health_(health) {}

  int id() const { return id_; }

  /// This backend's engine options (with its per-backend data dir, when
  /// the controller assigned storage dirs). Reintegration rebuilds the
  /// fresh engine from these.
  const kds::EngineOptions& engine_options() const { return options_; }
  kds::Engine& engine() { return *engine_; }
  const kds::Engine& engine() const { return *engine_; }

  /// Owning handle to the current engine: fan-out tasks hold one for the
  /// duration of a request, so a concurrent reintegration swapping in a
  /// rebuilt engine can never free the one they are executing against.
  std::shared_ptr<kds::Engine> SnapshotEngine() const {
    std::lock_guard<std::mutex> lock(engine_mutex_);
    return engine_;
  }
  void ReplaceEngine(std::shared_ptr<kds::Engine> fresh) {
    std::lock_guard<std::mutex> lock(engine_mutex_);
    engine_ = std::move(fresh);
  }

  kds::WalWriter& wal() { return wal_; }
  const kds::WalWriter& wal() const { return wal_; }
  FaultInjector& injector() { return injector_; }
  const FaultInjector& injector() const { return injector_; }
  HealthTracker& health() { return health_; }
  const HealthTracker& health() const { return health_; }

  /// Serializes the quarantine-skip decision (which appends missed
  /// mutations to the log) against the final hand-off of a reintegration,
  /// so a mutation is never lost in the quarantined -> healthy window.
  std::mutex& catchup_mutex() const { return catchup_mutex_; }

  /// Last checkpoint of this backend's partition (empty: none yet).
  std::string checkpoint() const {
    std::lock_guard<std::mutex> lock(engine_mutex_);
    return checkpoint_;
  }
  void SetCheckpoint(std::string snapshot) {
    std::lock_guard<std::mutex> lock(engine_mutex_);
    checkpoint_ = std::move(snapshot);
  }

  /// Whether this backend currently serves requests (not quarantined or
  /// mid-reintegration).
  bool available() const {
    BackendHealth state = health_.state();
    return state != BackendHealth::kQuarantined &&
           state != BackendHealth::kReintegrating;
  }

  /// Total simulated milliseconds this backend's disk has been busy.
  /// Atomic: broadcast fan-out executes backends on pool threads, and
  /// several client threads may drive the controller at once.
  double busy_ms() const { return busy_ms_.load(std::memory_order_relaxed); }
  void AddBusyMs(double ms) {
    busy_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  int id_;
  kds::EngineOptions options_;
  mutable std::mutex engine_mutex_;
  std::shared_ptr<kds::Engine> engine_;
  std::string checkpoint_;
  kds::WalWriter wal_;
  FaultInjector injector_;
  HealthTracker health_;
  mutable std::mutex catchup_mutex_;
  std::atomic<double> busy_ms_{0.0};
};

/// Execution outcome of one request through the backend controller.
struct ExecutionReport {
  /// Merged response (records from all backends, total affected count).
  /// `response.warnings` lists backends whose share is missing or
  /// degraded — a partial result is reported, never silently truncated.
  kds::Response response;
  /// Simulated response time: bus round trip + the slowest participating
  /// backend (backends execute in parallel).
  double response_time_ms = 0.0;
  /// Measured wall-clock time of the fan-out/merge, in milliseconds. With
  /// more than one backend this is the time of the slowest concurrent
  /// backend, not the sum — the real-hardware counterpart of
  /// `response_time_ms`'s simulated claim.
  double wall_time_ms = 0.0;
  /// Per-backend execution times for this request.
  std::vector<double> backend_times_ms;
};

/// How INSERTs choose a backend.
enum class PlacementPolicy {
  /// Consecutive inserts land on consecutive backends: perfectly even.
  kRoundRobin,
  /// Hash of the record's database-key keyword (second keyword); falls
  /// back to round-robin for records without one. Deterministic placement
  /// independent of arrival order, at the cost of mild skew.
  kHashKey,
};

/// Availability knobs of the controller. All thresholds are counted in
/// requests and all backoff delays are *simulated* unless `backoff_sleep`
/// is set, so fault-tolerance tests run deterministically with no sleeps.
struct FaultToleranceOptions {
  /// Per-request deadline on the backend fan-out, in wall-clock
  /// milliseconds. A backend that has not answered by the deadline is
  /// abandoned (its task is cancelled) and reported as a warning.
  /// <= 0 disables the deadline. Stall faults require a deadline: an
  /// abandoned stall is how they resolve.
  double request_deadline_ms = 0.0;
  /// Retries (after the first attempt) for transient injected faults.
  int max_retries = 2;
  /// Exponential-backoff schedule between retries.
  common::BackoffPolicy backoff;
  /// When true, retry delays are actually slept (cancellably). Off by
  /// default: delays are charged to simulated time only, keeping tests
  /// sleep-free.
  bool backoff_sleep = false;
  /// Quarantine / reintegration thresholds.
  HealthPolicy health;
};

/// Options for constructing the multi-backend system.
struct MbdsOptions {
  int num_backends = 1;
  kds::EngineOptions engine;
  DiskModel disk;
  BusModel bus;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  /// When > 0, each backend *actually waits* `CostMs(io) * latency_scale`
  /// wall-clock milliseconds after executing a request, emulating its
  /// dedicated disk's latency. Backends wait concurrently, so this turns
  /// the simulated-time model into observable wall-clock behaviour (the
  /// paper's response times were dominated by exactly this disk latency).
  /// 0 disables injection; see also Controller::set_latency_scale.
  double latency_scale = 0.0;
  FaultToleranceOptions fault_tolerance;
};

/// Health summary of one backend, as reported by Controller::Health().
struct BackendStatus {
  int id = 0;
  BackendHealth state = BackendHealth::kHealthy;
  std::string last_fault;
  uint64_t wal_entries = 0;
  uint64_t missed_requests = 0;
  uint64_t quarantine_count = 0;
  uint64_t faults_injected = 0;
};

/// Controller-wide health summary.
struct ControllerHealth {
  /// True when any backend is not healthy (results may be partial).
  bool degraded = false;
  std::vector<BackendStatus> backends;
};

/// The MBDS backend controller (master): supervises execution of database
/// transactions across the parallel backends (Ch. I.B.2).
///
/// Record distribution: INSERTs are routed round-robin so every file's
/// records spread evenly over the backends' disks. All other requests are
/// broadcast; each backend executes against its partition *concurrently*
/// (on the controller's thread pool), and the controller merges replies in
/// backend-id order so results are deterministic regardless of completion
/// order. The simulated response time of a broadcast is the *maximum*
/// backend time (they run in parallel) plus the bus round trip — which is
/// exactly what yields the paper's two results: reciprocal response-time
/// decrease as backends are added at fixed database size, and
/// response-time invariance when backends grow with the database.
///
/// Fault tolerance. The controller write-ahead logs every mutation it
/// routes to a backend into that backend's log *before* dispatching it, so
/// each backend's log always holds exactly the mutations its partition
/// should contain. When a backend fails — an injected crash, a transient
/// fault that outlives its retry budget, or a missed deadline — it is
/// quarantined: excluded from fan-out, its share of every retrieve
/// reported as a structured PartialResultWarning, and mutations it misses
/// still appended to its log as catch-up. After it has sat out
/// `reintegrate_after` requests the controller reintegrates it: repairs
/// any torn log tail, rebuilds a fresh engine from the backend's last
/// checkpoint plus a full log replay, and swaps it in — the rebuilt
/// partition is exactly what an always-healthy backend would hold
/// (rebuilding from scratch also makes an ambiguous "did the timed-out
/// mutation apply?" harmless: replay applies it exactly once).
///
/// Thread safety: the controller may be driven by many client threads at
/// once. `backends_` is immutable after construction (backends are never
/// added or removed), each kds::Engine serializes internally, and the
/// controller's own mutable state (`insert_cursor_`, `total_response_ms_`,
/// per-backend `busy_ms_`) is atomic. Const accessors (FileSize,
/// TotalBlocks, backend(), HasFile) therefore need no controller-level
/// lock: they read the immutable vector and locked/atomic state only.
/// Reintegration assumes no client thread is mid-fan-out on the rejoining
/// backend — guaranteed in practice because a backend only becomes due
/// after sitting out `reintegrate_after` whole requests.
class Controller {
 public:
  explicit Controller(MbdsOptions options);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  int num_backends() const { return static_cast<int>(backends_.size()); }

  /// Broadcasts the database definition to every available backend.
  Status DefineDatabase(const abdm::DatabaseDescriptor& db);

  /// Broadcasts one file definition to every available backend.
  Status DefineFile(const abdm::FileDescriptor& descriptor);

  /// Broadcasts a secondary-index build to every available backend,
  /// logging "INDEX <file> <attr>" to each backend's WAL first (catch-up
  /// for quarantined ones), so a rebuilt backend recreates the index.
  Status CreateIndex(std::string_view file, std::string_view attr);

  bool HasFile(std::string_view file) const;

  /// Executes one ABDL request across the backends.
  Result<ExecutionReport> Execute(const abdl::Request& request);

  /// Executes a transaction through the dependency-aware pipeline:
  /// statements whose file footprints are disjoint (no write-write,
  /// write-read, or read-write overlap) run concurrently on the thread
  /// pool; a statement conflicting with an earlier one starts only after
  /// that statement's stage completes, so conflicting statements always
  /// observe program order. Reports merge in statement order and the
  /// simulated time sums the stages (each stage costs its slowest
  /// statement), so results and times are deterministic.
  Result<ExecutionReport> ExecuteTransaction(const abdl::Transaction& txn);

  /// Total live records of `file` across all available backends (a
  /// quarantined backend's partition is unavailable until it rejoins).
  size_t FileSize(std::string_view file) const;

  /// Total allocated blocks across all available backends.
  uint64_t TotalBlocks() const;

  /// Cumulative simulated response time of every executed request.
  double total_response_time_ms() const {
    return total_response_ms_.load(std::memory_order_relaxed);
  }
  void ResetTiming();

  /// Adjusts disk-latency injection at runtime (see
  /// MbdsOptions::latency_scale). Benchmarks load data with injection off
  /// and enable it only for the measured phase.
  void set_latency_scale(double scale) {
    latency_scale_.store(scale, std::memory_order_relaxed);
  }

  const Backend& backend(int i) const { return *backends_[i]; }
  Backend& mutable_backend(int i) { return *backends_[i]; }

  /// Arms backend `i`'s fault injector. Convenience for tests and the
  /// fault benchmarks; equivalent to mutable_backend(i).injector().Arm().
  void InjectFault(int i, FaultPlan plan) { backends_[i]->injector().Arm(plan); }

  /// Checkpoints every backend: snapshots each partition and truncates its
  /// log, bounding replay time on the next reintegration. The caller must
  /// quiesce the controller (no concurrent mutations).
  Status CheckpointAll();

  /// Current health of every backend.
  ControllerHealth Health() const;

  /// Buffer-pool traffic summed over every backend's engine.
  kds::PoolCounters PoolStats() const;

  /// Scrubs every backend's on-disk pages through the checksum verify;
  /// per-file verdicts carry a "backend<i>/" prefix so one report covers
  /// the whole kernel.
  kds::IntegrityReport VerifyIntegrity() const;

  /// Storage-integrity counters summed over every backend's engine.
  kds::IntegrityCounters IntegrityStats() const;

  /// Statistics & join counters: every backend engine's counts plus the
  /// controller's own distributed-join strategy / re-plan counts.
  kds::StatisticsCounters StatisticsStats() const;

 private:
  /// One backend's share of a fault-tolerant fan-out.
  struct FanoutSlot {
    kds::Response response;
    double ms = 0.0;
    /// Simulated backoff delay spent on retries for this request.
    double backoff_ms = 0.0;
    Status status = Status::OK();
    /// The injected fault that ended the attempt chain (kNone: the
    /// request reached the engine and `status` is its genuine outcome).
    FaultKind fault = FaultKind::kNone;
    bool timed_out = false;
    int attempts = 0;
    bool done = false;
  };

  /// One unit of a fault-tolerant fan-out: run `*request` on backend
  /// `backend`.
  struct FanoutJob {
    size_t backend = 0;
    std::shared_ptr<const abdl::Request> request;
  };

  /// Shared state of one fan-out: written by pool tasks, read by the
  /// dispatching thread. Held by shared_ptr so a task abandoned at the
  /// deadline can still complete harmlessly after the dispatcher moved on.
  struct FanoutState;

  /// Runs every job concurrently on the pool, waiting at most the
  /// configured deadline. Jobs that miss the deadline are cancelled and
  /// returned with `timed_out` set. Slot k corresponds to jobs[k].
  std::vector<FanoutSlot> FanOutWithFaults(std::vector<FanoutJob> jobs);

  /// One backend's attempt chain: consult the fault injector, retry
  /// transient faults with exponential backoff, then execute on the
  /// engine. Runs on a pool thread; `cancel` is the deadline hand-brake.
  FanoutSlot AttemptOnBackend(size_t i, const abdl::Request& request,
                              Cancellation* cancel);

  /// Applies one slot's outcome to backend `i`'s health tracker and, on
  /// failure, appends a warning naming the backend to `warnings`.
  /// `mutation` marks failures fatal (the backend missed a write its log
  /// already holds, so only a rebuild can realign it).
  void ApplySlotHealth(size_t i, const FanoutSlot& slot, bool mutation,
                       std::vector<kds::PartialResultWarning>* warnings);

  /// Decides participation of backend `i` in one request. An unavailable
  /// backend is skipped: its missed-request counter advances and, for
  /// mutations, `wal_payloads` are appended to its log as catch-up (under
  /// the catch-up mutex, so the entries are never lost to a concurrent
  /// reintegration hand-off). Returns true when the backend participates.
  bool AdmitBackend(size_t i, const std::vector<std::string>& wal_payloads,
                    std::vector<kds::PartialResultWarning>* warnings);

  /// Reintegrates every quarantined backend that has sat out enough
  /// requests (see FaultToleranceOptions::health).
  void MaybeReintegrate();

  /// Rebuilds `backend`'s engine from its checkpoint + log and swaps it
  /// in. Returns true when the backend rejoined.
  bool ReintegrateBackend(Backend& backend);

  /// Runs fn(0) .. fn(tasks-1) concurrently on the pool and returns the
  /// lowest-index error (OK when all succeed), so error reporting is
  /// deterministic regardless of completion order.
  Status RunParallel(size_t tasks, const std::function<Status(size_t)>& fn);

  Result<ExecutionReport> ExecuteInsert(const abdl::InsertRequest& request);
  /// Batch INSERT: partitions the records by the placement policy into one
  /// sub-batch per backend, fans the sub-batches out concurrently, and
  /// logs each applied sub-batch as one WAL entry on its backend.
  Result<ExecutionReport> ExecuteBatchInsert(
      const abdl::BatchInsertRequest& request);
  Result<ExecutionReport> ExecuteBroadcast(const abdl::Request& request);
  /// RETRIEVE-COMMON: both sides broadcast as plain retrieves, with the
  /// join performed at the controller so cross-partition pairs survive.
  Result<ExecutionReport> ExecuteDistributedJoin(
      const abdl::RetrieveCommonRequest& request);

  /// Executes `request` on backend `i`'s engine, charging its busy time
  /// and sleeping the injected latency. Returns the engine response and
  /// the simulated milliseconds spent.
  Result<std::pair<kds::Response, double>> RunOnBackend(
      size_t i, const abdl::Request& request);

  MbdsOptions options_;
  /// Immutable after the constructor; see the class comment.
  std::vector<std::unique_ptr<Backend>> backends_;
  /// Fan-out workers: one thread per backend. The dispatching thread does
  /// not participate in fault-tolerant fan-outs (it must stay free to
  /// enforce the deadline), so the pool alone must cover every backend.
  /// Fan-out tasks never submit further work to this pool, so its wait
  /// graph is acyclic.
  std::unique_ptr<common::ThreadPool> pool_;
  /// Statement-level workers for the transaction pipeline. Separate from
  /// `pool_` because statement tasks block on fan-outs: running both
  /// layers on one pool could park every worker in a dispatcher and
  /// deadlock the fan-out jobs they are waiting for.
  std::unique_ptr<common::ThreadPool> txn_pool_;
  std::atomic<uint64_t> insert_cursor_{0};
  std::atomic<uint64_t> request_seq_{0};
  std::atomic<double> total_response_ms_{0.0};
  std::atomic<double> latency_scale_{0.0};
  /// Controller-side distributed-join strategy / re-plan counters.
  kds::AtomicStatisticsCounters stats_counters_;
};

}  // namespace mlds::mbds

#endif  // MLDS_MBDS_CONTROLLER_H_
