#ifndef MLDS_MBDS_CONTROLLER_H_
#define MLDS_MBDS_CONTROLLER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "abdl/request.h"
#include "abdm/schema.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "kds/engine.h"
#include "mbds/disk_model.h"

namespace mlds::mbds {

/// One backend (slave) of MBDS: identical software (a KDS engine) over its
/// own dedicated disk, holding a partition of every file's records.
class Backend {
 public:
  Backend(int id, kds::EngineOptions options) : id_(id), engine_(options) {}

  int id() const { return id_; }
  kds::Engine& engine() { return engine_; }
  const kds::Engine& engine() const { return engine_; }

  /// Total simulated milliseconds this backend's disk has been busy.
  /// Atomic: broadcast fan-out executes backends on pool threads, and
  /// several client threads may drive the controller at once.
  double busy_ms() const { return busy_ms_.load(std::memory_order_relaxed); }
  void AddBusyMs(double ms) {
    busy_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

 private:
  int id_;
  kds::Engine engine_;
  std::atomic<double> busy_ms_{0.0};
};

/// Execution outcome of one request through the backend controller.
struct ExecutionReport {
  /// Merged response (records from all backends, total affected count).
  kds::Response response;
  /// Simulated response time: bus round trip + the slowest participating
  /// backend (backends execute in parallel).
  double response_time_ms = 0.0;
  /// Measured wall-clock time of the fan-out/merge, in milliseconds. With
  /// more than one backend this is the time of the slowest concurrent
  /// backend, not the sum — the real-hardware counterpart of
  /// `response_time_ms`'s simulated claim.
  double wall_time_ms = 0.0;
  /// Per-backend execution times for this request.
  std::vector<double> backend_times_ms;
};

/// How INSERTs choose a backend.
enum class PlacementPolicy {
  /// Consecutive inserts land on consecutive backends: perfectly even.
  kRoundRobin,
  /// Hash of the record's database-key keyword (second keyword); falls
  /// back to round-robin for records without one. Deterministic placement
  /// independent of arrival order, at the cost of mild skew.
  kHashKey,
};

/// Options for constructing the multi-backend system.
struct MbdsOptions {
  int num_backends = 1;
  kds::EngineOptions engine;
  DiskModel disk;
  BusModel bus;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  /// When > 0, each backend *actually waits* `CostMs(io) * latency_scale`
  /// wall-clock milliseconds after executing a request, emulating its
  /// dedicated disk's latency. Backends wait concurrently, so this turns
  /// the simulated-time model into observable wall-clock behaviour (the
  /// paper's response times were dominated by exactly this disk latency).
  /// 0 disables injection; see also Controller::set_latency_scale.
  double latency_scale = 0.0;
};

/// The MBDS backend controller (master): supervises execution of database
/// transactions across the parallel backends (Ch. I.B.2).
///
/// Record distribution: INSERTs are routed round-robin so every file's
/// records spread evenly over the backends' disks. All other requests are
/// broadcast; each backend executes against its partition *concurrently*
/// (on the controller's thread pool), and the controller merges replies in
/// backend-id order so results are deterministic regardless of completion
/// order. The simulated response time of a broadcast is the *maximum*
/// backend time (they run in parallel) plus the bus round trip — which is
/// exactly what yields the paper's two results: reciprocal response-time
/// decrease as backends are added at fixed database size, and
/// response-time invariance when backends grow with the database.
///
/// Thread safety: the controller may be driven by many client threads at
/// once. `backends_` is immutable after construction (backends are never
/// added or removed), each kds::Engine serializes internally, and the
/// controller's own mutable state (`insert_cursor_`, `total_response_ms_`,
/// per-backend `busy_ms_`) is atomic. Const accessors (FileSize,
/// TotalBlocks, backend(), HasFile) therefore need no controller-level
/// lock: they read the immutable vector and locked/atomic state only.
class Controller {
 public:
  explicit Controller(MbdsOptions options);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  int num_backends() const { return static_cast<int>(backends_.size()); }

  /// Broadcasts the database definition to every backend.
  Status DefineDatabase(const abdm::DatabaseDescriptor& db);

  /// Broadcasts one file definition to every backend.
  Status DefineFile(const abdm::FileDescriptor& descriptor);

  bool HasFile(std::string_view file) const;

  /// Executes one ABDL request across the backends.
  Result<ExecutionReport> Execute(const abdl::Request& request);

  /// Executes a transaction through the dependency-aware pipeline:
  /// statements whose file footprints are disjoint (no write-write,
  /// write-read, or read-write overlap) run concurrently on the thread
  /// pool; a statement conflicting with an earlier one starts only after
  /// that statement's stage completes, so conflicting statements always
  /// observe program order. Reports merge in statement order and the
  /// simulated time sums the stages (each stage costs its slowest
  /// statement), so results and times are deterministic.
  Result<ExecutionReport> ExecuteTransaction(const abdl::Transaction& txn);

  /// Total live records of `file` across all backends.
  size_t FileSize(std::string_view file) const;

  /// Total allocated blocks across all backends.
  uint64_t TotalBlocks() const;

  /// Cumulative simulated response time of every executed request.
  double total_response_time_ms() const {
    return total_response_ms_.load(std::memory_order_relaxed);
  }
  void ResetTiming();

  /// Adjusts disk-latency injection at runtime (see
  /// MbdsOptions::latency_scale). Benchmarks load data with injection off
  /// and enable it only for the measured phase.
  void set_latency_scale(double scale) {
    latency_scale_.store(scale, std::memory_order_relaxed);
  }

  const Backend& backend(int i) const { return *backends_[i]; }

 private:
  /// Runs fn(0) .. fn(tasks-1) concurrently on the pool and returns the
  /// lowest-index error (OK when all succeed), so error reporting is
  /// deterministic regardless of completion order.
  Status RunParallel(size_t tasks, const std::function<Status(size_t)>& fn);

  /// RunParallel over the backends: the single fan-out/join path shared
  /// by definitions and broadcasts.
  Status ForEachBackend(const std::function<Status(size_t)>& fn);

  Result<ExecutionReport> ExecuteInsert(const abdl::InsertRequest& request);
  Result<ExecutionReport> ExecuteBroadcast(const abdl::Request& request);
  /// RETRIEVE-COMMON: both sides broadcast as plain retrieves, with the
  /// join performed at the controller so cross-partition pairs survive.
  Result<ExecutionReport> ExecuteDistributedJoin(
      const abdl::RetrieveCommonRequest& request);

  /// Executes `request` on backend `i`, charging its busy time and
  /// sleeping the injected latency. Returns the engine response and the
  /// simulated milliseconds spent.
  Result<std::pair<kds::Response, double>> RunOnBackend(
      size_t i, const abdl::Request& request);

  MbdsOptions options_;
  /// Immutable after the constructor; see the class comment.
  std::vector<std::unique_ptr<Backend>> backends_;
  /// Fan-out workers: backends-1 threads, the calling thread covers the
  /// last backend. A single-backend controller runs purely serially.
  std::unique_ptr<common::ThreadPool> pool_;
  std::atomic<uint64_t> insert_cursor_{0};
  std::atomic<double> total_response_ms_{0.0};
  std::atomic<double> latency_scale_{0.0};
};

}  // namespace mlds::mbds

#endif  // MLDS_MBDS_CONTROLLER_H_
