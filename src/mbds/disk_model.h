#ifndef MLDS_MBDS_DISK_MODEL_H_
#define MLDS_MBDS_DISK_MODEL_H_

#include "kds/io_stats.h"

namespace mlds::mbds {

/// Deterministic cost model for one backend's dedicated disk system.
///
/// The thesis ran on 1987 lab minicomputers with one disk per backend; we
/// do not have that hardware, so MBDS is reproduced as a simulator: each
/// backend executes real ABDL requests over its record partition and this
/// model converts the counted physical work into milliseconds. The default
/// constants approximate a late-1980s Winchester disk (~28 ms average
/// positioning, ~2 ms per block transfer), though only the *shape* of the
/// scaling results depends on them, not the particular values.
struct DiskModel {
  /// Positioning (seek + rotational) cost charged once per request that
  /// touches the disk at all.
  double seek_ms = 28.0;
  /// Transfer cost per data block read or written.
  double transfer_ms_per_block = 2.0;
  /// Directory (index) probe cost — the directory is small and assumed
  /// memory-resident after the first access, so probes are cheap.
  double index_probe_ms = 0.2;
  /// CPU cost of examining one record against a query.
  double cpu_ms_per_record = 0.01;

  /// Milliseconds this backend spends executing a request whose physical
  /// work is `io`.
  double CostMs(const kds::IoStats& io) const {
    double ms = 0.0;
    if (io.total_blocks() > 0) ms += seek_ms;
    ms += transfer_ms_per_block * static_cast<double>(io.total_blocks());
    ms += index_probe_ms * static_cast<double>(io.index_probes);
    ms += cpu_ms_per_record * static_cast<double>(io.records_examined);
    return ms;
  }
};

/// Cost of the controller <-> backend message exchange. The backends are
/// connected to the controller by a broadcast bus (Figure 1.3), so a
/// request costs one broadcast plus one reply regardless of backend count.
struct BusModel {
  double broadcast_ms = 1.0;
  double reply_ms = 1.0;

  double RoundTripMs() const { return broadcast_ms + reply_ms; }
};

}  // namespace mlds::mbds

#endif  // MLDS_MBDS_DISK_MODEL_H_
