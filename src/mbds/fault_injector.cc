#include "mbds/fault_injector.h"

namespace mlds::mbds {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kError:
      return "error";
    case FaultKind::kStall:
      return "stall";
    case FaultKind::kCrash:
      return "crash";
  }
  return "unknown";
}

void FaultInjector::Arm(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  remaining_ = plan.kind == FaultKind::kNone ? 0 : plan.count;
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = FaultPlan{};
  remaining_ = 0;
}

FaultPlan FaultInjector::Seeded(FaultKind kind, uint64_t seed,
                                uint64_t window, int count) {
  // splitmix64: a different seed lands the fault on a different request,
  // the same seed always on the same one.
  uint64_t z = seed + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  FaultPlan plan;
  plan.kind = kind;
  plan.at_attempt = window == 0 ? 0 : z % window;
  plan.count = count;
  return plan;
}

FaultKind FaultInjector::OnAttempt() {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t attempt = attempts_++;
  if (plan_.kind == FaultKind::kNone || remaining_ <= 0) {
    return FaultKind::kNone;
  }
  if (attempt < plan_.at_attempt) return FaultKind::kNone;
  --remaining_;
  ++faults_served_;
  return plan_.kind;
}

uint64_t FaultInjector::attempts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return attempts_;
}

uint64_t FaultInjector::faults_served() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_served_;
}

void Cancellation::Cancel() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cancelled_ = true;
  }
  cv_.notify_all();
}

bool Cancellation::cancelled() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cancelled_;
}

bool Cancellation::WaitMs(double ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (ms > 0) {
    cv_.wait_for(lock, std::chrono::duration<double, std::milli>(ms),
                 [&] { return cancelled_; });
  } else {
    cv_.wait(lock, [&] { return cancelled_; });
  }
  return cancelled_;
}

}  // namespace mlds::mbds
