#ifndef MLDS_MBDS_FAULT_INJECTOR_H_
#define MLDS_MBDS_FAULT_INJECTOR_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string_view>

namespace mlds::mbds {

/// Fault a backend's injector can serve on one execution attempt.
///
///   kError — transient failure: the attempt fails but a retry may
///            succeed. Models a dropped bus message or an I/O hiccup.
///   kStall — the attempt blocks (on its cancellation token) without
///            executing, until the controller's deadline abandons it.
///            Models a hung backend.
///   kCrash — fatal: the attempt fails, the backend's engine is declared
///            dead and must be rebuilt from checkpoint + WAL before it
///            can serve again.
enum class FaultKind { kNone, kError, kStall, kCrash };

std::string_view FaultKindName(FaultKind kind);

/// When and how a backend misbehaves. Counted in execution attempts
/// (retries are attempts too), so tests are deterministic.
struct FaultPlan {
  FaultKind kind = FaultKind::kNone;
  /// 0-based attempt index on which the fault first fires.
  uint64_t at_attempt = 0;
  /// Number of consecutive attempts that fault (arm with a count larger
  /// than the retry budget to make a transient fault stick).
  int count = 1;
};

/// Per-backend fault injector: consulted once per execution attempt,
/// before the request reaches the engine. Thread-safe.
class FaultInjector {
 public:
  void Arm(FaultPlan plan);
  void Disarm();

  /// Deterministically derives an attempt index in [0, window) from
  /// `seed` (splitmix64), so seeded fault campaigns are reproducible.
  static FaultPlan Seeded(FaultKind kind, uint64_t seed, uint64_t window,
                          int count = 1);

  /// Consumes one attempt slot and returns the fault (if any) to inject
  /// for it.
  FaultKind OnAttempt();

  uint64_t attempts() const;
  uint64_t faults_served() const;

 private:
  mutable std::mutex mutex_;
  FaultPlan plan_;
  uint64_t attempts_ = 0;
  uint64_t faults_served_ = 0;
  int remaining_ = 0;
};

/// One-shot cancellation token shared between a fan-out task and the
/// controller that may abandon it on deadline. A stalled task parks in
/// WaitMs; Cancel releases it without executing the request.
class Cancellation {
 public:
  void Cancel();
  bool cancelled() const;

  /// Blocks until cancelled, or until `ms` milliseconds elapsed when
  /// `ms` > 0. Returns true when the wait ended by cancellation.
  bool WaitMs(double ms);

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool cancelled_ = false;
};

}  // namespace mlds::mbds

#endif  // MLDS_MBDS_FAULT_INJECTOR_H_
