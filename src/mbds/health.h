#ifndef MLDS_MBDS_HEALTH_H_
#define MLDS_MBDS_HEALTH_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

namespace mlds::mbds {

/// Health of one MBDS backend, as tracked by the controller.
///
///   healthy --failure--> suspect --more failures--> quarantined
///      ^                    |                            |
///      |<----success--------+      (misses requests)     |
///      |                                                 v
///      +<--replay succeeds-- reintegrating <--due--------+
///
/// A fatal failure (crash, or a mutation the backend missed — its
/// partition is now stale) quarantines immediately: a stale backend must
/// not serve reads, and only a WAL replay can make it whole again.
enum class BackendHealth {
  kHealthy,
  kSuspect,
  kQuarantined,
  kReintegrating,
};

std::string_view BackendHealthName(BackendHealth state);

/// Thresholds of the health state machine. Counted in requests, not wall
/// time, so fault-tolerance tests are deterministic (no sleeps).
struct HealthPolicy {
  /// Consecutive non-fatal failures before suspect escalates to
  /// quarantined.
  int quarantine_after = 3;
  /// Requests a quarantined backend must sit out before the controller
  /// attempts reintegration (WAL replay + rejoin).
  int reintegrate_after = 2;
};

/// Per-backend health state machine. Thread-safe; every transition is a
/// short critical section.
class HealthTracker {
 public:
  explicit HealthTracker(HealthPolicy policy = {}) : policy_(policy) {}

  BackendHealth state() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_;
  }

  /// Cause of the most recent failure ("injected crash", "deadline
  /// exceeded", ...), for warnings and health reports.
  std::string last_fault() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return last_fault_;
  }

  int consecutive_failures() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return consecutive_failures_;
  }

  uint64_t quarantine_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return quarantines_;
  }

  uint64_t missed_requests() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return missed_requests_;
  }

  /// A request completed on the backend: clears suspicion; a
  /// reintegrating backend that answers successfully is healthy again.
  void OnSuccess();

  /// A request failed on the backend. `fatal` (crash or missed mutation)
  /// quarantines immediately; otherwise failures accumulate through
  /// suspect until the quarantine threshold. Returns the new state.
  BackendHealth OnFailure(std::string detail, bool fatal);

  /// Counts one request the quarantined backend sat out. Returns true
  /// when the backend has missed enough to be due a reintegration
  /// attempt.
  bool OnQuarantinedRequest();

  /// Whether the backend is quarantined and has missed enough requests
  /// to be due a reintegration attempt.
  bool due_reintegration() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return state_ == BackendHealth::kQuarantined &&
           missed_requests_ >=
               static_cast<uint64_t>(policy_.reintegrate_after);
  }

  /// Attempts quarantined -> reintegrating. Returns false if another
  /// thread already claimed the reintegration (or the state moved on).
  bool BeginReintegration();

  /// Reintegration outcome: success -> healthy, failure -> quarantined
  /// (a later attempt will retry).
  void FinishReintegration(bool success);

 private:
  HealthPolicy policy_;
  mutable std::mutex mutex_;
  BackendHealth state_ = BackendHealth::kHealthy;
  int consecutive_failures_ = 0;
  uint64_t missed_requests_ = 0;   // while quarantined, since quarantine
  uint64_t quarantines_ = 0;
  std::string last_fault_;
};

}  // namespace mlds::mbds

#endif  // MLDS_MBDS_HEALTH_H_
