#ifndef MLDS_MLDS_MLDS_H_
#define MLDS_MLDS_MLDS_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "daplex/schema.h"
#include "kc/executor.h"
#include "kds/engine.h"
#include "hierarchical/schema.h"
#include "kms/daplex_machine.h"
#include "kms/dli_machine.h"
#include "kms/dml_machine.h"
#include "kms/sql_machine.h"
#include "kms/translation_cache.h"
#include "mbds/controller.h"
#include "network/schema.h"
#include "relational/schema.h"
#include "transform/fun_to_net.h"

namespace mlds {

/// The Multi-Lingual Database System facade: the Language Interface Layer
/// (LIL) plus the database registry, wired over a kernel database system
/// that is either a single KDS engine or the multi-backend MBDS.
///
/// Four user data models load through their DDLs (network, functional,
/// relational, hierarchical) and four language interfaces open sessions
/// over them (CODASYL-DML, Daplex, SQL, DL/I); `executor()` reaches the
/// kernel's ABDL directly. Usage mirrors the thesis's workflow (Ch. V):
///
///   MldsSystem mlds;
///   mlds.LoadFunctionalDatabase(daplex_ddl);              // define
///   auto session = mlds.OpenCodasylSession("university"); // transform
///   session->ExecuteText("MOVE 'CS' TO major IN student");
///   session->ExecuteText("FIND ANY student USING major IN student");
///
/// OpenCodasylSession searches the existing network schemas first; when
/// the name belongs to a functional schema instead, the schema transformer
/// runs (functional -> network, Ch. V) and the session operates on the
/// transformed database with the functional-aware KMS translation — the
/// thesis's cross-model access.
class MldsSystem {
 public:
  struct Options {
    /// Use the multi-backend kernel (MBDS) instead of a single engine.
    bool use_mbds = false;
    int backends = 4;
    kds::EngineOptions engine;
    mbds::DiskModel disk;
    mbds::BusModel bus;
  };

  MldsSystem();
  explicit MldsSystem(Options options);
  ~MldsSystem();

  MldsSystem(const MldsSystem&) = delete;
  MldsSystem& operator=(const MldsSystem&) = delete;

  /// Defines a new network database from CODASYL DDL text; its kernel
  /// files (AB(network)) are created immediately.
  Status LoadNetworkDatabase(std::string_view ddl);

  /// Defines a new relational database from SQL CREATE TABLE DDL; its
  /// kernel files (AB(relational)) are created immediately.
  Status LoadRelationalDatabase(std::string_view ddl);

  /// Defines a new hierarchical database from segment DDL; its kernel
  /// files (AB(hierarchical)) are created immediately.
  Status LoadHierarchicalDatabase(std::string_view ddl);

  /// Defines a new functional database from Daplex DDL text. The
  /// functional -> network transformation runs eagerly (the direct
  /// language interface's one-step schema transformation, Ch. III.B.2)
  /// and the AB(functional) kernel files are created.
  Status LoadFunctionalDatabase(std::string_view ddl);

  /// Opens a CODASYL-DML session against the named database. Searches the
  /// network schema list first, then the functional schema list. The
  /// returned machine is owned by the system and remains valid until the
  /// system is destroyed.
  Result<kms::DmlMachine*> OpenCodasylSession(std::string_view db_name);

  /// Opens a Daplex query session against a *functional* database — the
  /// functional language interface over the same kernel files, which is
  /// what makes the system multi-lingual.
  Result<kms::DaplexMachine*> OpenDaplexSession(std::string_view db_name);

  /// Opens a SQL session against a *relational* database — the third
  /// language interface of MLDS.
  Result<kms::SqlMachine*> OpenSqlSession(std::string_view db_name);

  /// Opens a DL/I session against a *hierarchical* database — the fourth
  /// language interface of MLDS.
  Result<kms::DliMachine*> OpenDliSession(std::string_view db_name);

  /// Names of loaded databases, network then functional.
  std::vector<std::string> DatabaseNames() const;

  const network::Schema* FindNetworkSchema(std::string_view name) const;
  const daplex::FunctionalSchema* FindFunctionalSchema(
      std::string_view name) const;
  const relational::Schema* FindRelationalSchema(std::string_view name) const;
  const hierarchical::Schema* FindHierarchicalSchema(
      std::string_view name) const;

  /// The network view of a database: the schema itself for network
  /// databases, the transformed schema for functional ones.
  const network::Schema* NetworkViewOf(std::string_view name) const;

  /// The transformation metadata for a functional database (nullptr for
  /// native network databases).
  const transform::FunNetMapping* MappingOf(std::string_view name) const;

  /// Direct access to the kernel for loaders and benchmarks.
  kc::KernelExecutor* executor() { return executor_.get(); }

  /// Parses one ABDL request, executes it in explain mode through the
  /// kernel controller, and returns its annotated physical plan rendered
  /// by KFS under an "ABDL PLAN" header. INSERT is rejected — it chooses
  /// no access path, so there is no plan to show.
  Result<std::string> ExplainAbdl(std::string_view request_text);

  /// Degraded-mode status of the kernel, rendered by KFS under a
  /// "KERNEL HEALTH" header: per-backend state, WAL depth, quarantine
  /// history, and whether results may currently be partial. The same
  /// status is reachable programmatically through any session's Health().
  std::string HealthReport() const;

  /// The structured form of HealthReport: what the wire server serializes
  /// for remote HEALTH requests (kfs::SerializeHealth / ParseHealth).
  kc::KernelHealth Health() const { return executor_->Health(); }

  /// The compiled-translation cache shared by all sessions of every
  /// language. Loading any database bumps its schema epoch, invalidating
  /// every cached translation.
  kms::TranslationCache& translation_cache() { return translation_cache_; }

  /// The MBDS controller when `use_mbds`, else nullptr.
  mbds::Controller* controller() { return controller_.get(); }

 private:
  struct NetworkDb {
    network::Schema schema;
  };
  struct FunctionalDb {
    daplex::FunctionalSchema schema;
    transform::FunNetMapping mapping;
  };
  struct RelationalDb {
    relational::Schema schema;
  };
  struct HierarchicalDb {
    hierarchical::Schema schema;
  };

  Options options_;
  kms::TranslationCache translation_cache_;
  std::unique_ptr<kds::Engine> engine_;
  std::unique_ptr<mbds::Controller> controller_;
  std::unique_ptr<kc::KernelExecutor> executor_;
  std::vector<std::unique_ptr<NetworkDb>> network_dbs_;
  std::vector<std::unique_ptr<FunctionalDb>> functional_dbs_;
  std::vector<std::unique_ptr<RelationalDb>> relational_dbs_;
  std::vector<std::unique_ptr<HierarchicalDb>> hierarchical_dbs_;
  std::vector<std::unique_ptr<kms::DmlMachine>> sessions_;
  std::vector<std::unique_ptr<kms::DaplexMachine>> daplex_sessions_;
  std::vector<std::unique_ptr<kms::SqlMachine>> sql_sessions_;
  std::vector<std::unique_ptr<kms::DliMachine>> dli_sessions_;
};

}  // namespace mlds

#endif  // MLDS_MLDS_MLDS_H_
