#include "mlds/mlds.h"

#include "abdl/parser.h"
#include "daplex/ddl_parser.h"
#include "kfs/formatter.h"
#include "network/ddl_parser.h"
#include "transform/abdm_mapping.h"
#include "transform/hie_to_abdm.h"
#include "transform/rel_to_abdm.h"

namespace mlds {

MldsSystem::MldsSystem() : MldsSystem(Options{}) {}

MldsSystem::MldsSystem(Options options) : options_(options) {
  if (options_.use_mbds) {
    mbds::MbdsOptions mbds_options;
    mbds_options.num_backends = options_.backends;
    mbds_options.engine = options_.engine;
    mbds_options.disk = options_.disk;
    mbds_options.bus = options_.bus;
    controller_ = std::make_unique<mbds::Controller>(mbds_options);
    executor_ = std::make_unique<kc::MbdsExecutor>(controller_.get());
  } else {
    engine_ = std::make_unique<kds::Engine>(options_.engine);
    executor_ = std::make_unique<kc::EngineExecutor>(engine_.get());
  }
}

MldsSystem::~MldsSystem() = default;

Status MldsSystem::LoadNetworkDatabase(std::string_view ddl) {
  MLDS_ASSIGN_OR_RETURN(network::Schema schema, network::ParseSchema(ddl));
  if (schema.name().empty()) {
    return Status::InvalidArgument(
        "network DDL must carry a SCHEMA NAME IS clause");
  }
  if (FindNetworkSchema(schema.name()) != nullptr ||
      FindFunctionalSchema(schema.name()) != nullptr) {
    return Status::AlreadyExists("database '" + schema.name() +
                                 "' already loaded");
  }
  MLDS_ASSIGN_OR_RETURN(abdm::DatabaseDescriptor descriptor,
                        transform::MapNetworkToAbdm(schema));
  MLDS_RETURN_IF_ERROR(executor_->DefineDatabase(descriptor));
  auto db = std::make_unique<NetworkDb>();
  db->schema = std::move(schema);
  network_dbs_.push_back(std::move(db));
  // DDL: every cached translation may now name stale files/columns.
  translation_cache_.InvalidateAll();
  return Status::OK();
}

Status MldsSystem::LoadRelationalDatabase(std::string_view ddl) {
  MLDS_ASSIGN_OR_RETURN(relational::Schema schema,
                        relational::ParseRelationalSchema(ddl));
  if (schema.name().empty()) {
    return Status::InvalidArgument("relational DDL must carry a SCHEMA "
                                   "clause");
  }
  if (FindNetworkSchema(schema.name()) != nullptr ||
      FindFunctionalSchema(schema.name()) != nullptr ||
      FindRelationalSchema(schema.name()) != nullptr) {
    return Status::AlreadyExists("database '" + schema.name() +
                                 "' already loaded");
  }
  MLDS_ASSIGN_OR_RETURN(abdm::DatabaseDescriptor descriptor,
                        transform::MapRelationalToAbdm(schema));
  MLDS_RETURN_IF_ERROR(executor_->DefineDatabase(descriptor));
  auto db = std::make_unique<RelationalDb>();
  db->schema = std::move(schema);
  relational_dbs_.push_back(std::move(db));
  // DDL: every cached translation may now name stale files/columns.
  translation_cache_.InvalidateAll();
  return Status::OK();
}

Status MldsSystem::LoadHierarchicalDatabase(std::string_view ddl) {
  MLDS_ASSIGN_OR_RETURN(hierarchical::Schema schema,
                        hierarchical::ParseHierarchicalSchema(ddl));
  if (schema.name().empty()) {
    return Status::InvalidArgument("hierarchical DDL must carry a SCHEMA "
                                   "clause");
  }
  if (FindNetworkSchema(schema.name()) != nullptr ||
      FindFunctionalSchema(schema.name()) != nullptr ||
      FindRelationalSchema(schema.name()) != nullptr ||
      FindHierarchicalSchema(schema.name()) != nullptr) {
    return Status::AlreadyExists("database '" + schema.name() +
                                 "' already loaded");
  }
  MLDS_ASSIGN_OR_RETURN(abdm::DatabaseDescriptor descriptor,
                        transform::MapHierarchicalToAbdm(schema));
  MLDS_RETURN_IF_ERROR(executor_->DefineDatabase(descriptor));
  auto db = std::make_unique<HierarchicalDb>();
  db->schema = std::move(schema);
  hierarchical_dbs_.push_back(std::move(db));
  // DDL: every cached translation may now name stale files/columns.
  translation_cache_.InvalidateAll();
  return Status::OK();
}

Status MldsSystem::LoadFunctionalDatabase(std::string_view ddl) {
  MLDS_ASSIGN_OR_RETURN(daplex::FunctionalSchema schema,
                        daplex::ParseFunctionalSchema(ddl));
  if (schema.name().empty()) {
    return Status::InvalidArgument("Daplex DDL must carry a SCHEMA clause");
  }
  if (FindNetworkSchema(schema.name()) != nullptr ||
      FindFunctionalSchema(schema.name()) != nullptr) {
    return Status::AlreadyExists("database '" + schema.name() +
                                 "' already loaded");
  }
  MLDS_ASSIGN_OR_RETURN(transform::FunNetMapping mapping,
                        transform::TransformFunctionalToNetwork(schema));
  MLDS_ASSIGN_OR_RETURN(
      abdm::DatabaseDescriptor descriptor,
      transform::MapNetworkToAbdm(mapping.schema, &mapping));
  MLDS_RETURN_IF_ERROR(executor_->DefineDatabase(descriptor));
  auto db = std::make_unique<FunctionalDb>();
  db->schema = std::move(schema);
  db->mapping = std::move(mapping);
  functional_dbs_.push_back(std::move(db));
  // DDL: every cached translation may now name stale files/columns.
  translation_cache_.InvalidateAll();
  return Status::OK();
}

Result<kms::DmlMachine*> MldsSystem::OpenCodasylSession(
    std::string_view db_name) {
  // LIL first searches the existing network schemas; if the desired
  // database is not there, the list of functional schemas is searched
  // (Ch. V).
  for (const auto& db : network_dbs_) {
    if (db->schema.name() == db_name) {
      sessions_.push_back(std::make_unique<kms::DmlMachine>(
          &db->schema, nullptr, executor_.get()));
      sessions_.back()->set_translation_cache(&translation_cache_);
      return sessions_.back().get();
    }
  }
  for (const auto& db : functional_dbs_) {
    if (db->schema.name() == db_name) {
      sessions_.push_back(std::make_unique<kms::DmlMachine>(
          &db->mapping.schema, &db->mapping, executor_.get()));
      sessions_.back()->set_translation_cache(&translation_cache_);
      return sessions_.back().get();
    }
  }
  return Status::NotFound("database '" + std::string(db_name) +
                          "' is not loaded (searched network and functional "
                          "schema lists)");
}

Result<kms::SqlMachine*> MldsSystem::OpenSqlSession(
    std::string_view db_name) {
  for (const auto& db : relational_dbs_) {
    if (db->schema.name() == db_name) {
      sql_sessions_.push_back(
          std::make_unique<kms::SqlMachine>(&db->schema, executor_.get()));
      sql_sessions_.back()->set_translation_cache(&translation_cache_);
      return sql_sessions_.back().get();
    }
  }
  return Status::NotFound("relational database '" + std::string(db_name) +
                          "' is not loaded");
}

Result<kms::DliMachine*> MldsSystem::OpenDliSession(
    std::string_view db_name) {
  for (const auto& db : hierarchical_dbs_) {
    if (db->schema.name() == db_name) {
      dli_sessions_.push_back(
          std::make_unique<kms::DliMachine>(&db->schema, executor_.get()));
      dli_sessions_.back()->set_translation_cache(&translation_cache_);
      return dli_sessions_.back().get();
    }
  }
  return Status::NotFound("hierarchical database '" + std::string(db_name) +
                          "' is not loaded");
}

Result<kms::DaplexMachine*> MldsSystem::OpenDaplexSession(
    std::string_view db_name) {
  for (const auto& db : functional_dbs_) {
    if (db->schema.name() == db_name) {
      daplex_sessions_.push_back(std::make_unique<kms::DaplexMachine>(
          &db->schema, &db->mapping.schema, &db->mapping, executor_.get()));
      daplex_sessions_.back()->set_translation_cache(&translation_cache_);
      return daplex_sessions_.back().get();
    }
  }
  return Status::NotFound("functional database '" + std::string(db_name) +
                          "' is not loaded");
}

std::vector<std::string> MldsSystem::DatabaseNames() const {
  std::vector<std::string> names;
  for (const auto& db : network_dbs_) names.push_back(db->schema.name());
  for (const auto& db : functional_dbs_) names.push_back(db->schema.name());
  for (const auto& db : relational_dbs_) names.push_back(db->schema.name());
  for (const auto& db : hierarchical_dbs_) names.push_back(db->schema.name());
  return names;
}

Result<std::string> MldsSystem::ExplainAbdl(std::string_view request_text) {
  MLDS_ASSIGN_OR_RETURN(abdl::Request request,
                        abdl::ParseRequest(request_text));
  MLDS_ASSIGN_OR_RETURN(kds::Response response,
                        executor_->ExecuteExplain(std::move(request)));
  if (response.plan == nullptr) {
    return Status::InvalidArgument(
        "request produced no plan (INSERT chooses no access path)");
  }
  kfs::PlanFormatOptions options;
  options.header = "ABDL PLAN";
  return kfs::FormatPlan(*response.plan, options);
}

std::string MldsSystem::HealthReport() const {
  return kfs::FormatHealth(executor_->Health());
}

const hierarchical::Schema* MldsSystem::FindHierarchicalSchema(
    std::string_view name) const {
  for (const auto& db : hierarchical_dbs_) {
    if (db->schema.name() == name) return &db->schema;
  }
  return nullptr;
}

const relational::Schema* MldsSystem::FindRelationalSchema(
    std::string_view name) const {
  for (const auto& db : relational_dbs_) {
    if (db->schema.name() == name) return &db->schema;
  }
  return nullptr;
}

const network::Schema* MldsSystem::FindNetworkSchema(
    std::string_view name) const {
  for (const auto& db : network_dbs_) {
    if (db->schema.name() == name) return &db->schema;
  }
  return nullptr;
}

const daplex::FunctionalSchema* MldsSystem::FindFunctionalSchema(
    std::string_view name) const {
  for (const auto& db : functional_dbs_) {
    if (db->schema.name() == name) return &db->schema;
  }
  return nullptr;
}

const network::Schema* MldsSystem::NetworkViewOf(std::string_view name) const {
  if (const network::Schema* native = FindNetworkSchema(name)) return native;
  for (const auto& db : functional_dbs_) {
    if (db->schema.name() == name) return &db->mapping.schema;
  }
  return nullptr;
}

const transform::FunNetMapping* MldsSystem::MappingOf(
    std::string_view name) const {
  for (const auto& db : functional_dbs_) {
    if (db->schema.name() == name) return &db->mapping;
  }
  return nullptr;
}

}  // namespace mlds
