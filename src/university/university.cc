#include "university/university.h"

#include <random>

#include "abdm/record.h"
#include "daplex/ddl_parser.h"
#include "transform/abdm_mapping.h"

namespace mlds::university {

const char kUniversityDaplexDdl[] = R"(
SCHEMA university;

TYPE name_str IS STRING(30);
TYPE rank IS (instructor, assistant, associate, full);
TYPE credit_value IS INTEGER RANGE 0..9;

TYPE person IS ENTITY
  pname : name_str;
  age   : INTEGER;
END ENTITY;

TYPE employee IS ENTITY
  ename   : name_str;
  salary  : FLOAT;
  degrees : SET OF STRING(10);
END ENTITY;

TYPE department IS ENTITY
  dname : STRING(20);
END ENTITY;

TYPE course IS ENTITY
  title     : STRING(20);
  semester  : STRING(10);
  credits   : credit_value;
  taught_by : SET OF faculty;
END ENTITY;

TYPE student IS SUBTYPE OF person
  major   : STRING(15);
  advisor : faculty;
END SUBTYPE;

TYPE faculty IS SUBTYPE OF employee
  frank    : rank;
  dept     : department;
  teaching : SET OF course;
END SUBTYPE;

TYPE support_staff IS SUBTYPE OF employee
  hours      : INTEGER;
  supervisor : employee;
END SUBTYPE;

UNIQUE title, semester WITHIN course;
OVERLAP student WITH support_staff;
)";

Result<daplex::FunctionalSchema> UniversitySchema() {
  return daplex::ParseFunctionalSchema(kUniversityDaplexDdl);
}

namespace {

using abdm::Record;
using abdm::Value;
using transform::MakeDbKey;

const char* const kMajors[] = {"Computer Science", "Mathematics", "Physics",
                               "Chemistry", "History", "Economics"};
const char* const kRanks[] = {"instructor", "assistant", "associate", "full"};
const char* const kDegrees[] = {"BS", "MS", "PhD", "BA", "MA"};
const char* const kSemesters[] = {"Fall86", "Spring87", "Summer87"};
const char* const kTitles[] = {
    "Advanced Database", "Operating Sys", "Networks",    "Compilers",
    "Algorithms",        "Architecture",  "Graphics",    "AI",
    "Num Methods",       "Sw Eng",        "Info Theory", "Security",
    "Databases"};

/// Inserts one kernel record, tallying the summary.
Status InsertRecord(kc::KernelExecutor* executor, Record record,
                    LoadSummary* summary) {
  const std::string file =
      record.GetOrNull(abdm::kFileAttribute).AsString();
  MLDS_ASSIGN_OR_RETURN(kds::Response resp,
                        executor->Execute(abdl::InsertRequest{std::move(record)}));
  (void)resp;
  summary->records += 1;
  summary->per_file[file] += 1;
  return Status::OK();
}

Record BaseRecord(std::string_view file, std::string_view dbkey) {
  Record r;
  r.Set(std::string(abdm::kFileAttribute), Value::String(std::string(file)));
  r.Set(std::string(file), Value::String(std::string(dbkey)));
  return r;
}

}  // namespace

namespace {

/// Inserts the generated instance; files must already be defined.
Result<LoadSummary> LoadUniversityData(const UniversityConfig& config,
                                       kc::KernelExecutor* executor) {
  LoadSummary db_summary;
  std::mt19937 rng(config.seed);
  auto pick = [&rng](auto&& array, size_t n) -> decltype(array[0]) {
    std::uniform_int_distribution<size_t> dist(0, n - 1);
    return array[dist(rng)];
  };
  LoadSummary& summary = db_summary;

  // Departments.
  for (int i = 1; i <= config.departments; ++i) {
    Record r = BaseRecord("department", MakeDbKey("department", i));
    r.Set("dname", Value::String("dept_" + std::to_string(i)));
    MLDS_RETURN_IF_ERROR(InsertRecord(executor, std::move(r), &summary));
  }

  // Employees. Each carries one degree value; additional degree values of
  // the scalar multi-valued function arrive as duplicated records (the
  // thesis's AB(functional) representation), added for a fraction of
  // employees below.
  std::uniform_real_distribution<double> salary_dist(20000.0, 90000.0);
  std::uniform_int_distribution<int> age_dist(18, 70);
  for (int i = 1; i <= config.employees; ++i) {
    Record r = BaseRecord("employee", MakeDbKey("employee", i));
    r.Set("ename", Value::String("employee_name_" + std::to_string(i)));
    r.Set("salary", Value::Float(salary_dist(rng)));
    r.Set("degrees", Value::String(pick(kDegrees, 5)));
    if (i % 3 == 0) {
      // Duplicated record for a second degree value: identical keywords
      // except the scalar multi-valued one.
      Record dup = r;
      const bool already_phd = r.GetOrNull("degrees").AsString() == "PhD";
      dup.Set("degrees", Value::String(already_phd ? "JD" : "PhD"));
      MLDS_RETURN_IF_ERROR(InsertRecord(executor, std::move(dup), &summary));
    }
    MLDS_RETURN_IF_ERROR(InsertRecord(executor, std::move(r), &summary));
  }

  // Faculty: subtype records of the first `faculty` employees.
  for (int i = 1; i <= config.faculty; ++i) {
    Record r = BaseRecord("faculty", MakeDbKey("faculty", i));
    r.Set(transform::IsaSetName("employee", "faculty"),
          Value::String(MakeDbKey("employee", i)));
    r.Set("frank", Value::String(pick(kRanks, 4)));
    // Member-side single-valued function: faculty.dept.
    std::uniform_int_distribution<int> dept_dist(1, config.departments);
    r.Set("dept", Value::String(MakeDbKey("department", dept_dist(rng))));
    MLDS_RETURN_IF_ERROR(InsertRecord(executor, std::move(r), &summary));
  }

  // Support staff: employees after the faculty block.
  for (int i = 1; i <= config.support_staff; ++i) {
    const int emp = config.faculty + i;
    Record r = BaseRecord("support_staff", MakeDbKey("support_staff", i));
    r.Set(transform::IsaSetName("employee", "support_staff"),
          Value::String(MakeDbKey("employee", emp)));
    std::uniform_int_distribution<int> hours_dist(10, 40);
    r.Set("hours", Value::Integer(hours_dist(rng)));
    std::uniform_int_distribution<int> boss_dist(1, config.faculty);
    r.Set("supervisor", Value::String(MakeDbKey("employee", boss_dist(rng))));
    MLDS_RETURN_IF_ERROR(InsertRecord(executor, std::move(r), &summary));
  }

  // Persons.
  for (int i = 1; i <= config.persons; ++i) {
    Record r = BaseRecord("person", MakeDbKey("person", i));
    r.Set("pname", Value::String("person_name_" + std::to_string(i)));
    r.Set("age", Value::Integer(age_dist(rng)));
    MLDS_RETURN_IF_ERROR(InsertRecord(executor, std::move(r), &summary));
  }

  // Students: subtype records of the first `students` persons.
  for (int i = 1; i <= config.students; ++i) {
    Record r = BaseRecord("student", MakeDbKey("student", i));
    r.Set(transform::IsaSetName("person", "student"),
          Value::String(MakeDbKey("person", i)));
    r.Set("major", Value::String(pick(kMajors, 6)));
    std::uniform_int_distribution<int> adv_dist(1, config.faculty);
    r.Set("advisor", Value::String(MakeDbKey("faculty", adv_dist(rng))));
    MLDS_RETURN_IF_ERROR(InsertRecord(executor, std::move(r), &summary));
  }

  // Courses.
  for (int i = 1; i <= config.courses; ++i) {
    Record r = BaseRecord("course", MakeDbKey("course", i));
    r.Set("title", Value::String(kTitles[(i - 1) % 13]));
    r.Set("semester", Value::String(kSemesters[(i - 1) % 3]));
    std::uniform_int_distribution<int> credit_dist(1, 5);
    r.Set("credits", Value::Integer(credit_dist(rng)));
    MLDS_RETURN_IF_ERROR(InsertRecord(executor, std::move(r), &summary));
  }

  // Teaching links: the many-to-many faculty.teaching / course.taught_by
  // pair, one link_1 record per (faculty, course) instance.
  for (int i = 1; i <= config.teaching_links; ++i) {
    Record r = BaseRecord("link_1", MakeDbKey("link_1", i));
    std::uniform_int_distribution<int> fac_dist(1, config.faculty);
    std::uniform_int_distribution<int> course_dist(1, config.courses);
    r.Set("teaching", Value::String(MakeDbKey("faculty", fac_dist(rng))));
    r.Set("taught_by", Value::String(MakeDbKey("course", course_dist(rng))));
    MLDS_RETURN_IF_ERROR(InsertRecord(executor, std::move(r), &summary));
  }

  return db_summary;
}

}  // namespace

Result<UniversityDatabase> BuildUniversityDatabase(
    const UniversityConfig& config, kc::KernelExecutor* executor) {
  UniversityDatabase db;
  MLDS_ASSIGN_OR_RETURN(db.functional, UniversitySchema());
  MLDS_ASSIGN_OR_RETURN(db.mapping,
                        transform::TransformFunctionalToNetwork(db.functional));
  MLDS_ASSIGN_OR_RETURN(db.descriptor,
                        transform::MapNetworkToAbdm(db.mapping.schema,
                                                    &db.mapping));
  MLDS_RETURN_IF_ERROR(executor->DefineDatabase(db.descriptor));
  MLDS_ASSIGN_OR_RETURN(db.summary, LoadUniversityData(config, executor));
  return db;
}

Result<LoadSummary> BuildUniversityDatabaseOnLoaded(
    const UniversityConfig& config, kc::KernelExecutor* executor) {
  return LoadUniversityData(config, executor);
}

}  // namespace mlds::university
