#ifndef MLDS_UNIVERSITY_UNIVERSITY_H_
#define MLDS_UNIVERSITY_UNIVERSITY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "daplex/schema.h"
#include "kc/executor.h"
#include "transform/fun_to_net.h"

namespace mlds::university {

/// Shipman's University database schema (thesis Figure 2.1) in this
/// library's Daplex DDL: four entity types (person, employee, department,
/// course), three subtypes (student ISA person, faculty ISA employee,
/// support_staff ISA employee), one scalar multi-valued function
/// (employee.degrees), three single-valued functions (student.advisor,
/// faculty.dept, support_staff.supervisor), a many-to-many pair
/// (faculty.teaching / course.taught_by), a uniqueness constraint
/// (UNIQUE title, semester WITHIN course), and an overlap constraint
/// (OVERLAP student WITH support_staff).
extern const char kUniversityDaplexDdl[];

/// Parses kUniversityDaplexDdl.
Result<daplex::FunctionalSchema> UniversitySchema();

/// Sizing of a generated University database instance. Counts scale the
/// same shape the thesis's examples use; generation is deterministic in
/// `seed`.
struct UniversityConfig {
  int departments = 4;
  int employees = 20;
  int faculty = 8;        ///< drawn from the first `faculty` employees.
  int support_staff = 6;  ///< drawn from the employees after the faculty.
  int persons = 40;
  int students = 30;      ///< drawn from the first `students` persons.
  int courses = 12;
  int teaching_links = 24;  ///< faculty-course many-to-many instances.
  uint32_t seed = 1987;
};

/// What a load produced: total records and per-file counts.
struct LoadSummary {
  size_t records = 0;
  std::map<std::string, size_t> per_file;
};

/// A fully prepared AB(functional) University database: the functional
/// schema, its network transformation, and the loaded kernel data.
struct UniversityDatabase {
  daplex::FunctionalSchema functional;
  transform::FunNetMapping mapping;
  abdm::DatabaseDescriptor descriptor;
  LoadSummary summary;
};

/// Transforms the University functional schema to a network schema, maps
/// it to AB(functional) kernel files, defines them on `executor`, and
/// loads a generated instance. This is the standard workload substrate
/// for the library's examples, tests, and benchmarks.
Result<UniversityDatabase> BuildUniversityDatabase(
    const UniversityConfig& config, kc::KernelExecutor* executor);

/// Loads a generated University instance into kernel files that are
/// already defined (e.g. by MldsSystem::LoadFunctionalDatabase). Only the
/// data-insertion phase of BuildUniversityDatabase runs.
Result<LoadSummary> BuildUniversityDatabaseOnLoaded(
    const UniversityConfig& config, kc::KernelExecutor* executor);

}  // namespace mlds::university

#endif  // MLDS_UNIVERSITY_UNIVERSITY_H_
