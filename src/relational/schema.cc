#include "relational/schema.h"

#include <cctype>
#include <optional>

#include "common/strings.h"

namespace mlds::relational {

std::string_view ColumnTypeToString(ColumnType type) {
  switch (type) {
    case ColumnType::kInteger:
      return "INTEGER";
    case ColumnType::kFloat:
      return "FLOAT";
    case ColumnType::kChar:
      return "CHAR";
  }
  return "?";
}

Status Schema::AddTable(Table table) {
  if (FindTable(table.name) != nullptr) {
    return Status::AlreadyExists("table '" + table.name +
                                 "' already declared");
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

const Table* Schema::FindTable(std::string_view name) const {
  for (const auto& t : tables_) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

Status Schema::Validate() const {
  for (const auto& table : tables_) {
    if (table.columns.empty()) {
      return Status::InvalidArgument("table '" + table.name +
                                     "' has no columns");
    }
    for (const auto& column : table.columns) {
      if (column.name == "FILE" || column.name == table.name) {
        return Status::InvalidArgument(
            "column '" + column.name + "' of table '" + table.name +
            "' collides with a kernel-reserved keyword name");
      }
    }
    for (const auto& unique : table.unique_columns) {
      if (table.FindColumn(unique) == nullptr) {
        return Status::InvalidArgument("UNIQUE names unknown column '" +
                                       unique + "' in table '" + table.name +
                                       "'");
      }
    }
  }
  return Status::OK();
}

std::string Schema::ToDdl() const {
  std::string out;
  if (!name_.empty()) out += "SCHEMA " + name_ + ";\n\n";
  for (const auto& table : tables_) {
    out += "CREATE TABLE " + table.name + " (\n";
    for (size_t i = 0; i < table.columns.size(); ++i) {
      const Column& c = table.columns[i];
      out += "  " + c.name + " " + std::string(ColumnTypeToString(c.type));
      if (c.type == ColumnType::kChar && c.length > 0) {
        out += "(" + std::to_string(c.length) + ")";
      }
      if (c.not_null) out += " NOT NULL";
      if (i + 1 < table.columns.size() || !table.unique_columns.empty()) {
        out += ",";
      }
      out += "\n";
    }
    if (!table.unique_columns.empty()) {
      out += "  UNIQUE (" + Join(table.unique_columns, ", ") + ")\n";
    }
    out += ");\n\n";
  }
  return out;
}

namespace {

/// Minimal tokenizer shared with the DDL parser below.
struct Token {
  enum class Kind { kWord, kNumber, kLParen, kRParen, kComma, kSemi, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
};

Result<std::vector<Token>> Tokenize(std::string_view ddl) {
  std::vector<Token> out;
  size_t pos = 0;
  while (pos < ddl.size()) {
    const char c = ddl[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++pos;
    } else if (c == '-' && pos + 1 < ddl.size() && ddl[pos + 1] == '-') {
      while (pos < ddl.size() && ddl[pos] != '\n') ++pos;
    } else if (c == '(') {
      out.push_back({Token::Kind::kLParen, "("});
      ++pos;
    } else if (c == ')') {
      out.push_back({Token::Kind::kRParen, ")"});
      ++pos;
    } else if (c == ',') {
      out.push_back({Token::Kind::kComma, ","});
      ++pos;
    } else if (c == ';') {
      out.push_back({Token::Kind::kSemi, ";"});
      ++pos;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = pos + 1;
      while (end < ddl.size() &&
             std::isdigit(static_cast<unsigned char>(ddl[end]))) {
        ++end;
      }
      out.push_back({Token::Kind::kNumber, std::string(ddl.substr(pos, end - pos))});
      pos = end;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos + 1;
      while (end < ddl.size() &&
             (std::isalnum(static_cast<unsigned char>(ddl[end])) ||
              ddl[end] == '_')) {
        ++end;
      }
      out.push_back({Token::Kind::kWord, std::string(ddl.substr(pos, end - pos))});
      pos = end;
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in relational DDL");
    }
  }
  out.push_back({Token::Kind::kEnd, ""});
  return out;
}

}  // namespace

Result<Schema> ParseRelationalSchema(std::string_view ddl) {
  MLDS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(ddl));
  Schema schema;
  size_t pos = 0;
  auto peek = [&]() -> const Token& {
    return pos < tokens.size() ? tokens[pos] : tokens.back();
  };
  auto word_is = [&](std::string_view w) {
    return peek().kind == Token::Kind::kWord && EqualsIgnoreCase(peek().text, w);
  };
  auto consume = [&](std::string_view w) {
    if (word_is(w)) {
      ++pos;
      return true;
    }
    return false;
  };
  auto expect = [&](Token::Kind kind, std::string_view what) -> Status {
    if (peek().kind != kind) {
      return Status::ParseError("expected " + std::string(what) + ", got '" +
                                peek().text + "'");
    }
    ++pos;
    return Status::OK();
  };

  while (peek().kind != Token::Kind::kEnd) {
    if (consume("SCHEMA")) {
      if (peek().kind != Token::Kind::kWord) {
        return Status::ParseError("expected schema name");
      }
      schema.set_name(tokens[pos++].text);
      MLDS_RETURN_IF_ERROR(expect(Token::Kind::kSemi, "';'"));
      continue;
    }
    if (!consume("CREATE") || !consume("TABLE")) {
      return Status::ParseError("expected CREATE TABLE, got '" + peek().text +
                                "'");
    }
    Table table;
    if (peek().kind != Token::Kind::kWord) {
      return Status::ParseError("expected table name");
    }
    table.name = tokens[pos++].text;
    MLDS_RETURN_IF_ERROR(expect(Token::Kind::kLParen, "'('"));
    while (true) {
      if (consume("UNIQUE")) {
        MLDS_RETURN_IF_ERROR(expect(Token::Kind::kLParen, "'(' after UNIQUE"));
        while (true) {
          if (peek().kind != Token::Kind::kWord) {
            return Status::ParseError("expected column in UNIQUE list");
          }
          table.unique_columns.push_back(tokens[pos++].text);
          if (peek().kind == Token::Kind::kComma) {
            ++pos;
            continue;
          }
          break;
        }
        MLDS_RETURN_IF_ERROR(expect(Token::Kind::kRParen, "')' after UNIQUE"));
      } else {
        Column column;
        if (peek().kind != Token::Kind::kWord) {
          return Status::ParseError("expected column name, got '" +
                                    peek().text + "'");
        }
        column.name = tokens[pos++].text;
        if (consume("INTEGER") || consume("INT")) {
          column.type = ColumnType::kInteger;
        } else if (consume("FLOAT") || consume("REAL")) {
          column.type = ColumnType::kFloat;
        } else if (consume("CHAR") || consume("VARCHAR")) {
          column.type = ColumnType::kChar;
          if (peek().kind == Token::Kind::kLParen) {
            ++pos;
            if (peek().kind != Token::Kind::kNumber) {
              return Status::ParseError("expected CHAR length");
            }
            column.length = std::stoi(tokens[pos++].text);
            MLDS_RETURN_IF_ERROR(expect(Token::Kind::kRParen, "')'"));
          }
        } else {
          return Status::ParseError("unknown column type '" + peek().text +
                                    "'");
        }
        if (consume("NOT")) {
          if (!consume("NULL")) {
            return Status::ParseError("expected NULL after NOT");
          }
          column.not_null = true;
        }
        if (table.FindColumn(column.name) != nullptr) {
          return Status::ParseError("duplicate column '" + column.name +
                                    "' in table '" + table.name + "'");
        }
        table.columns.push_back(std::move(column));
      }
      if (peek().kind == Token::Kind::kComma) {
        ++pos;
        continue;
      }
      break;
    }
    MLDS_RETURN_IF_ERROR(expect(Token::Kind::kRParen, "')' closing table"));
    MLDS_RETURN_IF_ERROR(expect(Token::Kind::kSemi, "';'"));
    MLDS_RETURN_IF_ERROR(schema.AddTable(std::move(table)));
  }
  MLDS_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

}  // namespace mlds::relational
