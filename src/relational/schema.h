#ifndef MLDS_RELATIONAL_SCHEMA_H_
#define MLDS_RELATIONAL_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace mlds::relational {

/// Column types of the relational model, mirroring the network model's
/// attribute types (MLDS maps every user model onto the same kernel
/// domains).
enum class ColumnType {
  kInteger,
  kFloat,
  kChar,
};

std::string_view ColumnTypeToString(ColumnType type);

/// One column of a table.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kChar;
  int length = 0;  ///< CHAR(n) length; 0 = unbounded.
  /// Declared NOT NULL.
  bool not_null = false;

  friend bool operator==(const Column&, const Column&) = default;
};

/// A relation: a named set of columns plus at most one UNIQUE constraint
/// (a column combination that identifies tuples).
struct Table {
  std::string name;
  std::vector<Column> columns;
  std::vector<std::string> unique_columns;

  const Column* FindColumn(std::string_view column) const {
    for (const auto& c : columns) {
      if (c.name == column) return &c;
    }
    return nullptr;
  }

  friend bool operator==(const Table&, const Table&) = default;
};

/// A relational database schema (the rel_dbid_node arm of the thesis's
/// dbid_node union, Figure 4.1).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Table>& tables() const { return tables_; }

  Status AddTable(Table table);
  const Table* FindTable(std::string_view name) const;

  Status Validate() const;

  /// Renders CREATE TABLE DDL, parseable by ParseRelationalSchema.
  std::string ToDdl() const;

  friend bool operator==(const Schema&, const Schema&) = default;

 private:
  std::string name_;
  std::vector<Table> tables_;
};

/// Parses SQL-style relational DDL:
///
///   SCHEMA registrar;
///   CREATE TABLE course (
///     title CHAR(20) NOT NULL,
///     credits INTEGER,
///     UNIQUE (title)
///   );
///
/// Keywords are case-insensitive; identifiers preserve case; `--` starts
/// a line comment.
Result<Schema> ParseRelationalSchema(std::string_view ddl);

}  // namespace mlds::relational

#endif  // MLDS_RELATIONAL_SCHEMA_H_
