// Tests reproducing Figure 3.3: the AB(functional) University database
// layout, via functional -> network -> ABDM mapping.

#include "transform/abdm_mapping.h"

#include <gtest/gtest.h>

#include "daplex/ddl_parser.h"
#include "kds/engine.h"
#include "university/university.h"

namespace mlds::transform {
namespace {

class AbdmMappingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = university::UniversitySchema();
    ASSERT_TRUE(schema.ok()) << schema.status();
    auto mapping = TransformFunctionalToNetwork(*schema);
    ASSERT_TRUE(mapping.ok()) << mapping.status();
    mapping_ = std::move(*mapping);
    auto db = MapNetworkToAbdm(mapping_.schema, &mapping_);
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::move(*db);
  }

  const abdm::FileDescriptor* File(std::string_view name) {
    return db_.FindFile(name);
  }

  FunNetMapping mapping_;
  abdm::DatabaseDescriptor db_;
};

TEST_F(AbdmMappingTest, OneFilePerRecordType) {
  EXPECT_EQ(db_.files.size(), 8u);  // 7 types + link_1.
  for (const char* name : {"person", "employee", "department", "course",
                           "student", "faculty", "support_staff", "link_1"}) {
    EXPECT_NE(File(name), nullptr) << name;
  }
}

TEST_F(AbdmMappingTest, FirstTwoAttributesAreFileAndKey) {
  // Figure 3.3 / Ch. III.C.1: first pair <FILE, name>, second the unique
  // key named after the type.
  for (const auto& file : db_.files) {
    ASSERT_GE(file.attributes.size(), 2u) << file.name;
    EXPECT_EQ(file.attributes[0].name, "FILE") << file.name;
    EXPECT_EQ(file.attributes[1].name, file.name) << file.name;
  }
}

TEST_F(AbdmMappingTest, ScalarFunctionsBecomeAttributes) {
  const abdm::FileDescriptor* course = File("course");
  ASSERT_NE(course, nullptr);
  EXPECT_NE(course->FindAttribute("title"), nullptr);
  EXPECT_NE(course->FindAttribute("semester"), nullptr);
  EXPECT_NE(course->FindAttribute("credits"), nullptr);
  EXPECT_EQ(course->FindAttribute("credits")->kind,
            abdm::ValueKind::kInteger);
}

TEST_F(AbdmMappingTest, MemberRecordsCarrySetAttributes) {
  // student is member of person_student (ISA) and advisor (function set).
  const abdm::FileDescriptor* student = File("student");
  ASSERT_NE(student, nullptr);
  EXPECT_NE(student->FindAttribute(IsaSetName("person", "student")), nullptr);
  EXPECT_NE(student->FindAttribute("advisor"), nullptr);
  // faculty: ISA + dept member side.
  const abdm::FileDescriptor* faculty = File("faculty");
  EXPECT_NE(faculty->FindAttribute(IsaSetName("employee", "faculty")),
            nullptr);
  EXPECT_NE(faculty->FindAttribute("dept"), nullptr);
}

TEST_F(AbdmMappingTest, SystemSetsContributeNoAttribute) {
  const abdm::FileDescriptor* person = File("person");
  EXPECT_EQ(person->FindAttribute(SystemSetName("person")), nullptr);
}

TEST_F(AbdmMappingTest, LinkRecordsCarryBothSides) {
  const abdm::FileDescriptor* link = File("link_1");
  ASSERT_NE(link, nullptr);
  EXPECT_NE(link->FindAttribute("teaching"), nullptr);
  EXPECT_NE(link->FindAttribute("taught_by"), nullptr);
}

TEST_F(AbdmMappingTest, OwnersOfSingleValuedSetsCarryNoSetAttribute) {
  // faculty owns 'advisor' (range side); the owner does not repeat it.
  const abdm::FileDescriptor* faculty = File("faculty");
  EXPECT_EQ(faculty->FindAttribute("advisor"), nullptr);
  const abdm::FileDescriptor* department = File("department");
  EXPECT_EQ(department->FindAttribute("dept"), nullptr);
}

TEST_F(AbdmMappingTest, DescriptorsDefineCleanlyOnEngine) {
  kds::Engine engine;
  ASSERT_TRUE(engine.DefineDatabase(db_).ok());
  for (const auto& file : db_.files) {
    EXPECT_TRUE(engine.HasFile(file.name));
  }
}

TEST(AbdmMappingStandaloneTest, OwnerSideOneToManyGetsAttribute) {
  auto schema = daplex::ParseFunctionalSchema(
      "TYPE a IS ENTITY kids : SET OF b; END ENTITY;"
      "TYPE b IS ENTITY x : INTEGER; END ENTITY;");
  ASSERT_TRUE(schema.ok());
  auto mapping = TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok());
  auto db = MapNetworkToAbdm(mapping->schema, &*mapping);
  ASSERT_TRUE(db.ok());
  // Owner-side one-to-many: owner record 'a' duplicates per member, so
  // its file carries the set attribute; the member 'b' does not (the
  // relationship lives entirely on the owner side).
  EXPECT_NE(db->FindFile("a")->FindAttribute("kids"), nullptr);
  EXPECT_EQ(db->FindFile("b")->FindAttribute("kids"), nullptr);
}

TEST(AbdmMappingStandaloneTest, PlainNetworkSchemaHasNoOwnerSideAttrs) {
  network::Schema schema("s");
  ASSERT_TRUE(schema
                  .AddRecord(network::RecordType{
                      "a", {{"x", network::AttrType::kInteger, 0, 0, true}}})
                  .ok());
  ASSERT_TRUE(schema
                  .AddRecord(network::RecordType{
                      "b", {{"y", network::AttrType::kInteger, 0, 0, true}}})
                  .ok());
  network::SetType set;
  set.name = "holds";
  set.owner = "a";
  set.members = {"b"};
  ASSERT_TRUE(schema.AddSet(set).ok());
  auto db = MapNetworkToAbdm(schema);
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->FindFile("a")->FindAttribute("holds"), nullptr);
  EXPECT_NE(db->FindFile("b")->FindAttribute("holds"), nullptr);
}

TEST(AbdmMappingStandaloneTest, MakeDbKeyFormat) {
  EXPECT_EQ(MakeDbKey("course", 7), "course_7");
}

}  // namespace
}  // namespace mlds::transform
