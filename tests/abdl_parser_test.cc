#include "abdl/parser.h"

#include <gtest/gtest.h>

#include "abdl/request.h"

namespace mlds::abdl {
namespace {

using abdm::RelOp;
using abdm::Value;

TEST(AbdlParserTest, ParseRetrieveWithFileAndPredicate) {
  auto result = ParseRequest(
      "RETRIEVE ((FILE = course) and (title = 'Advanced Database')) "
      "(title, dept, semester, credits) BY course");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto* retrieve = std::get_if<RetrieveRequest>(&*result);
  ASSERT_NE(retrieve, nullptr);
  EXPECT_EQ(retrieve->query.SingleFile(), "course");
  ASSERT_EQ(retrieve->targets.size(), 4u);
  EXPECT_EQ(retrieve->targets[0].attribute, "title");
  ASSERT_TRUE(retrieve->by_attribute.has_value());
  EXPECT_EQ(*retrieve->by_attribute, "course");
}

TEST(AbdlParserTest, ParseRetrieveAllAttributes) {
  auto result =
      ParseRequest("RETRIEVE ((FILE = person)) (all attributes)");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto* retrieve = std::get_if<RetrieveRequest>(&*result);
  ASSERT_NE(retrieve, nullptr);
  EXPECT_TRUE(retrieve->all_attributes);
}

TEST(AbdlParserTest, ParseInsertKeywordList) {
  auto result = ParseRequest(
      "INSERT (<FILE, course>, <title, 'Database'>, <credits, 4>)");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto* insert = std::get_if<InsertRequest>(&*result);
  ASSERT_NE(insert, nullptr);
  EXPECT_EQ(insert->record.GetOrNull("FILE").AsString(), "course");
  EXPECT_EQ(insert->record.GetOrNull("title").AsString(), "Database");
  EXPECT_EQ(insert->record.GetOrNull("credits").AsInteger(), 4);
}

TEST(AbdlParserTest, ParseDelete) {
  auto result =
      ParseRequest("DELETE ((FILE = course) and (title = 'Old Course'))");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto* del = std::get_if<DeleteRequest>(&*result);
  ASSERT_NE(del, nullptr);
  EXPECT_EQ(del->query.SingleFile(), "course");
}

TEST(AbdlParserTest, ParseUpdateSetModifier) {
  auto result = ParseRequest(
      "UPDATE ((FILE = course) and (credits = 3)) (credits = 4)");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto* update = std::get_if<UpdateRequest>(&*result);
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->modifier.attribute, "credits");
  EXPECT_EQ(update->modifier.kind, ModifierKind::kSet);
  EXPECT_EQ(update->modifier.operand.AsInteger(), 4);
}

TEST(AbdlParserTest, ParseUpdateAddModifier) {
  auto result =
      ParseRequest("UPDATE ((FILE = emp)) (salary = salary + 100)");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto* update = std::get_if<UpdateRequest>(&*result);
  ASSERT_NE(update, nullptr);
  EXPECT_EQ(update->modifier.kind, ModifierKind::kAdd);
  EXPECT_EQ(update->modifier.operand.AsInteger(), 100);
}

TEST(AbdlParserTest, ParseUpdateToNull) {
  auto result = ParseRequest("UPDATE ((FILE = f)) (set_x = NULL)");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto* update = std::get_if<UpdateRequest>(&*result);
  ASSERT_NE(update, nullptr);
  EXPECT_TRUE(update->modifier.operand.is_null());
}

TEST(AbdlParserTest, OrNormalizesToDnfDisjuncts) {
  auto q = ParseQuery("((a = 1) or (b = 2))");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->disjuncts().size(), 2u);
}

TEST(AbdlParserTest, AndDistributesOverOr) {
  // (FILE = f) AND ((a = 1) OR (b = 2)) --> two conjunctions, each
  // carrying the FILE predicate.
  auto q = ParseQuery("((FILE = f) and ((a = 1) or (b = 2)))");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->disjuncts().size(), 2u);
  for (const auto& conj : q->disjuncts()) {
    ASSERT_EQ(conj.predicates.size(), 2u);
    EXPECT_EQ(conj.predicates[0].attribute, "FILE");
  }
  EXPECT_EQ(q->SingleFile(), "f");
}

TEST(AbdlParserTest, RelationalOperators) {
  auto q = ParseQuery(
      "((a >= 1) and (b <= 2) and (c != 3) and (d > 4) and (e < 5))");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& preds = q->disjuncts()[0].predicates;
  ASSERT_EQ(preds.size(), 5u);
  EXPECT_EQ(preds[0].op, RelOp::kGe);
  EXPECT_EQ(preds[1].op, RelOp::kLe);
  EXPECT_EQ(preds[2].op, RelOp::kNe);
  EXPECT_EQ(preds[3].op, RelOp::kGt);
  EXPECT_EQ(preds[4].op, RelOp::kLt);
}

TEST(AbdlParserTest, ParseTransactionMultipleRequests) {
  auto txn = ParseTransaction(
      "INSERT (<FILE, f>, <x, 1>); "
      "RETRIEVE ((FILE = f)) (all attributes)");
  ASSERT_TRUE(txn.ok()) << txn.status();
  ASSERT_EQ(txn->size(), 2u);
  EXPECT_EQ(RequestOperation((*txn)[0]), "INSERT");
  EXPECT_EQ(RequestOperation((*txn)[1]), "RETRIEVE");
}

TEST(AbdlParserTest, ParseAggregateTargets) {
  auto result = ParseRequest(
      "RETRIEVE ((FILE = course)) (AVG(credits), COUNT(title)) BY dept");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto* retrieve = std::get_if<RetrieveRequest>(&*result);
  ASSERT_NE(retrieve, nullptr);
  ASSERT_EQ(retrieve->targets.size(), 2u);
  EXPECT_EQ(retrieve->targets[0].aggregate, AggregateOp::kAvg);
  EXPECT_EQ(retrieve->targets[1].aggregate, AggregateOp::kCount);
}

TEST(AbdlParserTest, ParseRetrieveCommon) {
  auto result = ParseRequest(
      "RETRIEVE-COMMON ((FILE = faculty)) (dept) AND ((FILE = student)) "
      "(major) (name, major)");
  ASSERT_TRUE(result.ok()) << result.status();
  const auto* rc = std::get_if<RetrieveCommonRequest>(&*result);
  ASSERT_NE(rc, nullptr);
  EXPECT_EQ(rc->left_attribute, "dept");
  EXPECT_EQ(rc->right_attribute, "major");
  EXPECT_EQ(rc->targets.size(), 2u);
}

TEST(AbdlParserTest, RejectsUnknownOperation) {
  auto result = ParseRequest("FROBNICATE ((a = 1)) (x)");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
}

TEST(AbdlParserTest, RejectsTrailingGarbage) {
  auto result = ParseRequest("DELETE ((a = 1)) extra");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
}

TEST(AbdlParserTest, RejectsUnterminatedString) {
  auto result = ParseRequest("DELETE ((a = 'oops))");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsParseError());
}

TEST(AbdlParserTest, RequestPrintRoundTrip) {
  // Printing a parsed request and reparsing yields an equal request.
  const char* kRequests[] = {
      "RETRIEVE ((FILE = 'course') and (credits > 3)) (title, credits) BY "
      "dept",
      "INSERT (<FILE, 'f'>, <x, 1>, <y, 'two'>)",
      "UPDATE ((FILE = 'f') and (x = 1)) (y = 'three')",
      "DELETE ((FILE = 'f') or (x < 0))",
  };
  for (const char* text : kRequests) {
    auto first = ParseRequest(text);
    ASSERT_TRUE(first.ok()) << text << ": " << first.status();
    auto printed = ToString(*first);
    auto second = ParseRequest(printed);
    ASSERT_TRUE(second.ok()) << printed << ": " << second.status();
    EXPECT_EQ(*first, *second) << printed;
  }
}

}  // namespace
}  // namespace mlds::abdl
