// Tests for the owner-side Daplex function translation paths (the
// duplicated-record AB(functional) representation, Ch. VI.D.2.a / VI.E),
// the overlap-permitted STORE path, and native-network-mode targets.

#include <gtest/gtest.h>

#include "abdl/parser.h"
#include "daplex/ddl_parser.h"
#include "kds/engine.h"
#include "kms/dml_machine.h"
#include "network/ddl_parser.h"
#include "transform/abdm_mapping.h"
#include "transform/fun_to_net.h"

namespace mlds::kms {
namespace {

/// Fixture over a minimal functional schema with a one-to-many
/// multi-valued function (parent.kids : SET OF child, no inverse).
class OwnerSideDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = daplex::ParseFunctionalSchema(
        "TYPE parent IS ENTITY pname : STRING(10); kids : SET OF child; "
        "END ENTITY;"
        "TYPE child IS ENTITY cname : STRING(10); END ENTITY;");
    ASSERT_TRUE(schema.ok()) << schema.status();
    auto mapping = transform::TransformFunctionalToNetwork(*schema);
    ASSERT_TRUE(mapping.ok()) << mapping.status();
    mapping_ = std::move(*mapping);
    auto db = transform::MapNetworkToAbdm(mapping_.schema, &mapping_);
    ASSERT_TRUE(db.ok()) << db.status();
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    ASSERT_TRUE(executor_->DefineDatabase(*db).ok());
    machine_ = std::make_unique<DmlMachine>(&mapping_.schema, &mapping_,
                                            executor_.get());
  }

  DmlResult Must(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_TRUE(result.ok()) << dml << ": " << result.status();
    return result.ok() ? std::move(*result) : DmlResult{};
  }

  Status Fails(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_FALSE(result.ok()) << dml << " unexpectedly succeeded";
    return result.ok() ? Status::OK() : result.status();
  }

  kds::Response Kernel(std::string_view abdl) {
    auto req = abdl::ParseRequest(abdl);
    EXPECT_TRUE(req.ok()) << req.status();
    auto resp = engine_.Execute(*req);
    EXPECT_TRUE(resp.ok()) << resp.status();
    return std::move(*resp);
  }

  /// STOREs a parent and two children; re-finds the parent as the current
  /// owner of kids; leaves the given child as the run-unit.
  void StoreFamily() {
    Must("MOVE 'p' TO pname IN parent");
    Must("STORE parent");
    Must("MOVE 'c1' TO cname IN child");
    Must("STORE child");
    Must("MOVE 'c2' TO cname IN child");
    Must("STORE child");
  }

  void FindParent() {
    Must("MOVE 'p' TO pname IN parent");
    Must("FIND ANY parent USING pname IN parent");
  }

  void FindChild(std::string_view cname) {
    Must("MOVE '" + std::string(cname) + "' TO cname IN child");
    Must("FIND ANY child USING cname IN child");
  }

  transform::FunNetMapping mapping_;
  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<DmlMachine> machine_;
};

TEST_F(OwnerSideDmlTest, SchemaShape) {
  const network::SetType* kids = mapping_.schema.FindSet("kids");
  ASSERT_NE(kids, nullptr);
  EXPECT_EQ(kids->owner, "parent");
  EXPECT_EQ(kids->members[0], "child");
  EXPECT_TRUE(machine_->IsFunctionalTarget());
}

TEST_F(OwnerSideDmlTest, ConnectFirstChildUpdatesNullOwnerKeyword) {
  StoreFamily();
  FindParent();
  FindChild("c1");
  Must("CONNECT child TO kids");
  // Case (1)/(2): the owner record's null set keyword takes the member's
  // database key via UPDATE — no new record.
  auto owners = Kernel("RETRIEVE ((FILE = parent)) (all attributes)");
  ASSERT_EQ(owners.records.size(), 1u);
  EXPECT_EQ(owners.records[0].GetOrNull("kids").AsString(), "child_1");
  const TraceEntry& entry = machine_->trace().back();
  // ARR (retrieve owners) + UPDATE.
  ASSERT_EQ(entry.abdl.size(), 3u);  // +1 for the run-unit refresh.
  EXPECT_TRUE(entry.abdl[1].starts_with("UPDATE")) << entry.abdl[1];
}

TEST_F(OwnerSideDmlTest, ConnectSecondChildInsertsDuplicatedOwnerRecord) {
  StoreFamily();
  FindParent();
  FindChild("c1");
  Must("CONNECT child TO kids");
  FindParent();
  FindChild("c2");
  Must("CONNECT child TO kids");
  // Case (3)/(4): a duplicated AB(functional) owner record per new member.
  auto owners = Kernel("RETRIEVE ((FILE = parent)) (all attributes)");
  ASSERT_EQ(owners.records.size(), 2u);
  std::set<std::string> members;
  for (const auto& r : owners.records) {
    EXPECT_EQ(r.GetOrNull("parent").AsString(), "parent_1");
    EXPECT_EQ(r.GetOrNull("pname").AsString(), "p");
    members.insert(r.GetOrNull("kids").AsString());
  }
  EXPECT_EQ(members, (std::set<std::string>{"child_1", "child_2"}));
}

TEST_F(OwnerSideDmlTest, FindMembersThroughOwnerSideRepresentation) {
  StoreFamily();
  FindParent();
  FindChild("c1");
  Must("CONNECT child TO kids");
  FindParent();
  FindChild("c2");
  Must("CONNECT child TO kids");
  FindParent();
  // FIND FIRST/NEXT child WITHIN kids walks both members, via the
  // two-request owner-side fetch.
  DmlResult first = Must("FIND FIRST child WITHIN kids");
  EXPECT_EQ(first.records[0].GetOrNull("child").AsString(), "child_1");
  // Two ABDL requests: owner fetch + member fetch (Ch. III.A's
  // one-to-many statement/request correspondence).
  EXPECT_EQ(machine_->trace().back().abdl.size(), 2u);
  DmlResult next = Must("FIND NEXT child WITHIN kids");
  EXPECT_EQ(next.records[0].GetOrNull("child").AsString(), "child_2");
  EXPECT_TRUE(
      machine_->ExecuteText("FIND NEXT child WITHIN kids").status()
          .IsNotFound());
}

TEST_F(OwnerSideDmlTest, DisconnectWithMultipleMembersDeletesDuplicate) {
  StoreFamily();
  FindParent();
  FindChild("c1");
  Must("CONNECT child TO kids");
  FindParent();
  FindChild("c2");
  Must("CONNECT child TO kids");
  FindParent();
  FindChild("c2");
  Must("DISCONNECT child FROM kids");
  // The duplicated record naming child_2 is deleted; child_1 remains.
  auto owners = Kernel("RETRIEVE ((FILE = parent)) (all attributes)");
  ASSERT_EQ(owners.records.size(), 1u);
  EXPECT_EQ(owners.records[0].GetOrNull("kids").AsString(), "child_1");
}

TEST_F(OwnerSideDmlTest, DisconnectSingletonNullsOut) {
  StoreFamily();
  FindParent();
  FindChild("c1");
  Must("CONNECT child TO kids");
  FindParent();
  FindChild("c1");
  Must("DISCONNECT child FROM kids");
  auto owners = Kernel("RETRIEVE ((FILE = parent)) (all attributes)");
  ASSERT_EQ(owners.records.size(), 1u);
  EXPECT_TRUE(owners.records[0].GetOrNull("kids").is_null());
}

TEST_F(OwnerSideDmlTest, DisconnectUnconnectedChildIsNotFound) {
  StoreFamily();
  FindParent();
  FindChild("c1");
  Status status = Fails("DISCONNECT child FROM kids");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(OwnerSideDmlTest, EraseParentWithConnectedKidsAborts) {
  StoreFamily();
  FindParent();
  FindChild("c1");
  Must("CONNECT child TO kids");
  FindParent();
  Status status = Fails("ERASE parent");
  EXPECT_EQ(status.code(), StatusCode::kAborted);
}

TEST_F(OwnerSideDmlTest, EraseReferencedChildAborts) {
  // The Daplex constraint: an entity referenced by a database function
  // cannot be destroyed.
  StoreFamily();
  FindParent();
  FindChild("c1");
  Must("CONNECT child TO kids");
  FindChild("c1");
  Status status = Fails("ERASE child");
  EXPECT_EQ(status.code(), StatusCode::kAborted);
}

TEST_F(OwnerSideDmlTest, EraseAfterDisconnectSucceeds) {
  StoreFamily();
  FindParent();
  FindChild("c1");
  Must("CONNECT child TO kids");
  FindParent();
  FindChild("c1");
  Must("DISCONNECT child FROM kids");
  FindChild("c1");
  Must("ERASE child");
  auto children = Kernel("RETRIEVE ((FILE = child)) (child)");
  EXPECT_EQ(children.records.size(), 1u);  // only child_2 remains.
}

// --- Overlap permitted by the table ---

class OverlapDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = daplex::ParseFunctionalSchema(
        "TYPE base IS ENTITY bname : STRING(10); END ENTITY;"
        "TYPE sa IS SUBTYPE OF base xa : INTEGER; END SUBTYPE;"
        "TYPE sb IS SUBTYPE OF base xb : INTEGER; END SUBTYPE;"
        "TYPE sc IS SUBTYPE OF base xc : INTEGER; END SUBTYPE;"
        "OVERLAP sa WITH sb;");
    ASSERT_TRUE(schema.ok()) << schema.status();
    auto mapping = transform::TransformFunctionalToNetwork(*schema);
    ASSERT_TRUE(mapping.ok()) << mapping.status();
    mapping_ = std::move(*mapping);
    auto db = transform::MapNetworkToAbdm(mapping_.schema, &mapping_);
    ASSERT_TRUE(db.ok());
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    ASSERT_TRUE(executor_->DefineDatabase(*db).ok());
    machine_ = std::make_unique<DmlMachine>(&mapping_.schema, &mapping_,
                                            executor_.get());
    // One base entity, already a member of subtype sa.
    Must("MOVE 'b' TO bname IN base");
    Must("STORE base");
    Must("MOVE 1 TO xa IN sa");
    Must("STORE sa");
    // Restore the base entity as owner currency for further STOREs.
    Must("MOVE 'b' TO bname IN base");
    Must("FIND ANY base USING bname IN base");
  }

  DmlResult Must(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_TRUE(result.ok()) << dml << ": " << result.status();
    return result.ok() ? std::move(*result) : DmlResult{};
  }

  transform::FunNetMapping mapping_;
  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<DmlMachine> machine_;
};

TEST_F(OverlapDmlTest, DeclaredOverlapPermitsSharedEntity) {
  // OVERLAP sa WITH sb: the entity may also join sb.
  Must("MOVE 2 TO xb IN sb");
  DmlResult stored = Must("STORE sb");
  EXPECT_EQ(stored.records[0].GetOrNull("base_sb").AsString(), "base_1");
}

TEST_F(OverlapDmlTest, UndeclaredOverlapAborts) {
  // sc is not overlapped with sa.
  Must("MOVE 3 TO xc IN sc");
  auto result = machine_->ExecuteText("STORE sc");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(OverlapDmlTest, OverlapIsSymmetric) {
  // Fresh entity joining sb first, then sa must also be allowed.
  Must("MOVE 'b2' TO bname IN base");
  Must("STORE base");
  Must("MOVE 5 TO xb IN sb");
  Must("STORE sb");
  Must("MOVE 'b2' TO bname IN base");
  Must("FIND ANY base USING bname IN base");
  Must("MOVE 6 TO xa IN sa");
  Must("STORE sa");
}

// --- Native network target (mapping == nullptr): the Emdi translation ---

class NativeNetworkDmlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = network::ParseSchema(
        "SCHEMA NAME IS shop;"
        "RECORD NAME IS customer;"
        "  ITEM cname TYPE IS CHARACTER 20;"
        "  DUPLICATES ARE NOT ALLOWED FOR cname;"
        "RECORD NAME IS invoice;"
        "  ITEM total TYPE IS FLOAT;"
        "SET NAME IS system_customer;"
        "  OWNER IS SYSTEM; MEMBER IS customer;"
        "  INSERTION IS AUTOMATIC; RETENTION IS FIXED;"
        "  SET SELECTION IS BY APPLICATION;"
        "SET NAME IS places;"
        "  OWNER IS customer; MEMBER IS invoice;"
        "  INSERTION IS MANUAL; RETENTION IS OPTIONAL;"
        "  SET SELECTION IS BY APPLICATION;");
    ASSERT_TRUE(schema.ok()) << schema.status();
    schema_ = std::move(*schema);
    auto db = transform::MapNetworkToAbdm(schema_);
    ASSERT_TRUE(db.ok());
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    ASSERT_TRUE(executor_->DefineDatabase(*db).ok());
    machine_ =
        std::make_unique<DmlMachine>(&schema_, nullptr, executor_.get());
  }

  DmlResult Must(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_TRUE(result.ok()) << dml << ": " << result.status();
    return result.ok() ? std::move(*result) : DmlResult{};
  }

  network::Schema schema_;
  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<DmlMachine> machine_;
};

TEST_F(NativeNetworkDmlTest, StoreFindConnectRoundTrip) {
  EXPECT_FALSE(machine_->IsFunctionalTarget());
  Must("MOVE 'Acme' TO cname IN customer");
  Must("STORE customer");
  Must("MOVE 12.5 TO total IN invoice");
  Must("STORE invoice");
  Must("CONNECT invoice TO places");
  DmlResult first = Must("FIND FIRST invoice WITHIN places");
  EXPECT_DOUBLE_EQ(first.records[0].GetOrNull("total").AsFloat(), 12.5);
  DmlResult owner = Must("FIND OWNER WITHIN places");
  EXPECT_EQ(owner.records[0].GetOrNull("cname").AsString(), "Acme");
}

TEST_F(NativeNetworkDmlTest, DuplicatesClauseEnforcedOnStore) {
  Must("MOVE 'Acme' TO cname IN customer");
  Must("STORE customer");
  auto again = machine_->ExecuteText("STORE customer");
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(NativeNetworkDmlTest, DisconnectThenEraseOwner) {
  Must("MOVE 'Acme' TO cname IN customer");
  Must("STORE customer");
  Must("MOVE 9.0 TO total IN invoice");
  Must("STORE invoice");
  Must("CONNECT invoice TO places");
  // Owner cannot be erased while the occurrence is non-null.
  Must("FIND OWNER WITHIN places");
  auto erase = machine_->ExecuteText("ERASE customer");
  ASSERT_FALSE(erase.ok());
  EXPECT_EQ(erase.status().code(), StatusCode::kAborted);
  // Disconnect, then erase succeeds.
  Must("FIND FIRST invoice WITHIN places");
  Must("DISCONNECT invoice FROM places");
  Must("FIND OWNER WITHIN places");
  Must("ERASE customer");
  EXPECT_EQ(engine_.FileSize("customer"), 0u);
}

TEST_F(NativeNetworkDmlTest, ModifyUpdatesItem) {
  Must("MOVE 'Acme' TO cname IN customer");
  Must("STORE customer");
  Must("MOVE 'AcmeCorp' TO cname IN customer");
  Must("MODIFY cname IN customer");
  DmlResult got = Must("GET cname IN customer");
  EXPECT_EQ(got.records[0].GetOrNull("cname").AsString(), "AcmeCorp");
}

}  // namespace
}  // namespace mlds::kms
