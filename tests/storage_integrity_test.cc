// Storage integrity tests: the per-page checksum grid (flip every byte
// of a page file; the reader must detect it, never serve wrong bytes),
// the engine-level corruption grid (every flip of a committed page file
// quarantines + rebuilds byte-identically from the checkpoint), the
// injectable file-I/O seam (every fault kind surfaces as a structured
// error and is counted), ENOSPC during checkpoint (the previous
// checkpoint survives), eviction write-back failures (never silently
// dropped), the on-demand scrubber, and the integrity counters' trip
// across the STATS wire frame.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "abdl/parser.h"
#include "kds/engine.h"
#include "kds/file_io.h"
#include "kds/page_file.h"
#include "kds/snapshot.h"
#include "server/wire.h"

namespace mlds {
namespace {

using abdm::DatabaseDescriptor;
using abdm::FileDescriptor;
using abdm::ValueKind;
using kds::Engine;
using kds::EngineOptions;
using kds::FaultyFileIo;
using kds::IntegrityCounters;
using kds::IoFaultKind;
using kds::PageFile;

/// A fresh per-test scratch directory under the test temp root.
std::string FreshDataDir(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / ("mlds_integrity_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

FileDescriptor AccountFile() {
  FileDescriptor f;
  f.name = "account";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"acct", ValueKind::kString, 0, true},
      {"balance", ValueKind::kInteger, 0, true},
      {"note", ValueKind::kString, 40, false},
  };
  return f;
}

DatabaseDescriptor BankSchema() {
  DatabaseDescriptor db;
  db.name = "bank";
  db.files = {AccountFile()};
  return db;
}

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

void MustExecute(Engine& engine, std::string_view text) {
  auto response = engine.Execute(MustParse(text));
  ASSERT_TRUE(response.ok()) << text << ": " << response.status();
}

std::string InsertAccount(int i) {
  return "INSERT (<FILE, account>, <acct, 'a" + std::to_string(i) +
         "'>, <balance, " + std::to_string(i * 10) + ">, <note, 'note-" +
         std::to_string(i) + "'>)";
}

std::string SnapshotOf(const Engine& engine) {
  std::ostringstream out;
  EXPECT_TRUE(kds::SaveSnapshot(engine, out).ok());
  return out.str();
}

// ---------------------------------------------------------------------
// Page-level corruption grid: flip every byte of a checksummed page
// file. Reopening and reading back must yield either the original bytes
// or a structured failure — never silently wrong data.

TEST(StorageIntegrityTest, PageFileDetectsEveryByteFlip) {
  const std::string dir = FreshDataDir("pagefile_grid");
  const std::string path = dir + "/grid.mpf";
  constexpr size_t kPage = 128;
  std::vector<std::string> pages;
  {
    auto file = PageFile::Open(path, kPage);
    ASSERT_TRUE(file.ok()) << file.status();
    for (int p = 0; p < 3; ++p) {
      std::string payload(kPage, static_cast<char>('A' + p));
      payload[5] = static_cast<char>(p);
      ASSERT_TRUE((*file)->WritePage(p, payload.data()).ok());
      pages.push_back(std::move(payload));
    }
    ASSERT_TRUE((*file)->SetMeta("meta blob v1").ok());
    ASSERT_TRUE((*file)->Sync().ok());
  }
  // A clean Sync retires the header sidecar: only the page file remains,
  // so the grid below covers every durable byte.
  EXPECT_FALSE(std::filesystem::exists(path + ".hdr"));
  const std::string pristine = ReadAllBytes(path);
  ASSERT_EQ(pristine.size(), kPage + 3 * (kPage + 16));

  for (size_t off = 0; off < pristine.size(); ++off) {
    std::string mutated = pristine;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x40);
    WriteAllBytes(path, mutated);
    auto reopened = PageFile::Open(path, kPage);
    if (!reopened.ok()) continue;  // header flips fail the open: detected.
    EXPECT_EQ((*reopened)->meta(), "meta blob v1") << "offset " << off;
    for (size_t p = 0; p < pages.size(); ++p) {
      std::string buf(kPage, '\0');
      const Status read = (*reopened)->ReadPage(p, buf.data());
      if (read.ok()) {
        EXPECT_EQ(buf, pages[p])
            << "flip at offset " << off << " served wrong bytes for page "
            << p;
      } else {
        EXPECT_TRUE(read.IsCorruption())
            << "offset " << off << ": " << read.ToString();
      }
    }
  }
}

// ---------------------------------------------------------------------
// Engine-level corruption grid: flip every byte of a committed page
// file between clean shutdown and restart. The restarted engine must
// detect the damage, quarantine the file, and rebuild it from the
// checkpoint snapshot — ending byte-identical to the pre-corruption
// state, with the incident visible in the integrity counters.

TEST(StorageIntegrityTest, EveryByteFlipRebuildsByteIdentically) {
  namespace fs = std::filesystem;
  const std::string dir = FreshDataDir("engine_grid");
  std::string before;
  {
    EngineOptions options;
    options.data_dir = dir;
    options.page_bytes = 256;  // small pages keep the grid tractable.
    Engine engine(options);
    ASSERT_TRUE(engine.restore_status().ok());
    ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
    for (int i = 0; i < 4; ++i) MustExecute(engine, InsertAccount(i));
    // A record long enough to overflow one slot chain, so the grid also
    // walks overflow-chain bytes.
    MustExecute(engine,
                "INSERT (<FILE, account>, <acct, 'big'>, <balance, 1>, "
                "<note, '" + std::string(300, 'x') + "'>)");
    before = SnapshotOf(engine);
  }  // clean shutdown: page file + checkpoint.snap + marker.

  // Capture the pristine directory (page file, checkpoint, marker) so
  // every grid point starts from the same committed state.
  std::map<std::string, std::string> pristine;
  for (const auto& entry : fs::directory_iterator(dir)) {
    pristine[entry.path().string()] = ReadAllBytes(entry.path().string());
  }
  const std::string mpf = (fs::path(dir) / "account.mpf").string();
  ASSERT_TRUE(pristine.count(mpf)) << "page file missing";
  ASSERT_TRUE(pristine.count((fs::path(dir) / "checkpoint.snap").string()))
      << "clean shutdown wrote no checkpoint";
  const std::string original = pristine.at(mpf);

  for (size_t off = 0; off < original.size(); ++off) {
    std::error_code ec;
    fs::remove_all(dir, ec);
    fs::create_directories(dir, ec);
    for (const auto& [path, bytes] : pristine) WriteAllBytes(path, bytes);
    std::string mutated = original;
    mutated[off] = static_cast<char>(mutated[off] ^ 0x01);
    WriteAllBytes(mpf, mutated);

    EngineOptions options;
    options.data_dir = dir;
    options.page_bytes = 256;
    Engine revived(options);
    ASSERT_TRUE(revived.restore_status().ok())
        << "flip at " << off << ": " << revived.restore_status();
    ASSERT_EQ(SnapshotOf(revived), before)
        << "flip at offset " << off << " changed the served state";
    const IntegrityCounters counters = revived.integrity_stats();
    EXPECT_EQ(counters.files_rebuilt, 1u) << "flip at " << off;
    EXPECT_TRUE(fs::exists(mpf + ".quarantined"))
        << "flip at " << off << ": damaged bytes were not kept aside";
  }
}

// ---------------------------------------------------------------------
// The file-I/O fault seam: every failpoint kind surfaces as a
// structured error on the request path that hits it, and the engine
// counts the injected faults separately from real I/O errors.

TEST(StorageIntegrityTest, InjectedWriteFaultsSurfaceAsStructuredErrors) {
  const IoFaultKind kinds[] = {IoFaultKind::kWriteError,
                               IoFaultKind::kShortWrite,
                               IoFaultKind::kNoSpace};
  for (const IoFaultKind kind : kinds) {
    FaultyFileIo faulty;
    EngineOptions options;
    options.data_dir =
        FreshDataDir("fault_" + std::to_string(static_cast<int>(kind)));
    options.file_io = &faulty;
    Engine engine(options);
    ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
    for (int i = 0; i < 4; ++i) MustExecute(engine, InsertAccount(i));

    faulty.Arm(kind, /*countdown=*/0, /*count=*/1);
    auto response = engine.Execute(MustParse(InsertAccount(99)));
    faulty.Disarm();
    EXPECT_FALSE(response.ok())
        << "fault kind " << static_cast<int>(kind) << " was swallowed";
    EXPECT_GE(engine.integrity_stats().io_errors_injected, 1u);
    EXPECT_EQ(engine.integrity_stats().io_errors_real, 0u);
  }
}

TEST(StorageIntegrityTest, InjectedReadFaultFailsTheRetrieve) {
  FaultyFileIo faulty;
  const std::string dir = FreshDataDir("fault_read");
  {
    EngineOptions options;
    options.data_dir = dir;
    options.file_io = &faulty;
    Engine engine(options);
    ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
    for (int i = 0; i < 8; ++i) MustExecute(engine, InsertAccount(i));
  }  // clean shutdown: nothing resident, the next engine reads cold.

  EngineOptions options;
  options.data_dir = dir;
  options.file_io = &faulty;
  // Write-through mode: every fetch of the cold-started engine reads
  // the file, so the armed read fault lands on the retrieve.
  options.pool_pages = 0;
  Engine engine(options);
  ASSERT_TRUE(engine.restore_status().ok());

  faulty.Arm(IoFaultKind::kReadError);
  auto failed =
      engine.Execute(MustParse("RETRIEVE (FILE = account) (all attributes)"));
  faulty.Disarm();
  EXPECT_FALSE(failed.ok()) << "read fault was swallowed";
  EXPECT_GE(engine.integrity_stats().io_errors_injected, 1u);

  // With the fault gone the same retrieve succeeds: nothing corrupted.
  auto ok =
      engine.Execute(MustParse("RETRIEVE (FILE = account) (all attributes)"));
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->records.size(), 8u);
}

TEST(StorageIntegrityTest, SyncFaultFailsFlushThenRecovers) {
  FaultyFileIo faulty;
  EngineOptions options;
  options.data_dir = FreshDataDir("fault_sync");
  options.file_io = &faulty;
  Engine engine(options);
  ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
  for (int i = 0; i < 4; ++i) MustExecute(engine, InsertAccount(i));

  faulty.Arm(IoFaultKind::kSyncError);
  EXPECT_FALSE(engine.Flush().ok()) << "failed fsync reported success";
  faulty.Disarm();
  EXPECT_TRUE(engine.Flush().ok());
}

// ---------------------------------------------------------------------
// Atomic file replacement: a fault at any point of the write-temp +
// fsync + rename sequence leaves the previous contents intact.

TEST(StorageIntegrityTest, WriteFileAtomicPreservesOldContentsUnderFaults) {
  const std::string dir = FreshDataDir("atomic");
  const std::string path = dir + "/target.txt";
  FaultyFileIo faulty;
  ASSERT_TRUE(faulty.WriteFileAtomic(path, "v1").ok());

  const IoFaultKind kinds[] = {IoFaultKind::kNoSpace, IoFaultKind::kWriteError,
                               IoFaultKind::kShortWrite,
                               IoFaultKind::kSyncError,
                               IoFaultKind::kRenameError};
  for (const IoFaultKind kind : kinds) {
    faulty.Arm(kind);
    const Status replaced = faulty.WriteFileAtomic(path, "v2-should-not-land");
    faulty.Disarm();
    EXPECT_FALSE(replaced.ok()) << static_cast<int>(kind);
    auto contents = faulty.ReadFile(path);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(*contents, "v1")
        << "fault kind " << static_cast<int>(kind) << " tore the target";
  }
  ASSERT_TRUE(faulty.WriteFileAtomic(path, "v2").ok());
  auto contents = faulty.ReadFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "v2");
}

// ---------------------------------------------------------------------
// ENOSPC during shutdown: the checkpoint written by the *previous*
// clean shutdown must survive a failed attempt to write the next one.

TEST(StorageIntegrityTest, EnospcDuringCheckpointPreservesPreviousCheckpoint) {
  const std::string dir = FreshDataDir("enospc_checkpoint");
  const std::string checkpoint = dir + "/checkpoint.snap";
  FaultyFileIo faulty;
  {
    EngineOptions options;
    options.data_dir = dir;
    options.file_io = &faulty;
    Engine engine(options);
    ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
    for (int i = 0; i < 4; ++i) MustExecute(engine, InsertAccount(i));
  }  // clean shutdown: checkpoint v1.
  const std::string v1 = ReadAllBytes(checkpoint);
  ASSERT_FALSE(v1.empty());

  {
    EngineOptions options;
    options.data_dir = dir;
    options.file_io = &faulty;
    Engine engine(options);
    ASSERT_TRUE(engine.restore_status().ok());
    ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());  // re-attach.
    for (int i = 4; i < 8; ++i) MustExecute(engine, InsertAccount(i));
    // The disk "fills up" before shutdown: every write from here on
    // fails with ENOSPC, including the checkpoint replacement.
    faulty.Arm(IoFaultKind::kNoSpace, /*countdown=*/0, /*count=*/1 << 20);
  }  // destructor: flush/checkpoint attempts fail.
  faulty.Disarm();

  // The previous checkpoint is byte-identical — the failed replacement
  // never tore it — and no clean marker certifies the torn shutdown.
  EXPECT_EQ(ReadAllBytes(checkpoint), v1);
  EXPECT_FALSE(std::filesystem::exists(dir + "/CLEAN"));
}

// ---------------------------------------------------------------------
// Eviction write-back failures are not silent: the error surfaces on a
// request or on Flush, the retained data stays readable, and a retry
// after the fault clears drains cleanly.

TEST(StorageIntegrityTest, EvictionWritebackFailureIsNotSilent) {
  FaultyFileIo faulty;
  EngineOptions options;
  options.data_dir = FreshDataDir("writeback_fault");
  options.file_io = &faulty;
  options.pool_pages = 2;  // tiny pool: constant eviction traffic.
  Engine engine(options);
  ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
  for (int i = 0; i < 40; ++i) MustExecute(engine, InsertAccount(i));

  faulty.Arm(IoFaultKind::kWriteError, /*countdown=*/0, /*count=*/1);
  bool surfaced = false;
  for (int i = 40; i < 56; ++i) {
    auto response = engine.Execute(MustParse(InsertAccount(i)));
    if (!response.ok()) surfaced = true;
  }
  faulty.Disarm();
  if (!engine.Flush().ok()) surfaced = true;
  EXPECT_TRUE(surfaced) << "an injected write-back failure vanished";
  EXPECT_GE(engine.integrity_stats().io_errors_injected, 1u);

  // The retry drains cleanly and every record survived the incident.
  EXPECT_TRUE(engine.Flush().ok());
  auto all =
      engine.Execute(MustParse("RETRIEVE (FILE = account) (all attributes)"));
  ASSERT_TRUE(all.ok()) << all.status();
  EXPECT_GE(all->records.size(), 40u);
}

// ---------------------------------------------------------------------
// The on-demand scrubber: clean storage verifies clean; a flipped byte
// on disk is found, named, and counted — without crashing the engine.

TEST(StorageIntegrityTest, VerifyIntegrityScrubsAndReportsCorruption) {
  EngineOptions options;
  options.data_dir = FreshDataDir("scrub");
  options.page_bytes = 256;
  Engine engine(options);
  ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
  for (int i = 0; i < 8; ++i) MustExecute(engine, InsertAccount(i));
  ASSERT_TRUE(engine.Flush().ok());

  const kds::IntegrityReport clean = engine.VerifyIntegrity();
  EXPECT_TRUE(clean.clean);
  ASSERT_EQ(clean.files.size(), 1u);
  EXPECT_EQ(clean.files[0].file, "account");
  EXPECT_GT(clean.files[0].pages, 0u);
  EXPECT_EQ(clean.files[0].bad_pages, 0u);
  EXPECT_EQ(clean.ToText().rfind("integrity OK", 0), 0u) << clean.ToText();
  EXPECT_GT(engine.integrity_stats().pages_scrubbed, 0u);

  // Flip one payload byte of the first data frame behind the engine's
  // back, as a decaying disk would.
  const std::string mpf = options.data_dir + "/account.mpf";
  std::string bytes = ReadAllBytes(mpf);
  ASSERT_GT(bytes.size(), 256u + 8u);
  bytes[256 + 8] = static_cast<char>(bytes[256 + 8] ^ 0x7f);
  WriteAllBytes(mpf, bytes);

  const kds::IntegrityReport dirty = engine.VerifyIntegrity();
  EXPECT_FALSE(dirty.clean);
  ASSERT_EQ(dirty.files.size(), 1u);
  EXPECT_GE(dirty.files[0].bad_pages, 1u);
  EXPECT_TRUE(dirty.files[0].status.IsCorruption())
      << dirty.files[0].status.ToString();
  EXPECT_EQ(dirty.ToText().rfind("integrity FAILED", 0), 0u)
      << dirty.ToText();
  EXPECT_GE(engine.integrity_stats().checksum_failures, 1u);
}

// ---------------------------------------------------------------------
// The integrity counters make the round trip through the STATS frame.

TEST(StorageIntegrityTest, StatsReplyCarriesIntegrityCounters) {
  wire::StatsReply stats;
  stats.integrity_checksum_failures = 3;
  stats.integrity_io_errors_injected = 5;
  stats.integrity_io_errors_real = 1;
  stats.integrity_pages_scrubbed = 1234;
  stats.integrity_files_rebuilt = 2;
  stats.integrity_fsyncs = 77;
  stats.health = "healthy";

  auto decoded = wire::DecodeStatsReply(wire::EncodeStatsReply(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->integrity_checksum_failures, 3u);
  EXPECT_EQ(decoded->integrity_io_errors_injected, 5u);
  EXPECT_EQ(decoded->integrity_io_errors_real, 1u);
  EXPECT_EQ(decoded->integrity_pages_scrubbed, 1234u);
  EXPECT_EQ(decoded->integrity_files_rebuilt, 2u);
  EXPECT_EQ(decoded->integrity_fsyncs, 77u);
  EXPECT_EQ(decoded->health, "healthy");
  const std::string text = decoded->ToText();
  EXPECT_NE(text.find("integrity.checksum_failures 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("integrity.pages_scrubbed 1234"), std::string::npos)
      << text;
}

}  // namespace
}  // namespace mlds
