// Tests reproducing Figure 5.1: the functional University schema
// transformed into its network representation (Ch. V).

#include "transform/fun_to_net.h"

#include <gtest/gtest.h>

#include "daplex/ddl_parser.h"
#include "network/ddl_parser.h"
#include "university/university.h"

namespace mlds::transform {
namespace {

using daplex::FunctionalSchema;
using network::InsertionMode;
using network::RetentionMode;
using network::SelectionMode;
using network::SetType;

class UniversityTransformTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = university::UniversitySchema();
    ASSERT_TRUE(schema.ok()) << schema.status();
    auto mapping = TransformFunctionalToNetwork(*schema);
    ASSERT_TRUE(mapping.ok()) << mapping.status();
    mapping_ = std::move(*mapping);
  }

  FunNetMapping mapping_;
};

TEST_F(UniversityTransformTest, EveryEntityAndSubtypeBecomesARecord) {
  for (const char* name : {"person", "employee", "department", "course",
                           "student", "faculty", "support_staff"}) {
    EXPECT_NE(mapping_.schema.FindRecord(name), nullptr) << name;
  }
}

TEST_F(UniversityTransformTest, ManyToManyCreatesLinkRecord) {
  ASSERT_EQ(mapping_.link_records.size(), 1u);
  EXPECT_EQ(mapping_.link_records[0], "link_1");
  EXPECT_NE(mapping_.schema.FindRecord("link_1"), nullptr);
  // 7 type records + 1 link record.
  EXPECT_EQ(mapping_.schema.records().size(), 8u);
}

TEST_F(UniversityTransformTest, SystemSetsForEntityTypesOnly) {
  for (const char* entity : {"person", "employee", "department", "course"}) {
    const SetType* set = mapping_.schema.FindSet(SystemSetName(entity));
    ASSERT_NE(set, nullptr) << entity;
    EXPECT_TRUE(set->IsSystemOwned());
    // A SYSTEM-owned set never lets members change owner (Ch. V.F):
    EXPECT_EQ(set->insertion, InsertionMode::kAutomatic);
    EXPECT_EQ(set->retention, RetentionMode::kFixed);
  }
  // Subtypes belong to their supertype's set instead.
  EXPECT_EQ(mapping_.schema.FindSet(SystemSetName("student")), nullptr);
  EXPECT_EQ(mapping_.schema.FindSet(SystemSetName("link_1")), nullptr);
}

TEST_F(UniversityTransformTest, IsaSetsNamedSupertypeUnderscoreSubtype) {
  struct Case {
    const char* super;
    const char* sub;
  } cases[] = {{"person", "student"},
               {"employee", "faculty"},
               {"employee", "support_staff"}};
  for (const auto& c : cases) {
    const SetType* set = mapping_.schema.FindSet(IsaSetName(c.super, c.sub));
    ASSERT_NE(set, nullptr) << c.super << "_" << c.sub;
    EXPECT_EQ(set->owner, c.super);
    ASSERT_EQ(set->members.size(), 1u);
    EXPECT_EQ(set->members[0], c.sub);
    EXPECT_EQ(set->insertion, InsertionMode::kAutomatic);
    EXPECT_EQ(set->retention, RetentionMode::kFixed);
    const SetInfo* info = mapping_.FindSetInfo(set->name);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->origin, SetOrigin::kIsa);
  }
}

TEST_F(UniversityTransformTest, SingleValuedFunctionsOwnedByRangeType) {
  // Figure 5.1: SET advisor OWNER faculty MEMBER student, etc.
  struct Case {
    const char* set;
    const char* owner;
    const char* member;
  } cases[] = {{"advisor", "faculty", "student"},
               {"dept", "department", "faculty"},
               {"supervisor", "employee", "support_staff"}};
  for (const auto& c : cases) {
    const SetType* set = mapping_.schema.FindSet(c.set);
    ASSERT_NE(set, nullptr) << c.set;
    EXPECT_EQ(set->owner, c.owner) << c.set;
    ASSERT_EQ(set->members.size(), 1u);
    EXPECT_EQ(set->members[0], c.member) << c.set;
    // Function sets allow members to be detached (Ch. V.F / Fig. 5.1):
    EXPECT_EQ(set->insertion, InsertionMode::kManual);
    EXPECT_EQ(set->retention, RetentionMode::kOptional);
    const SetInfo* info = mapping_.FindSetInfo(c.set);
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->origin, SetOrigin::kSingleValuedFunction);
    EXPECT_FALSE(info->function_on_owner_side);
  }
}

TEST_F(UniversityTransformTest, ManyToManySetsThroughLinkRecord) {
  // Figure 5.1: SET teaching OWNER faculty MEMBER link_1;
  //             SET taught_by OWNER course MEMBER link_1.
  const SetType* teaching = mapping_.schema.FindSet("teaching");
  ASSERT_NE(teaching, nullptr);
  EXPECT_EQ(teaching->owner, "faculty");
  EXPECT_EQ(teaching->members[0], "link_1");
  const SetType* taught_by = mapping_.schema.FindSet("taught_by");
  ASSERT_NE(taught_by, nullptr);
  EXPECT_EQ(taught_by->owner, "course");
  EXPECT_EQ(taught_by->members[0], "link_1");
  for (const char* name : {"teaching", "taught_by"}) {
    const SetInfo* info = mapping_.FindSetInfo(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_EQ(info->origin, SetOrigin::kManyToManyFunction);
    EXPECT_TRUE(info->function_on_owner_side);
    EXPECT_EQ(info->link_record, "link_1");
  }
}

TEST_F(UniversityTransformTest, ScalarFunctionsBecomeAttributes) {
  const network::RecordType* course = mapping_.schema.FindRecord("course");
  ASSERT_NE(course, nullptr);
  EXPECT_NE(course->FindAttribute("title"), nullptr);
  EXPECT_NE(course->FindAttribute("semester"), nullptr);
  EXPECT_NE(course->FindAttribute("credits"), nullptr);
  // Entity-valued functions do NOT become attributes.
  EXPECT_EQ(course->FindAttribute("taught_by"), nullptr);
  EXPECT_EQ(course->attributes.size(), 3u);
}

TEST_F(UniversityTransformTest, NonEntityTypeMapping) {
  const network::RecordType* course = mapping_.schema.FindRecord("course");
  // credits goes through non-entity credit_value: INTEGER RANGE 0..9.
  EXPECT_EQ(course->FindAttribute("credits")->type,
            network::AttrType::kInteger);
  const network::RecordType* faculty = mapping_.schema.FindRecord("faculty");
  // frank goes through the rank enumeration -> CHARACTER sized to the
  // longest literal ("instructor" = 10).
  const network::Attribute* frank = faculty->FindAttribute("frank");
  ASSERT_NE(frank, nullptr);
  EXPECT_EQ(frank->type, network::AttrType::kString);
  EXPECT_EQ(frank->length, 10);
  const network::RecordType* employee = mapping_.schema.FindRecord("employee");
  EXPECT_EQ(employee->FindAttribute("salary")->type,
            network::AttrType::kFloat);
  EXPECT_EQ(employee->FindAttribute("ename")->type,
            network::AttrType::kString);
  EXPECT_EQ(employee->FindAttribute("ename")->length, 30);
}

TEST_F(UniversityTransformTest, UniquenessBecomesDuplicatesNotAllowed) {
  // Figure 5.3: "DUPLICATES ARE NOT ALLOWED FOR title, semester".
  const network::RecordType* course = mapping_.schema.FindRecord("course");
  EXPECT_FALSE(course->FindAttribute("title")->duplicates_allowed);
  EXPECT_FALSE(course->FindAttribute("semester")->duplicates_allowed);
  EXPECT_TRUE(course->FindAttribute("credits")->duplicates_allowed);
}

TEST_F(UniversityTransformTest, ScalarMultiValuedAttributeDisallowsDuplicates) {
  const network::RecordType* employee = mapping_.schema.FindRecord("employee");
  const network::Attribute* degrees = employee->FindAttribute("degrees");
  ASSERT_NE(degrees, nullptr);
  EXPECT_FALSE(degrees->duplicates_allowed);
  EXPECT_TRUE(mapping_.IsScalarMultiValued("employee", "degrees"));
  EXPECT_FALSE(mapping_.IsScalarMultiValued("employee", "ename"));
}

TEST_F(UniversityTransformTest, OverlapTableCarriesConstraints) {
  ASSERT_EQ(mapping_.overlap_table.size(), 1u);
  EXPECT_EQ(mapping_.overlap_table[0].left[0], "student");
  EXPECT_EQ(mapping_.overlap_table[0].right[0], "support_staff");
}

TEST_F(UniversityTransformTest, AllSelectionsAreByApplication) {
  for (const auto& set : mapping_.schema.sets()) {
    EXPECT_EQ(set.selection.mode, SelectionMode::kApplication) << set.name;
  }
}

TEST_F(UniversityTransformTest, TransformedSchemaIsValidAndPrintable) {
  ASSERT_TRUE(mapping_.schema.Validate().ok());
  auto reparsed = network::ParseSchema(mapping_.schema.ToDdl());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, mapping_.schema);
}

TEST_F(UniversityTransformTest, SetCountMatchesFigure51) {
  // 4 system + 3 ISA + 3 single-valued + 2 many-to-many = 12 sets.
  EXPECT_EQ(mapping_.schema.sets().size(), 12u);
}

// --- Non-university transformation edge cases ---

TEST(FunToNetTest, OneToManyMultiValuedWithoutInverse) {
  auto schema = daplex::ParseFunctionalSchema(
      "TYPE a IS ENTITY kids : SET OF b; END ENTITY;"
      "TYPE b IS ENTITY x : INTEGER; END ENTITY;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto mapping = TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  // One-to-many: owner = domain a, member = range b; no link record.
  const SetType* kids = mapping->schema.FindSet("kids");
  ASSERT_NE(kids, nullptr);
  EXPECT_EQ(kids->owner, "a");
  EXPECT_EQ(kids->members[0], "b");
  EXPECT_TRUE(mapping->link_records.empty());
  const SetInfo* info = mapping->FindSetInfo("kids");
  EXPECT_EQ(info->origin, SetOrigin::kOneToManyFunction);
  EXPECT_TRUE(info->function_on_owner_side);
}

TEST(FunToNetTest, TwoManyToManyPairsGetDistinctLinks) {
  auto schema = daplex::ParseFunctionalSchema(
      "TYPE a IS ENTITY f1 : SET OF b; f2 : SET OF c; END ENTITY;"
      "TYPE b IS ENTITY g1 : SET OF a; END ENTITY;"
      "TYPE c IS ENTITY g2 : SET OF a; END ENTITY;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto mapping = TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  EXPECT_EQ(mapping->link_records.size(), 2u);
  EXPECT_NE(mapping->schema.FindRecord("link_1"), nullptr);
  EXPECT_NE(mapping->schema.FindRecord("link_2"), nullptr);
}

TEST(FunToNetTest, SubtypeOfSubtypeGetsIsaChain) {
  auto schema = daplex::ParseFunctionalSchema(
      "TYPE a IS ENTITY x : INTEGER; END ENTITY;"
      "TYPE b IS SUBTYPE OF a y : INTEGER; END SUBTYPE;"
      "TYPE c IS SUBTYPE OF b z : INTEGER; END SUBTYPE;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto mapping = TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  EXPECT_NE(mapping->schema.FindSet(IsaSetName("a", "b")), nullptr);
  EXPECT_NE(mapping->schema.FindSet(IsaSetName("b", "c")), nullptr);
  // Only a gets a system set.
  EXPECT_NE(mapping->schema.FindSet(SystemSetName("a")), nullptr);
  EXPECT_EQ(mapping->schema.FindSet(SystemSetName("b")), nullptr);
}

TEST(FunToNetTest, MultipleSupertypesYieldMultipleIsaSets) {
  auto schema = daplex::ParseFunctionalSchema(
      "TYPE a IS ENTITY x : INTEGER; END ENTITY;"
      "TYPE b IS ENTITY y : INTEGER; END ENTITY;"
      "TYPE c IS SUBTYPE OF a, b z : INTEGER; END SUBTYPE;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto mapping = TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  EXPECT_NE(mapping->schema.FindSet(IsaSetName("a", "c")), nullptr);
  EXPECT_NE(mapping->schema.FindSet(IsaSetName("b", "c")), nullptr);
}

TEST(FunToNetTest, BooleanMapsToCharacter) {
  auto schema = daplex::ParseFunctionalSchema(
      "TYPE a IS ENTITY flag : BOOLEAN; END ENTITY;");
  ASSERT_TRUE(schema.ok());
  auto mapping = TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(mapping->schema.FindRecord("a")->FindAttribute("flag")->type,
            network::AttrType::kString);
}

}  // namespace
}  // namespace mlds::transform
