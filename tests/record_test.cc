#include "abdm/record.h"

#include <gtest/gtest.h>

namespace mlds::abdm {
namespace {

TEST(RecordTest, SetAndGet) {
  Record r;
  r.Set("title", Value::String("Database"));
  r.Set("credits", Value::Integer(4));
  ASSERT_TRUE(r.Get("title").has_value());
  EXPECT_EQ(r.Get("title")->AsString(), "Database");
  EXPECT_EQ(r.Get("credits")->AsInteger(), 4);
  EXPECT_FALSE(r.Get("absent").has_value());
}

TEST(RecordTest, SetOverwritesExistingKeyword) {
  Record r;
  r.Set("credits", Value::Integer(3));
  r.Set("credits", Value::Integer(4));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.Get("credits")->AsInteger(), 4);
}

TEST(RecordTest, AtMostOneKeywordPerAttribute) {
  // The constructor drops later duplicates, preserving the ABDM record
  // invariant (at most one keyword per attribute).
  Record r({{"a", Value::Integer(1)}, {"a", Value::Integer(2)},
            {"b", Value::Integer(3)}});
  EXPECT_EQ(r.size(), 2u);
  EXPECT_EQ(r.Get("a")->AsInteger(), 1);
}

TEST(RecordTest, GetOrNull) {
  Record r;
  EXPECT_TRUE(r.GetOrNull("missing").is_null());
  r.Set("x", Value::Integer(9));
  EXPECT_EQ(r.GetOrNull("x").AsInteger(), 9);
}

TEST(RecordTest, EraseKeyword) {
  Record r;
  r.Set("a", Value::Integer(1));
  EXPECT_TRUE(r.Erase("a"));
  EXPECT_FALSE(r.Has("a"));
  EXPECT_FALSE(r.Erase("a"));
}

TEST(RecordTest, TextualPortion) {
  Record r;
  r.set_text("a verbal description of the concept");
  EXPECT_EQ(r.text(), "a verbal description of the concept");
}

TEST(RecordTest, ToStringKeywordList) {
  Record r;
  r.Set(std::string(kFileAttribute), Value::String("course"));
  r.Set("credits", Value::Integer(4));
  EXPECT_EQ(r.ToString(), "(<FILE, 'course'>, <credits, 4>)");
}

TEST(RecordTest, Equality) {
  Record a, b;
  a.Set("x", Value::Integer(1));
  b.Set("x", Value::Integer(1));
  EXPECT_EQ(a, b);
  b.Set("x", Value::Integer(2));
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mlds::abdm
