// The MBDS transaction pipeline: statements with disjoint file
// footprints execute concurrently, conflicting statements observe
// program order, and merged reports are deterministic across runs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "abdl/parser.h"
#include "abdl/request.h"
#include "mbds/controller.h"

namespace mlds::mbds {
namespace {

abdm::FileDescriptor MakeFile(const std::string& name) {
  abdm::FileDescriptor f;
  f.name = name;
  f.attributes = {{"FILE", abdm::ValueKind::kString, 0, true},
                  {"key", abdm::ValueKind::kInteger, 0, true},
                  {"v", abdm::ValueKind::kInteger, 0, false}};
  return f;
}

abdl::Request MustParse(const std::string& text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

MbdsOptions MakeOptions(int backends) {
  MbdsOptions options;
  options.num_backends = backends;
  return options;
}

void Load(Controller* c, int records_per_file) {
  for (const char* file : {"alpha", "beta"}) {
    EXPECT_TRUE(c->DefineFile(MakeFile(file)).ok());
    for (int i = 0; i < records_per_file; ++i) {
      auto report = c->Execute(MustParse("INSERT (<FILE, " + std::string(file) +
                                         ">, <key, " + std::to_string(i) +
                                         ">, <v, 0>)"));
      EXPECT_TRUE(report.ok()) << report.status();
    }
  }
}

TEST(TransactionPipelineTest, FootprintConflictsFollowAbdlSemantics) {
  const abdl::Request read_alpha =
      MustParse("RETRIEVE ((FILE = alpha)) (key)");
  const abdl::Request read_beta = MustParse("RETRIEVE ((FILE = beta)) (key)");
  const abdl::Request write_alpha =
      MustParse("UPDATE ((FILE = alpha)) (v = 1)");
  const abdl::Request insert_alpha =
      MustParse("INSERT (<FILE, alpha>, <key, 99>, <v, 0>)");

  const auto fp_read_alpha = abdl::FootprintOf(read_alpha);
  const auto fp_read_beta = abdl::FootprintOf(read_beta);
  const auto fp_write_alpha = abdl::FootprintOf(write_alpha);
  const auto fp_insert_alpha = abdl::FootprintOf(insert_alpha);

  EXPECT_FALSE(fp_read_alpha.ConflictsWith(fp_read_beta));   // R-R disjoint
  EXPECT_FALSE(fp_read_alpha.ConflictsWith(fp_read_alpha));  // R-R same file
  EXPECT_TRUE(fp_write_alpha.ConflictsWith(fp_read_alpha));  // W-R
  EXPECT_TRUE(fp_read_alpha.ConflictsWith(fp_write_alpha));  // R-W
  EXPECT_TRUE(fp_write_alpha.ConflictsWith(fp_insert_alpha));  // W-W
  EXPECT_FALSE(fp_write_alpha.ConflictsWith(fp_read_beta));  // disjoint files
}

TEST(TransactionPipelineTest, ConflictingStatementsObserveProgramOrder) {
  Controller c(MakeOptions(2));
  Load(&c, 10);
  // UPDATE then RETRIEVE of the same file: the read must see the write.
  auto txn = abdl::ParseTransaction(
      "UPDATE ((FILE = alpha)) (v = 7); "
      "RETRIEVE ((FILE = alpha) and (v = 7)) (key)");
  ASSERT_TRUE(txn.ok());
  auto report = c.ExecuteTransaction(*txn);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->response.records.size(), 10u);
}

TEST(TransactionPipelineTest, WriteAfterReadObservesProgramOrder) {
  Controller c(MakeOptions(2));
  Load(&c, 10);
  // RETRIEVE then DELETE: the read runs first and still sees all rows.
  auto txn = abdl::ParseTransaction(
      "RETRIEVE ((FILE = alpha)) (key); DELETE ((FILE = alpha))");
  ASSERT_TRUE(txn.ok());
  auto report = c.ExecuteTransaction(*txn);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->response.records.size(), 10u);
  EXPECT_EQ(report->response.affected, 10u);
  EXPECT_EQ(c.FileSize("alpha"), 0u);
}

TEST(TransactionPipelineTest, DeterministicMergeAcrossRepeatedRuns) {
  // Independent statements (different files) pipeline concurrently, yet
  // every run must merge records and counts in statement order.
  Controller c(MakeOptions(3));
  Load(&c, 12);
  auto txn = abdl::ParseTransaction(
      "RETRIEVE ((FILE = alpha)) (key) BY key; "
      "RETRIEVE ((FILE = beta)) (key) BY key");
  ASSERT_TRUE(txn.ok());

  auto first = c.ExecuteTransaction(*txn);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->response.records.size(), 24u);
  for (int run = 0; run < 20; ++run) {
    auto report = c.ExecuteTransaction(*txn);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->response.records.size(), 24u);
    for (size_t i = 0; i < 24; ++i) {
      EXPECT_EQ(report->response.records[i].ToString(),
                first->response.records[i].ToString())
          << "run " << run << " record " << i;
    }
    EXPECT_DOUBLE_EQ(report->response_time_ms, first->response_time_ms);
  }
}

TEST(TransactionPipelineTest, ErrorsReportLowestStatementIndex) {
  Controller c(MakeOptions(2));
  Load(&c, 4);
  // Two independent statements in one stage; the failing one (INSERT
  // into an undefined file) must surface its error deterministically.
  abdl::Transaction txn;
  txn.push_back(MustParse("RETRIEVE ((FILE = alpha)) (key)"));
  txn.push_back(MustParse("INSERT (<FILE, missing>, <key, 1>, <v, 0>)"));
  auto report = c.ExecuteTransaction(txn);
  EXPECT_FALSE(report.ok());
}

}  // namespace
}  // namespace mlds::mbds
