// Round-trip tests for the wire subsystem: a real TCP server over the
// demo databases, driven by the client library. The core property is
// byte-identity — a statement executed over the wire renders exactly the
// bytes in-process execution produces, because the server formats with
// the same kfs formatters — plus the protocol behaviors: structured
// BUSY rejections at the session cap, hostile frames dropping only the
// offending connection, session teardown, remote HEALTH/STATS, and
// graceful drain.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/frame.h"
#include "common/socket.h"
#include "kc/executor.h"
#include "mlds/mlds.h"
#include "server/demo.h"
#include "server/server.h"
#include "server/session.h"
#include "server/wire.h"

namespace mlds {
namespace {

/// One demo-loaded system + server, shared by the tests in a fixture.
class ServerRoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server::LoadDemoDatabases(&system_).ok());
    server_ = std::make_unique<server::MldsServer>(&system_, options_);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  client::MldsClient Connected() {
    client::MldsClient client;
    EXPECT_TRUE(client.Connect("127.0.0.1", server_->port()).ok());
    return client;
  }

  server::ServerOptions options_;
  MldsSystem system_;
  std::unique_ptr<server::MldsServer> server_;
};

struct LanguageCase {
  const char* language;
  const char* database;
  std::vector<const char*> statements;
};

/// The core guarantee: for every language, the wire result body is
/// byte-identical to what an in-process session produces against an
/// identically loaded system.
TEST_F(ServerRoundTripTest, AllLanguagesByteIdenticalToInProcess) {
  // A second, identically loaded system executes the same statements
  // in-process through the same session layer (no sockets involved).
  MldsSystem local_system;
  ASSERT_TRUE(server::LoadDemoDatabases(&local_system).ok());

  const std::vector<LanguageCase> cases = {
      {"codasyl",
       "university",
       {"MOVE 'Advanced Database' TO title IN course",
        "FIND ANY course USING title IN course", "GET"}},
      {"daplex", "university", {"FOR EACH course PRINT title"}},
      {"sql",
       "payroll",
       {"SELECT name, wage FROM staff",
        "INSERT INTO staff (name, wage) VALUES ('barbara', 95.0)",
        "SELECT name FROM staff WHERE wage > 90"}},
      {"dli",
       "clinic",
       {"GU patient (pname = 'smith')", "GNP visit", "GNP visit"}},
      {"abdl",
       "university",
       {"RETRIEVE ((FILE = course)) (title) BY course"}},
  };

  client::MldsClient client = Connected();
  for (const LanguageCase& c : cases) {
    SCOPED_TRACE(c.language);
    ASSERT_TRUE(client.Use(c.language, c.database).ok());
    server::Session local(99, &local_system);
    ASSERT_TRUE(
        local.Use(wire::UseRequest{c.language, c.database}).ok());
    for (const char* statement : c.statements) {
      SCOPED_TRACE(statement);
      Result<wire::ExecuteResult> remote = client.Execute(statement);
      Result<wire::ExecuteResult> in_process =
          local.Execute(statement, /*explain=*/false);
      ASSERT_TRUE(remote.ok()) << remote.status();
      ASSERT_TRUE(in_process.ok()) << in_process.status();
      EXPECT_EQ(remote->body, in_process->body);
      EXPECT_FALSE(remote->body.empty());
    }
  }
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerRoundTripTest, ExplainTravelsTheWire) {
  client::MldsClient client = Connected();
  ASSERT_TRUE(client.Use("sql", "payroll").ok());
  Result<wire::ExecuteResult> explained =
      client.Explain("SELECT name FROM staff WHERE wage > 80");
  ASSERT_TRUE(explained.ok()) << explained.status();
  EXPECT_NE(explained->body.find("PLAN"), std::string::npos);
  // Daplex has no explain mode; the rejection crosses the wire as the
  // same Status code in-process execution returns.
  ASSERT_TRUE(client.Use("daplex", "university").ok());
  Result<wire::ExecuteResult> rejected =
      client.Explain("FOR EACH course PRINT title");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ServerRoundTripTest, ErrorsPreserveStatusCode) {
  client::MldsClient client = Connected();
  // No language bound yet.
  Result<wire::ExecuteResult> unbound = client.Execute("SELECT 1");
  ASSERT_FALSE(unbound.ok());
  ASSERT_TRUE(client.Use("sql", "payroll").ok());
  Result<wire::ExecuteResult> bad = client.Execute("SELECT FROM WHERE");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  Result<wire::ExecuteResult> missing =
      client.Execute("SELECT nope FROM staff");
  ASSERT_FALSE(missing.ok());
  // Unknown language / database are rejected on USE.
  EXPECT_FALSE(client.Use("cobol", "payroll").ok());
  EXPECT_FALSE(client.Use("sql", "no-such-db").ok());
  // The connection survives all of the above.
  Result<wire::ExecuteResult> alive =
      client.Execute("SELECT name FROM staff");
  ASSERT_TRUE(client.Use("sql", "payroll").ok());
  alive = client.Execute("SELECT name FROM staff");
  EXPECT_TRUE(alive.ok());
}

TEST_F(ServerRoundTripTest, AbdlTransactionBufferedUntilCommit) {
  client::MldsClient client = Connected();
  ASSERT_TRUE(client.Use("abdl", "payroll").ok());
  ASSERT_TRUE(client.Execute("BEGIN").ok());
  ASSERT_TRUE(
      client
          .Execute("INSERT (<FILE, staff>, <name, 'hopper'>, <wage, 55.5>)")
          .ok());
  // Uncommitted: a second session does not see the insert.
  client::MldsClient other = Connected();
  ASSERT_TRUE(other.Use("sql", "payroll").ok());
  Result<wire::ExecuteResult> before =
      other.Execute("SELECT name FROM staff WHERE name = 'hopper'");
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->body.find("hopper"), std::string::npos);
  ASSERT_TRUE(client.Execute("COMMIT").ok());
  Result<wire::ExecuteResult> after =
      other.Execute("SELECT name FROM staff WHERE name = 'hopper'");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NE(after->body.find("hopper"), std::string::npos);
  // ABORT discards.
  ASSERT_TRUE(client.Execute("BEGIN").ok());
  ASSERT_TRUE(
      client
          .Execute("INSERT (<FILE, staff>, <name, 'lovelace'>, <wage, 1.0>)")
          .ok());
  ASSERT_TRUE(client.Execute("ABORT").ok());
  Result<wire::ExecuteResult> aborted =
      other.Execute("SELECT name FROM staff WHERE name = 'lovelace'");
  ASSERT_TRUE(aborted.ok());
  EXPECT_EQ(aborted->body.find("lovelace"), std::string::npos);
}

TEST_F(ServerRoundTripTest, BatchInsertsTravelAsOneFrame) {
  client::MldsClient client = Connected();

  // SQL: a prepared INSERT template, ten rows, one kBatch frame.
  ASSERT_TRUE(client.Use("sql", "payroll").ok());
  std::vector<std::vector<abdm::Value>> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({abdm::Value::String("bulk" + std::to_string(i)),
                    abdm::Value::Float(40.0 + i)});
  }
  Result<wire::ExecuteResult> inserted = client.ExecuteBatch(
      "INSERT INTO staff (name, wage) VALUES (?, ?)", rows);
  ASSERT_TRUE(inserted.ok()) << inserted.status();
  EXPECT_NE(inserted->body.find("10"), std::string::npos);
  Result<wire::ExecuteResult> check =
      client.Execute("SELECT name FROM staff WHERE wage > 48");
  ASSERT_TRUE(check.ok());
  EXPECT_NE(check->body.find("bulk9"), std::string::npos);

  // DL/I: the anchored-parent rule applies across the wire too.
  ASSERT_TRUE(client.Use("dli", "clinic").ok());
  Result<wire::ExecuteResult> orphan = client.ExecuteBatch(
      "ISRT visit (vdate = ?, cost = ?)",
      {{abdm::Value::String("880101"), abdm::Value::Float(1.0)}});
  ASSERT_FALSE(orphan.ok());
  EXPECT_EQ(orphan.status().code(), StatusCode::kCurrencyError);
  ASSERT_TRUE(client.Execute("GU patient (pname = 'jones')").ok());
  Result<wire::ExecuteResult> visits = client.ExecuteBatch(
      "ISRT visit (vdate = ?, cost = ?)",
      {{abdm::Value::String("880101"), abdm::Value::Float(1.0)},
       {abdm::Value::String("880102"), abdm::Value::Float(2.0)}});
  ASSERT_TRUE(visits.ok()) << visits.status();

  // Errors preserve their Status codes: empty batches and arity
  // mismatches fail whole, applying nothing.
  Result<wire::ExecuteResult> empty =
      client.ExecuteBatch("ISRT visit (vdate = ?, cost = ?)", {});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(client.Use("sql", "payroll").ok());
  Result<wire::ExecuteResult> ragged = client.ExecuteBatch(
      "INSERT INTO staff (name, wage) VALUES (?, ?)",
      {{abdm::Value::String("lone")}});
  ASSERT_FALSE(ragged.ok());
  EXPECT_EQ(ragged.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServerRoundTripTest, AbdlBatchBuffersInsideTransactions) {
  client::MldsClient client = Connected();
  ASSERT_TRUE(client.Use("abdl", "payroll").ok());
  const std::string prepared =
      "INSERT (<FILE, staff>, <name, ?>, <wage, ?>)";
  std::vector<std::vector<abdm::Value>> rows = {
      {abdm::Value::String("knuth"), abdm::Value::Float(99.0)},
      {abdm::Value::String("dijkstra"), abdm::Value::Float(98.0)},
  };

  ASSERT_TRUE(client.Execute("BEGIN").ok());
  Result<wire::ExecuteResult> buffered = client.ExecuteBatch(prepared, rows);
  ASSERT_TRUE(buffered.ok()) << buffered.status();
  EXPECT_NE(buffered->body.find("buffered"), std::string::npos);

  // Uncommitted: invisible to a second session.
  client::MldsClient other = Connected();
  ASSERT_TRUE(other.Use("sql", "payroll").ok());
  Result<wire::ExecuteResult> before =
      other.Execute("SELECT name FROM staff WHERE name = 'knuth'");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->body.find("knuth"), std::string::npos);

  ASSERT_TRUE(client.Execute("COMMIT").ok());
  Result<wire::ExecuteResult> after =
      other.Execute("SELECT name FROM staff WHERE wage > 97.5");
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->body.find("knuth"), std::string::npos);
  EXPECT_NE(after->body.find("dijkstra"), std::string::npos);

  // ABORT discards a buffered batch whole.
  ASSERT_TRUE(client.Execute("BEGIN").ok());
  ASSERT_TRUE(client
                  .ExecuteBatch(prepared,
                                {{abdm::Value::String("discarded"),
                                  abdm::Value::Float(1.0)}})
                  .ok());
  ASSERT_TRUE(client.Execute("ABORT").ok());
  Result<wire::ExecuteResult> aborted =
      other.Execute("SELECT name FROM staff WHERE name = 'discarded'");
  ASSERT_TRUE(aborted.ok());
  EXPECT_EQ(aborted->body.find("discarded"), std::string::npos);

  // Outside a transaction the batch applies immediately.
  Result<wire::ExecuteResult> direct = client.ExecuteBatch(
      prepared, {{abdm::Value::String("ritchie"), abdm::Value::Float(77.0)}});
  ASSERT_TRUE(direct.ok()) << direct.status();
  EXPECT_NE(direct->body.find("1 records affected"), std::string::npos);
}

TEST_F(ServerRoundTripTest, HealthRoundTripsThroughParser) {
  client::MldsClient client = Connected();
  Result<kc::KernelHealth> health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_FALSE(health->degraded);
  const kc::KernelHealth local = system_.Health();
  ASSERT_EQ(health->backends.size(), local.backends.size());
  for (size_t i = 0; i < local.backends.size(); ++i) {
    EXPECT_EQ(health->backends[i].id, local.backends[i].id);
    EXPECT_EQ(health->backends[i].state, local.backends[i].state);
  }
}

TEST_F(ServerRoundTripTest, StatsReportCacheAndServerCounters) {
  client::MldsClient client = Connected();
  ASSERT_TRUE(client.Use("sql", "payroll").ok());
  // Same statement twice: the second translation hits the cache.
  ASSERT_TRUE(client.Execute("SELECT name FROM staff").ok());
  ASSERT_TRUE(client.Execute("SELECT name FROM staff").ok());
  Result<wire::StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->cache_hits, 1u);
  EXPECT_GE(stats->cache_misses, 1u);
  EXPECT_GE(stats->requests_served, 4u);
  EXPECT_EQ(stats->sessions_active, 1u);
  EXPECT_GE(stats->sessions_accepted, 1u);
  EXPECT_FALSE(stats->health.empty());
  const std::string text = stats->ToText();
  EXPECT_NE(text.find("cache.hits"), std::string::npos);
  EXPECT_NE(text.find("server.sessions_active"), std::string::npos);
}

/// Admission control: connections beyond the cap receive a structured
/// BUSY (kUnavailable), and are not silently queued.
TEST_F(ServerRoundTripTest, SessionCapRejectsWithBusy) {
  server::ServerOptions small;
  small.max_sessions = 2;
  MldsSystem system;
  ASSERT_TRUE(server::LoadDemoDatabases(&system).ok());
  server::MldsServer server(&system, small);
  ASSERT_TRUE(server.Start().ok());

  client::MldsClient a, b, c;
  ASSERT_TRUE(a.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", server.port()).ok());
  const Status rejected = c.Connect("127.0.0.1", server.port());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable) << rejected;
  EXPECT_NE(rejected.message().find("session"), std::string::npos);
  EXPECT_FALSE(c.connected());

  // Admitted sessions keep working while the third is rejected…
  ASSERT_TRUE(a.Use("sql", "payroll").ok());
  EXPECT_TRUE(a.Execute("SELECT name FROM staff").ok());
  // …and closing one frees a slot.
  EXPECT_TRUE(b.Close().ok());
  Status retry = c.Connect("127.0.0.1", server.port());
  for (int i = 0; i < 100 && !retry.ok(); ++i) {
    // The server reaps the closed session asynchronously.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    retry = c.Connect("127.0.0.1", server.port());
  }
  EXPECT_TRUE(retry.ok()) << retry;
  EXPECT_EQ(server.stats().sessions_rejected, 1u);
  server.Shutdown();
}

/// Hostile bytes: garbage on one connection kills only that connection.
TEST_F(ServerRoundTripTest, GarbageFramesDropOnlyThatConnection) {
  client::MldsClient healthy = Connected();
  ASSERT_TRUE(healthy.Use("sql", "payroll").ok());

  // Raw socket sends garbage that cannot be a frame header.
  Result<int> raw = common::ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(
      common::SendAll(*raw, "this is definitely not a frame header!")
          .ok());
  // The server answers with an ERROR frame, then closes.
  char buffer[1024];
  size_t total = 0;
  while (true) {
    Result<size_t> n =
        common::RecvSome(*raw, buffer + total, sizeof(buffer) - total);
    if (!n.ok() || *n == 0) break;
    total += *n;
  }
  common::CloseSocket(*raw);
  common::FrameDecoder decoder;
  decoder.Feed(std::string_view(buffer, total));
  auto decoded = decoder.Next();
  ASSERT_EQ(decoded.event, common::FrameDecoder::Event::kFrame);
  EXPECT_EQ(decoded.frame.type,
            static_cast<uint8_t>(wire::FrameType::kError));

  // An oversized length in a valid-looking header is rejected too.
  Result<int> big = common::ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(big.ok());
  common::Frame huge;
  huge.type = static_cast<uint8_t>(wire::FrameType::kExecute);
  std::string encoded = common::EncodeFrame(huge);
  // Patch payload_len (v2 header offset 16) to 256 MiB, far past the
  // ceiling.
  const uint32_t evil = 256u << 20;
  encoded[16] = static_cast<char>(evil & 0xff);
  encoded[17] = static_cast<char>((evil >> 8) & 0xff);
  encoded[18] = static_cast<char>((evil >> 16) & 0xff);
  encoded[19] = static_cast<char>((evil >> 24) & 0xff);
  ASSERT_TRUE(common::SendAll(*big, encoded).ok());
  while (true) {
    Result<size_t> n = common::RecvSome(*big, buffer, sizeof(buffer));
    if (!n.ok() || *n == 0) break;
  }
  common::CloseSocket(*big);

  // The healthy session never noticed.
  Result<wire::ExecuteResult> still =
      healthy.Execute("SELECT name FROM staff");
  EXPECT_TRUE(still.ok()) << still.status();
  EXPECT_GE(server_->stats().bad_frames, 2u);
}

/// Version negotiation: a client speaking the retired version-1 framing
/// gets a structured ERROR naming the supported version — in v1 framing,
/// the one framing it can decode — not a silent connection drop.
TEST_F(ServerRoundTripTest, LegacyV1ClientGetsStructuredVersionError) {
  Result<int> raw = common::ConnectTcp("127.0.0.1", server_->port());
  ASSERT_TRUE(raw.ok());
  common::Frame hello;
  hello.type = static_cast<uint8_t>(wire::FrameType::kHello);
  hello.payload = "museum-piece";
  ASSERT_TRUE(
      common::SendAll(*raw, common::EncodeLegacyV1Frame(hello)).ok());
  std::string reply;
  char buffer[1024];
  while (true) {
    Result<size_t> n = common::RecvSome(*raw, buffer, sizeof(buffer));
    if (!n.ok() || *n == 0) break;  // server closes after the reply
    reply.append(buffer, *n);
  }
  common::CloseSocket(*raw);

  // Parse the 24-byte v1 header by hand — the v2 decoder no longer can.
  ASSERT_GE(reply.size(), common::kLegacyFrameHeaderBytes);
  auto u32_at = [&reply](size_t at) {
    uint32_t v = 0;
    for (size_t i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(reply[at + i]))
           << (8 * i);
    }
    return v;
  };
  EXPECT_EQ(u32_at(0), common::kFrameMagic);
  EXPECT_EQ(static_cast<uint8_t>(reply[4]), common::kLegacyFrameVersion);
  EXPECT_EQ(static_cast<uint8_t>(reply[5]),
            static_cast<uint8_t>(wire::FrameType::kError));
  const uint32_t payload_len = u32_at(12);  // v1: payload_len at 12
  ASSERT_EQ(reply.size(), common::kLegacyFrameHeaderBytes + payload_len);
  Result<wire::WireError> error = wire::DecodeWireError(
      std::string_view(reply).substr(common::kLegacyFrameHeaderBytes));
  ASSERT_TRUE(error.ok()) << error.status();
  EXPECT_EQ(error->code, StatusCode::kInvalidArgument);
  EXPECT_EQ(error->message,
            "unsupported frame version 1 (server speaks version 2)");
  EXPECT_GE(server_->stats().bad_frames, 1u);
}

/// Results above the streaming threshold travel as chunk runs and are
/// reassembled to the exact bytes in-process execution renders; the
/// event-loop counters record the streams.
TEST_F(ServerRoundTripTest, LargeResultsStreamByteIdentical) {
  server::ServerOptions tiny;
  tiny.stream_threshold = 64;  // every demo table crosses this
  tiny.chunk_bytes = 48;
  MldsSystem remote_system, local_system;
  ASSERT_TRUE(server::LoadDemoDatabases(&remote_system).ok());
  ASSERT_TRUE(server::LoadDemoDatabases(&local_system).ok());
  server::MldsServer server(&remote_system, tiny);
  ASSERT_TRUE(server.Start().ok());

  client::MldsClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  size_t chunks_seen = 0;
  uint32_t first_chunk_seq = 1;
  client.set_chunk_observer(
      [&](uint32_t, const wire::ResultChunk& chunk) {
        if (chunks_seen == 0) first_chunk_seq = chunk.seq;
        ++chunks_seen;
      });
  ASSERT_TRUE(client.Use("sql", "payroll").ok());
  server::Session local(99, &local_system);
  ASSERT_TRUE(local.Use(wire::UseRequest{"sql", "payroll"}).ok());

  Result<wire::ExecuteResult> remote =
      client.Execute("SELECT name, wage FROM staff");
  Result<wire::ExecuteResult> in_process =
      local.Execute("SELECT name, wage FROM staff", /*explain=*/false);
  ASSERT_TRUE(remote.ok()) << remote.status();
  ASSERT_TRUE(in_process.ok()) << in_process.status();
  EXPECT_EQ(remote->body, in_process->body);
  EXPECT_GT(remote->body.size(), tiny.stream_threshold);

  // The body arrived as >= 2 chunks starting at seq 0.
  EXPECT_GE(chunks_seen, 2u);
  EXPECT_EQ(first_chunk_seq, 0u);
  Result<wire::StatsReply> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->results_streamed, 1u);
  EXPECT_GE(stats->chunks_streamed, 2u);
  EXPECT_GT(stats->write_buffer_highwater, 0u);
  const std::string text = stats->ToText();
  EXPECT_NE(text.find("server.results_streamed"), std::string::npos);
  EXPECT_NE(text.find("server.chunks_streamed"), std::string::npos);
  EXPECT_NE(text.find("server.inflight_highwater"), std::string::npos);
  EXPECT_NE(text.find("server.backpressure_stalls"), std::string::npos);

  EXPECT_TRUE(client.Close().ok());
  server.Shutdown();
  EXPECT_EQ(server.stats().results_streamed, 1u);
}

/// Graceful drain: Shutdown() lets the in-flight request finish and the
/// response flush before the socket closes.
TEST_F(ServerRoundTripTest, ShutdownDrainsInFlightRequests) {
  client::MldsClient client = Connected();
  ASSERT_TRUE(client.Use("sql", "payroll").ok());
  ASSERT_TRUE(client.Execute("SELECT name FROM staff").ok());
  server_->Shutdown();
  // After the drain the connection is gone; the client sees a clean
  // transport error, not a hang.
  Result<wire::ExecuteResult> after =
      client.Execute("SELECT name FROM staff");
  EXPECT_FALSE(after.ok());
}

TEST_F(ServerRoundTripTest, RemoteShutdownRequestWakesWaiter) {
  client::MldsClient client = Connected();
  EXPECT_FALSE(server_->shutdown_requested());
  ASSERT_TRUE(client.RequestShutdown().ok());
  server_->WaitForShutdownRequest();  // returns promptly, no hang
  EXPECT_TRUE(server_->shutdown_requested());
}

}  // namespace
}  // namespace mlds
