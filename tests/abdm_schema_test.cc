#include "abdm/schema.h"

#include <gtest/gtest.h>

namespace mlds::abdm {
namespace {

FileDescriptor CourseFile() {
  FileDescriptor f;
  f.name = "course";
  f.attributes = {{"FILE", ValueKind::kString, 0, true},
                  {"course", ValueKind::kString, 0, true},
                  {"title", ValueKind::kString, 20, true},
                  {"notes", ValueKind::kString, 0, false}};
  return f;
}

TEST(AbdmSchemaTest, FindAttribute) {
  FileDescriptor f = CourseFile();
  ASSERT_NE(f.FindAttribute("title"), nullptr);
  EXPECT_EQ(f.FindAttribute("title")->max_length, 20);
  EXPECT_TRUE(f.FindAttribute("course")->directory);
  EXPECT_FALSE(f.FindAttribute("notes")->directory);
  EXPECT_EQ(f.FindAttribute("absent"), nullptr);
}

TEST(AbdmSchemaTest, DatabaseDescriptorLookup) {
  DatabaseDescriptor db;
  db.name = "univ";
  db.files = {CourseFile()};
  ASSERT_NE(db.FindFile("course"), nullptr);
  EXPECT_EQ(db.FindFile("course")->attributes.size(), 4u);
  EXPECT_EQ(db.FindFile("absent"), nullptr);
}

TEST(AbdmSchemaTest, DescriptorEquality) {
  DatabaseDescriptor a, b;
  a.files = {CourseFile()};
  b.files = {CourseFile()};
  EXPECT_EQ(a, b);
  b.files[0].attributes[2].max_length = 99;
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mlds::abdm
