// Tests for the relational/SQL language interface: DDL, the SQL-to-ABDL
// translation for all four statements, the RETRIEVE-COMMON join, and the
// relational constraints.

#include "kms/sql_machine.h"

#include <gtest/gtest.h>

#include "mlds/mlds.h"
#include "relational/schema.h"

namespace mlds::kms {
namespace {

constexpr char kRegistrarDdl[] = R"(
SCHEMA registrar;

CREATE TABLE course (
  title CHAR(20) NOT NULL,
  dept CHAR(10),
  credits INTEGER,
  UNIQUE (title)
);

CREATE TABLE enrollment (
  sname CHAR(20) NOT NULL,
  ctitle CHAR(20),
  grade FLOAT
);
)";

// --- DDL ---

TEST(RelationalSchemaTest, ParsesTablesAndConstraints) {
  auto schema = relational::ParseRelationalSchema(kRegistrarDdl);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->name(), "registrar");
  ASSERT_EQ(schema->tables().size(), 2u);
  const relational::Table* course = schema->FindTable("course");
  ASSERT_NE(course, nullptr);
  EXPECT_EQ(course->columns.size(), 3u);
  EXPECT_TRUE(course->FindColumn("title")->not_null);
  EXPECT_EQ(course->FindColumn("title")->length, 20);
  EXPECT_EQ(course->FindColumn("credits")->type,
            relational::ColumnType::kInteger);
  EXPECT_EQ(course->unique_columns, std::vector<std::string>{"title"});
}

TEST(RelationalSchemaTest, DdlRoundTrips) {
  auto first = relational::ParseRelationalSchema(kRegistrarDdl);
  ASSERT_TRUE(first.ok());
  auto second = relational::ParseRelationalSchema(first->ToDdl());
  ASSERT_TRUE(second.ok()) << second.status() << "\n" << first->ToDdl();
  EXPECT_EQ(*first, *second);
}

TEST(RelationalSchemaTest, RejectsReservedColumnNames) {
  EXPECT_FALSE(relational::ParseRelationalSchema(
                   "CREATE TABLE t (FILE CHAR(4));")
                   .ok());
  EXPECT_FALSE(
      relational::ParseRelationalSchema("CREATE TABLE t (t INTEGER);").ok());
}

TEST(RelationalSchemaTest, RejectsUniqueOnUnknownColumn) {
  EXPECT_FALSE(relational::ParseRelationalSchema(
                   "CREATE TABLE t (a INTEGER, UNIQUE (zz));")
                   .ok());
}

// --- SQL execution ---

class SqlMachineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.LoadRelationalDatabase(kRegistrarDdl).ok());
    auto session = system_.OpenSqlSession("registrar");
    ASSERT_TRUE(session.ok()) << session.status();
    machine_ = *session;
    Must("INSERT INTO course (title, dept, credits) "
         "VALUES ('Databases', 'CS', 4)");
    Must("INSERT INTO course (title, dept, credits) "
         "VALUES ('Networks', 'CS', 3)");
    Must("INSERT INTO course (title, dept, credits) "
         "VALUES ('Thermo', 'ME', 3)");
    Must("INSERT INTO enrollment (sname, ctitle, grade) "
         "VALUES ('alice', 'Databases', 3.7)");
    Must("INSERT INTO enrollment (sname, ctitle, grade) "
         "VALUES ('bob', 'Databases', 3.1)");
    Must("INSERT INTO enrollment (sname, ctitle, grade) "
         "VALUES ('alice', 'Thermo', 3.9)");
  }

  SqlMachine::Outcome Must(std::string_view text) {
    auto outcome = machine_->ExecuteText(text);
    EXPECT_TRUE(outcome.ok()) << text << ": " << outcome.status();
    return outcome.ok() ? std::move(*outcome) : SqlMachine::Outcome{};
  }

  Status Fails(std::string_view text) {
    auto outcome = machine_->ExecuteText(text);
    EXPECT_FALSE(outcome.ok()) << text << " unexpectedly succeeded";
    return outcome.ok() ? Status::OK() : outcome.status();
  }

  MldsSystem system_;
  SqlMachine* machine_ = nullptr;
};

TEST_F(SqlMachineTest, SelectStarWithWhere) {
  auto rows = Must("SELECT * FROM course WHERE dept = 'CS'").rows;
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.GetOrNull("dept").AsString(), "CS");
    EXPECT_FALSE(row.Has("FILE"));  // kernel keyword hidden.
  }
}

TEST_F(SqlMachineTest, SelectProjectionAndOrderBy) {
  auto rows =
      Must("SELECT title FROM course WHERE credits >= 3 ORDER BY title").rows;
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].GetOrNull("title").AsString(), "Databases");
  EXPECT_EQ(rows[2].GetOrNull("title").AsString(), "Thermo");
}

TEST_F(SqlMachineTest, SelectWithOrAndParentheses) {
  auto rows = Must("SELECT title FROM course WHERE dept = 'ME' OR "
                   "(dept = 'CS' AND credits = 4)")
                  .rows;
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(SqlMachineTest, AggregatesWithGroupBy) {
  auto rows = Must("SELECT AVG(grade), COUNT(sname) FROM enrollment "
                   "GROUP BY sname")
                  .rows;
  ASSERT_EQ(rows.size(), 2u);  // alice, bob.
  // Groups come back ordered by the grouping attribute.
  EXPECT_EQ(rows[0].GetOrNull("sname").AsString(), "alice");
  EXPECT_DOUBLE_EQ(rows[0].GetOrNull("AVG(grade)").AsFloat(), 3.8);
  EXPECT_EQ(rows[1].GetOrNull("COUNT(sname)").AsInteger(), 1);
}

TEST_F(SqlMachineTest, JoinTranslatesToRetrieveCommon) {
  auto outcome = Must(
      "SELECT sname, credits FROM enrollment, course "
      "WHERE ctitle = title AND dept = 'CS'");
  ASSERT_EQ(outcome.rows.size(), 2u);  // alice+bob in Databases.
  for (const auto& row : outcome.rows) {
    EXPECT_EQ(row.GetOrNull("credits").AsInteger(), 4);
  }
  // The translation used RETRIEVE-COMMON.
  ASSERT_EQ(machine_->trace().size(), 1u);
  EXPECT_TRUE(machine_->trace()[0].starts_with("RETRIEVE-COMMON"))
      << machine_->trace()[0];
}

TEST_F(SqlMachineTest, JoinRequiresEquiJoinComparison) {
  Status status = Fails("SELECT sname FROM enrollment, course");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlMachineTest, UpdateWithWhere) {
  auto outcome =
      Must("UPDATE course SET credits = 5 WHERE title = 'Networks'");
  EXPECT_EQ(outcome.affected, 1u);
  auto rows =
      Must("SELECT credits FROM course WHERE title = 'Networks'").rows;
  EXPECT_EQ(rows[0].GetOrNull("credits").AsInteger(), 5);
}

TEST_F(SqlMachineTest, DeleteWithWhere) {
  auto outcome = Must("DELETE FROM enrollment WHERE sname = 'bob'");
  EXPECT_EQ(outcome.affected, 1u);
  EXPECT_EQ(Must("SELECT * FROM enrollment").rows.size(), 2u);
}

TEST_F(SqlMachineTest, UniqueConstraintEnforced) {
  Status status = Fails(
      "INSERT INTO course (title, dept, credits) VALUES ('Databases', "
      "'EE', 2)");
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
}

TEST_F(SqlMachineTest, NotNullEnforced) {
  Status status =
      Fails("INSERT INTO course (dept, credits) VALUES ('EE', 2)");
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
  Status update_status =
      Fails("UPDATE course SET title = NULL WHERE dept = 'CS'");
  EXPECT_EQ(update_status.code(), StatusCode::kConstraintViolation);
}

TEST_F(SqlMachineTest, UnknownColumnAndTableErrors) {
  EXPECT_TRUE(Fails("SELECT zz FROM course").IsNotFound());
  EXPECT_TRUE(Fails("SELECT title FROM nope").IsNotFound());
  EXPECT_TRUE(Fails("INSERT INTO course (zz) VALUES (1)").IsNotFound());
  EXPECT_TRUE(Fails("UPDATE course SET zz = 1").IsNotFound());
}

TEST_F(SqlMachineTest, AmbiguousColumnRejected) {
  // 'title' exists only in course; 'ctitle' only in enrollment — make an
  // ambiguous case with a shared name via qualified check instead:
  // 'sname' is unique, so qualify mismatch errors instead.
  Status status = Fails(
      "SELECT course.sname FROM enrollment, course WHERE ctitle = title");
  EXPECT_TRUE(status.IsNotFound());
}

TEST_F(SqlMachineTest, SqlWritesVisibleToAbdlKernel) {
  // The SQL interface writes the same kernel every other interface reads.
  auto rows = Must("SELECT COUNT(title) FROM course").rows;
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetOrNull("COUNT(title)").AsInteger(), 3);
  EXPECT_EQ(system_.executor()->FileSize("course"), 3u);
}

TEST_F(SqlMachineTest, ParserRejectsMalformedSql) {
  EXPECT_FALSE(machine_->ExecuteText("SELECT FROM course").ok());
  EXPECT_FALSE(machine_->ExecuteText("SELECT * course").ok());
  EXPECT_FALSE(
      machine_->ExecuteText("INSERT INTO course (a, b) VALUES (1)").ok());
  EXPECT_FALSE(machine_->ExecuteText("DROP TABLE course").ok());
  EXPECT_FALSE(machine_->ExecuteText("SELECT * FROM course WHERE").ok());
}

// --- batch INSERT ---

TEST_F(SqlMachineTest, MultiRowValuesInsertAsOneStatement) {
  auto outcome = Must(
      "INSERT INTO enrollment (sname, ctitle, grade) VALUES "
      "('carol', 'Networks', 3.2), ('dave', 'Networks', 2.9), "
      "('erin', 'Thermo', 3.5)");
  EXPECT_EQ(outcome.affected, 3u);
  auto rows = Must("SELECT COUNT(sname) FROM enrollment").rows;
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetOrNull("COUNT(sname)").AsInteger(), 6);
}

TEST_F(SqlMachineTest, PreparedBatchInsertBindsRowsInOrder) {
  std::vector<std::vector<abdm::Value>> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({abdm::Value::String("s" + std::to_string(i)),
                    abdm::Value::Float(2.0 + i * 0.1)});
  }
  auto outcome = machine_->ExecuteBatch(
      "INSERT INTO enrollment (sname, ctitle, grade) "
      "VALUES (?, 'Databases', ?)",
      rows);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->affected, 10u);
  auto check = Must(
      "SELECT sname, grade FROM enrollment "
      "WHERE ctitle = 'Databases' AND sname = 's7'");
  ASSERT_EQ(check.rows.size(), 1u);
  EXPECT_EQ(check.rows[0].GetOrNull("grade").AsFloat(), 2.7);
}

TEST_F(SqlMachineTest, PreparedBatchChunksAtEffectiveBatchSize) {
  // Two parameters per row with batch_size 4 → chunks of 4; 10 rows land
  // as 3 kernel batch requests, all-or-nothing each.
  std::vector<std::vector<abdm::Value>> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({abdm::Value::String("c" + std::to_string(i)),
                    abdm::Value::Integer(i)});
  }
  abdl::BatchLimits limits;
  limits.batch_size = 4;
  auto outcome = machine_->ExecuteBatch(
      "INSERT INTO course (title, dept, credits) VALUES (?, 'EE', ?)", rows,
      limits);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->affected, 10u);
  // The trace also carries unique-probe and key-allocation RETRIEVEs;
  // the INSERT entries are the kernel batches themselves.
  size_t batches = 0;
  for (const std::string& entry : machine_->trace()) {
    if (entry.rfind("INSERT", 0) == 0) ++batches;
  }
  EXPECT_EQ(batches, 3u);
  EXPECT_EQ(system_.executor()->FileSize("course"), 13u);
}

TEST_F(SqlMachineTest, BatchRejectsMismatchedAndHostileShapes) {
  const std::vector<std::vector<abdm::Value>> good = {
      {abdm::Value::String("x"), abdm::Value::Integer(1)}};
  // Zero-row batches and arity mismatches fail whole.
  EXPECT_FALSE(machine_
                   ->ExecuteBatch(
                       "INSERT INTO course (title, credits) VALUES (?, ?)",
                       {})
                   .ok());
  EXPECT_FALSE(machine_
                   ->ExecuteBatch(
                       "INSERT INTO course (title, credits) VALUES (?, ?)",
                       {{abdm::Value::String("only-one")}})
                   .ok());
  // Non-INSERT and unparameterized templates are rejected up front.
  EXPECT_FALSE(
      machine_->ExecuteBatch("SELECT title FROM course", good).ok());
  // Direct execution of a parameterized statement points at the batch
  // interface instead of binding nulls.
  EXPECT_FALSE(
      machine_
          ->ExecuteText("INSERT INTO course (title, credits) VALUES (?, ?)")
          .ok());
}

TEST_F(SqlMachineTest, BatchEnforcesUniqueWithinOneChunk) {
  // Duplicate keys *inside* one batch must trip UNIQUE(title) even
  // though neither row is in the kernel yet when the batch validates.
  const std::vector<std::vector<abdm::Value>> dup = {
      {abdm::Value::String("twin")}, {abdm::Value::String("twin")}};
  Status status =
      machine_
          ->ExecuteBatch("INSERT INTO course (title) VALUES (?)", dup)
          .status();
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
  // The failed batch applied nothing.
  EXPECT_EQ(system_.executor()->FileSize("course"), 3u);
}

}  // namespace
}  // namespace mlds::kms
