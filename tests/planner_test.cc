// Standalone planner tests: the KDS planner consumes only the
// abdm::DirectoryStats interface, so plan shapes are pinned here against
// synthetic statistics — no FileStore, no records. The estimate-vs-actual
// bound tests at the bottom run real queries through a FileStore and
// check the documented relationships between the planner's estimates and
// the executor's actuals.

#include "kds/planner.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "abdm/stats.h"
#include "kds/file_store.h"
#include "kds/plan.h"

namespace mlds::kds {
namespace {

using abdm::Conjunction;
using abdm::Predicate;
using abdm::Query;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;
using abdm::ValueKind;

/// Synthetic directory statistics: a fixed per-attribute bucket size.
/// Attributes absent from the map are not index-assisted, matching a
/// non-directory attribute in a real FileStore.
class FakeStats : public abdm::DirectoryStats {
 public:
  FakeStats(size_t live, uint64_t blocks, int per_block)
      : live_(live), blocks_(blocks), per_block_(per_block) {}

  FakeStats& Bucket(std::string attribute, size_t size) {
    buckets_[std::move(attribute)] = size;
    return *this;
  }

  std::optional<size_t> EstimateMatches(
      const Predicate& pred) const override {
    if (pred.op == RelOp::kNe || pred.value.is_null()) return std::nullopt;
    auto it = buckets_.find(pred.attribute);
    if (it == buckets_.end()) return std::nullopt;
    return it->second;
  }
  size_t live_records() const override { return live_; }
  uint64_t allocated_blocks() const override { return blocks_; }
  int records_per_block() const override { return per_block_; }

 private:
  size_t live_;
  uint64_t blocks_;
  int per_block_;
  std::map<std::string, size_t> buckets_;
};

Predicate Eq(std::string attribute, int64_t value) {
  return Predicate{std::move(attribute), RelOp::kEq, Value::Integer(value)};
}

TEST(PlannerTest, WorthIntersectingRule) {
  // next <= 4 * current + 16, the executor's adaptive cutoff.
  EXPECT_TRUE(WorthIntersecting(16, 0));
  EXPECT_FALSE(WorthIntersecting(17, 0));
  EXPECT_TRUE(WorthIntersecting(56, 10));
  EXPECT_FALSE(WorthIntersecting(57, 10));
}

TEST(PlannerTest, CheapestIndexAloneCollapsesToLoneIndexNode) {
  // The FILE keyword's bucket covers the whole file; against a 1-row key
  // bucket it fails the cutoff, so the plan is the bare key probe.
  FakeStats stats(8192, 1024, 8);
  stats.Bucket("FILE", 8192).Bucket("key", 1);
  Conjunction conj{{Eq("FILE", 0), Eq("key", 4242)}};
  PlanNode plan = PlanConjunction(conj, stats);
  EXPECT_EQ(plan.kind, PlanNodeKind::kIndexEquality);
  EXPECT_TRUE(plan.children.empty());
  ASSERT_TRUE(plan.predicate.has_value());
  EXPECT_EQ(plan.predicate->attribute, "key");
  EXPECT_EQ(plan.est_rows, 1u);
  EXPECT_EQ(plan.est_blocks, 1u);
}

TEST(PlannerTest, CloseEstimatesKeepTheIntersection) {
  FakeStats stats(1000, 125, 8);
  stats.Bucket("a", 30).Bucket("b", 10);
  Conjunction conj{{Eq("a", 1), Eq("b", 2)}};
  PlanNode plan = PlanConjunction(conj, stats);
  ASSERT_EQ(plan.kind, PlanNodeKind::kIntersect);
  ASSERT_EQ(plan.children.size(), 2u);
  // Children come cheapest-estimate first: b drives.
  EXPECT_EQ(plan.children[0].predicate->attribute, "b");
  EXPECT_EQ(plan.children[1].predicate->attribute, "a");
  EXPECT_EQ(plan.est_rows, 10u);  // the driver's estimate
  EXPECT_EQ(plan.est_blocks, 10u);
}

TEST(PlannerTest, AdaptiveCutoffPrunesExpensiveTail) {
  // driver = 2; 4*2+16 = 24 admits the 20-row set but not the 1000-row
  // one — and everything after the first failure is pruned with it.
  FakeStats stats(4000, 500, 8);
  stats.Bucket("a", 1000).Bucket("b", 2).Bucket("c", 20);
  Conjunction conj{{Eq("a", 1), Eq("b", 2), Eq("c", 3)}};
  PlanNode plan = PlanConjunction(conj, stats);
  ASSERT_EQ(plan.kind, PlanNodeKind::kIntersect);
  ASSERT_EQ(plan.children.size(), 2u);
  EXPECT_EQ(plan.children[0].predicate->attribute, "b");
  EXPECT_EQ(plan.children[1].predicate->attribute, "c");
}

TEST(PlannerTest, NoIndexedPredicateFallsBackToFullScan) {
  FakeStats stats(320, 40, 8);
  Conjunction conj{{Eq("payload", 7),
                    Predicate{"key", RelOp::kNe, Value::Integer(1)}}};
  PlanNode plan = PlanConjunction(conj, stats);
  EXPECT_EQ(plan.kind, PlanNodeKind::kFullScan);
  EXPECT_EQ(plan.est_rows, 320u);
  EXPECT_EQ(plan.est_blocks, 40u);
}

TEST(PlannerTest, ProvenEmptyConjunctionIsALoneZeroProbe) {
  FakeStats stats(320, 40, 8);
  stats.Bucket("a", 50).Bucket("key", 0);
  Conjunction conj{{Eq("a", 1), Eq("key", 999)}};
  PlanNode plan = PlanConjunction(conj, stats);
  EXPECT_EQ(plan.kind, PlanNodeKind::kIndexEquality);
  EXPECT_EQ(plan.predicate->attribute, "key");
  EXPECT_EQ(plan.est_rows, 0u);
  EXPECT_EQ(plan.est_blocks, 0u);
}

TEST(PlannerTest, RangePredicatePlansAsIndexRange) {
  FakeStats stats(320, 40, 8);
  stats.Bucket("key", 12);
  Conjunction conj{
      {Predicate{"key", RelOp::kGe, Value::Integer(100)}}};
  PlanNode plan = PlanConjunction(conj, stats);
  EXPECT_EQ(plan.kind, PlanNodeKind::kIndexRange);
  EXPECT_EQ(plan.est_rows, 12u);
}

TEST(PlannerTest, BlockBudgetIsCappedByAllocatedBlocks) {
  // 500 candidates can't need more blocks than the file has.
  FakeStats stats(4000, 32, 128);
  stats.Bucket("a", 500);
  Conjunction conj{{Eq("a", 1)}};
  PlanNode plan = PlanConjunction(conj, stats);
  EXPECT_EQ(plan.est_rows, 500u);
  EXPECT_EQ(plan.est_blocks, 32u);
}

TEST(PlannerTest, QueryPlanShapeGolden) {
  // The full DNF shape, byte-pinned: a UNION root labeled with the file,
  // one child per disjunct — here a lone index probe and a full scan.
  FakeStats stats(64, 8, 8);
  stats.Bucket("FILE", 64).Bucket("key", 1);
  Query query({Conjunction{{Eq("FILE", 0), Eq("key", 42)}},
               Conjunction{{Eq("payload", 7)}}});
  PlanNode plan = PlanQuery(query, stats, "item");
  EXPECT_EQ(plan.ToString(),
            "UNION (item)  est: 65 rows, 9 blocks  (not executed)\n"
            "  INDEX EQUALITY (key = 42) [directory]  est: 1 rows, 1 blocks"
            "  (not executed)\n"
            "  FULL SCAN [heuristic]  est: 64 rows, 8 blocks"
            "  (not executed)\n");
}

// --- Estimate-vs-actual bounds against a real FileStore ---

abdm::FileDescriptor Descriptor() {
  abdm::FileDescriptor f;
  f.name = "item";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"key", ValueKind::kInteger, 0, true},
      {"owner", ValueKind::kInteger, 0, true},
      {"payload", ValueKind::kString, 0, false},
  };
  return f;
}

Record MakeRecord(int key) {
  Record r;
  r.Set("FILE", Value::String("item"));
  r.Set("key", Value::Integer(key));
  r.Set("owner", Value::Integer(key % 7));
  r.Set("payload", Value::String("p" + std::to_string(key % 3)));
  return r;
}

/// Asserts the documented planner/executor relationships on every
/// executed node of the tree. Histogram-sourced estimates are
/// approximate: the documented error bound for an equi-depth histogram
/// range estimate is the bucket depth at build time plus the drift
/// absorbed since (Add/Remove adjust one bucket each, so the boundary
/// bucket the estimate halves is off by at most depth + drift).
void CheckBounds(const FileStore& store, const PlanNode& node,
                 int records_per_block) {
  if (node.executed) {
    switch (node.kind) {
      case PlanNodeKind::kFullScan:
        // A full scan's block estimate is exact.
        EXPECT_EQ(node.actual_blocks, node.est_blocks) << node.Describe();
        break;
      case PlanNodeKind::kIndexEquality:
      case PlanNodeKind::kIndexRange:
        if (node.est_source == abdm::EstimateSource::kHistogram) {
          ASSERT_TRUE(node.predicate.has_value()) << node.Describe();
          const AttributeHistogram* h =
              store.statistics().Find(node.predicate->attribute);
          ASSERT_NE(h, nullptr) << node.Describe();
          const uint64_t bound = h->depth() + h->drift();
          const uint64_t err = node.actual_rows > node.est_rows
                                   ? node.actual_rows - node.est_rows
                                   : node.est_rows - node.actual_rows;
          EXPECT_LE(err, bound) << node.Describe();
        } else {
          // Directory buckets only list live records, so the candidate
          // estimate is exact for an executed index leaf.
          EXPECT_EQ(node.actual_rows, node.est_rows) << node.Describe();
        }
        break;
      case PlanNodeKind::kIntersect: {
        // Verified matches never exceed the driver's candidate estimate
        // (padded by the histogram error bound when the driver's
        // estimate is itself approximate); block fetches respect both
        // the worst-case budget and the packing lower bound.
        uint64_t row_budget = node.est_rows;
        if (node.est_source == abdm::EstimateSource::kHistogram &&
            !node.children.empty() &&
            node.children.front().predicate.has_value()) {
          if (const AttributeHistogram* h = store.statistics().Find(
                  node.children.front().predicate->attribute)) {
            row_budget += h->depth() + h->drift();
          }
        }
        EXPECT_LE(node.actual_rows, row_budget) << node.Describe();
        EXPECT_LE(node.actual_blocks, node.est_blocks) << node.Describe();
        const uint64_t packed =
            (node.actual_rows + records_per_block - 1) / records_per_block;
        EXPECT_GE(node.actual_blocks, packed) << node.Describe();
        break;
      }
      default:
        EXPECT_LE(node.actual_blocks, node.est_blocks) << node.Describe();
        break;
    }
  }
  for (const PlanNode& child : node.children) {
    CheckBounds(store, child, records_per_block);
  }
}

TEST(PlannerBoundsTest, ActualsStayWithinDocumentedBounds) {
  constexpr int kPerBlock = 4;
  FileStore store(Descriptor(), kPerBlock);
  IoStats io;
  for (int i = 0; i < 256; ++i) store.Insert(MakeRecord(i), &io);

  const Query queries[] = {
      // Lone index probe.
      Query::And({Eq("key", 42)}),
      // Intersection of two close buckets.
      Query::And({Eq("owner", 3), Eq("key", 3)}),
      // Full scan (non-directory attribute).
      Query::And({Predicate{"payload", RelOp::kEq, Value::String("p1")}}),
      // Range + equality.
      Query::And({Predicate{"key", RelOp::kLt, Value::Integer(40)},
                  Eq("owner", 2)}),
      // Union of disjuncts.
      Query({Conjunction{{Eq("key", 7)}}, Conjunction{{Eq("key", 9)}}}),
  };
  for (const Query& query : queries) {
    io.Reset();
    PlanNode plan;
    auto ids = *store.Select(query, &io, &plan);
    EXPECT_TRUE(plan.executed) << plan.ToString();
    EXPECT_EQ(plan.actual_rows, ids.size()) << plan.ToString();
    CheckBounds(store, plan, kPerBlock);
    // The root's actual block count is what the executor charged to io.
    EXPECT_EQ(plan.actual_blocks, io.blocks_read) << plan.ToString();
  }
}

TEST(PlannerBoundsTest, SkippedIntersectChildStaysUnexecuted) {
  FileStore store(Descriptor(), 4);
  IoStats io;
  for (int i = 0; i < 256; ++i) store.Insert(MakeRecord(i), &io);
  // key = 42 estimates 1 row; FILE = item estimates 256 — planned out by
  // the static cutoff, so the plan is the bare key probe.
  Query query = Query::And(
      {Predicate{"FILE", RelOp::kEq, Value::String("item")}, Eq("key", 42)});
  PlanNode plan = store.Plan(query);
  ASSERT_EQ(plan.kind, PlanNodeKind::kUnionOfConjunctions);
  ASSERT_EQ(plan.children.size(), 1u);
  EXPECT_EQ(plan.children[0].kind, PlanNodeKind::kIndexEquality);
  EXPECT_EQ(plan.children[0].predicate->attribute, "key");
}

}  // namespace
}  // namespace mlds::kds
