// Tests for the ORDER IS SORTED BY clause: set members sequence by a
// data item's value for the FIND FIRST/LAST/NEXT/PRIOR family.

#include <gtest/gtest.h>

#include <memory>

#include "kds/engine.h"
#include "kms/dml_machine.h"
#include "network/ddl_parser.h"
#include "transform/abdm_mapping.h"

namespace mlds::kms {
namespace {

constexpr char kOrderedDdl[] =
    "SCHEMA NAME IS warehouse;"
    "RECORD NAME IS bin;"
    "  ITEM label TYPE IS CHARACTER 8;"
    "RECORD NAME IS box;"
    "  ITEM weight TYPE IS INTEGER;"
    "SET NAME IS system_bin;"
    "  OWNER IS SYSTEM; MEMBER IS bin;"
    "  INSERTION IS AUTOMATIC; RETENTION IS FIXED;"
    "  SET SELECTION IS BY APPLICATION;"
    "SET NAME IS holds;"
    "  OWNER IS bin; MEMBER IS box;"
    "  INSERTION IS MANUAL; RETENTION IS OPTIONAL;"
    "  ORDER IS SORTED BY weight;"
    "  SET SELECTION IS BY APPLICATION;";

class SetOrderingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = network::ParseSchema(kOrderedDdl);
    ASSERT_TRUE(schema.ok()) << schema.status();
    schema_ = std::move(*schema);
    auto db = transform::MapNetworkToAbdm(schema_);
    ASSERT_TRUE(db.ok());
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    ASSERT_TRUE(executor_->DefineDatabase(*db).ok());
    machine_ =
        std::make_unique<DmlMachine>(&schema_, nullptr, executor_.get());

    // One bin; boxes stored out of weight order.
    Must("MOVE 'bin-A' TO label IN bin");
    Must("STORE bin");
    for (int weight : {30, 10, 20, 40}) {
      Must("MOVE " + std::to_string(weight) + " TO weight IN box");
      Must("STORE box");
      Must("CONNECT box TO holds");
    }
  }

  DmlResult Must(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_TRUE(result.ok()) << dml << ": " << result.status();
    return result.ok() ? std::move(*result) : DmlResult{};
  }

  network::Schema schema_;
  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<DmlMachine> machine_;
};

TEST_F(SetOrderingTest, DdlParsesOrderClause) {
  const network::SetType* holds = schema_.FindSet("holds");
  ASSERT_NE(holds, nullptr);
  EXPECT_EQ(holds->order, network::OrderMode::kSortedBy);
  EXPECT_EQ(holds->order_item, "weight");
  // And round-trips through the printer.
  auto reparsed = network::ParseSchema(schema_.ToDdl());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, schema_);
}

TEST_F(SetOrderingTest, FindFirstReturnsLightestBox) {
  DmlResult first = Must("FIND FIRST box WITHIN holds");
  EXPECT_EQ(first.records[0].GetOrNull("weight").AsInteger(), 10);
}

TEST_F(SetOrderingTest, FindNextWalksInWeightOrder) {
  Must("FIND FIRST box WITHIN holds");
  std::vector<int64_t> weights = {10};
  while (true) {
    auto next = machine_->ExecuteText("FIND NEXT box WITHIN holds");
    if (!next.ok()) break;
    weights.push_back(next->records[0].GetOrNull("weight").AsInteger());
  }
  EXPECT_EQ(weights, (std::vector<int64_t>{10, 20, 30, 40}));
}

TEST_F(SetOrderingTest, FindLastReturnsHeaviestBox) {
  DmlResult last = Must("FIND LAST box WITHIN holds");
  EXPECT_EQ(last.records[0].GetOrNull("weight").AsInteger(), 40);
}

TEST_F(SetOrderingTest, UnorderedSystemSetStaysInKeyOrder) {
  DmlResult first = Must("FIND FIRST bin WITHIN system_bin");
  EXPECT_EQ(first.records[0].GetOrNull("bin").AsString(), "bin_1");
}

TEST_F(SetOrderingTest, RejectsMalformedOrderClause) {
  auto bad = network::ParseSchema(
      "RECORD NAME IS r; ITEM x TYPE IS INTEGER;"
      "SET NAME IS s; OWNER IS r; MEMBER IS r; ORDER IS RANDOM;");
  ASSERT_FALSE(bad.ok());
}

}  // namespace
}  // namespace mlds::kms
