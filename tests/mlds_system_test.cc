// End-to-end tests of the MLDS facade: LIL database registry, on-demand
// schema transformation, and CODASYL-DML sessions over both kernels.

#include "mlds/mlds.h"

#include <gtest/gtest.h>

#include "kfs/formatter.h"
#include "university/university.h"

namespace mlds {
namespace {

constexpr char kShopDdl[] =
    "SCHEMA NAME IS shop;"
    "RECORD NAME IS customer;"
    "  ITEM cname TYPE IS CHARACTER 20;"
    "SET NAME IS system_customer;"
    "  OWNER IS SYSTEM; MEMBER IS customer;"
    "  INSERTION IS AUTOMATIC; RETENTION IS FIXED;"
    "  SET SELECTION IS BY APPLICATION;";

TEST(MldsSystemTest, LoadNetworkAndFunctionalDatabases) {
  MldsSystem mlds;
  ASSERT_TRUE(mlds.LoadNetworkDatabase(kShopDdl).ok());
  ASSERT_TRUE(
      mlds.LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
  auto names = mlds.DatabaseNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "shop");
  EXPECT_EQ(names[1], "university");
}

TEST(MldsSystemTest, DuplicateDatabaseNameRejected) {
  MldsSystem mlds;
  ASSERT_TRUE(mlds.LoadNetworkDatabase(kShopDdl).ok());
  EXPECT_EQ(mlds.LoadNetworkDatabase(kShopDdl).code(),
            StatusCode::kAlreadyExists);
}

TEST(MldsSystemTest, OpenSessionSearchesNetworkThenFunctional) {
  MldsSystem mlds;
  ASSERT_TRUE(mlds.LoadNetworkDatabase(kShopDdl).ok());
  ASSERT_TRUE(
      mlds.LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
  auto shop = mlds.OpenCodasylSession("shop");
  ASSERT_TRUE(shop.ok());
  EXPECT_FALSE((*shop)->IsFunctionalTarget());
  auto univ = mlds.OpenCodasylSession("university");
  ASSERT_TRUE(univ.ok());
  EXPECT_TRUE((*univ)->IsFunctionalTarget());
  auto missing = mlds.OpenCodasylSession("nothere");
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST(MldsSystemTest, FunctionalDatabaseGetsTransformedSchema) {
  MldsSystem mlds;
  ASSERT_TRUE(
      mlds.LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
  const network::Schema* view = mlds.NetworkViewOf("university");
  ASSERT_NE(view, nullptr);
  EXPECT_NE(view->FindRecord("student"), nullptr);
  EXPECT_NE(view->FindSet("advisor"), nullptr);
  EXPECT_NE(mlds.MappingOf("university"), nullptr);
  EXPECT_EQ(mlds.MappingOf("shop"), nullptr);
}

TEST(MldsSystemTest, EndToEndDmlOnFunctionalDatabase) {
  MldsSystem mlds;
  ASSERT_TRUE(
      mlds.LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
  auto session = mlds.OpenCodasylSession("university");
  ASSERT_TRUE(session.ok());
  kms::DmlMachine* m = *session;
  // Store a person, make it a student, and read it back.
  auto run = m->RunProgram(
      "MOVE 'Alice' TO pname IN person\n"
      "MOVE 30 TO age IN person\n"
      "STORE person\n"
      "MOVE 'CS' TO major IN student\n"
      "STORE student\n"
      "GET major IN student\n");
  ASSERT_TRUE(run.ok()) << run.status();
  const kms::DmlResult& got = run->back();
  ASSERT_EQ(got.records.size(), 1u);
  EXPECT_EQ(got.records[0].GetOrNull("major").AsString(), "CS");
}

TEST(MldsSystemTest, MbdsBackedSystemBehavesIdentically) {
  MldsSystem::Options options;
  options.use_mbds = true;
  options.backends = 4;
  MldsSystem mlds(options);
  ASSERT_NE(mlds.controller(), nullptr);
  ASSERT_TRUE(
      mlds.LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
  auto session = mlds.OpenCodasylSession("university");
  ASSERT_TRUE(session.ok());
  auto run = (*session)->RunProgram(
      "MOVE 'Bob' TO pname IN person\n"
      "STORE person\n"
      "GET pname IN person\n");
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->back().records[0].GetOrNull("pname").AsString(), "Bob");
  EXPECT_GT(mlds.controller()->total_response_time_ms(), 0.0);
}

TEST(MldsSystemTest, TwoSessionsOnSameDatabaseShareData) {
  MldsSystem mlds;
  ASSERT_TRUE(
      mlds.LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
  auto a = mlds.OpenCodasylSession("university");
  auto b = mlds.OpenCodasylSession("university");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto run = (*a)->RunProgram(
      "MOVE 'Carol' TO pname IN person\nSTORE person\n");
  ASSERT_TRUE(run.ok());
  // Session b sees session a's stored person; currencies are private.
  auto find = (*b)->RunProgram(
      "MOVE 'Carol' TO pname IN person\n"
      "FIND ANY person USING pname IN person\n");
  ASSERT_TRUE(find.ok()) << find.status();
  EXPECT_FALSE((*a)->cit().run_unit().has_value() &&
               (*a)->cit().run_unit()->record_type == "x");
}

TEST(MldsSystemTest, RejectsUnnamedSchemas) {
  MldsSystem mlds;
  EXPECT_EQ(mlds.LoadNetworkDatabase(
                    "RECORD NAME IS r; ITEM x TYPE IS INTEGER;")
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      mlds.LoadFunctionalDatabase("TYPE a IS ENTITY x : INTEGER; END ENTITY;")
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(KfsFormatterTest, FormatsAlignedTable) {
  std::vector<abdm::Record> records;
  abdm::Record r1;
  r1.Set("FILE", abdm::Value::String("course"));
  r1.Set("course", abdm::Value::String("course_1"));
  r1.Set("title", abdm::Value::String("Databases"));
  r1.Set("credits", abdm::Value::Integer(4));
  records.push_back(r1);
  abdm::Record r2;
  r2.Set("FILE", abdm::Value::String("course"));
  r2.Set("course", abdm::Value::String("course_2"));
  r2.Set("title", abdm::Value::String("OS"));
  r2.Set("credits", abdm::Value::Null());
  records.push_back(r2);

  std::string table = kfs::FormatTable(records);
  // FILE keyword is hidden; null prints as '-'.
  EXPECT_EQ(table.find("FILE"), std::string::npos);
  EXPECT_NE(table.find("course_1"), std::string::npos);
  EXPECT_NE(table.find("Databases"), std::string::npos);
  EXPECT_NE(table.find("-"), std::string::npos);
  // Header + rule + 2 rows.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);
}

TEST(KfsFormatterTest, RecordTypeOrdersColumns) {
  network::RecordType rt;
  rt.name = "course";
  rt.attributes = {{"title", network::AttrType::kString, 20, 0, true},
                   {"credits", network::AttrType::kInteger, 0, 0, true}};
  std::vector<abdm::Record> records;
  abdm::Record r;
  r.Set("credits", abdm::Value::Integer(4));
  r.Set("course", abdm::Value::String("course_1"));
  r.Set("title", abdm::Value::String("DB"));
  records.push_back(r);
  std::string table = kfs::FormatTable(records, &rt);
  // Key column first, then declared order.
  size_t key_pos = table.find("course");
  size_t title_pos = table.find("title");
  size_t credits_pos = table.find("credits");
  EXPECT_LT(key_pos, title_pos);
  EXPECT_LT(title_pos, credits_pos);
}

TEST(KfsFormatterTest, HideSetKeywords) {
  network::Schema schema("s");
  network::RecordType rt;
  rt.name = "student";
  rt.attributes = {{"major", network::AttrType::kString, 10, 0, true}};
  ASSERT_TRUE(schema.AddRecord(rt).ok());
  std::vector<abdm::Record> records;
  abdm::Record r;
  r.Set("student", abdm::Value::String("student_1"));
  r.Set("major", abdm::Value::String("CS"));
  r.Set("advisor", abdm::Value::String("faculty_2"));
  records.push_back(r);
  kfs::FormatOptions options;
  options.hide_set_keywords = true;
  std::string table =
      kfs::FormatTable(records, schema.FindRecord("student"), &schema, options);
  EXPECT_EQ(table.find("advisor"), std::string::npos);
  EXPECT_NE(table.find("major"), std::string::npos);
}

TEST(KfsFormatterTest, FormatRecordLines) {
  abdm::Record r;
  r.Set("FILE", abdm::Value::String("x"));
  r.Set("a", abdm::Value::Integer(1));
  std::string text = kfs::FormatRecord(r);
  EXPECT_EQ(text, "a: 1\n");
}

}  // namespace
}  // namespace mlds
