#include "daplex/ddl_parser.h"
#include "daplex/schema.h"

#include <gtest/gtest.h>

namespace mlds::daplex {
namespace {

constexpr char kMiniDdl[] = R"(
SCHEMA mini;
TYPE label IS STRING(8);
TYPE level IS (low, medium, high);
TYPE score IS INTEGER RANGE 0..100;

TYPE widget IS ENTITY
  wname : label;
  mass  : FLOAT;
  tags  : SET OF STRING(6);
  parts : SET OF part;
END ENTITY;

TYPE part IS ENTITY
  pname  : label;
  grade  : level;
  used_in : SET OF widget;
END ENTITY;

TYPE gadget IS SUBTYPE OF widget
  power : score;
  maker : part;
END SUBTYPE;

UNIQUE wname WITHIN widget;
OVERLAP gadget WITH gadget;
)";

Result<FunctionalSchema> ParseMini() {
  return ParseFunctionalSchema(kMiniDdl);
}

TEST(DaplexParserTest, ParsesEntitiesSubtypesAndNonEntities) {
  auto schema = ParseMini();
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->name(), "mini");
  EXPECT_EQ(schema->entities().size(), 2u);
  EXPECT_EQ(schema->subtypes().size(), 1u);
  EXPECT_EQ(schema->nonentities().size(), 3u);
}

TEST(DaplexParserTest, NonEntityKinds) {
  auto schema = ParseMini();
  ASSERT_TRUE(schema.ok());
  const NonEntityType* label = schema->FindNonEntity("label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->kind, ScalarKind::kString);
  EXPECT_EQ(label->max_length, 8);

  const NonEntityType* level = schema->FindNonEntity("level");
  ASSERT_NE(level, nullptr);
  EXPECT_EQ(level->kind, ScalarKind::kEnumeration);
  ASSERT_EQ(level->values.size(), 3u);
  EXPECT_EQ(level->max_length, 6);  // "medium"

  const NonEntityType* score = schema->FindNonEntity("score");
  ASSERT_NE(score, nullptr);
  EXPECT_TRUE(score->has_range);
  EXPECT_EQ(score->range_min, 0);
  EXPECT_EQ(score->range_max, 100);
}

TEST(DaplexParserTest, ForwardEntityReferencesResolve) {
  auto schema = ParseMini();
  ASSERT_TRUE(schema.ok());
  // widget.parts references part, declared later.
  const EntityType* widget = schema->FindEntity("widget");
  ASSERT_NE(widget, nullptr);
  const Function* parts = widget->FindFunction("parts");
  ASSERT_NE(parts, nullptr);
  EXPECT_EQ(parts->result, FunctionResult::kEntity);
  EXPECT_EQ(parts->target, "part");
  EXPECT_TRUE(parts->set_valued);
}

TEST(DaplexParserTest, FunctionClassification) {
  auto schema = ParseMini();
  ASSERT_TRUE(schema.ok());
  const EntityType* widget = schema->FindEntity("widget");
  EXPECT_EQ(schema->Classify(*widget->FindFunction("wname")),
            FunctionClass::kScalar);
  EXPECT_EQ(schema->Classify(*widget->FindFunction("mass")),
            FunctionClass::kScalar);
  EXPECT_EQ(schema->Classify(*widget->FindFunction("tags")),
            FunctionClass::kScalarMultiValued);
  EXPECT_EQ(schema->Classify(*widget->FindFunction("parts")),
            FunctionClass::kMultiValued);
  const Subtype* gadget = schema->FindSubtype("gadget");
  EXPECT_EQ(schema->Classify(*gadget->FindFunction("maker")),
            FunctionClass::kSingleValued);
  EXPECT_EQ(schema->Classify(*gadget->FindFunction("power")),
            FunctionClass::kScalar);
}

TEST(DaplexParserTest, UniquenessMarksFunction) {
  auto schema = ParseMini();
  ASSERT_TRUE(schema.ok());
  const EntityType* widget = schema->FindEntity("widget");
  EXPECT_TRUE(widget->FindFunction("wname")->unique);
  EXPECT_FALSE(widget->FindFunction("mass")->unique);
}

TEST(DaplexParserTest, TerminalFlags) {
  auto schema = ParseMini();
  ASSERT_TRUE(schema.ok());
  // widget is a supertype of gadget: not terminal. part and gadget are.
  EXPECT_FALSE(schema->IsTerminal("widget"));
  EXPECT_TRUE(schema->IsTerminal("part"));
  EXPECT_TRUE(schema->IsTerminal("gadget"));
}

TEST(DaplexParserTest, SubtypesOf) {
  auto schema = ParseMini();
  ASSERT_TRUE(schema.ok());
  auto subs = schema->SubtypesOf("widget");
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(subs[0]->name, "gadget");
  EXPECT_TRUE(schema->SubtypesOf("part").empty());
}

TEST(DaplexParserTest, ResolveScalarKindThroughNonEntity) {
  auto schema = ParseMini();
  ASSERT_TRUE(schema.ok());
  const Subtype* gadget = schema->FindSubtype("gadget");
  auto kind = schema->ResolveScalarKind(*gadget->FindFunction("power"));
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ScalarKind::kInteger);
  // Enumerations resolve to the longest literal for length.
  const EntityType* part = schema->FindEntity("part");
  EXPECT_EQ(schema->ResolveMaxLength(*part->FindFunction("grade")), 6);
}

TEST(DaplexParserTest, DdlRoundTrip) {
  auto first = ParseMini();
  ASSERT_TRUE(first.ok());
  auto second = ParseFunctionalSchema(first->ToDdl());
  ASSERT_TRUE(second.ok()) << second.status() << "\n" << first->ToDdl();
  EXPECT_EQ(*first, *second);
}

TEST(DaplexParserTest, RejectsUndeclaredFunctionTarget) {
  auto schema = ParseFunctionalSchema(
      "TYPE a IS ENTITY f : nothere; END ENTITY;");
  ASSERT_FALSE(schema.ok());
}

TEST(DaplexParserTest, RejectsSubtypeWithoutSupertype) {
  auto schema = ParseFunctionalSchema(
      "TYPE a IS SUBTYPE OF missing END SUBTYPE;");
  ASSERT_FALSE(schema.ok());
}

TEST(DaplexParserTest, RejectsDuplicateTypeNames) {
  auto schema = ParseFunctionalSchema(
      "TYPE a IS ENTITY x : INTEGER; END ENTITY;"
      "TYPE a IS ENTITY y : INTEGER; END ENTITY;");
  ASSERT_FALSE(schema.ok());
}

TEST(DaplexParserTest, RejectsUniqueOnUnknownFunction) {
  auto schema = ParseFunctionalSchema(
      "TYPE a IS ENTITY x : INTEGER; END ENTITY; UNIQUE zz WITHIN a;");
  ASSERT_FALSE(schema.ok());
}

TEST(DaplexParserTest, RejectsOverlapOnEntityType) {
  auto schema = ParseFunctionalSchema(
      "TYPE a IS ENTITY x : INTEGER; END ENTITY;"
      "TYPE b IS ENTITY y : INTEGER; END ENTITY; OVERLAP a WITH b;");
  ASSERT_FALSE(schema.ok());
}

TEST(DaplexParserTest, RejectsEmptyRange) {
  auto schema = ParseFunctionalSchema("TYPE t IS INTEGER RANGE 9..1;");
  ASSERT_FALSE(schema.ok());
}

TEST(DaplexParserTest, CommentsAreIgnored) {
  auto schema = ParseFunctionalSchema(
      "-- a comment\nTYPE a IS ENTITY -- trailing\n x : INTEGER;\nEND "
      "ENTITY;");
  ASSERT_TRUE(schema.ok()) << schema.status();
}

TEST(DaplexParserTest, MultipleSupertypes) {
  auto schema = ParseFunctionalSchema(
      "TYPE a IS ENTITY x : INTEGER; END ENTITY;"
      "TYPE b IS ENTITY y : INTEGER; END ENTITY;"
      "TYPE c IS SUBTYPE OF a, b z : INTEGER; END SUBTYPE;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  const Subtype* c = schema->FindSubtype("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->supertypes.size(), 2u);
}

TEST(DaplexParserTest, BooleanFunctionIsScalar) {
  auto schema = ParseFunctionalSchema(
      "TYPE a IS ENTITY flag : BOOLEAN; END ENTITY;");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->Classify(*schema->FindEntity("a")->FindFunction("flag")),
            FunctionClass::kScalar);
}

}  // namespace
}  // namespace mlds::daplex
