// Tests for the hierarchical/DL-I language interface: DDL, SSA-path GU
// resolution, GN/GNP positioning, ISRT under the anchored parent, REPL,
// and subtree DLET.

#include "kms/dli_machine.h"

#include <gtest/gtest.h>

#include "hierarchical/schema.h"
#include "mlds/mlds.h"

namespace mlds::kms {
namespace {

constexpr char kClinicDdl[] = R"(
SCHEMA clinic;

SEGMENT patient;
  FIELD pname CHAR(20);
  FIELD city CHAR(12);

SEGMENT visit PARENT patient;
  FIELD vdate CHAR(8);
  FIELD cost FLOAT;

SEGMENT treatment PARENT visit;
  FIELD drug CHAR(12);
  FIELD dose INTEGER;
)";

// --- DDL ---

TEST(HierarchicalSchemaTest, ParsesSegmentsAndHierarchy) {
  auto schema = hierarchical::ParseHierarchicalSchema(kClinicDdl);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->name(), "clinic");
  ASSERT_EQ(schema->segments().size(), 3u);
  EXPECT_TRUE(schema->FindSegment("patient")->is_root());
  EXPECT_EQ(schema->FindSegment("treatment")->parent, "visit");
  auto ancestors = schema->AncestorsOf("treatment");
  ASSERT_EQ(ancestors.size(), 2u);
  EXPECT_EQ(ancestors[0]->name, "visit");
  EXPECT_EQ(ancestors[1]->name, "patient");
  EXPECT_EQ(schema->ChildrenOf("patient").size(), 1u);
}

TEST(HierarchicalSchemaTest, DdlRoundTrips) {
  auto first = hierarchical::ParseHierarchicalSchema(kClinicDdl);
  ASSERT_TRUE(first.ok());
  auto second = hierarchical::ParseHierarchicalSchema(first->ToDdl());
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(*first, *second);
}

TEST(HierarchicalSchemaTest, RejectsUnknownParentAndCycles) {
  EXPECT_FALSE(hierarchical::ParseHierarchicalSchema(
                   "SEGMENT a PARENT nope; FIELD x INTEGER;")
                   .ok());
  EXPECT_FALSE(hierarchical::ParseHierarchicalSchema(
                   "SEGMENT a PARENT b; FIELD x INTEGER;"
                   "SEGMENT b PARENT a; FIELD y INTEGER;")
                   .ok());
}

// --- Calls ---

class DliMachineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.LoadHierarchicalDatabase(kClinicDdl).ok());
    auto session = system_.OpenDliSession("clinic");
    ASSERT_TRUE(session.ok()) << session.status();
    machine_ = *session;
    // Two patients; smith has two visits, the first with two treatments.
    auto load = machine_->RunProgram(
        "ISRT patient (pname = 'smith', city = 'monterey')\n"
        "ISRT visit (vdate = '870601', cost = 50.0)\n"
        "ISRT treatment (drug = 'aspirin', dose = 2)\n");
    ASSERT_TRUE(load.ok()) << load.status();
    // Re-anchor at the first visit to add a sibling treatment.
    auto more = machine_->RunProgram(
        "GU patient (pname = 'smith') visit (vdate = '870601')\n"
        "ISRT treatment (drug = 'iodine', dose = 1)\n"
        "GU patient (pname = 'smith')\n"
        "ISRT visit (vdate = '870702', cost = 75.5)\n"
        "ISRT patient (pname = 'jones', city = 'carmel')\n"
        "ISRT visit (vdate = '870615', cost = 20.0)\n");
    ASSERT_TRUE(more.ok()) << more.status();
  }

  DliMachine::Outcome Must(std::string_view call) {
    auto outcome = machine_->ExecuteText(call);
    EXPECT_TRUE(outcome.ok()) << call << ": " << outcome.status();
    return outcome.ok() ? std::move(*outcome) : DliMachine::Outcome{};
  }

  MldsSystem system_;
  DliMachine* machine_ = nullptr;
};

TEST_F(DliMachineTest, GuResolvesSsaPathLevelByLevel) {
  auto outcome =
      Must("GU patient (pname = 'smith') visit (cost > 60)");
  ASSERT_EQ(outcome.segments.size(), 1u);
  EXPECT_EQ(outcome.segments[0].GetOrNull("vdate").AsString(), "870702");
  // One RETRIEVE per level: the call/request correspondence.
  EXPECT_EQ(machine_->trace().size(), 2u);
}

TEST_F(DliMachineTest, GuNotFoundIsGeStatus) {
  auto outcome = machine_->ExecuteText("GU patient (pname = 'nobody')");
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsNotFound());
}

TEST_F(DliMachineTest, GuRejectsBrokenSsaPath) {
  auto outcome = machine_->ExecuteText(
      "GU patient (pname = 'smith') treatment (dose = 2)");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DliMachineTest, GnAdvancesThroughBuffer) {
  Must("GU patient (pname = 'smith') visit");
  auto second = Must("GN");
  EXPECT_EQ(second.segments[0].GetOrNull("vdate").AsString(), "870702");
  auto end = machine_->ExecuteText("GN");
  ASSERT_FALSE(end.ok());
  EXPECT_TRUE(end.status().IsNotFound());
}

TEST_F(DliMachineTest, GnDescendsToChildSegments) {
  Must("GU patient (pname = 'smith') visit (vdate = '870601')");
  auto first = Must("GN treatment");
  EXPECT_EQ(first.segments[0].GetOrNull("drug").AsString(), "aspirin");
  auto second = Must("GN");
  EXPECT_EQ(second.segments[0].GetOrNull("drug").AsString(), "iodine");
}

TEST_F(DliMachineTest, GnpIteratesChildrenOfAnchoredParent) {
  Must("GU patient (pname = 'smith')");
  auto v1 = Must("GNP visit");
  EXPECT_EQ(v1.segments[0].GetOrNull("vdate").AsString(), "870601");
  auto v2 = Must("GNP visit");
  EXPECT_EQ(v2.segments[0].GetOrNull("vdate").AsString(), "870702");
  auto end = machine_->ExecuteText("GNP visit");
  ASSERT_FALSE(end.ok());
  EXPECT_TRUE(end.status().IsNotFound());
}

TEST_F(DliMachineTest, GnpRequiresAnchor) {
  auto session = system_.OpenDliSession("clinic");
  ASSERT_TRUE(session.ok());
  auto outcome = (*session)->ExecuteText("GNP visit");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCurrencyError);
}

TEST_F(DliMachineTest, IsrtRequiresParentForNonRoot) {
  auto session = system_.OpenDliSession("clinic");
  ASSERT_TRUE(session.ok());
  auto outcome =
      (*session)->ExecuteText("ISRT visit (vdate = 'x', cost = 1.0)");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kCurrencyError);
}

TEST_F(DliMachineTest, ReplUpdatesCurrentSegment) {
  Must("GU patient (pname = 'jones') visit");
  Must("REPL (cost = 99.5)");
  auto check = Must("GU patient (pname = 'jones') visit (cost = 99.5)");
  EXPECT_EQ(check.segments.size(), 1u);
}

TEST_F(DliMachineTest, ReplRejectsUnknownField) {
  Must("GU patient (pname = 'jones')");
  auto outcome = machine_->ExecuteText("REPL (bogus = 1)");
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsNotFound());
}

TEST_F(DliMachineTest, DletRemovesSubtree) {
  // smith: 1 patient + 2 visits + 2 treatments = 5 segments.
  Must("GU patient (pname = 'smith')");
  auto outcome = Must("DLET");
  EXPECT_EQ(outcome.affected, 5u);
  EXPECT_TRUE(
      machine_->ExecuteText("GU patient (pname = 'smith')").status()
          .IsNotFound());
  // jones is untouched.
  EXPECT_EQ(Must("GU patient (pname = 'jones')").segments.size(), 1u);
  EXPECT_EQ(system_.executor()->FileSize("visit"), 1u);
  EXPECT_EQ(system_.executor()->FileSize("treatment"), 0u);
}

TEST_F(DliMachineTest, DletClearsPosition) {
  Must("GU patient (pname = 'jones')");
  Must("DLET");
  auto repl = machine_->ExecuteText("REPL (city = 'x')");
  ASSERT_FALSE(repl.ok());
  EXPECT_EQ(repl.status().code(), StatusCode::kCurrencyError);
}

TEST_F(DliMachineTest, ParserRejectsMalformedCalls) {
  EXPECT_FALSE(machine_->ExecuteText("FROB patient").ok());
  EXPECT_FALSE(machine_->ExecuteText("GU patient (pname 'x')").ok());
  EXPECT_FALSE(machine_->ExecuteText("GU patient (pname = )").ok());
  EXPECT_FALSE(machine_->ExecuteText("GU").ok());
}

TEST_F(DliMachineTest, HierarchyVisibleToKernel) {
  EXPECT_EQ(system_.executor()->FileSize("patient"), 2u);
  EXPECT_EQ(system_.executor()->FileSize("visit"), 3u);
  EXPECT_EQ(system_.executor()->FileSize("treatment"), 2u);
}

// --- batch ISRT (bulk ingest) ---

TEST_F(DliMachineTest, BatchIsrtInsertsEveryRowUnderTheAnchoredParent) {
  Must("GU patient (pname = 'jones')");
  std::vector<std::vector<abdm::Value>> rows;
  for (int i = 0; i < 4; ++i) {
    rows.push_back({abdm::Value::String("8712" + std::to_string(10 + i)),
                    abdm::Value::Float(5.0 + i)});
  }
  auto outcome =
      machine_->ExecuteBatch("ISRT visit (vdate = ?, cost = ?)", rows);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->affected, 4u);
  EXPECT_EQ(system_.executor()->FileSize("visit"), 7u);
  // Every inserted segment is a child of jones: GNP walks all five of
  // jones's visits (the seed one plus the batch).
  Must("GU patient (pname = 'jones') visit");
  size_t jones_visits = 1;
  while (machine_->ExecuteText("GN").ok()) ++jones_visits;
  EXPECT_EQ(jones_visits, 5u);
  // The last batch row is the current position: ISRT of a child segment
  // hangs off it, exactly as after a sequence of single ISRTs.
  Must("ISRT treatment (drug = 'salve', dose = 1)");
  auto under_last = Must(
      "GU patient (pname = 'jones') visit (vdate = '871213') treatment");
  ASSERT_EQ(under_last.segments.size(), 1u);
  EXPECT_EQ(under_last.segments[0].GetOrNull("drug").AsString(), "salve");
}

TEST_F(DliMachineTest, BatchIsrtRejectsHostileShapes) {
  Must("GU patient (pname = 'smith')");
  const std::vector<std::vector<abdm::Value>> one = {
      {abdm::Value::String("880101"), abdm::Value::Float(1.0)}};
  EXPECT_FALSE(
      machine_->ExecuteBatch("ISRT visit (vdate = ?, cost = ?)", {}).ok());
  EXPECT_FALSE(machine_
                   ->ExecuteBatch("ISRT visit (vdate = ?, cost = ?)",
                                  {{abdm::Value::String("only-one")}})
                   .ok());
  // Unparameterized templates, non-ISRT calls, and direct execution of a
  // parameterized ISRT are all rejected.
  EXPECT_FALSE(
      machine_->ExecuteBatch("ISRT visit (vdate = 'x', cost = 1.0)", one)
          .ok());
  EXPECT_FALSE(machine_->ExecuteBatch("GU patient (pname = ?)", one).ok());
  EXPECT_FALSE(
      machine_->ExecuteText("ISRT visit (vdate = ?, cost = ?)").ok());
}

TEST_F(DliMachineTest, BatchIsrtWithoutParentIsCurrencyError) {
  auto session = system_.OpenDliSession("clinic");
  ASSERT_TRUE(session.ok());
  const std::vector<std::vector<abdm::Value>> one = {
      {abdm::Value::String("880101"), abdm::Value::Float(1.0)}};
  Status status =
      (*session)->ExecuteBatch("ISRT visit (vdate = ?, cost = ?)", one)
          .status();
  EXPECT_EQ(status.code(), StatusCode::kCurrencyError);
}

}  // namespace
}  // namespace mlds::kms
