// Stress tests for the event-loop server under pipelining and
// streaming: per-session response ordering with many requests in
// flight, multi-session multiplexing through the client pool,
// slow-consumer backpressure keeping server memory bounded, and
// mid-stream disconnects freeing sessions promptly.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "client/pool.h"
#include "mlds/mlds.h"
#include "server/demo.h"
#include "server/server.h"
#include "server/session.h"
#include "server/wire.h"

namespace mlds {
namespace {

size_t CountOccurrences(std::string_view haystack, std::string_view needle) {
  size_t count = 0;
  size_t at = 0;
  while ((at = haystack.find(needle, at)) != std::string_view::npos) {
    ++count;
    at += needle.size();
  }
  return count;
}

/// Inserts `rows` wide rows into payroll.staff through the session
/// layer, making every SELECT over the table large enough to stream.
void BulkLoadStaff(MldsSystem* system, int rows) {
  server::Session loader(1, system);
  ASSERT_TRUE(loader.Use(wire::UseRequest{"sql", "payroll"}).ok());
  for (int i = 0; i < rows; ++i) {
    const std::string name =
        "bulk" + std::to_string(i) + std::string(170, 'x');
    const std::string statement = "INSERT INTO staff (name, wage) VALUES ('" +
                                  name + "', " + std::to_string(i % 97) +
                                  ".0)";
    ASSERT_TRUE(loader.Execute(statement, /*explain=*/false).ok())
        << statement;
  }
}

/// Depth-K pipelining on one session: the responses come back in
/// submission order (the lane is strictly serial), every interleaved
/// SELECT sees exactly the inserts submitted before it, and awaiting the
/// last response first exercises the request_id demultiplexer.
TEST(PipelineStressTest, PerSessionOrderingPreservedUnderPipelining) {
  server::ServerOptions options;
  options.max_queue_depth = 64;
  MldsSystem system;
  ASSERT_TRUE(server::LoadDemoDatabases(&system).ok());
  server::MldsServer server(&system, options);
  ASSERT_TRUE(server.Start().ok());

  client::MldsClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Use("sql", "payroll").ok());

  constexpr int kDepth = 12;
  std::vector<uint32_t> insert_ids, select_ids;
  for (int i = 0; i < kDepth; ++i) {
    Result<uint32_t> insert = client.SubmitExecute(
        "INSERT INTO staff (name, wage) VALUES ('zrow" + std::to_string(i) +
        "', 1.0)");
    ASSERT_TRUE(insert.ok()) << insert.status();
    insert_ids.push_back(*insert);
    Result<uint32_t> select =
        client.SubmitExecute("SELECT name FROM staff");
    ASSERT_TRUE(select.ok()) << select.status();
    select_ids.push_back(*select);
  }

  // Await the final response first: everything before it is read and
  // parked, proving responses demultiplex by request_id.
  Result<wire::ExecuteResult> last = client.AwaitResult(select_ids.back());
  ASSERT_TRUE(last.ok()) << last.status();
  EXPECT_EQ(CountOccurrences(last->body, "zrow"), size_t{kDepth});

  // Every interleaved SELECT saw exactly the inserts pipelined before
  // it — the lane executed in submission order, nothing overtook.
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(client.AwaitResult(insert_ids[i]).ok());
    if (i == kDepth - 1) break;  // the final select was awaited above
    Result<wire::ExecuteResult> seen = client.AwaitResult(select_ids[i]);
    ASSERT_TRUE(seen.ok()) << seen.status();
    EXPECT_EQ(CountOccurrences(seen->body, "zrow"),
              static_cast<size_t>(i + 1))
        << "select #" << i;
  }

  EXPECT_GE(server.stats().inflight_highwater, 1u);
  EXPECT_TRUE(client.Close().ok());
  server.Shutdown();
}

/// Many logical sessions over few connections: each session keeps its
/// own language binding and transaction state, requests on different
/// sessions fly concurrently, and ABDL isolation holds between sessions
/// sharing one socket.
TEST(PipelineStressTest, PooledSessionsMultiplexWithIsolation) {
  server::ServerOptions options;
  options.max_sessions = 8;
  MldsSystem system;
  ASSERT_TRUE(server::LoadDemoDatabases(&system).ok());
  server::MldsServer server(&system, options);
  ASSERT_TRUE(server.Start().ok());

  client::ClientPool pool;
  ASSERT_TRUE(
      pool.Connect("127.0.0.1", server.port(), /*sessions=*/6,
                   /*connections=*/2)
          .ok());
  ASSERT_EQ(pool.session_count(), 6u);
  ASSERT_EQ(pool.connection_count(), 2u);
  EXPECT_EQ(server.stats().sessions_active, 6u);

  // Distinct session ids across the pool.
  for (size_t i = 0; i < pool.session_count(); ++i) {
    for (size_t j = i + 1; j < pool.session_count(); ++j) {
      EXPECT_NE(pool.session(i).session_id(), pool.session(j).session_id());
    }
  }

  // Different languages on different sessions, all pipelined at once.
  struct Bound {
    size_t session;
    const char* language;
    const char* database;
    const char* statement;
    const char* expect;
  };
  const std::vector<Bound> bound = {
      {0, "sql", "payroll", "SELECT name FROM staff", "edsger"},
      {1, "daplex", "university", "FOR EACH course PRINT title", "Database"},
      {2, "dli", "clinic", "GU patient (pname = 'smith')", "smith"},
      {3, "abdl", "university", "RETRIEVE ((FILE = course)) (title) BY course",
       "Database"},
  };
  for (const Bound& b : bound) {
    ASSERT_TRUE(pool.session(b.session).Use(b.language, b.database).ok());
  }
  std::vector<uint32_t> ids(bound.size());
  for (size_t i = 0; i < bound.size(); ++i) {
    Result<uint32_t> id =
        pool.session(bound[i].session).SubmitExecute(bound[i].statement);
    ASSERT_TRUE(id.ok()) << id.status();
    ids[i] = *id;
  }
  for (size_t i = 0; i < bound.size(); ++i) {
    Result<wire::ExecuteResult> result =
        pool.session(bound[i].session).Await(ids[i]);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_NE(result->body.find(bound[i].expect), std::string::npos)
        << bound[i].statement;
  }

  // ABDL transaction isolation between sessions 4 and 5 — which share a
  // connection with other sessions, so the isolation is per-session, not
  // per-socket.
  ASSERT_TRUE(pool.session(4).Use("abdl", "payroll").ok());
  ASSERT_TRUE(pool.session(5).Use("sql", "payroll").ok());
  ASSERT_TRUE(pool.session(4).Execute("BEGIN").ok());
  ASSERT_TRUE(
      pool.session(4)
          .Execute("INSERT (<FILE, staff>, <name, 'pooled'>, <wage, 7.0>)")
          .ok());
  Result<wire::ExecuteResult> before =
      pool.session(5).Execute("SELECT name FROM staff");
  ASSERT_TRUE(before.ok()) << before.status();
  EXPECT_EQ(before->body.find("pooled"), std::string::npos);
  ASSERT_TRUE(pool.session(4).Execute("COMMIT").ok());
  Result<wire::ExecuteResult> after =
      pool.session(5).Execute("SELECT name FROM staff");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NE(after->body.find("pooled"), std::string::npos);

  EXPECT_TRUE(pool.Close().ok());
  server.Shutdown();
}

/// A consumer that stops reading mid-stream must not balloon server
/// memory: the write buffer stays near write_high_water no matter how
/// large the streamed result is, stalls are counted, and the bytes still
/// arrive intact once the consumer resumes.
TEST(PipelineStressTest, SlowConsumerBackpressureBoundsServerMemory) {
  server::ServerOptions options;
  options.stream_threshold = 1024;
  options.chunk_bytes = 8 * 1024;
  options.write_high_water = 16 * 1024;
  MldsSystem system;
  ASSERT_TRUE(server::LoadDemoDatabases(&system).ok());
  // The rendered table must overflow what the kernel will buffer for a
  // non-reading peer (sndbuf autotunes to tcp_wmem[2], typically 4 MiB,
  // plus the ~128 KiB receive window) or send never returns would_block.
  BulkLoadStaff(&system, 30000);  // ~5.5 MiB rendered
  server::MldsServer server(&system, options);
  ASSERT_TRUE(server.Start().ok());

  client::MldsClient slow;
  ASSERT_TRUE(slow.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(slow.Use("sql", "payroll").ok());
  Result<uint32_t> id = slow.SubmitExecute("SELECT name FROM staff");
  ASSERT_TRUE(id.ok()) << id.status();

  // Do not read. The kernel buffers fill, the server hits would_block,
  // and the stream parks instead of buffering the whole table.
  // A request submitted behind the parked stream queues on the lane —
  // the stream blocks it — so the in-flight high water hits 2
  // deterministically.
  Result<uint32_t> queued =
      slow.SubmitExecute("SELECT name FROM staff WHERE wage > 95");
  ASSERT_TRUE(queued.ok()) << queued.status();
  // The 30k-row retrieve + render takes a while before the first chunk
  // is even produced (much longer under sanitizers), so wait for the
  // stall itself, not a fixed delay: we are not reading, so once the
  // stream starts it must fill the kernel buffers and park.
  server::ServerStats stalled = server.stats();
  for (int i = 0;
       i < 6000 && (stalled.backpressure_stalls < 1 ||
                    stalled.inflight_highwater < 2);
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    stalled = server.stats();
  }
  EXPECT_GE(stalled.results_streamed, 1u);
  EXPECT_GE(stalled.backpressure_stalls, 1u);
  EXPECT_GE(stalled.inflight_highwater, 2u);
  // Bound: high water, plus the one chunk frame that crossed it, plus
  // framing overhead. Nowhere near the ~5.5 MiB body.
  EXPECT_LE(stalled.write_buffer_highwater,
            options.write_high_water + options.chunk_bytes + 1024u);

  // Resume reading: the full body arrives, byte-identical to what the
  // session layer renders in-process from the same system.
  Result<wire::ExecuteResult> streamed = slow.AwaitResult(*id);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  server::Session local(99, &system);
  ASSERT_TRUE(local.Use(wire::UseRequest{"sql", "payroll"}).ok());
  Result<wire::ExecuteResult> in_process =
      local.Execute("SELECT name FROM staff", /*explain=*/false);
  ASSERT_TRUE(in_process.ok()) << in_process.status();
  EXPECT_EQ(streamed->body, in_process->body);
  EXPECT_GT(streamed->body.size(), size_t{4608} * 1024);

  // The request queued behind the stream ran after it, on the same lane.
  Result<wire::ExecuteResult> after = slow.AwaitResult(*queued);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_NE(after->body.find("bulk"), std::string::npos);

  EXPECT_TRUE(slow.Close().ok());
  server.Shutdown();
}

/// A client that vanishes mid-stream frees its session promptly — the
/// parked stream and its lane die with the connection — and sessions on
/// other connections never notice.
TEST(PipelineStressTest, MidStreamDisconnectFreesSessionPromptly) {
  server::ServerOptions options;
  options.stream_threshold = 1024;
  options.chunk_bytes = 4 * 1024;
  options.write_high_water = 8 * 1024;
  MldsSystem system;
  ASSERT_TRUE(server::LoadDemoDatabases(&system).ok());
  BulkLoadStaff(&system, 2000);
  server::MldsServer server(&system, options);
  ASSERT_TRUE(server.Start().ok());

  client::MldsClient survivor;
  ASSERT_TRUE(survivor.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(survivor.Use("sql", "payroll").ok());

  {
    client::MldsClient doomed;
    ASSERT_TRUE(doomed.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(doomed.Use("sql", "payroll").ok());
    Result<uint32_t> id = doomed.SubmitExecute("SELECT name FROM staff");
    ASSERT_TRUE(id.ok()) << id.status();
    // Give the stream time to start, then vanish without BYE: the
    // destructor closes the socket with chunks still in flight.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // The server reaps the dead connection and its session promptly.
  uint64_t active = server.stats().sessions_active;
  for (int i = 0; i < 200 && active != 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    active = server.stats().sessions_active;
  }
  EXPECT_EQ(active, 1u);

  // The surviving session still executes and still streams.
  Result<wire::ExecuteResult> alive =
      survivor.Execute("SELECT name FROM staff");
  ASSERT_TRUE(alive.ok()) << alive.status();
  EXPECT_GT(alive->body.size(), size_t{300} * 1024);
  EXPECT_TRUE(survivor.Close().ok());
  server.Shutdown();
}

}  // namespace
}  // namespace mlds
