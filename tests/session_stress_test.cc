// Concurrent-session stress: N client threads hammer one server, mixing
// all four language interfaces, and assert session isolation — each
// session's language binding, CODASYL currency/UWA, and DL/I position
// are private to its connection even while other sessions execute
// concurrently against the same kernel.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "mlds/mlds.h"
#include "server/demo.h"
#include "server/server.h"

namespace mlds {
namespace {

constexpr int kThreads = 8;
constexpr int kRounds = 25;

/// Distinct course titles from the demo university database, one per
/// stress thread: if CODASYL UWA/currency leaked across sessions, a
/// thread would GET a title it never MOVEd.
const char* kCourseTitles[kThreads] = {
    "Advanced Database", "Operating Sys", "Networks",  "Compilers",
    "Algorithms",        "Architecture",  "Graphics",  "AI",
};

class SessionStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(server::LoadDemoDatabases(&system_).ok());
    server::ServerOptions options;
    options.max_sessions = kThreads + 2;
    server_ = std::make_unique<server::MldsServer>(&system_, options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Shutdown(); }

  MldsSystem system_;
  std::unique_ptr<server::MldsServer> server_;
};

TEST_F(SessionStressTest, ConcurrentSessionsStayIsolated) {
  std::atomic<int> failures{0};
  std::vector<std::string> errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);

  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto fail = [&](const std::string& what) {
        errors[t] = what;
        failures.fetch_add(1);
      };
      client::MldsClient client;
      const Status connected =
          client.Connect("127.0.0.1", server_->port());
      if (!connected.ok()) return fail(connected.ToString());
      const std::string title = kCourseTitles[t];
      // DL/I position: even threads sit on smith, odd on jones.
      const char* patient = (t % 2 == 0) ? "smith" : "jones";
      const size_t expected_visits = (t % 2 == 0) ? 2 : 1;

      for (int round = 0; round < kRounds; ++round) {
        // CODASYL: this session's UWA and currency only.
        if (!client.Use("codasyl", "university").ok()) {
          return fail("use codasyl");
        }
        if (!client.Execute("MOVE '" + title + "' TO title IN course")
                 .ok()) {
          return fail("MOVE");
        }
        Result<wire::ExecuteResult> found =
            client.Execute("FIND ANY course USING title IN course");
        if (!found.ok()) return fail("FIND: " + found.status().ToString());
        Result<wire::ExecuteResult> got = client.Execute("GET");
        if (!got.ok()) return fail("GET: " + got.status().ToString());
        if (got->body.find(title) == std::string::npos) {
          return fail("currency leak: GET after FIND '" + title +
                      "' returned: " + got->body);
        }

        // SQL: deterministic read on a different database.
        if (!client.Use("sql", "payroll").ok()) return fail("use sql");
        Result<wire::ExecuteResult> rows =
            client.Execute("SELECT name FROM staff WHERE wage > 90");
        if (!rows.ok()) return fail("SELECT");
        if (rows->body.find("ada") == std::string::npos) {
          return fail("sql result drifted: " + rows->body);
        }

        // Daplex: functional query against the shared university DB.
        if (!client.Use("daplex", "university").ok()) {
          return fail("use daplex");
        }
        Result<wire::ExecuteResult> courses = client.Execute(
            "FOR EACH course SUCH THAT title = '" + title +
            "' PRINT title");
        if (!courses.ok()) return fail("FOR EACH");
        if (courses->body.find(title) == std::string::npos) {
          return fail("daplex result drifted: " + courses->body);
        }

        // DL/I: this session's hierarchical position only.
        if (!client.Use("dli", "clinic").ok()) return fail("use dli");
        Result<wire::ExecuteResult> gu = client.Execute(
            std::string("GU patient (pname = '") + patient + "')");
        if (!gu.ok()) return fail("GU");
        size_t visits = 0;
        while (true) {
          Result<wire::ExecuteResult> gnp = client.Execute("GNP visit");
          if (!gnp.ok()) break;  // end of children
          ++visits;
          if (visits > expected_visits) break;
        }
        if (visits != expected_visits) {
          return fail("position leak: " + std::string(patient) +
                      " yielded " + std::to_string(visits) + " visits");
        }
      }
      const Status closed = client.Close();
      if (!closed.ok()) fail("close: " + closed.ToString());
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(errors[t].empty()) << "thread " << t << ": " << errors[t];
  }
  EXPECT_EQ(failures.load(), 0);

  const server::ServerStats stats = server_->stats();
  EXPECT_GE(stats.sessions_accepted, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(stats.bad_frames, 0u);
  EXPECT_EQ(stats.sessions_active, 0u);
}

/// Sessions keep distinct languages bound simultaneously: one session
/// speaking SQL must not disturb another mid-CODASYL-scan.
TEST_F(SessionStressTest, InterleavedLanguagesAcrossTwoSessions) {
  client::MldsClient codasyl, sql;
  ASSERT_TRUE(codasyl.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(sql.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(codasyl.Use("codasyl", "university").ok());
  ASSERT_TRUE(sql.Use("sql", "payroll").ok());

  ASSERT_TRUE(
      codasyl.Execute("MOVE 'Networks' TO title IN course").ok());
  ASSERT_TRUE(
      codasyl.Execute("FIND ANY course USING title IN course").ok());
  // The SQL session runs statements between the CODASYL FIND and GET.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sql.Execute("SELECT name FROM staff").ok());
  }
  Result<wire::ExecuteResult> got = codasyl.Execute("GET");
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_NE(got->body.find("Networks"), std::string::npos);
}

}  // namespace
}  // namespace mlds
