// The shared KMS compiled-translation cache: normalization, hit/miss
// accounting, LRU capacity eviction, and DDL epoch invalidation.

#include "kms/translation_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "mlds/mlds.h"

namespace mlds {
namespace {

using kms::NormalizeSource;
using kms::TranslationCache;

Result<int> CompileCounting(int* calls) {
  ++*calls;
  return *calls;
}

TEST(NormalizeSourceTest, CollapsesWhitespaceOutsideLiterals) {
  EXPECT_EQ(NormalizeSource("SELECT  *\n  FROM t"), "SELECT * FROM t");
  EXPECT_EQ(NormalizeSource("  x  "), "x");
  EXPECT_EQ(NormalizeSource("a = 'two  spaces'"), "a = 'two  spaces'");
  EXPECT_EQ(NormalizeSource("'a  b'  'c  d'"), "'a  b' 'c  d'");
  EXPECT_EQ(NormalizeSource(""), "");
}

TEST(TranslationCacheTest, SecondLookupHits) {
  TranslationCache cache;
  int calls = 0;
  auto first = cache.GetOrCompile<int>(
      "sql", "SELECT 1", [&] { return CompileCounting(&calls); });
  ASSERT_TRUE(first.ok());
  auto second = cache.GetOrCompile<int>(
      "sql", "SELECT 1", [&] { return CompileCounting(&calls); });
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(**second, 1);
  TranslationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.size, 1u);
}

TEST(TranslationCacheTest, ReformattedSourceSharesOneEntry) {
  TranslationCache cache;
  int calls = 0;
  ASSERT_TRUE(cache
                  .GetOrCompile<int>("sql", "SELECT *  FROM t",
                                     [&] { return CompileCounting(&calls); })
                  .ok());
  ASSERT_TRUE(cache
                  .GetOrCompile<int>("sql", "SELECT * FROM t",
                                     [&] { return CompileCounting(&calls); })
                  .ok());
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(TranslationCacheTest, DomainsPartitionTheKeySpace) {
  TranslationCache cache;
  int calls = 0;
  ASSERT_TRUE(cache
                  .GetOrCompile<int>("sql", "GET x",
                                     [&] { return CompileCounting(&calls); })
                  .ok());
  ASSERT_TRUE(cache
                  .GetOrCompile<int>("dml", "GET x",
                                     [&] { return CompileCounting(&calls); })
                  .ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().size, 2u);
}

TEST(TranslationCacheTest, CompileErrorsPassThroughUncached) {
  TranslationCache cache;
  int calls = 0;
  auto fail = [&]() -> Result<int> {
    ++calls;
    return Status::ParseError("bad statement");
  };
  EXPECT_FALSE(cache.GetOrCompile<int>("sql", "garbage", fail).ok());
  EXPECT_FALSE(cache.GetOrCompile<int>("sql", "garbage", fail).ok());
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(TranslationCacheTest, CapacityEvictsLeastRecentlyUsed) {
  TranslationCache cache(/*capacity=*/2);
  int calls = 0;
  auto compile = [&] { return CompileCounting(&calls); };
  ASSERT_TRUE(cache.GetOrCompile<int>("d", "a", compile).ok());  // miss
  ASSERT_TRUE(cache.GetOrCompile<int>("d", "b", compile).ok());  // miss
  ASSERT_TRUE(cache.GetOrCompile<int>("d", "a", compile).ok());  // hit: a MRU
  ASSERT_TRUE(cache.GetOrCompile<int>("d", "c", compile).ok());  // evicts b
  TranslationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
  ASSERT_TRUE(cache.GetOrCompile<int>("d", "a", compile).ok());  // still hit
  ASSERT_TRUE(cache.GetOrCompile<int>("d", "b", compile).ok());  // recompiled
  EXPECT_EQ(calls, 4);
}

TEST(TranslationCacheTest, EpochBumpInvalidatesLazily) {
  TranslationCache cache;
  int calls = 0;
  auto compile = [&] { return CompileCounting(&calls); };
  ASSERT_TRUE(cache.GetOrCompile<int>("d", "a", compile).ok());
  EXPECT_EQ(cache.epoch(), 0u);
  cache.InvalidateAll();
  EXPECT_EQ(cache.epoch(), 1u);
  // The stale entry is evicted on lookup and recompiled.
  auto after = cache.GetOrCompile<int>("d", "a", compile);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(**after, 2);
  EXPECT_EQ(calls, 2);
  TranslationCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 0u);
}

constexpr char kRelationalDdl[] = R"(
SCHEMA shop;

CREATE TABLE part (
  pno INTEGER NOT NULL,
  pname CHAR(10)
);
)";

TEST(TranslationCacheIntegrationTest, SqlStatementsHitOnRepeat) {
  MldsSystem system;
  ASSERT_TRUE(system.LoadRelationalDatabase(kRelationalDdl).ok());
  auto session = system.OpenSqlSession("shop");
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(
      (*session)->ExecuteText("INSERT INTO part (pno, pname) VALUES (1, 'a')")
          .ok());
  ASSERT_TRUE(
      (*session)->ExecuteText("INSERT INTO part (pno, pname) VALUES (2, 'b')")
          .ok());

  const std::string query = "SELECT pno FROM part WHERE pno > 0";
  auto first = (*session)->ExecuteText(query);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->rows.size(), 2u);
  const uint64_t hits_before = system.translation_cache().stats().hits;
  auto second = (*session)->ExecuteText("SELECT pno  FROM part WHERE pno > 0");
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->rows.size(), 2u);
  EXPECT_EQ(system.translation_cache().stats().hits, hits_before + 1);
}

TEST(TranslationCacheIntegrationTest, DdlEvictsCachedTranslations) {
  MldsSystem system;
  ASSERT_TRUE(system.LoadRelationalDatabase(kRelationalDdl).ok());
  auto session = system.OpenSqlSession("shop");
  ASSERT_TRUE(session.ok());
  const std::string query = "SELECT pno FROM part";
  ASSERT_TRUE((*session)->ExecuteText(query).ok());
  const uint64_t epoch_before = system.translation_cache().epoch();

  // Any DDL — loading another database — bumps the schema epoch, so the
  // cached translation misses and recompiles instead of running stale.
  ASSERT_TRUE(system
                  .LoadRelationalDatabase(R"(
SCHEMA shop2;

CREATE TABLE widget (
  wno INTEGER NOT NULL
);
)")
                  .ok());
  EXPECT_GT(system.translation_cache().epoch(), epoch_before);
  const uint64_t hits_before = system.translation_cache().stats().hits;
  ASSERT_TRUE((*session)->ExecuteText(query).ok());
  TranslationCache::Stats stats = system.translation_cache().stats();
  EXPECT_EQ(stats.hits, hits_before);  // recompiled, not replayed stale
  EXPECT_GE(stats.evictions, 1u);
}

TEST(TranslationCacheIntegrationTest, InsertRepeatsReexecuteImpurely) {
  MldsSystem system;
  ASSERT_TRUE(system.LoadRelationalDatabase(kRelationalDdl).ok());
  auto session = system.OpenSqlSession("shop");
  ASSERT_TRUE(session.ok());
  const std::string insert =
      "INSERT INTO part (pno, pname) VALUES (7, 'x')";
  // INSERT caches only its AST: repeating it must allocate a fresh tuple
  // key and insert a second row, not replay the first key.
  ASSERT_TRUE((*session)->ExecuteText(insert).ok());
  ASSERT_TRUE((*session)->ExecuteText(insert).ok());
  auto rows = (*session)->ExecuteText("SELECT pno FROM part WHERE pno = 7");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 2u);
  EXPECT_GE(system.translation_cache().stats().hits, 1u);
}

}  // namespace
}  // namespace mlds
