// Tests for the Daplex CREATE / DESTROY statements: entity creation with
// referential + overlap + uniqueness enforcement, and hierarchy-cascading
// destruction with the Ch. VI.H reference-abort rule.

#include <gtest/gtest.h>

#include "kms/daplex_machine.h"
#include "mlds/mlds.h"
#include "university/university.h"

namespace mlds::kms {
namespace {

class DaplexMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        system_.LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
    university::UniversityConfig config;
    ASSERT_TRUE(university::BuildUniversityDatabaseOnLoaded(config,
                                                            system_.executor())
                    .ok());
    auto session = system_.OpenDaplexSession("university");
    ASSERT_TRUE(session.ok());
    machine_ = *session;
  }

  DaplexMachine::Outcome Must(std::string_view text) {
    auto outcome = machine_->ExecuteStatement(text);
    EXPECT_TRUE(outcome.ok()) << text << ": " << outcome.status();
    return outcome.ok() ? std::move(*outcome) : DaplexMachine::Outcome{};
  }

  Status Fails(std::string_view text) {
    auto outcome = machine_->ExecuteStatement(text);
    EXPECT_FALSE(outcome.ok()) << text << " unexpectedly succeeded";
    return outcome.ok() ? Status::OK() : outcome.status();
  }

  MldsSystem system_;
  DaplexMachine* machine_ = nullptr;
};

TEST_F(DaplexMutationTest, CreateEntityWithScalars) {
  auto outcome =
      Must("CREATE department (dname = 'Philosophy')");
  EXPECT_EQ(outcome.affected, 1u);
  auto rows = Must("FOR EACH department SUCH THAT dname = 'Philosophy' "
                   "PRINT dname");
  EXPECT_EQ(rows.records.size(), 1u);
}

TEST_F(DaplexMutationTest, CreateSubtypeRequiresSupertypeKey) {
  Status status = Fails("CREATE student (major = 'CS')");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(DaplexMutationTest, CreateSubtypeLinksToSupertype) {
  auto outcome = Must(
      "CREATE student (person = 'person_33', major = 'Daplex Studies', "
      "advisor = 'faculty_2')");
  EXPECT_EQ(outcome.affected, 1u);
  auto rows = Must(
      "FOR EACH student SUCH THAT major = 'Daplex Studies' "
      "PRINT pname, advisor");
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_EQ(rows.records[0].GetOrNull("pname").AsString(), "person_name_33");
  EXPECT_EQ(rows.records[0].GetOrNull("advisor").AsString(), "faculty_2");
}

TEST_F(DaplexMutationTest, CreateRejectsMissingSupertypeEntity) {
  Status status =
      Fails("CREATE student (person = 'person_999', major = 'X')");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(DaplexMutationTest, CreateRejectsDanglingEntityReference) {
  Status status = Fails(
      "CREATE student (person = 'person_34', major = 'X', "
      "advisor = 'faculty_999')");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(DaplexMutationTest, CreateEnforcesUniqueness) {
  // UNIQUE title, semester WITHIN course; course_1 holds (Advanced
  // Database, Fall86).
  Status status = Fails(
      "CREATE course (title = 'Advanced Database', semester = 'Fall86', "
      "credits = 3)");
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
}

TEST_F(DaplexMutationTest, CreateEnforcesOverlapTable) {
  // employee_1 already has a faculty record; support_staff is an
  // undeclared overlap sibling.
  Status status = Fails(
      "CREATE support_staff (employee = 'employee_1', hours = 5)");
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
}

TEST_F(DaplexMutationTest, CreateRejectsInheritedFunctionAssignment) {
  // pname belongs to person; it cannot be written through student.
  Status status = Fails(
      "CREATE student (person = 'person_34', pname = 'nope')");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(DaplexMutationTest, DestroyLeafEntity) {
  Must("CREATE department (dname = 'Ephemeral')");
  auto outcome =
      Must("DESTROY department SUCH THAT dname = 'Ephemeral'");
  EXPECT_EQ(outcome.affected, 1u);
  auto rows =
      Must("FOR EACH department SUCH THAT dname = 'Ephemeral' PRINT dname");
  EXPECT_TRUE(rows.records.empty());
}

TEST_F(DaplexMutationTest, DestroyCascadesIntoSubtypeHierarchy) {
  // person_30 has a student record (students cover persons 1..30).
  const size_t students_before = system_.executor()->FileSize("student");
  auto outcome = Must("DESTROY person SUCH THAT person = 'person_30'");
  EXPECT_EQ(outcome.affected, 1u);
  EXPECT_EQ(system_.executor()->FileSize("student"), students_before - 1);
  auto rows = Must(
      "FOR EACH person SUCH THAT person = 'person_30' PRINT pname");
  EXPECT_TRUE(rows.records.empty());
}

TEST_F(DaplexMutationTest, DestroyAbortsWhenEntityIsReferenced) {
  // Every faculty member owning teaching links or advising students is
  // referenced by a database function; destroying its employee supertype
  // must abort (the cascade would hit the referenced faculty record).
  auto advisors = Must("FOR EACH student PRINT advisor");
  ASSERT_FALSE(advisors.records.empty());
  const std::string busy_faculty =
      advisors.records[0].GetOrNull("advisor").AsString();
  Status status = Fails("DESTROY faculty SUCH THAT faculty = '" +
                        busy_faculty + "'");
  EXPECT_EQ(status.code(), StatusCode::kAborted);
}

TEST_F(DaplexMutationTest, DestroyNonReferencedSubtypeSucceeds) {
  Must("CREATE student (person = 'person_35', major = 'Disposable')");
  auto outcome = Must("DESTROY student SUCH THAT major = 'Disposable'");
  EXPECT_EQ(outcome.affected, 1u);
}

TEST_F(DaplexMutationTest, DestroyWithEmptySelectionIsNoop) {
  auto outcome =
      Must("DESTROY department SUCH THAT dname = 'No Such Dept'");
  EXPECT_EQ(outcome.affected, 0u);
}

TEST_F(DaplexMutationTest, CreateVisibleThroughCodasylInterface) {
  Must("CREATE course (title = 'Daplex Made', semester = 'Sp88', "
       "credits = 2)");
  auto dml = system_.OpenCodasylSession("university");
  ASSERT_TRUE(dml.ok());
  auto found = (*dml)->RunProgram(
      "MOVE 'Daplex Made' TO title IN course\n"
      "FIND ANY course USING title IN course\n"
      "GET title, credits IN course\n");
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found->back().records[0].GetOrNull("credits").AsInteger(), 2);
}

TEST_F(DaplexMutationTest, CreateNullsUnassignedMemberSideSets) {
  // Parity with STORE: Daplex-created entities carry NULL keywords for
  // unassigned member-side function sets, so both creation paths answer
  // (set = NULL) queries identically.
  Must("CREATE student (person = 'person_32', major = 'Unadvised')");
  auto dml = system_.OpenCodasylSession("university");
  ASSERT_TRUE(dml.ok());
  auto found = (*dml)->RunProgram(
      "MOVE 'Unadvised' TO major IN student\n"
      "FIND ANY student USING major IN student\n"
      "GET advisor IN student\n");
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_TRUE(found->back().records[0].GetOrNull("advisor").is_null());
}

TEST_F(DaplexMutationTest, UpdateScalarFunction) {
  auto outcome = Must(
      "UPDATE course SUCH THAT course = 'course_2' (credits = 9)");
  EXPECT_EQ(outcome.affected, 1u);
  auto rows =
      Must("FOR EACH course SUCH THAT course = 'course_2' PRINT credits");
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_EQ(rows.records[0].GetOrNull("credits").AsInteger(), 9);
}

TEST_F(DaplexMutationTest, UpdateHitsAllDuplicatedRecords) {
  // employee_3 has two kernel records; one UPDATE touches both.
  Must("UPDATE employee SUCH THAT employee = 'employee_3' "
       "(salary = 11111.0)");
  auto rows = Must(
      "FOR EACH employee SUCH THAT employee = 'employee_3' PRINT salary");
  ASSERT_EQ(rows.records.size(), 1u);
  EXPECT_DOUBLE_EQ(rows.records[0].GetOrNull("salary").AsFloat(), 11111.0);
}

TEST_F(DaplexMutationTest, UpdateSingleValuedFunctionChecksTarget) {
  Status status = Fails(
      "UPDATE student SUCH THAT student = 'student_1' "
      "(advisor = 'faculty_999')");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  auto outcome = Must(
      "UPDATE student SUCH THAT student = 'student_1' "
      "(advisor = 'faculty_6')");
  EXPECT_EQ(outcome.affected, 1u);
  auto rows =
      Must("FOR EACH student SUCH THAT student = 'student_1' PRINT advisor");
  EXPECT_EQ(rows.records[0].GetOrNull("advisor").AsString(), "faculty_6");
}

TEST_F(DaplexMutationTest, UpdateSelectsByCondition) {
  auto outcome = Must(
      "UPDATE student SUCH THAT major = 'Computer Science' "
      "(major = 'Informatics')");
  EXPECT_GE(outcome.affected, 1u);
  auto gone = Must(
      "FOR EACH student SUCH THAT major = 'Computer Science' PRINT major");
  EXPECT_TRUE(gone.records.empty());
}

TEST_F(DaplexMutationTest, UpdateRejectsMultiValuedAssignment) {
  Status status = Fails(
      "UPDATE faculty SUCH THAT faculty = 'faculty_1' "
      "(teaching = 'course_1')");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(DaplexMutationTest, ParserRejectsMalformedStatements) {
  EXPECT_FALSE(machine_->ExecuteStatement("CREATE course").ok());
  EXPECT_FALSE(machine_->ExecuteStatement("CREATE course (title 'x')").ok());
  EXPECT_FALSE(machine_->ExecuteStatement("DESTROY").ok());
  EXPECT_FALSE(machine_->ExecuteStatement("OBLITERATE course").ok());
}

// --- batch CREATE (bulk ingest) ---

TEST_F(DaplexMutationTest, BatchCreateBindsRowsThroughOneTemplate) {
  std::vector<std::vector<abdm::Value>> rows;
  for (int i = 0; i < 5; ++i) {
    rows.push_back({abdm::Value::String("Dept " + std::to_string(i))});
  }
  auto outcome =
      machine_->ExecuteBatch("CREATE department (dname = ?)", rows);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->affected, 5u);
  for (int i = 0; i < 5; ++i) {
    auto check = Must("FOR EACH department SUCH THAT dname = 'Dept " +
                      std::to_string(i) + "' PRINT dname");
    EXPECT_EQ(check.records.size(), 1u) << "row " << i;
  }
}

TEST_F(DaplexMutationTest, BatchCreateRejectsHostileShapes) {
  EXPECT_FALSE(
      machine_->ExecuteBatch("CREATE department (dname = ?)", {}).ok());
  EXPECT_FALSE(machine_
                   ->ExecuteBatch("CREATE department (dname = ?)",
                                  {{abdm::Value::String("a"),
                                    abdm::Value::String("extra")}})
                   .ok());
  const std::vector<std::vector<abdm::Value>> one = {
      {abdm::Value::String("x")}};
  EXPECT_FALSE(
      machine_->ExecuteBatch("CREATE department (dname = 'lit')", one).ok());
  EXPECT_FALSE(
      machine_->ExecuteBatch("FOR EACH department PRINT dname", one).ok());
  // Direct execution of a parameterized CREATE points at the batch
  // interface.
  EXPECT_FALSE(
      machine_->ExecuteStatement("CREATE department (dname = ?)").ok());
}

TEST_F(DaplexMutationTest, BatchCreateEnforcesReferentialChecksPerRow) {
  // Subtype rows still need a live supertype key: one bad row aborts its
  // chunk before anything in it lands.
  const std::vector<std::vector<abdm::Value>> rows = {
      {abdm::Value::String("person_999"), abdm::Value::String("Ghost")}};
  Status status =
      machine_
          ->ExecuteBatch("CREATE student (person = ?, major = ?)", rows)
          .status();
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace mlds::kms
