// Failure injection: a kernel executor that fails on command (the shared
// kc::FaultyExecutor), verifying that the language interfaces propagate
// kernel failures as clean Status values, never crash, and remain usable
// after the fault clears.

#include <gtest/gtest.h>

#include <memory>

#include "kc/faulty_executor.h"
#include "kds/engine.h"
#include "kms/daplex_machine.h"
#include "kms/dml_machine.h"
#include "university/university.h"

namespace mlds {
namespace {

using kc::FaultyExecutor;

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    inner_ = std::make_unique<kc::EngineExecutor>(&engine_);
    faulty_ = std::make_unique<FaultyExecutor>(inner_.get());
    university::UniversityConfig config;
    auto db = university::BuildUniversityDatabase(config, faulty_.get());
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<university::UniversityDatabase>(std::move(*db));
    machine_ = std::make_unique<kms::DmlMachine>(&db_->mapping.schema,
                                                 &db_->mapping, faulty_.get());
  }

  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> inner_;
  std::unique_ptr<FaultyExecutor> faulty_;
  std::unique_ptr<university::UniversityDatabase> db_;
  std::unique_ptr<kms::DmlMachine> machine_;
};

TEST_F(FailureInjectionTest, FindPropagatesKernelFault) {
  faulty_->set_fail_after(0);
  auto result = machine_->RunProgram(
      "MOVE 'Advanced Database' TO title IN course\n"
      "FIND ANY course USING title IN course\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST_F(FailureInjectionTest, MachineRecoversAfterFaultClears) {
  faulty_->set_fail_after(0);
  ASSERT_FALSE(machine_->ExecuteText("FIND FIRST person WITHIN system_person")
                   .ok());
  faulty_->set_fail_after(-1);
  auto retry =
      machine_->ExecuteText("FIND FIRST person WITHIN system_person");
  EXPECT_TRUE(retry.ok()) << retry.status();
}

TEST_F(FailureInjectionTest, StoreFailingMidTranslationInsertsNothing) {
  const size_t before = engine_.FileSize("course");
  // STORE course issues: key probe, duplicates probe, INSERT. Failing on
  // the third request kills the INSERT after the checks passed.
  auto program =
      "MOVE 'Fault Course' TO title IN course\n"
      "MOVE 'FaultSem' TO semester IN course\n"
      "MOVE 1 TO credits IN course\n";
  ASSERT_TRUE(machine_->RunProgram(program).ok());
  faulty_->set_fail_after(2);
  auto store = machine_->ExecuteText("STORE course");
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInternal);
  faulty_->set_fail_after(-1);
  EXPECT_EQ(engine_.FileSize("course"), before);
  // The run-unit currency was not corrupted by the failed STORE.
  EXPECT_FALSE(machine_->cit().run_unit().has_value());
  // And a clean retry works.
  auto retry = machine_->ExecuteText("STORE course");
  EXPECT_TRUE(retry.ok()) << retry.status();
}

TEST_F(FailureInjectionTest, ConnectFailingMidFlightReportsError) {
  ASSERT_TRUE(machine_
                  ->RunProgram(
                      "MOVE 'faculty_3' TO faculty IN faculty\n"
                      "FIND ANY faculty USING faculty IN faculty\n"
                      "MOVE 'student_5' TO student IN student\n"
                      "FIND ANY student USING student IN student\n")
                  .ok());
  faulty_->set_fail_after(0);
  auto connect = machine_->ExecuteText("CONNECT student TO advisor");
  ASSERT_FALSE(connect.ok());
  EXPECT_EQ(connect.status().code(), StatusCode::kInternal);
}

TEST_F(FailureInjectionTest, DaplexQueryPropagatesFault) {
  kms::DaplexMachine daplex(&db_->functional, &db_->mapping.schema,
                            &db_->mapping, faulty_.get());
  faulty_->set_fail_after(0);
  auto rows = daplex.ExecuteText("FOR EACH course PRINT title");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
  faulty_->set_fail_after(-1);
  EXPECT_TRUE(daplex.ExecuteText("FOR EACH course PRINT title").ok());
}

TEST_F(FailureInjectionTest, HealthReportsDegradedWhileFailing) {
  kc::KernelHealth healthy = faulty_->Health();
  EXPECT_FALSE(healthy.degraded);
  ASSERT_FALSE(healthy.backends.empty());
  EXPECT_EQ(healthy.backends.front().state, "healthy");

  faulty_->set_fail_after(0);
  kc::KernelHealth degraded = faulty_->Health();
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.backends.front().state, "suspect");
  EXPECT_EQ(degraded.backends.front().last_fault, "injected kernel fault");

  faulty_->set_fail_after(-1);
  EXPECT_FALSE(faulty_->Health().degraded);
}

TEST_F(FailureInjectionTest, InheritedJoinFaultMidQuery) {
  kms::DaplexMachine daplex(&db_->functional, &db_->mapping.schema,
                            &db_->mapping, faulty_.get());
  // The inherited-print query issues a base fetch then an ancestor fetch;
  // fail the second.
  faulty_->set_fail_after(1);
  auto rows = daplex.ExecuteText("FOR EACH student PRINT pname");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace mlds
