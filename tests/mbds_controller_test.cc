#include "mbds/controller.h"

#include <gtest/gtest.h>

#include "abdl/parser.h"

namespace mlds::mbds {
namespace {

using abdm::DatabaseDescriptor;
using abdm::FileDescriptor;
using abdm::ValueKind;

FileDescriptor ItemFile() {
  FileDescriptor f;
  f.name = "item";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"key", ValueKind::kInteger, 0, true},
      {"payload", ValueKind::kString, 0, false},
  };
  return f;
}

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

Controller MakeController(int backends) {
  MbdsOptions options;
  options.num_backends = backends;
  options.engine.block_capacity = 4;
  return Controller(options);
}

void Load(Controller* c, int n) {
  ASSERT_TRUE(c->DefineFile(ItemFile()).ok());
  for (int i = 0; i < n; ++i) {
    auto resp = c->Execute(MustParse("INSERT (<FILE, item>, <key, " +
                                     std::to_string(i) +
                                     ">, <payload, 'x'>)"));
    ASSERT_TRUE(resp.ok()) << resp.status();
  }
}

TEST(MbdsControllerTest, InsertsDistributeRoundRobin) {
  Controller c = MakeController(4);
  Load(&c, 40);
  EXPECT_EQ(c.FileSize("item"), 40u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.backend(i).engine().FileSize("item"), 10u) << "backend " << i;
  }
}

TEST(MbdsControllerTest, BroadcastRetrieveMergesAllBackends) {
  Controller c = MakeController(3);
  Load(&c, 30);
  auto report = c.Execute(
      MustParse("RETRIEVE ((FILE = item) and (key < 10)) (all attributes)"));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->response.records.size(), 10u);
}

TEST(MbdsControllerTest, RetrieveByOrdersAcrossBackends) {
  Controller c = MakeController(4);
  Load(&c, 20);
  auto report =
      c.Execute(MustParse("RETRIEVE ((FILE = item)) (key) BY key"));
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->response.records.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(report->response.records[i].GetOrNull("key").AsInteger(), i);
  }
}

TEST(MbdsControllerTest, GlobalAggregateIsExact) {
  // AVG across backends must be computed on the merged set; partial
  // per-backend averages would be wrong for uneven partitions.
  Controller c = MakeController(3);
  ASSERT_TRUE(c.DefineFile(ItemFile()).ok());
  // 4 records: keys 0,1,2,30 -> average 8.25.
  for (int key : {0, 1, 2, 30}) {
    ASSERT_TRUE(c.Execute(MustParse("INSERT (<FILE, item>, <key, " +
                                    std::to_string(key) + ">)"))
                    .ok());
  }
  auto report =
      c.Execute(MustParse("RETRIEVE ((FILE = item)) (AVG(key))"));
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->response.records.size(), 1u);
  EXPECT_DOUBLE_EQ(
      report->response.records[0].GetOrNull("AVG(key)").AsFloat(), 8.25);
}

TEST(MbdsControllerTest, BroadcastDeleteAffectsAllPartitions) {
  Controller c = MakeController(4);
  Load(&c, 40);
  auto report = c.Execute(MustParse("DELETE ((FILE = item) and (key >= 20))"));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->response.affected, 20u);
  EXPECT_EQ(c.FileSize("item"), 20u);
}

TEST(MbdsControllerTest, BroadcastUpdateAffectsAllPartitions) {
  Controller c = MakeController(2);
  Load(&c, 10);
  auto report =
      c.Execute(MustParse("UPDATE ((FILE = item)) (payload = 'y')"));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->response.affected, 10u);
}

TEST(MbdsControllerTest, ResponseTimeIsMaxNotSum) {
  Controller c = MakeController(4);
  Load(&c, 64);
  auto report = c.Execute(
      MustParse("RETRIEVE ((FILE = item) and (payload = 'x')) (key)"));
  ASSERT_TRUE(report.ok());
  double max_ms = 0.0;
  double sum_ms = 0.0;
  for (double ms : report->backend_times_ms) {
    max_ms = std::max(max_ms, ms);
    sum_ms += ms;
  }
  MbdsOptions defaults;
  EXPECT_DOUBLE_EQ(report->response_time_ms,
                   defaults.bus.RoundTripMs() + max_ms);
  EXPECT_LT(report->response_time_ms, sum_ms);
}

TEST(MbdsControllerTest, MoreBackendsReduceScanResponseTime) {
  // E1's mechanism in miniature: a fixed-size database scanned by a
  // non-indexed predicate completes faster with more backends.
  const int kRecords = 512;
  double t1 = 0.0, t8 = 0.0;
  {
    Controller c = MakeController(1);
    Load(&c, kRecords);
    auto r = c.Execute(MustParse("RETRIEVE ((payload = 'x')) (key)"));
    ASSERT_TRUE(r.ok());
    t1 = r->response_time_ms;
  }
  {
    Controller c = MakeController(8);
    Load(&c, kRecords);
    auto r = c.Execute(MustParse("RETRIEVE ((payload = 'x')) (key)"));
    ASSERT_TRUE(r.ok());
    t8 = r->response_time_ms;
  }
  EXPECT_LT(t8, t1);
  // The reciprocal behaviour holds loosely: 8 backends at least 4x faster.
  EXPECT_LT(t8, t1 / 4.0);
}

TEST(MbdsControllerTest, ProportionalGrowthKeepsResponseTimeInvariant) {
  // E2's mechanism: records-per-backend constant => response time nearly
  // constant as the system grows.
  std::vector<double> times;
  for (int backends : {1, 2, 4, 8}) {
    Controller c = MakeController(backends);
    Load(&c, 128 * backends);
    auto r = c.Execute(MustParse("RETRIEVE ((payload = 'x')) (key)"));
    ASSERT_TRUE(r.ok());
    times.push_back(r->response_time_ms);
  }
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_NEAR(times[i], times[0], times[0] * 0.15) << "i=" << i;
  }
}

TEST(MbdsControllerTest, DistributedJoinFindsCrossPartitionPairs) {
  // Left and right join partners deliberately land on different backends
  // (round-robin placement alternates files' records): a per-backend join
  // would return nothing.
  Controller c = MakeController(4);
  abdm::FileDescriptor left;
  left.name = "supplier";
  left.attributes = {{"FILE", abdm::ValueKind::kString, 0, true},
                     {"city", abdm::ValueKind::kString, 0, true},
                     {"sname", abdm::ValueKind::kString, 0, true}};
  abdm::FileDescriptor right;
  right.name = "plant";
  right.attributes = {{"FILE", abdm::ValueKind::kString, 0, true},
                      {"city", abdm::ValueKind::kString, 0, true},
                      {"capacity", abdm::ValueKind::kInteger, 0, true}};
  ASSERT_TRUE(c.DefineFile(left).ok());
  ASSERT_TRUE(c.DefineFile(right).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(c.Execute(MustParse("INSERT (<FILE, supplier>, <city, 'c" +
                                    std::to_string(i) + "'>, <sname, 's" +
                                    std::to_string(i) + "'>)"))
                    .ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(c.Execute(MustParse("INSERT (<FILE, plant>, <city, 'c" +
                                    std::to_string(i) + "'>, <capacity, " +
                                    std::to_string(i * 10) + ">)"))
                    .ok());
  }
  auto report = c.Execute(MustParse(
      "RETRIEVE-COMMON ((FILE = supplier)) (city) AND ((FILE = plant)) "
      "(city) (sname, capacity)"));
  ASSERT_TRUE(report.ok()) << report.status();
  // Every supplier joins its same-city plant, wherever the records live.
  EXPECT_EQ(report->response.records.size(), 8u);
  // And matches the single-engine answer exactly.
  kds::Engine engine;
  ASSERT_TRUE(engine.DefineFile(left).ok());
  ASSERT_TRUE(engine.DefineFile(right).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(engine.Execute(MustParse("INSERT (<FILE, supplier>, <city, 'c" +
                                         std::to_string(i) + "'>, <sname, 's" +
                                         std::to_string(i) + "'>)"))
                    .ok());
    ASSERT_TRUE(engine.Execute(MustParse("INSERT (<FILE, plant>, <city, 'c" +
                                         std::to_string(i) +
                                         "'>, <capacity, " +
                                         std::to_string(i * 10) + ">)"))
                    .ok());
  }
  auto single = engine.Execute(MustParse(
      "RETRIEVE-COMMON ((FILE = supplier)) (city) AND ((FILE = plant)) "
      "(city) (sname, capacity)"));
  ASSERT_TRUE(single.ok());
  auto normalize = [](std::vector<abdm::Record> records) {
    std::sort(records.begin(), records.end(),
              [](const abdm::Record& a, const abdm::Record& b) {
                return a.ToString() < b.ToString();
              });
    return records;
  };
  EXPECT_EQ(normalize(report->response.records), normalize(single->records));
}

TEST(MbdsControllerTest, TransactionPipelinesIndependentReads) {
  Controller c = MakeController(2);
  Load(&c, 8);
  auto txn = abdl::ParseTransaction(
      "RETRIEVE ((FILE = item)) (key); RETRIEVE ((FILE = item)) (key)");
  ASSERT_TRUE(txn.ok());
  auto report = c.ExecuteTransaction(*txn);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->response.records.size(), 16u);
  // Read-read footprints never conflict, so both statements share one
  // pipeline stage: the transaction costs one bus round trip plus its
  // slowest statement — strictly less than executing the two serially.
  auto first = c.Execute((*txn)[0]);
  auto second = c.Execute((*txn)[1]);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  MbdsOptions defaults;
  EXPECT_GE(report->response_time_ms, defaults.bus.RoundTripMs());
  EXPECT_LT(report->response_time_ms,
            first->response_time_ms + second->response_time_ms);
}

TEST(MbdsControllerTest, TransactionSumsConflictingStages) {
  Controller c = MakeController(2);
  Load(&c, 8);
  // UPDATE then RETRIEVE of the same file conflict (write-read), so the
  // pipeline serializes them into two stages whose simulated times sum.
  auto txn = abdl::ParseTransaction(
      "UPDATE ((FILE = item)) (payload = 'y'); "
      "RETRIEVE ((FILE = item)) (key)");
  ASSERT_TRUE(txn.ok());
  auto report = c.ExecuteTransaction(*txn);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->response.records.size(), 8u);
  MbdsOptions defaults;
  EXPECT_GE(report->response_time_ms, 2 * defaults.bus.RoundTripMs());
}

TEST(MbdsControllerTest, CumulativeTimingAccumulatesAndResets) {
  Controller c = MakeController(2);
  Load(&c, 4);
  EXPECT_GT(c.total_response_time_ms(), 0.0);
  c.ResetTiming();
  EXPECT_DOUBLE_EQ(c.total_response_time_ms(), 0.0);
}

}  // namespace
}  // namespace mlds::mbds
