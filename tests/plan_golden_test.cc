// EXPLAIN plan-rendering goldens: the annotated physical plan travels
// from the KDS planner through KC and the KMS front ends to the KFS
// formatter, and these tests byte-pin the rendered tree for two language
// interfaces (SQL and CODASYL-DML) plus the MBDS per-backend merge
// structure end to end.

#include <gtest/gtest.h>

#include <string>

#include "abdl/parser.h"
#include "abdl/request.h"
#include "kds/engine.h"
#include "kfs/formatter.h"
#include "kms/dml_machine.h"
#include "kms/sql_machine.h"
#include "mlds/mlds.h"
#include "university/university.h"

namespace mlds {
namespace {

constexpr char kRegistrarDdl[] = R"(
SCHEMA registrar;

CREATE TABLE course (
  title CHAR(20) NOT NULL,
  dept CHAR(10),
  credits INTEGER,
  UNIQUE (title)
);
)";

class SqlPlanGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_.LoadRelationalDatabase(kRegistrarDdl).ok());
    auto session = system_.OpenSqlSession("registrar");
    ASSERT_TRUE(session.ok()) << session.status();
    machine_ = *session;
    Must("INSERT INTO course (title, dept, credits) "
         "VALUES ('Databases', 'CS', 4)");
    Must("INSERT INTO course (title, dept, credits) "
         "VALUES ('Networks', 'CS', 3)");
    Must("INSERT INTO course (title, dept, credits) "
         "VALUES ('Thermo', 'ME', 3)");
  }

  kms::SqlMachine::Outcome Must(std::string_view text) {
    auto outcome = machine_->ExecuteText(text);
    EXPECT_TRUE(outcome.ok()) << text << ": " << outcome.status();
    return outcome.ok() ? std::move(*outcome) : kms::SqlMachine::Outcome{};
  }

  MldsSystem system_;
  kms::SqlMachine* machine_ = nullptr;
};

TEST_F(SqlPlanGoldenTest, ExplainSelectRendersAnnotatedTree) {
  auto outcome = Must("EXPLAIN SELECT title FROM course WHERE dept = 'CS'");
  ASSERT_EQ(outcome.rows.size(), 2u);
  ASSERT_NE(outcome.plan, nullptr);
  EXPECT_EQ(
      kfs::FormatPlan(*outcome.plan),
      "QUERY PLAN\n"
      "----------\n"
      "PROJECT (title)  est: 2 rows, 1 blocks  actual: 2 rows, 1 blocks\n"
      "  UNION (course)  est: 2 rows, 1 blocks  actual: 2 rows, 1 blocks\n"
      "    INTERSECT [directory]  est: 2 rows, 1 blocks"
      "  actual: 2 rows, 1 blocks\n"
      "      INDEX EQUALITY [secondary] (dept = 'CS') [directory]"
      "  est: 2 rows, 1 blocks  actual: 2 rows, 0 blocks\n"
      "      INDEX EQUALITY (FILE = 'course') [directory]"
      "  est: 3 rows, 1 blocks  actual: 3 rows, 0 blocks\n");
}

TEST_F(SqlPlanGoldenTest, PlainSelectCarriesNoPlan) {
  auto outcome = Must("SELECT title FROM course WHERE dept = 'CS'");
  EXPECT_EQ(outcome.plan, nullptr);
}

TEST_F(SqlPlanGoldenTest, ExplainUpdateSequencesPerAssignmentPlans) {
  auto outcome = Must(
      "EXPLAIN UPDATE course SET dept = 'EE', credits = 2 "
      "WHERE title = 'Thermo'");
  EXPECT_EQ(outcome.affected, 1u);
  ASSERT_NE(outcome.plan, nullptr);
  // One kernel UPDATE per SET assignment, sequenced in issue order.
  EXPECT_EQ(
      kfs::FormatPlan(*outcome.plan),
      "QUERY PLAN\n"
      "----------\n"
      "SEQUENCE (2 requests)  est: 2 rows, 2 blocks"
      "  actual: 2 rows, 2 blocks\n"
      "  UNION (course)  est: 1 rows, 1 blocks  actual: 1 rows, 1 blocks\n"
      "    INTERSECT [directory]  est: 1 rows, 1 blocks"
      "  actual: 1 rows, 1 blocks\n"
      "      INDEX EQUALITY [secondary] (title = 'Thermo') [directory]"
      "  est: 1 rows, 1 blocks"
      "  actual: 1 rows, 0 blocks\n"
      "      INDEX EQUALITY (FILE = 'course') [directory]"
      "  est: 3 rows, 1 blocks"
      "  actual: 3 rows, 0 blocks\n"
      "  UNION (course)  est: 1 rows, 1 blocks  actual: 1 rows, 1 blocks\n"
      "    INTERSECT [directory]  est: 1 rows, 1 blocks"
      "  actual: 1 rows, 1 blocks\n"
      "      INDEX EQUALITY [secondary] (title = 'Thermo') [directory]"
      "  est: 1 rows, 1 blocks"
      "  actual: 1 rows, 0 blocks\n"
      "      INDEX EQUALITY (FILE = 'course') [directory]"
      "  est: 3 rows, 1 blocks"
      "  actual: 3 rows, 0 blocks\n");
}

class DmlPlanGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        system_.LoadFunctionalDatabase(university::kUniversityDaplexDdl)
            .ok());
    university::UniversityConfig config;
    ASSERT_TRUE(university::BuildUniversityDatabaseOnLoaded(
                    config, system_.executor())
                    .ok());
    auto session = system_.OpenCodasylSession("university");
    ASSERT_TRUE(session.ok()) << session.status();
    machine_ = *session;
  }

  kms::DmlResult Must(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_TRUE(result.ok()) << dml << ": " << result.status();
    return result.ok() ? std::move(*result) : kms::DmlResult{};
  }

  MldsSystem system_;
  kms::DmlMachine* machine_ = nullptr;
};

TEST_F(DmlPlanGoldenTest, ExplainFindAnyRendersAnnotatedTree) {
  Must("MOVE 'Computer Science' TO major IN student");
  auto result = Must("EXPLAIN FIND ANY student USING major IN student");
  ASSERT_NE(result.plan, nullptr);
  kfs::PlanFormatOptions options;
  options.header = "ABDL REQUEST PLAN";
  EXPECT_EQ(
      kfs::FormatPlan(*result.plan, options),
      "ABDL REQUEST PLAN\n"
      "-----------------\n"
      "PROJECT (all attributes) BY student  est: 4 rows, 2 blocks"
      "  actual: 4 rows, 2 blocks\n"
      "  UNION (student)  est: 4 rows, 2 blocks  actual: 4 rows, 2 blocks\n"
      "    INTERSECT [directory]  est: 4 rows, 2 blocks"
      "  actual: 4 rows, 2 blocks\n"
      "      INDEX EQUALITY [secondary] (major = 'Computer Science')"
      " [directory]  est: 4 rows,"
      " 2 blocks  actual: 4 rows, 0 blocks\n"
      "      INDEX EQUALITY (FILE = 'student') [directory]"
      "  est: 30 rows, 2 blocks"
      "  actual: 30 rows, 0 blocks\n");
}

TEST_F(DmlPlanGoldenTest, PlainFindCarriesNoPlan) {
  Must("MOVE 'Computer Science' TO major IN student");
  auto result = Must("FIND ANY student USING major IN student");
  EXPECT_EQ(result.plan, nullptr);
}

// --- RETRIEVE-COMMON join plans (statistics & join subsystem) ---

class JoinPlanGoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    abdm::DatabaseDescriptor db;
    db.name = "joins";
    for (const char* name : {"left", "right"}) {
      abdm::FileDescriptor f;
      f.name = name;
      f.attributes = {
          {"FILE", abdm::ValueKind::kString, 0, true},
          {"v", abdm::ValueKind::kInteger, 0, true},
      };
      db.files.push_back(std::move(f));
    }
    ASSERT_TRUE(engine_.DefineDatabase(db).ok());
  }

  void Fill(const std::string& file, int rows) {
    for (int i = 0; i < rows; ++i) {
      auto request = abdl::ParseRequest("INSERT (<FILE, " + file + ">, <v, " +
                                        std::to_string(i) + ">)");
      ASSERT_TRUE(request.ok()) << request.status();
      auto response = engine_.Execute(*request);
      ASSERT_TRUE(response.ok()) << response.status();
    }
  }

  std::string Explain(std::string_view text) {
    auto request = abdl::ParseRequest(text);
    EXPECT_TRUE(request.ok()) << text << ": " << request.status();
    if (!request.ok()) return "";
    abdl::SetExplain(*request, true);
    auto response = engine_.Execute(*request);
    EXPECT_TRUE(response.ok()) << text << ": " << response.status();
    if (!response.ok() || response->plan == nullptr) return "";
    return kfs::FormatPlan(*response->plan);
  }

  kds::Engine engine_;
};

TEST_F(JoinPlanGoldenTest, SkewedSidesRenderHashJoin) {
  Fill("left", 5);
  Fill("right", 8);
  EXPECT_EQ(
      Explain("RETRIEVE-COMMON ((FILE = left)) (v) AND ((FILE = right)) (v) "
              "(v)"),
      "QUERY PLAN\n"
      "----------\n"
      "JOIN [hash] (v = v) [directory]  est: 5 rows, 2 blocks"
      "  actual: 5 rows, 2 blocks\n"
      "  UNION (left)  est: 5 rows, 1 blocks  actual: 5 rows, 1 blocks\n"
      "    INDEX EQUALITY (FILE = 'left') [directory]"
      "  est: 5 rows, 1 blocks  actual: 5 rows, 1 blocks\n"
      "  UNION (right)  est: 8 rows, 1 blocks  actual: 8 rows, 1 blocks\n"
      "    INDEX EQUALITY (FILE = 'right') [directory]"
      "  est: 8 rows, 1 blocks  actual: 8 rows, 1 blocks\n");
}

TEST_F(JoinPlanGoldenTest, LargeBalancedSidesRenderMergeJoin) {
  Fill("left", 80);
  Fill("right", 100);
  EXPECT_EQ(
      Explain("RETRIEVE-COMMON ((FILE = left)) (v) AND ((FILE = right)) (v) "
              "(v)"),
      "QUERY PLAN\n"
      "----------\n"
      "JOIN [merge] (v = v) [directory]  est: 80 rows, 12 blocks"
      "  actual: 80 rows, 12 blocks\n"
      "  UNION (left)  est: 80 rows, 5 blocks  actual: 80 rows, 5 blocks\n"
      "    INDEX EQUALITY (FILE = 'left') [directory]"
      "  est: 80 rows, 5 blocks  actual: 80 rows, 5 blocks\n"
      "  UNION (right)  est: 100 rows, 7 blocks"
      "  actual: 100 rows, 7 blocks\n"
      "    INDEX EQUALITY (FILE = 'right') [directory]"
      "  est: 100 rows, 7 blocks  actual: 100 rows, 7 blocks\n");
}

TEST(MbdsPlanTest, ExplainMergesPerBackendPlans) {
  MldsSystem::Options options;
  options.use_mbds = true;
  options.backends = 2;
  MldsSystem system(options);
  ASSERT_TRUE(system.LoadRelationalDatabase(kRegistrarDdl).ok());
  auto session = system.OpenSqlSession("registrar");
  ASSERT_TRUE(session.ok());
  kms::SqlMachine* machine = *session;
  for (int i = 0; i < 8; ++i) {
    auto insert = machine->ExecuteText(
        "INSERT INTO course (title, dept, credits) VALUES ('C" +
        std::to_string(i) + "', 'CS', " + std::to_string(i % 5) + ")");
    ASSERT_TRUE(insert.ok()) << insert.status();
  }

  auto outcome =
      machine->ExecuteText("EXPLAIN SELECT title FROM course WHERE dept = 'CS'");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->rows.size(), 8u);
  ASSERT_NE(outcome->plan, nullptr);

  // Controller-side post-processing sits on top; underneath, one child
  // per backend in backend-id order, counters summed into the merge root.
  const kds::PlanNode& root = *outcome->plan;
  ASSERT_EQ(root.kind, kds::PlanNodeKind::kProject);
  ASSERT_EQ(root.children.size(), 1u);
  const kds::PlanNode& merge = root.children[0];
  ASSERT_EQ(merge.kind, kds::PlanNodeKind::kBackendMerge);
  EXPECT_EQ(merge.label, "2 backends");
  ASSERT_EQ(merge.children.size(), 2u);
  EXPECT_TRUE(merge.executed);
  uint64_t backend_rows = 0;
  for (size_t b = 0; b < merge.children.size(); ++b) {
    EXPECT_TRUE(merge.children[b].label.starts_with(
        "backend " + std::to_string(b)))
        << merge.children[b].label;
    backend_rows += merge.children[b].actual_rows;
  }
  EXPECT_EQ(backend_rows, 8u);
  EXPECT_EQ(merge.actual_rows, 8u);
  // Every backend holds a share of a round-robin-distributed file.
  for (const kds::PlanNode& child : merge.children) {
    EXPECT_TRUE(child.executed);
  }
}

TEST(MbdsPlanTest, FacadeExplainsRawAbdl) {
  MldsSystem::Options options;
  options.use_mbds = true;
  options.backends = 2;
  MldsSystem system(options);
  ASSERT_TRUE(system.LoadRelationalDatabase(kRegistrarDdl).ok());
  auto session = system.OpenSqlSession("registrar");
  ASSERT_TRUE(session.ok());
  for (int i = 0; i < 4; ++i) {
    auto insert = (*session)->ExecuteText(
        "INSERT INTO course (title, dept, credits) VALUES ('C" +
        std::to_string(i) + "', 'CS', 3)");
    ASSERT_TRUE(insert.ok()) << insert.status();
  }
  auto rendered =
      system.ExplainAbdl("RETRIEVE ((FILE = course) and (dept = 'CS')) (title)");
  ASSERT_TRUE(rendered.ok()) << rendered.status();
  EXPECT_TRUE(rendered->starts_with("ABDL PLAN\n---------\n")) << *rendered;
  EXPECT_NE(rendered->find("BACKEND MERGE (2 backends)"), std::string::npos)
      << *rendered;
  // INSERT has no access path: the facade refuses to explain it.
  EXPECT_FALSE(
      system.ExplainAbdl("INSERT (<FILE, course>, <title, 'X'>)").ok());
}

TEST(MbdsPlanTest, DistributedJoinGraftsBackendMergesUnderJoinRoot) {
  constexpr char kShopDdl[] = R"(
SCHEMA shop;

CREATE TABLE item (
  label CHAR(10) NOT NULL,
  price INTEGER,
  UNIQUE (label)
);

CREATE TABLE tag (
  label CHAR(10) NOT NULL,
  color CHAR(10)
);
)";
  MldsSystem::Options options;
  options.use_mbds = true;
  options.backends = 2;
  MldsSystem system(options);
  ASSERT_TRUE(system.LoadRelationalDatabase(kShopDdl).ok());
  auto session = system.OpenSqlSession("shop");
  ASSERT_TRUE(session.ok());
  kms::SqlMachine* machine = *session;
  for (int i = 0; i < 6; ++i) {
    auto insert = machine->ExecuteText(
        "INSERT INTO item (label, price) VALUES ('l" + std::to_string(i) +
        "', " + std::to_string(10 + i) + ")");
    ASSERT_TRUE(insert.ok()) << insert.status();
    auto tag = machine->ExecuteText("INSERT INTO tag (label, color) VALUES ('l" +
                                    std::to_string(i) + "', 'blue')");
    ASSERT_TRUE(tag.ok()) << tag.status();
  }

  auto outcome = machine->ExecuteText(
      "EXPLAIN SELECT price, color FROM item, tag "
      "WHERE item.label = tag.label");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->rows.size(), 6u);
  ASSERT_NE(outcome->plan, nullptr);

  // The controller grafts one BACKEND MERGE subtree per join side under
  // the JOIN root: the distributed plan shows where each side's records
  // came from, per backend, with the join executed at the controller.
  const kds::PlanNode* join = outcome->plan.get();
  while (join != nullptr && join->kind != kds::PlanNodeKind::kJoin) {
    join = join->children.empty() ? nullptr : &join->children[0];
  }
  ASSERT_NE(join, nullptr) << kfs::FormatPlan(*outcome->plan);
  EXPECT_TRUE(join->executed);
  EXPECT_NE(join->join_strategy, kds::JoinStrategy::kNone);
  ASSERT_EQ(join->children.size(), 2u);
  for (const kds::PlanNode& side : join->children) {
    EXPECT_EQ(side.kind, kds::PlanNodeKind::kBackendMerge)
        << kfs::FormatPlan(*outcome->plan);
    EXPECT_EQ(side.label, "2 backends");
    ASSERT_EQ(side.children.size(), 2u);
  }
  // The rendered tree names both the strategy and the merge roots.
  const std::string rendered = kfs::FormatPlan(*outcome->plan);
  EXPECT_NE(rendered.find("JOIN ["), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("BACKEND MERGE (2 backends)"), std::string::npos)
      << rendered;
}

}  // namespace
}  // namespace mlds
