// Robustness fuzzing: every parser in the system must reject arbitrary
// byte salad with a ParseError-style Status — never crash, hang, or
// accept garbage that then corrupts downstream state.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "abdl/parser.h"
#include "codasyl/parser.h"
#include "daplex/ddl_parser.h"
#include "daplex/query.h"
#include "hierarchical/schema.h"
#include "kms/dli_machine.h"
#include "network/ddl_parser.h"
#include "relational/schema.h"
#include "sql/ast.h"

namespace mlds {
namespace {

/// Generates adversarial inputs: printable garbage, keyword fragments
/// spliced with junk, deeply nested parentheses, and truncated valid
/// statements.
class FuzzInputs {
 public:
  explicit FuzzInputs(uint32_t seed) : rng_(seed) {}

  std::string Garbage(size_t length) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 ()<>=!',.;*\"-_";
    std::uniform_int_distribution<size_t> pick(0, sizeof(kAlphabet) - 2);
    std::string out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i) out += kAlphabet[pick(rng_)];
    return out;
  }

  std::string Spliced(std::string_view valid) {
    std::uniform_int_distribution<size_t> cut(0, valid.size());
    const size_t at = cut(rng_);
    return std::string(valid.substr(0, at)) + Garbage(8) +
           std::string(valid.substr(at));
  }

  std::string Truncated(std::string_view valid) {
    std::uniform_int_distribution<size_t> cut(1, valid.size());
    return std::string(valid.substr(0, cut(rng_)));
  }

  std::string Nested(int depth) {
    std::string out;
    for (int i = 0; i < depth; ++i) out += "(";
    out += "a = 1";
    for (int i = 0; i < depth; ++i) out += ")";
    return out;
  }

 private:
  std::mt19937 rng_;
};

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, AllParsersSurviveGarbage) {
  FuzzInputs inputs(GetParam());
  const std::string valid_samples[] = {
      "RETRIEVE ((FILE = course) and (title = 'DB')) (title) BY course",
      "EXPLAIN RETRIEVE ((FILE = course) and (credits > 3)) (title)",
      "FIND ANY course USING title IN course",
      "EXPLAIN FIND ANY course USING title IN course",
      "SELECT title FROM course WHERE credits > 3 ORDER BY title",
      "EXPLAIN SELECT title FROM course WHERE credits > 3",
      "FOR EACH student SUCH THAT major = 'CS' PRINT pname",
      "GU patient (pname = 'Smith') visit (cost > 100)",
      "TYPE a IS ENTITY x : INTEGER; END ENTITY;",
      "RECORD NAME IS r; ITEM x TYPE IS INTEGER;",
      "CREATE TABLE t (a INTEGER, b CHAR(4));",
      "SEGMENT s; FIELD f CHAR(4);",
  };
  for (int trial = 0; trial < 60; ++trial) {
    constexpr size_t kSamples = std::size(valid_samples);
    std::string candidates[] = {
        inputs.Garbage(5 + trial % 60),
        inputs.Spliced(valid_samples[trial % kSamples]),
        inputs.Truncated(valid_samples[trial % kSamples]),
        "RETRIEVE " + inputs.Nested(40) + " (x)",
        "EXPLAIN " + inputs.Garbage(12),
    };
    for (const auto& text : candidates) {
      // Each call must return (no crash/hang); outcome itself is free.
      (void)abdl::ParseRequest(text);
      (void)abdl::ParseQuery(text);
      (void)codasyl::ParseStatement(text);
      (void)codasyl::ParseDmlStatement(text);
      (void)daplex::ParseFunctionalSchema(text);
      (void)daplex::ParseDaplexStatement(text);
      (void)network::ParseSchema(text);
      (void)relational::ParseRelationalSchema(text);
      (void)hierarchical::ParseHierarchicalSchema(text);
      (void)sql::ParseSql(text);
      (void)kms::ParseDliCall(text);
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(ParserFuzzTest, EmptyAndWhitespaceInputsRejectCleanly) {
  for (const char* text : {"", "   ", "\n\t", ";;;", "()", "''"}) {
    EXPECT_FALSE(abdl::ParseRequest(text).ok()) << "'" << text << "'";
    EXPECT_FALSE(codasyl::ParseStatement(text).ok()) << "'" << text << "'";
    EXPECT_FALSE(sql::ParseSql(text).ok()) << "'" << text << "'";
    EXPECT_FALSE(daplex::ParseDaplexStatement(text).ok())
        << "'" << text << "'";
    EXPECT_FALSE(kms::ParseDliCall(text).ok()) << "'" << text << "'";
  }
}

TEST(ParserFuzzTest, MalformedExplainCombosRejectCleanly) {
  // The EXPLAIN prefix composes with every operation that has an access
  // path and nothing else: doubled prefixes, bare prefixes, INSERT (no
  // access path), and MOVE (no kernel request) must all fail to parse.
  const char* abdl_bad[] = {
      "EXPLAIN",
      "EXPLAIN EXPLAIN RETRIEVE ((FILE = course)) (title)",
      "EXPLAIN INSERT (<FILE, course>, <title, 'DB'>)",
      "EXPLAIN garbage",
  };
  for (const char* text : abdl_bad) {
    EXPECT_FALSE(abdl::ParseRequest(text).ok()) << "'" << text << "'";
  }
  const char* sql_bad[] = {
      "EXPLAIN",
      "EXPLAIN EXPLAIN SELECT title FROM course",
      "EXPLAIN INSERT INTO course (title) VALUES ('DB')",
      "EXPLAIN CREATE TABLE t (a INTEGER)",
  };
  for (const char* text : sql_bad) {
    EXPECT_FALSE(sql::ParseSql(text).ok()) << "'" << text << "'";
  }
  const char* dml_bad[] = {
      "EXPLAIN",
      "EXPLAIN EXPLAIN GET",
      "EXPLAIN MOVE 'DB' TO title IN course",
      "EXPLAIN FROB course",
  };
  for (const char* text : dml_bad) {
    EXPECT_FALSE(codasyl::ParseDmlStatement(text).ok()) << "'" << text << "'";
  }
  // The explain-unaware DML entry point never accepts the prefix.
  EXPECT_FALSE(codasyl::ParseStatement("EXPLAIN GET").ok());
}

TEST(ParserFuzzTest, WellFormedExplainPrefixesParse) {
  auto abdl = abdl::ParseRequest(
      "EXPLAIN RETRIEVE ((FILE = course) and (credits > 3)) (title)");
  ASSERT_TRUE(abdl.ok()) << abdl.status();
  EXPECT_TRUE(abdl::IsExplain(*abdl));

  auto sql = sql::ParseSql("EXPLAIN DELETE FROM course WHERE credits = 0");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_TRUE(std::get<sql::DeleteStatement>(*sql).explain);

  auto dml =
      codasyl::ParseDmlStatement("EXPLAIN FIND ANY course USING title IN course");
  ASSERT_TRUE(dml.ok()) << dml.status();
  EXPECT_TRUE(dml->explain);
}

TEST(ParserFuzzTest, DeeplyNestedQueriesParseWithoutBlowup) {
  FuzzInputs inputs(7);
  // 200 nesting levels: recursive-descent depth must be tolerable.
  auto q = abdl::ParseQuery(inputs.Nested(200));
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->disjuncts().size(), 1u);
}

}  // namespace
}  // namespace mlds
