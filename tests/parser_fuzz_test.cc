// Robustness fuzzing: every parser in the system must reject arbitrary
// byte salad with a ParseError-style Status — never crash, hang, or
// accept garbage that then corrupts downstream state.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <random>
#include <sstream>
#include <string>

#include "abdl/parser.h"
#include "abdl/prepared.h"
#include "client/client.h"
#include "common/frame.h"
#include "kds/snapshot.h"
#include "kds/wal.h"
#include "kfs/formatter.h"
#include "server/wire.h"
#include "codasyl/parser.h"
#include "daplex/ddl_parser.h"
#include "daplex/query.h"
#include "hierarchical/schema.h"
#include "kms/dli_machine.h"
#include "network/ddl_parser.h"
#include "relational/schema.h"
#include "sql/ast.h"

namespace mlds {
namespace {

/// Generates adversarial inputs: printable garbage, keyword fragments
/// spliced with junk, deeply nested parentheses, and truncated valid
/// statements.
class FuzzInputs {
 public:
  explicit FuzzInputs(uint32_t seed) : rng_(seed) {}

  std::string Garbage(size_t length) {
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789 ()<>=!',.;*\"-_";
    std::uniform_int_distribution<size_t> pick(0, sizeof(kAlphabet) - 2);
    std::string out;
    out.reserve(length);
    for (size_t i = 0; i < length; ++i) out += kAlphabet[pick(rng_)];
    return out;
  }

  std::string Spliced(std::string_view valid) {
    std::uniform_int_distribution<size_t> cut(0, valid.size());
    const size_t at = cut(rng_);
    return std::string(valid.substr(0, at)) + Garbage(8) +
           std::string(valid.substr(at));
  }

  std::string Truncated(std::string_view valid) {
    std::uniform_int_distribution<size_t> cut(1, valid.size());
    return std::string(valid.substr(0, cut(rng_)));
  }

  std::string Nested(int depth) {
    std::string out;
    for (int i = 0; i < depth; ++i) out += "(";
    out += "a = 1";
    for (int i = 0; i < depth; ++i) out += ")";
    return out;
  }

 private:
  std::mt19937 rng_;
};

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, AllParsersSurviveGarbage) {
  FuzzInputs inputs(GetParam());
  const std::string valid_samples[] = {
      "RETRIEVE ((FILE = course) and (title = 'DB')) (title) BY course",
      "EXPLAIN RETRIEVE ((FILE = course) and (credits > 3)) (title)",
      "FIND ANY course USING title IN course",
      "EXPLAIN FIND ANY course USING title IN course",
      "SELECT title FROM course WHERE credits > 3 ORDER BY title",
      "EXPLAIN SELECT title FROM course WHERE credits > 3",
      "FOR EACH student SUCH THAT major = 'CS' PRINT pname",
      "GU patient (pname = 'Smith') visit (cost > 100)",
      "TYPE a IS ENTITY x : INTEGER; END ENTITY;",
      "RECORD NAME IS r; ITEM x TYPE IS INTEGER;",
      "CREATE TABLE t (a INTEGER, b CHAR(4));",
      "SEGMENT s; FIELD f CHAR(4);",
  };
  for (int trial = 0; trial < 60; ++trial) {
    constexpr size_t kSamples = std::size(valid_samples);
    std::string candidates[] = {
        inputs.Garbage(5 + trial % 60),
        inputs.Spliced(valid_samples[trial % kSamples]),
        inputs.Truncated(valid_samples[trial % kSamples]),
        "RETRIEVE " + inputs.Nested(40) + " (x)",
        "EXPLAIN " + inputs.Garbage(12),
    };
    for (const auto& text : candidates) {
      // Each call must return (no crash/hang); outcome itself is free.
      (void)abdl::ParseRequest(text);
      (void)abdl::ParseQuery(text);
      (void)codasyl::ParseStatement(text);
      (void)codasyl::ParseDmlStatement(text);
      (void)daplex::ParseFunctionalSchema(text);
      (void)daplex::ParseDaplexStatement(text);
      (void)network::ParseSchema(text);
      (void)relational::ParseRelationalSchema(text);
      (void)hierarchical::ParseHierarchicalSchema(text);
      (void)sql::ParseSql(text);
      (void)kms::ParseDliCall(text);
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(ParserFuzzTest, EmptyAndWhitespaceInputsRejectCleanly) {
  for (const char* text : {"", "   ", "\n\t", ";;;", "()", "''"}) {
    EXPECT_FALSE(abdl::ParseRequest(text).ok()) << "'" << text << "'";
    EXPECT_FALSE(codasyl::ParseStatement(text).ok()) << "'" << text << "'";
    EXPECT_FALSE(sql::ParseSql(text).ok()) << "'" << text << "'";
    EXPECT_FALSE(daplex::ParseDaplexStatement(text).ok())
        << "'" << text << "'";
    EXPECT_FALSE(kms::ParseDliCall(text).ok()) << "'" << text << "'";
  }
}

TEST(ParserFuzzTest, MalformedExplainCombosRejectCleanly) {
  // The EXPLAIN prefix composes with every operation that has an access
  // path and nothing else: doubled prefixes, bare prefixes, INSERT (no
  // access path), and MOVE (no kernel request) must all fail to parse.
  const char* abdl_bad[] = {
      "EXPLAIN",
      "EXPLAIN EXPLAIN RETRIEVE ((FILE = course)) (title)",
      "EXPLAIN INSERT (<FILE, course>, <title, 'DB'>)",
      "EXPLAIN garbage",
  };
  for (const char* text : abdl_bad) {
    EXPECT_FALSE(abdl::ParseRequest(text).ok()) << "'" << text << "'";
  }
  const char* sql_bad[] = {
      "EXPLAIN",
      "EXPLAIN EXPLAIN SELECT title FROM course",
      "EXPLAIN INSERT INTO course (title) VALUES ('DB')",
      "EXPLAIN CREATE TABLE t (a INTEGER)",
  };
  for (const char* text : sql_bad) {
    EXPECT_FALSE(sql::ParseSql(text).ok()) << "'" << text << "'";
  }
  const char* dml_bad[] = {
      "EXPLAIN",
      "EXPLAIN EXPLAIN GET",
      "EXPLAIN MOVE 'DB' TO title IN course",
      "EXPLAIN FROB course",
  };
  for (const char* text : dml_bad) {
    EXPECT_FALSE(codasyl::ParseDmlStatement(text).ok()) << "'" << text << "'";
  }
  // The explain-unaware DML entry point never accepts the prefix.
  EXPECT_FALSE(codasyl::ParseStatement("EXPLAIN GET").ok());
}

TEST(ParserFuzzTest, WellFormedExplainPrefixesParse) {
  auto abdl = abdl::ParseRequest(
      "EXPLAIN RETRIEVE ((FILE = course) and (credits > 3)) (title)");
  ASSERT_TRUE(abdl.ok()) << abdl.status();
  EXPECT_TRUE(abdl::IsExplain(*abdl));

  auto sql = sql::ParseSql("EXPLAIN DELETE FROM course WHERE credits = 0");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_TRUE(std::get<sql::DeleteStatement>(*sql).explain);

  auto dml =
      codasyl::ParseDmlStatement("EXPLAIN FIND ANY course USING title IN course");
  ASSERT_TRUE(dml.ok()) << dml.status();
  EXPECT_TRUE(dml->explain);
}

/// A small two-file engine whose snapshot (and WAL) the durability
/// fuzzers below mangle. Quoted values exercise the escaping path.
std::string ReferenceSnapshot() {
  kds::Engine engine;
  abdm::FileDescriptor f;
  f.name = "course";
  f.attributes = {
      {"FILE", abdm::ValueKind::kString, 0, true},
      {"course", abdm::ValueKind::kString, 0, true},
      {"title", abdm::ValueKind::kString, 20, true},
      {"credits", abdm::ValueKind::kInteger, 0, false},
  };
  EXPECT_TRUE(engine.DefineFile(f).ok());
  for (int i = 0; i < 6; ++i) {
    auto req = abdl::ParseRequest(
        "INSERT (<FILE, course>, <course, 'c" + std::to_string(i) +
        "'>, <title, 'it''s #" + std::to_string(i) + "'>, <credits, " +
        std::to_string(i) + ">)");
    EXPECT_TRUE(req.ok());
    EXPECT_TRUE(engine.Execute(*req).ok());
  }
  std::ostringstream out;
  EXPECT_TRUE(kds::SaveSnapshot(engine, out).ok());
  return out.str();
}

/// The snapshot reader is a parser too: arbitrary mangling must yield a
/// clean Status, and a failed load must roll back every file it defined
/// — a half-loaded engine would poison everything downstream.
TEST_P(ParserFuzzTest, SnapshotReaderSurvivesMangledInput) {
  FuzzInputs inputs(static_cast<uint32_t>(GetParam()) + 7000);
  const std::string valid = ReferenceSnapshot();
  std::vector<std::string> candidates;
  for (int trial = 0; trial < 20; ++trial) {
    candidates.push_back(inputs.Garbage(40 + trial * 13));
    candidates.push_back(inputs.Truncated(valid));
    candidates.push_back(inputs.Spliced(valid));
  }
  // Surgical corruptions that keep most of the structure intact.
  candidates.push_back("MLDS-SNAPSHOT 99\n" + valid.substr(valid.find('\n')));
  candidates.push_back(valid + "ATTR orphan string 0 1\n");
  candidates.push_back(valid + "INSERT (<FILE, nofile>, <x, 1>)\n");
  std::string dup = valid;
  dup += valid.substr(valid.find("FILE course"));  // file defined twice.
  candidates.push_back(dup);
  for (const auto& text : candidates) {
    kds::Engine engine;
    std::istringstream in(text);
    Status status = kds::LoadSnapshot(in, &engine);
    if (!status.ok()) {
      EXPECT_TRUE(engine.FileNames().empty())
          << "failed load left files behind: " << status.message();
    }
  }
  // The unmangled snapshot still round-trips after all that.
  kds::Engine engine;
  std::istringstream in(valid);
  ASSERT_TRUE(kds::LoadSnapshot(in, &engine).ok());
  EXPECT_EQ(engine.FileSize("course"), 6u);
}

/// Bit-flip property for the WAL scanner: flipping any single byte of a
/// valid log must never crash the scan, and whatever entries survive are
/// a strict prefix of the original — the checksum framing cannot let a
/// corrupted entry through or resynchronize past one.
TEST(ParserFuzzTest, WalScannerByteFlipsYieldOnlyEntryPrefixes) {
  kds::WalWriter wal;
  ASSERT_TRUE(wal.Append("REQUEST INSERT (<FILE, course>, <x, 1>)").ok());
  ASSERT_TRUE(wal.Append("BEGIN 1").ok());
  ASSERT_TRUE(wal.Append("TREQUEST 1 DELETE ((FILE = course))").ok());
  ASSERT_TRUE(wal.Append("COMMIT 1").ok());
  const std::string log = wal.contents();
  const kds::WalScan original = kds::ScanWal(log);
  ASSERT_EQ(original.entries.size(), 4u);
  ASSERT_FALSE(original.torn);

  for (size_t at = 0; at < log.size(); ++at) {
    for (char flip : {'\0', 'Z', '\n'}) {
      std::string mangled = log;
      if (mangled[at] == flip) continue;
      mangled[at] = flip;
      kds::WalScan scan = kds::ScanWal(mangled);
      ASSERT_LE(scan.entries.size(), original.entries.size());
      for (size_t k = 0; k < scan.entries.size(); ++k) {
        EXPECT_EQ(scan.entries[k].payload, original.entries[k].payload)
            << "byte " << at << " flip '" << flip
            << "' corrupted entry " << k << " undetected";
      }
      // Recovery over the mangled log must also fail or succeed cleanly.
      kds::Engine engine;
      std::istringstream no_checkpoint("");
      (void)kds::RecoverEngine(no_checkpoint, mangled, &engine);
    }
  }
}

TEST(ParserFuzzTest, WalScannerSurvivesGarbageLogs) {
  FuzzInputs inputs(31337);
  for (int trial = 0; trial < 40; ++trial) {
    const std::string junk = inputs.Garbage(3 + trial * 7);
    kds::WalScan scan = kds::ScanWal(junk);
    // The alphabet has no 'E', so no frame can ever start: everything is
    // one torn tail.
    EXPECT_TRUE(scan.entries.empty());
    EXPECT_TRUE(scan.torn);
    kds::Engine engine;
    std::istringstream no_checkpoint("");
    (void)kds::RecoverEngine(no_checkpoint, junk, &engine);
    // Entry-shaped garbage: a plausible header with a bogus checksum.
    const std::string framed = "E 5 deadbeef01234567 hello\n";
    EXPECT_TRUE(kds::ScanWal(framed + junk).entries.empty());
  }
}

TEST(ParserFuzzTest, DeeplyNestedQueriesParseWithoutBlowup) {
  FuzzInputs inputs(7);
  // 200 nesting levels: recursive-descent depth must be tolerable.
  auto q = abdl::ParseQuery(inputs.Nested(200));
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->disjuncts().size(), 1u);
}

// ---------------------------------------------------------------------
// Wire-frame decoder fuzzing: the network-facing parser. Hostile bytes
// must never crash, hang, over-allocate, or produce a frame that was not
// sent — the decoder poisons itself on lost framing and stays poisoned.
// ---------------------------------------------------------------------

/// A canonical valid stream of three frames of varying payload sizes.
std::vector<common::Frame> ReferenceFrames() {
  std::vector<common::Frame> frames;
  common::Frame hello;
  hello.type = 0x01;
  hello.session_id = 0;
  hello.request_id = 1;
  hello.payload = "fuzz-client";
  frames.push_back(hello);
  common::Frame execute;
  execute.type = 0x03;
  execute.session_id = 7;
  execute.request_id = 0xDEADBEEF;
  execute.payload = "SELECT name FROM staff WHERE wage > 90";
  frames.push_back(execute);
  common::Frame empty;
  empty.type = 0x05;
  empty.session_id = 7;
  empty.request_id = 3;
  frames.push_back(empty);
  return frames;
}

std::string EncodeAll(const std::vector<common::Frame>& frames) {
  std::string stream;
  for (const common::Frame& frame : frames) {
    stream += common::EncodeFrame(frame);
  }
  return stream;
}

/// Feeds `bytes` in random-size chunks and counts clean frames; the
/// decoder must terminate for every input (no hang) and never crash.
size_t DrainAll(common::FrameDecoder& decoder, std::string_view bytes,
                std::mt19937& rng) {
  size_t frames = 0;
  size_t offset = 0;
  std::uniform_int_distribution<size_t> chunk(1, 17);
  while (offset < bytes.size()) {
    const size_t n = std::min(chunk(rng), bytes.size() - offset);
    decoder.Feed(bytes.substr(offset, n));
    offset += n;
    while (true) {
      auto decoded = decoder.Next();
      if (decoded.event == common::FrameDecoder::Event::kFrame) {
        ++frames;
        continue;
      }
      break;
    }
  }
  return frames;
}

TEST_P(ParserFuzzTest, FrameDecoderSurvivesGarbageStreams) {
  FuzzInputs inputs(static_cast<uint32_t>(GetParam()) + 9000);
  std::mt19937 rng(static_cast<uint32_t>(GetParam()) + 9001);
  const std::string valid = EncodeAll(ReferenceFrames());
  for (int trial = 0; trial < 40; ++trial) {
    const std::string candidates[] = {
        inputs.Garbage(1 + trial * 11),
        inputs.Spliced(valid),
        inputs.Truncated(valid),
        std::string(trial, '\0'),
    };
    for (const std::string& bytes : candidates) {
      common::FrameDecoder decoder;
      (void)DrainAll(decoder, bytes, rng);
      // Poisoned decoders stay poisoned and report a cause.
      if (decoder.poisoned()) EXPECT_FALSE(decoder.error().empty());
    }
  }
}

/// Truncation at every byte boundary of a valid stream: whole frames
/// before the cut decode, nothing after it does, and the decoder simply
/// waits for more bytes (kNeedMore, not a crash or a bogus frame).
TEST(ParserFuzzTest, FrameDecoderTruncationAtEveryBoundary) {
  const std::vector<common::Frame> frames = ReferenceFrames();
  std::string valid;
  std::vector<size_t> boundaries;  // stream offset after each frame.
  for (const common::Frame& frame : frames) {
    valid += common::EncodeFrame(frame);
    boundaries.push_back(valid.size());
  }
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    common::FrameDecoder decoder;
    decoder.Feed(std::string_view(valid).substr(0, cut));
    size_t decoded = 0;
    while (decoder.Next().event == common::FrameDecoder::Event::kFrame) {
      ++decoded;
    }
    size_t expected = 0;
    for (size_t boundary : boundaries) {
      if (boundary <= cut) ++expected;
    }
    EXPECT_FALSE(decoder.poisoned()) << "cut at " << cut;
    EXPECT_EQ(decoded, expected) << "cut at " << cut;
  }
}

/// Single-byte flips across a valid two-frame stream: flips in a payload
/// or checksum must never yield that frame (the checksum catches them),
/// and no flip anywhere may crash or hang the decoder.
TEST(ParserFuzzTest, FrameDecoderBitFlipsNeverForgeFrames) {
  std::vector<common::Frame> frames = ReferenceFrames();
  const std::string valid = EncodeAll(frames);
  std::mt19937 rng(4242);
  for (size_t at = 0; at < valid.size(); ++at) {
    for (int bit : {0, 3, 7}) {
      std::string mangled = valid;
      mangled[at] = static_cast<char>(mangled[at] ^ (1 << bit));
      common::FrameDecoder decoder;
      size_t offset = 0;
      std::vector<common::Frame> decoded_frames;
      while (offset < mangled.size() && !decoder.poisoned()) {
        const size_t n = std::min<size_t>(13, mangled.size() - offset);
        decoder.Feed(std::string_view(mangled).substr(offset, n));
        offset += n;
        while (true) {
          auto decoded = decoder.Next();
          if (decoded.event != common::FrameDecoder::Event::kFrame) break;
          decoded_frames.push_back(std::move(decoded.frame));
        }
      }
      // Every frame that decoded must be byte-identical to one that was
      // sent: a flipped payload byte cannot survive the checksum.
      for (const common::Frame& got : decoded_frames) {
        bool genuine = false;
        for (const common::Frame& sent : frames) {
          if (got.type == sent.type && got.session_id == sent.session_id &&
              got.request_id == sent.request_id &&
              got.payload == sent.payload) {
            genuine = true;
            break;
          }
        }
        EXPECT_TRUE(genuine)
            << "byte " << at << " bit " << bit << " forged a frame";
      }
      EXPECT_LT(decoded_frames.size(), 3u)
          << "byte " << at << " bit " << bit << " left all frames intact";
    }
  }
}

/// N concatenated frames decode to exactly N, regardless of how the
/// bytes are chunked across Feed() calls.
TEST(ParserFuzzTest, FrameDecoderConcatenatedFramesDecodeExactly) {
  std::mt19937 rng(99);
  std::vector<common::Frame> frames;
  std::string stream;
  for (int i = 0; i < 23; ++i) {
    common::Frame frame;
    frame.type = static_cast<uint8_t>(1 + i % 8);
    frame.session_id = static_cast<uint32_t>(i);
    frame.payload = std::string(static_cast<size_t>(i * 31 % 257), 'x');
    stream += common::EncodeFrame(frame);
    frames.push_back(std::move(frame));
  }
  for (int round = 0; round < 10; ++round) {
    common::FrameDecoder decoder;
    EXPECT_EQ(DrainAll(decoder, stream, rng), frames.size());
    EXPECT_FALSE(decoder.poisoned());
  }
}

/// An oversized length field is rejected from the header alone — the
/// decoder never buffers toward the attacker's claimed length.
TEST(ParserFuzzTest, FrameDecoderRejectsOversizedLengthWithoutBuffering) {
  common::Frame frame;
  frame.type = 0x03;
  std::string encoded = common::EncodeFrame(frame);
  // Patch payload_len (v2 header offset 16) to 2 GiB.
  const uint32_t evil = 0x7fffffffu;
  encoded[16] = static_cast<char>(evil & 0xff);
  encoded[17] = static_cast<char>((evil >> 8) & 0xff);
  encoded[18] = static_cast<char>((evil >> 16) & 0xff);
  encoded[19] = static_cast<char>((evil >> 24) & 0xff);
  common::FrameDecoder decoder;
  decoder.Feed(encoded);
  auto decoded = decoder.Next();
  EXPECT_EQ(decoded.event, common::FrameDecoder::Event::kError);
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_LE(decoder.buffered_bytes(), encoded.size());
  // Later bytes are discarded, not accumulated.
  decoder.Feed(std::string(1 << 16, 'y'));
  EXPECT_LE(decoder.buffered_bytes(), encoded.size());
}

/// A streamed result — kResultChunk frames closed by a kResult — cut at
/// every byte boundary: whole frames before the cut decode and their
/// chunk payloads parse back exactly; the cut frame never appears.
TEST(ParserFuzzTest, ChunkStreamTruncationAtEveryBoundary) {
  std::vector<common::Frame> frames;
  std::string valid;
  std::vector<size_t> boundaries;
  for (uint32_t seq = 0; seq < 4; ++seq) {
    common::Frame frame;
    frame.type = 0x87;  // kResultChunk
    frame.session_id = 5;
    frame.request_id = 11;
    frame.payload = wire::EncodeResultChunk(
        {seq, std::string(17 + seq * 31, static_cast<char>('a' + seq))});
    valid += common::EncodeFrame(frame);
    boundaries.push_back(valid.size());
    frames.push_back(std::move(frame));
  }
  common::Frame fin;
  fin.type = 0x82;  // kResult carrying the meta payload closes the stream
  fin.session_id = 5;
  fin.request_id = 11;
  fin.payload = wire::EncodeExecuteResult({});
  valid += common::EncodeFrame(fin);
  boundaries.push_back(valid.size());
  frames.push_back(std::move(fin));

  for (size_t cut = 0; cut <= valid.size(); ++cut) {
    common::FrameDecoder decoder;
    decoder.Feed(std::string_view(valid).substr(0, cut));
    size_t decoded = 0;
    while (true) {
      auto event = decoder.Next();
      if (event.event != common::FrameDecoder::Event::kFrame) break;
      ASSERT_LT(decoded, frames.size());
      EXPECT_EQ(event.frame.payload, frames[decoded].payload)
          << "cut at " << cut;
      if (event.frame.type == 0x87) {
        auto chunk = wire::DecodeResultChunk(event.frame.payload);
        ASSERT_TRUE(chunk.ok()) << chunk.status() << " cut at " << cut;
        EXPECT_EQ(chunk->seq, decoded);
      }
      ++decoded;
    }
    size_t expected = 0;
    for (size_t boundary : boundaries) {
      if (boundary <= cut) ++expected;
    }
    EXPECT_FALSE(decoder.poisoned()) << "cut at " << cut;
    EXPECT_EQ(decoded, expected) << "cut at " << cut;
  }
}

/// Chunk streams for several requests interleaved in random order on one
/// connection: the assembler reassembles each request's body exactly, in
/// any interleaving, and rejects any out-of-sequence chunk (a dropped,
/// duplicated, or reordered frame can never splice bytes silently).
TEST_P(ParserFuzzTest, ChunkAssemblerSurvivesHostileInterleavings) {
  std::mt19937 rng(static_cast<uint32_t>(GetParam()) + 13000);
  for (int trial = 0; trial < 20; ++trial) {
    // Three concurrent streams with distinct request ids and bodies.
    std::map<uint32_t, std::string> want;
    std::map<uint32_t, std::deque<wire::ResultChunk>> pending;
    for (uint32_t stream = 0; stream < 3; ++stream) {
      const uint32_t request_id = 100 + stream;
      std::string body;
      const size_t chunks = 1 + (trial + stream) % 5;
      for (uint32_t seq = 0; seq < chunks; ++seq) {
        std::string piece(1 + (seq * 7 + stream * 3) % 41,
                          static_cast<char>('A' + stream));
        body += piece;
        pending[request_id].push_back({seq, std::move(piece)});
      }
      want[request_id] = std::move(body);
    }
    // Random merge: pick a stream with chunks left, deliver its next
    // chunk — any cross-stream interleaving, in-order within a stream.
    client::ChunkAssembler assembler;
    while (!pending.empty()) {
      auto it = pending.begin();
      std::uniform_int_distribution<size_t> pick(0, pending.size() - 1);
      std::advance(it, pick(rng));
      const Status status = assembler.OnChunk(it->first, it->second.front());
      ASSERT_TRUE(status.ok()) << status;
      it->second.pop_front();
      if (it->second.empty()) pending.erase(it);
    }
    for (auto& [request_id, body] : want) {
      EXPECT_TRUE(assembler.streaming(request_id));
      EXPECT_EQ(assembler.Take(request_id), body);
      EXPECT_FALSE(assembler.streaming(request_id));
    }
    EXPECT_EQ(assembler.active_streams(), 0u);

    // Out-of-sequence chunks are rejected, never silently spliced.
    client::ChunkAssembler strict;
    ASSERT_TRUE(strict.OnChunk(9, {0, "first"}).ok());
    EXPECT_FALSE(strict.OnChunk(9, {0, "dup"}).ok());     // duplicate
    EXPECT_FALSE(strict.OnChunk(9, {2, "skipped"}).ok()); // gap
    ASSERT_TRUE(strict.OnChunk(9, {1, "second"}).ok());   // in order
    EXPECT_EQ(strict.Take(9), "firstsecond");
  }
}

/// The wire payload decoders (one per message) are parsers too: byte
/// salad must come back as a clean error Status, never a crash or an
/// out-of-bounds read. kfs::ParseHealth shares the property.
TEST_P(ParserFuzzTest, WirePayloadDecodersSurviveGarbage) {
  FuzzInputs inputs(static_cast<uint32_t>(GetParam()) + 11000);
  wire::ExecuteResult result;
  result.body = "name\n----\nada\n";
  result.elapsed_ms = 1.25;
  result.warnings.push_back({2, "quarantined", "injected crash"});
  const std::string valid_results[] = {
      wire::EncodeExecuteResult(result),
      wire::EncodeUseRequest({"sql", "payroll"}),
      wire::EncodeBusyReply({"session", 8, 8}),
      wire::EncodeStatsReply({}),
      wire::EncodeResultChunk({3, "name\n----\nada\n"}),
      "degraded 1\nbackend 0 healthy 3 0\nbackend 1 quarantined 0 2 hit\n",
  };
  for (int trial = 0; trial < 30; ++trial) {
    for (const std::string& valid : valid_results) {
      const std::string candidates[] = {
          inputs.Garbage(trial % 23),
          inputs.Truncated(valid),
          inputs.Spliced(valid),
      };
      for (const std::string& bytes : candidates) {
        (void)wire::DecodeExecuteResult(bytes);
        (void)wire::DecodeUseRequest(bytes);
        (void)wire::DecodeBusyReply(bytes);
        (void)wire::DecodeStatsReply(bytes);
        (void)wire::DecodeResultChunk(bytes);
        (void)wire::DecodeWireError(bytes);
        (void)wire::DecodeStatus(bytes);
        (void)kfs::ParseHealth(bytes);
      }
    }
  }
  // The unmangled encodings still round-trip after all that.
  auto round = wire::DecodeExecuteResult(valid_results[0]);
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->body, result.body);
  ASSERT_EQ(round->warnings.size(), 1u);
  EXPECT_EQ(round->warnings[0].backend_id, 2);
  auto health = kfs::ParseHealth(valid_results[5]);
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_TRUE(health->degraded);
  ASSERT_EQ(health->backends.size(), 2u);
  EXPECT_EQ(health->backends[1].state, "quarantined");
}

// ---------------------------------------------------------------------
// Batch-INSERT grammar fuzzing: the prepared/parameterized forms added
// for bulk ingest are parsers too. Hostile parameter counts, mismatched
// rows, and zero-row batches must come back as clean Status errors.
// ---------------------------------------------------------------------

TEST_P(ParserFuzzTest, BatchInsertGrammarSurvivesHostileInputs) {
  FuzzInputs inputs(static_cast<uint32_t>(GetParam()) + 15000);
  const std::string valid_samples[] = {
      "INSERT (<FILE, staff>, <name, ?>, <wage, ?>)",
      "INSERT (<FILE, staff>, <name, 'ada'>, <wage, 90>), "
      "(<FILE, staff>, <name, 'grace'>, <wage, 87>)",
      "INSERT INTO staff (name, wage) VALUES (?, ?)",
      "INSERT INTO staff (name, wage) VALUES ('ada', 90), ('grace', 87)",
      "STORE staff (name = ?, wage = ?)",
      "CREATE student (pname = ?, major = ?)",
      "ISRT patient (pname = ?, age = ?)",
  };
  for (int trial = 0; trial < 40; ++trial) {
    constexpr size_t kSamples = std::size(valid_samples);
    const std::string candidates[] = {
        inputs.Garbage(4 + trial % 50) + "?",
        inputs.Spliced(valid_samples[trial % kSamples]),
        inputs.Truncated(valid_samples[trial % kSamples]),
        "INSERT (<FILE, staff>, <name, ??>)",
        "INSERT INTO t (a) VALUES (?), (?)",  // params in multiple rows
        "INSERT INTO t (a) VALUES (1), ",     // trailing row comma
        "INSERT INTO t (a) VALUES ()",        // empty row
    };
    for (const std::string& text : candidates) {
      // Each call must return (no crash/hang); outcome itself is free.
      (void)abdl::ParseRequest(text);
      (void)abdl::ParsePreparedInsert(text);
      (void)sql::ParseSql(text);
      (void)codasyl::ParseDmlStatement(text);
      (void)daplex::ParseDaplexStatement(text);
      (void)kms::ParseDliCall(text);
    }
  }
  SUCCEED();
}

TEST(ParserFuzzTest, ParameterMarkersOutsideInsertRejectCleanly) {
  // '?' only binds in INSERT-family field lists; everywhere else it is a
  // parse error, not a silent null.
  EXPECT_FALSE(sql::ParseSql("SELECT a FROM t WHERE a = ?").ok());
  EXPECT_FALSE(sql::ParseSql("UPDATE t SET a = ? WHERE a = 1").ok());
  EXPECT_FALSE(codasyl::ParseDmlStatement("MOVE ? TO name IN staff").ok());
  EXPECT_FALSE(kms::ParseDliCall("GU patient (pname = ?)").ok());
  EXPECT_FALSE(kms::ParseDliCall("DLET patient (pname = ?)").ok());
  EXPECT_FALSE(
      abdl::ParseRequest("RETRIEVE ((FILE = staff) and (name = ?)) (name)")
          .ok());
}

TEST(ParserFuzzTest, PreparedBindRejectsMismatchedRows) {
  auto prepared = abdl::ParsePreparedInsert(
      "INSERT (<FILE, staff>, <dept, 'sales'>, <name, ?>, <wage, ?>)");
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  EXPECT_EQ(prepared->params_per_row(), 2u);

  const std::vector<abdm::Value> narrow = {abdm::Value::String("ada")};
  const std::vector<abdm::Value> exact = {abdm::Value::String("ada"),
                                          abdm::Value::Integer(90)};
  const std::vector<abdm::Value> wide = {abdm::Value::String("ada"),
                                         abdm::Value::Integer(90),
                                         abdm::Value::Integer(7)};
  EXPECT_FALSE(prepared->Bind(narrow).ok());
  EXPECT_TRUE(prepared->Bind(exact).ok());
  EXPECT_FALSE(prepared->Bind(wide).ok());

  // Zero-row batches and any row/params mismatch inside a batch fail as
  // a whole — a batch never partially binds.
  EXPECT_FALSE(prepared->BindBatch({}).ok());
  EXPECT_FALSE(prepared->BindBatch({exact, narrow, exact}).ok());
  EXPECT_FALSE(prepared->BindBatch({exact, wide}).ok());
  auto bound = prepared->BindBatch({exact, exact, exact});
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->records.size(), 3u);

  // Chunked binds clamp the end and reject empty ranges.
  EXPECT_FALSE(prepared->BindBatch({exact, exact}, 2, 2).ok());
  EXPECT_FALSE(prepared->BindBatch({exact, exact}, 5, 9).ok());
  auto tail = prepared->BindBatch({exact, exact, exact}, 1, 99);
  ASSERT_TRUE(tail.ok()) << tail.status();
  EXPECT_EQ(tail->records.size(), 2u);
}

TEST(ParserFuzzTest, HostileParameterCountsClampBatchSize) {
  const abdl::BatchLimits limits;  // 1024 rows, 65535 parameters
  EXPECT_EQ(abdl::EffectiveBatchSize(limits, 0), 1024u);
  EXPECT_EQ(abdl::EffectiveBatchSize(limits, 2), 1024u);
  EXPECT_EQ(abdl::EffectiveBatchSize(limits, 256), 255u);
  // A row wider than max_parameters still ships one row at a time.
  EXPECT_EQ(abdl::EffectiveBatchSize(limits, 1u << 20), 1u);
  // Degenerate knobs never yield a zero batch (infinite-loop bait).
  EXPECT_EQ(abdl::EffectiveBatchSize({0, 0}, 17), 1u);

  // A template with thousands of slots parses and reports its width;
  // the zero-slot template is legal and binds empty rows.
  std::string huge = "INSERT (<FILE, t>";
  for (int i = 0; i < 4000; ++i) {
    huge += ", <a" + std::to_string(i) + ", ?>";
  }
  huge += ")";
  auto wide = abdl::ParsePreparedInsert(huge);
  ASSERT_TRUE(wide.ok()) << wide.status();
  EXPECT_EQ(wide->params_per_row(), 4000u);
  EXPECT_EQ(abdl::EffectiveBatchSize(limits, wide->params_per_row()), 16u);

  auto constant =
      abdl::ParsePreparedInsert("INSERT (<FILE, t>, <a, 1>)");
  ASSERT_TRUE(constant.ok()) << constant.status();
  EXPECT_EQ(constant->params_per_row(), 0u);
  auto bound = constant->BindBatch({{}, {}});
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_EQ(bound->records.size(), 2u);
}

TEST_P(ParserFuzzTest, BatchRequestDecoderSurvivesGarbage) {
  FuzzInputs inputs(static_cast<uint32_t>(GetParam()) + 17000);
  wire::BatchRequest request;
  request.statement = "INSERT INTO staff (name, wage) VALUES (?, ?)";
  request.rows = {{abdm::Value::String("ada"), abdm::Value::Float(91.5)},
                  {abdm::Value::Null(), abdm::Value::Integer(87)}};
  const std::string valid = wire::EncodeBatchRequest(request);
  for (int trial = 0; trial < 40; ++trial) {
    const std::string candidates[] = {
        inputs.Garbage(trial % 29),
        inputs.Truncated(valid),
        inputs.Spliced(valid),
    };
    for (const std::string& bytes : candidates) {
      (void)wire::DecodeBatchRequest(bytes);
    }
  }
  // A claimed row count far beyond the remaining bytes is rejected from
  // the header alone — the decoder never allocates toward the claim.
  std::string evil = valid.substr(0, 4 + request.statement.size());
  for (int i = 0; i < 4; ++i) evil += static_cast<char>(0xff);
  EXPECT_FALSE(wire::DecodeBatchRequest(evil).ok());

  // The unmangled encoding still round-trips after all that.
  auto round = wire::DecodeBatchRequest(valid);
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(round->statement, request.statement);
  ASSERT_EQ(round->rows.size(), 2u);
  ASSERT_EQ(round->rows[0].size(), 2u);
  EXPECT_EQ(round->rows[0][0].AsString(), "ada");
  EXPECT_EQ(round->rows[0][1].AsFloat(), 91.5);
  EXPECT_TRUE(round->rows[1][0].is_null());
  EXPECT_EQ(round->rows[1][1].AsInteger(), 87);
}

}  // namespace
}  // namespace mlds
