// Tests for the Chapter VI CODASYL-DML -> ABDL translation, executed on
// the AB(functional) University database.

#include "kms/dml_machine.h"

#include <gtest/gtest.h>

#include "abdl/parser.h"
#include "daplex/ddl_parser.h"
#include "kds/engine.h"
#include "transform/abdm_mapping.h"
#include "transform/fun_to_net.h"
#include "university/university.h"

namespace mlds::kms {
namespace {

using university::BuildUniversityDatabase;
using university::UniversityConfig;
using university::UniversityDatabase;

class DmlUniversityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    auto db = BuildUniversityDatabase(config_, executor_.get());
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<UniversityDatabase>(std::move(*db));
    machine_ = std::make_unique<DmlMachine>(&db_->mapping.schema,
                                            &db_->mapping, executor_.get());
  }

  DmlResult Must(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_TRUE(result.ok()) << dml << ": " << result.status();
    return result.ok() ? std::move(*result) : DmlResult{};
  }

  Status Fails(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_FALSE(result.ok()) << dml << " unexpectedly succeeded";
    return result.ok() ? Status::OK() : result.status();
  }

  kds::Response Kernel(std::string_view abdl) {
    auto req = abdl::ParseRequest(abdl);
    EXPECT_TRUE(req.ok()) << req.status();
    auto resp = engine_.Execute(*req);
    EXPECT_TRUE(resp.ok()) << resp.status();
    return std::move(*resp);
  }

  UniversityConfig config_;
  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<UniversityDatabase> db_;
  std::unique_ptr<DmlMachine> machine_;
};

// --- FIND / GET (Ch. VI.B, VI.C) ---

TEST_F(DmlUniversityTest, MoveThenFindAnyLocatesCourse) {
  Must("MOVE 'Advanced Database' TO title IN course");
  DmlResult found = Must("FIND ANY course USING title IN course");
  ASSERT_EQ(found.records.size(), 1u);
  EXPECT_EQ(found.records[0].GetOrNull("title").AsString(),
            "Advanced Database");
  ASSERT_TRUE(machine_->cit().run_unit().has_value());
  EXPECT_EQ(machine_->cit().run_unit()->record_type, "course");
}

TEST_F(DmlUniversityTest, FindAnyTranslationMatchesThesisTemplate) {
  Must("MOVE 'Advanced Database' TO title IN course");
  Must("FIND ANY course USING title IN course");
  const TraceEntry& entry = machine_->trace().back();
  ASSERT_EQ(entry.abdl.size(), 1u);
  // RETRIEVE ((FILE = course) AND (title = 'Advanced Database'))
  // (all attributes) BY course   (Ch. VI.B.1)
  EXPECT_EQ(entry.abdl[0],
            "RETRIEVE ((FILE = 'course') and (title = 'Advanced Database')) "
            "(all attributes) BY course");
}

TEST_F(DmlUniversityTest, FindAnyWithoutMoveIsCurrencyError) {
  Status status = Fails("FIND ANY course USING title IN course");
  EXPECT_EQ(status.code(), StatusCode::kCurrencyError);
}

TEST_F(DmlUniversityTest, FindAnyUnknownRecordIsNotFound) {
  Status status = Fails("FIND ANY nothere USING x IN nothere");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(DmlUniversityTest, GetDeliversCurrentRecordIntoUwa) {
  Must("MOVE 'Advanced Database' TO title IN course");
  Must("FIND ANY course USING title IN course");
  DmlResult got = Must("GET");
  ASSERT_EQ(got.records.size(), 1u);
  auto credits = machine_->uwa().Get("course", "credits");
  ASSERT_TRUE(credits.has_value());
}

TEST_F(DmlUniversityTest, GetRecordChecksRunUnitType) {
  Must("MOVE 'Advanced Database' TO title IN course");
  Must("FIND ANY course USING title IN course");
  Must("GET course");
  Status status = Fails("GET student");
  EXPECT_EQ(status.code(), StatusCode::kCurrencyError);
}

TEST_F(DmlUniversityTest, GetItemsProjects) {
  Must("MOVE 'Advanced Database' TO title IN course");
  Must("FIND ANY course USING title IN course");
  DmlResult got = Must("GET title, credits IN course");
  ASSERT_EQ(got.records.size(), 1u);
  EXPECT_EQ(got.records[0].size(), 2u);
  EXPECT_TRUE(got.records[0].Has("title"));
  EXPECT_TRUE(got.records[0].Has("credits"));
}

TEST_F(DmlUniversityTest, GetWithoutFindIsCurrencyError) {
  Status status = Fails("GET");
  EXPECT_EQ(status.code(), StatusCode::kCurrencyError);
}

TEST_F(DmlUniversityTest, FindFirstWithinSystemSetIteratesWholeFile) {
  // Subtypes have no SYSTEM set (only entity types do, Ch. V.A), so the
  // whole-file walk goes through an entity type's system set.
  DmlResult first = Must("FIND FIRST person WITHIN system_person");
  ASSERT_EQ(first.records.size(), 1u);
  int count = 1;
  while (true) {
    auto next = machine_->ExecuteText("FIND NEXT person WITHIN system_person");
    if (!next.ok()) {
      EXPECT_TRUE(next.status().IsNotFound()) << next.status();
      break;
    }
    ++count;
    ASSERT_LE(count, 1000) << "runaway iteration";
  }
  EXPECT_EQ(count, config_.persons);
}

TEST_F(DmlUniversityTest, FindLastThenPriorWalksBackwards) {
  Must("FIND LAST person WITHIN system_person");
  int count = 1;
  while (true) {
    auto prior =
        machine_->ExecuteText("FIND PRIOR person WITHIN system_person");
    if (!prior.ok()) break;
    ++count;
    ASSERT_LE(count, 1000);
  }
  EXPECT_EQ(count, config_.persons);
}

TEST_F(DmlUniversityTest, SubtypesHaveNoSystemSet) {
  Status status = Fails("FIND FIRST student WITHIN system_student");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(DmlUniversityTest, FindFirstWithinIsaSetFindsSubtypeOfOwner) {
  // Make employee_1 current owner of employee_faculty by finding the
  // faculty record (its ISA keyword establishes the set currency).
  Must("MOVE 'faculty_1' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  // Owner of employee_faculty is now employee_1.
  DmlResult owner = Must("FIND OWNER WITHIN employee_faculty");
  ASSERT_EQ(owner.records.size(), 1u);
  EXPECT_EQ(owner.records[0].GetOrNull("employee").AsString(), "employee_1");
}

TEST_F(DmlUniversityTest, FindOwnerWithinSingleValuedFunctionSet) {
  // Thesis Ch. VI.B.5: FIND OWNER WITHIN advisor returns the advising
  // faculty of the current student.
  Must("MOVE 'student_1' TO student IN student");
  Must("FIND ANY student USING student IN student");
  const std::string advisor_key = machine_->cit()
                                      .run_unit()
                                      ->record.GetOrNull("advisor")
                                      .AsString();
  DmlResult owner = Must("FIND OWNER WITHIN advisor");
  ASSERT_EQ(owner.records.size(), 1u);
  EXPECT_EQ(owner.records[0].GetOrNull("faculty").AsString(), advisor_key);
}

TEST_F(DmlUniversityTest, FindOwnerOfSystemSetRejected) {
  Must("FIND FIRST person WITHIN system_person");
  Status status = Fails("FIND OWNER WITHIN system_person");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(DmlUniversityTest, FindFirstWithinFunctionSetListsAdvisees) {
  // Locate a faculty, then iterate its advisees through the advisor set.
  Must("MOVE 'faculty_1' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  auto first = machine_->ExecuteText("FIND FIRST student WITHIN advisor");
  // faculty_1 may or may not advise anyone under this seed; both paths
  // are legitimate, but whichever records come back must reference it.
  if (first.ok()) {
    EXPECT_EQ(first->records[0].GetOrNull("advisor").AsString(), "faculty_1");
  } else {
    EXPECT_TRUE(first.status().IsNotFound());
  }
}

TEST_F(DmlUniversityTest, AllAdviseesFoundThroughSetIteration) {
  // Count advisees of every faculty member through DML navigation and
  // compare with a direct kernel count.
  size_t via_dml = 0;
  for (int i = 1; i <= config_.faculty; ++i) {
    Must("MOVE 'faculty_" + std::to_string(i) + "' TO faculty IN faculty");
    Must("FIND ANY faculty USING faculty IN faculty");
    auto member = machine_->ExecuteText("FIND FIRST student WITHIN advisor");
    while (member.ok()) {
      ++via_dml;
      member = machine_->ExecuteText("FIND NEXT student WITHIN advisor");
    }
  }
  auto all = Kernel("RETRIEVE ((FILE = student)) (advisor)");
  EXPECT_EQ(via_dml, all.records.size());
}

TEST_F(DmlUniversityTest, FindCurrentRestoresRunUnitFromSetCurrency) {
  Must("MOVE 'student_1' TO student IN student");
  Must("FIND ANY student USING student IN student");
  // advisor currency now holds student_1 as member. Wander off...
  Must("FIND FIRST course WITHIN system_course");
  EXPECT_EQ(machine_->cit().run_unit()->record_type, "course");
  // ...and come back via FIND CURRENT.
  DmlResult current = Must("FIND CURRENT student WITHIN advisor");
  EXPECT_EQ(machine_->cit().run_unit()->record_type, "student");
  EXPECT_EQ(machine_->cit().run_unit()->dbkey, "student_1");
  ASSERT_EQ(current.records.size(), 1u);
}

TEST_F(DmlUniversityTest, FindDuplicateWithinFindsSecondMatch) {
  // Courses sharing a semester: find one, then its duplicate within the
  // course system set (4 of the 12 generated courses share each
  // semester).
  Must("MOVE 'Fall86' TO semester IN course");
  Must("FIND ANY course USING semester IN course");
  const std::string first_key = machine_->cit().run_unit()->dbkey;
  auto dup = machine_->ExecuteText(
      "FIND DUPLICATE WITHIN system_course USING semester IN course");
  ASSERT_TRUE(dup.ok()) << dup.status();
  EXPECT_NE(machine_->cit().run_unit()->dbkey, first_key);
  EXPECT_EQ(dup->records[0].GetOrNull("semester").AsString(), "Fall86");
}

TEST_F(DmlUniversityTest, FindWithinCurrentUsesUwaValues) {
  Must("MOVE 'faculty_2' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  // Among faculty_2's advisees, find those majoring in Mathematics.
  Must("MOVE 'Mathematics' TO major IN student");
  auto found = machine_->ExecuteText(
      "FIND student WITHIN advisor CURRENT USING major IN student");
  if (found.ok()) {
    EXPECT_EQ(found->records[0].GetOrNull("advisor").AsString(), "faculty_2");
    EXPECT_EQ(found->records[0].GetOrNull("major").AsString(), "Mathematics");
  } else {
    EXPECT_TRUE(found.status().IsNotFound());
  }
}

TEST_F(DmlUniversityTest, ManyToManyNavigationThroughLinkRecords) {
  // Thesis Ch. V: the teaching/taught_by pair routes through link_1.
  Must("MOVE 'faculty_1' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  auto link = machine_->ExecuteText("FIND FIRST link_1 WITHIN teaching");
  while (link.ok()) {
    EXPECT_EQ(link->records[0].GetOrNull("teaching").AsString(), "faculty_1");
    EXPECT_TRUE(link->records[0]
                    .GetOrNull("taught_by")
                    .AsString()
                    .starts_with("course_"));
    link = machine_->ExecuteText("FIND NEXT link_1 WITHIN teaching");
  }
  EXPECT_TRUE(link.status().IsNotFound());
}

// --- STORE (Ch. VI.G) ---

TEST_F(DmlUniversityTest, StoreCourseInsertsWithGeneratedKey) {
  Must("MOVE 'Database Design' TO title IN course");
  Must("MOVE 'Fall87' TO semester IN course");
  Must("MOVE 3 TO credits IN course");
  DmlResult stored = Must("STORE course");
  ASSERT_EQ(stored.records.size(), 1u);
  const std::string key =
      stored.records[0].GetOrNull("course").AsString();
  auto check = Kernel("RETRIEVE ((FILE = course) and (course = '" + key +
                      "')) (title)");
  ASSERT_EQ(check.records.size(), 1u);
  EXPECT_EQ(check.records[0].GetOrNull("title").AsString(),
            "Database Design");
  // The new record is the current of the run-unit.
  EXPECT_EQ(machine_->cit().run_unit()->dbkey, key);
}

TEST_F(DmlUniversityTest, StoreDuplicateCourseViolatesUniqueness) {
  // UNIQUE title, semester WITHIN course -> DUPLICATES ARE NOT ALLOWED.
  Must("MOVE 'Advanced Database' TO title IN course");
  Must("MOVE 'Fall86' TO semester IN course");
  Must("MOVE 4 TO credits IN course");
  // course_1 already carries (Advanced Database, Fall86).
  Status status = Fails("STORE course");
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
}

TEST_F(DmlUniversityTest, StoreSameTitleDifferentSemesterAllowed) {
  // The uniqueness constraint is on the combination.
  Must("MOVE 'Advanced Database' TO title IN course");
  Must("MOVE 'Winter88' TO semester IN course");
  Must("MOVE 4 TO credits IN course");
  Must("STORE course");
}

TEST_F(DmlUniversityTest, StoreSubtypeRequiresIsaOwnerCurrency) {
  Must("MOVE 'Philosophy' TO major IN student");
  Status status = Fails("STORE student");
  EXPECT_EQ(status.code(), StatusCode::kCurrencyError);
}

TEST_F(DmlUniversityTest, StoreSubtypeConnectsToIsaOwner) {
  // Establish person_40 (no student record: only the first 30 persons
  // have one) as the current owner of person_student, then store.
  Must("MOVE 'person_40' TO person IN person");
  Must("FIND ANY person USING person IN person");
  Must("MOVE 'Philosophy' TO major IN student");
  Must("MOVE 'faculty_1' TO advisor IN student");
  DmlResult stored = Must("STORE student");
  EXPECT_EQ(stored.records[0].GetOrNull("person_student").AsString(),
            "person_40");
  EXPECT_EQ(stored.records[0].GetOrNull("advisor").AsString(), "faculty_1");
}

TEST_F(DmlUniversityTest, StoreSiblingSubtypeWithoutOverlapAborts) {
  // employee_1 already has a faculty record; support_staff is a sibling
  // subtype and OVERLAP student WITH support_staff does not license
  // faculty/support_staff sharing.
  Must("MOVE 'employee_1' TO employee IN employee");
  Must("FIND ANY employee USING employee IN employee");
  Must("MOVE 20 TO hours IN support_staff");
  Status status = Fails("STORE support_staff");
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
}

TEST_F(DmlUniversityTest, StoreSubtypeForUnclaimedEntitySucceeds) {
  // employee_20 has neither a faculty nor a support_staff record under
  // the default config (faculty 8 + staff 6 = first 14 employees).
  Must("MOVE 'employee_20' TO employee IN employee");
  Must("FIND ANY employee USING employee IN employee");
  Must("MOVE 20 TO hours IN support_staff");
  Must("MOVE 'employee_1' TO supervisor IN support_staff");
  DmlResult stored = Must("STORE support_staff");
  EXPECT_EQ(stored.records[0]
                .GetOrNull("employee_support_staff")
                .AsString(),
            "employee_20");
}

// --- CONNECT / DISCONNECT (Ch. VI.D, VI.E) ---

TEST_F(DmlUniversityTest, ConnectToAutomaticSetRejected) {
  Must("MOVE 'student_1' TO student IN student");
  Must("FIND ANY student USING student IN student");
  Status status = Fails("CONNECT student TO person_student");
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
}

TEST_F(DmlUniversityTest, ConnectMemberSideSetsOwnerKeyword) {
  // Store an unadvised student, then CONNECT it to faculty_3's advisor
  // set occurrence.
  Must("MOVE 'person_39' TO person IN person");
  Must("FIND ANY person USING person IN person");
  Must("MOVE 'History' TO major IN student");
  DmlResult stored = Must("STORE student");
  const std::string student_key =
      stored.records[0].GetOrNull("student").AsString();
  EXPECT_TRUE(stored.records[0].GetOrNull("advisor").is_null());

  // Make faculty_3 current owner of advisor, then restore the student as
  // run-unit and connect.
  Must("MOVE 'faculty_3' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  Must("MOVE '" + student_key + "' TO student IN student");
  Must("FIND ANY student USING student IN student");
  Must("CONNECT student TO advisor");

  auto check = Kernel("RETRIEVE ((FILE = student) and (student = '" +
                      student_key + "')) (advisor)");
  ASSERT_EQ(check.records.size(), 1u);
  EXPECT_EQ(check.records[0].GetOrNull("advisor").AsString(), "faculty_3");
}

TEST_F(DmlUniversityTest, ConnectTranslatesToMemberUpdate) {
  // Finding student_5 makes its existing advisor the current owner of
  // the advisor set (every FIND updates the currency indicators);
  // re-CONNECTing exercises the member-side translation template.
  Must("MOVE 'student_5' TO student IN student");
  Must("FIND ANY student USING student IN student");
  const std::string owner_key =
      machine_->cit().CurrentOfSet("advisor")->owner_dbkey;
  Must("CONNECT student TO advisor");
  // Thesis Ch. VI.D.2.b: UPDATE ((FILE = record) AND (record = run-unit
  // dbkey)) (set = owner dbkey).
  const TraceEntry& entry = machine_->trace().back();
  ASSERT_GE(entry.abdl.size(), 1u);
  EXPECT_EQ(entry.abdl[0],
            "UPDATE ((FILE = 'student') and (student = 'student_5')) "
            "(advisor = '" + owner_key + "')");
}

TEST_F(DmlUniversityTest, DisconnectNullsOutMemberKeyword) {
  Must("MOVE 'student_2' TO student IN student");
  Must("FIND ANY student USING student IN student");
  const std::string advisor_key = machine_->cit()
                                      .run_unit()
                                      ->record.GetOrNull("advisor")
                                      .AsString();
  // Establish the set currency via the owner.
  Must("MOVE '" + advisor_key + "' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  Must("MOVE 'student_2' TO student IN student");
  Must("FIND ANY student USING student IN student");
  Must("DISCONNECT student FROM advisor");
  auto check =
      Kernel("RETRIEVE ((FILE = student) and (student = 'student_2')) "
             "(advisor)");
  ASSERT_EQ(check.records.size(), 1u);
  EXPECT_TRUE(check.records[0].GetOrNull("advisor").is_null());
}

TEST_F(DmlUniversityTest, DisconnectFromFixedRetentionSetRejected) {
  Must("MOVE 'student_1' TO student IN student");
  Must("FIND ANY student USING student IN student");
  Status status = Fails("DISCONNECT student FROM person_student");
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
}

// --- MODIFY (Ch. VI.F) ---

TEST_F(DmlUniversityTest, ModifyItemUpdatesAllDuplicatedRecords) {
  // employee_3 has two AB records (two degrees); modifying its salary
  // must update both.
  Must("MOVE 'employee_3' TO employee IN employee");
  Must("FIND ANY employee USING employee IN employee");
  Must("MOVE 12345.0 TO salary IN employee");
  Must("MODIFY salary IN employee");
  auto check = Kernel(
      "RETRIEVE ((FILE = employee) and (employee = 'employee_3')) (salary)");
  ASSERT_EQ(check.records.size(), 2u);
  for (const auto& r : check.records) {
    EXPECT_DOUBLE_EQ(r.GetOrNull("salary").AsFloat(), 12345.0);
  }
}

TEST_F(DmlUniversityTest, ModifyWholeRecordUsesUwaValues) {
  Must("MOVE 'course_2' TO course IN course");
  Must("FIND ANY course USING course IN course");
  Must("GET");  // load current values into UWA
  Must("MOVE 9 TO credits IN course");
  Must("MODIFY course");
  auto check =
      Kernel("RETRIEVE ((FILE = course) and (course = 'course_2')) (credits)");
  EXPECT_EQ(check.records[0].GetOrNull("credits").AsInteger(), 9);
}

TEST_F(DmlUniversityTest, ModifyRejectsNonItem) {
  Must("MOVE 'course_2' TO course IN course");
  Must("FIND ANY course USING course IN course");
  Must("MOVE 'x' TO bogus IN course");
  Status status = Fails("MODIFY bogus IN course");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(DmlUniversityTest, ModifyIssuesOneUpdatePerItem) {
  Must("MOVE 'course_2' TO course IN course");
  Must("FIND ANY course USING course IN course");
  Must("MOVE 'New Title' TO title IN course");
  Must("MOVE 2 TO credits IN course");
  DmlResult result = Must("MODIFY title, credits IN course");
  EXPECT_EQ(result.abdl_requests, 2u);
}

// --- ERASE (Ch. VI.H) ---

TEST_F(DmlUniversityTest, EraseAllIsNotTranslated) {
  Must("MOVE 'course_2' TO course IN course");
  Must("FIND ANY course USING course IN course");
  Status status = Fails("ERASE ALL course");
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

TEST_F(DmlUniversityTest, EraseFacultyWithAdviseesAborts) {
  // Every faculty in the generated data advises someone or owns teaching
  // links with high probability; pick one that certainly advises.
  auto advisors = Kernel("RETRIEVE ((FILE = student)) (advisor)");
  ASSERT_FALSE(advisors.records.empty());
  const std::string busy =
      advisors.records[0].GetOrNull("advisor").AsString();
  Must("MOVE '" + busy + "' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  Status status = Fails("ERASE faculty");
  EXPECT_EQ(status.code(), StatusCode::kAborted);
}

TEST_F(DmlUniversityTest, EraseUnreferencedRecordSucceeds) {
  Must("MOVE 'Disposable' TO title IN course");
  Must("MOVE 'Never' TO semester IN course");
  Must("MOVE 1 TO credits IN course");
  DmlResult stored = Must("STORE course");
  const std::string key = stored.records[0].GetOrNull("course").AsString();
  Must("ERASE course");
  auto check =
      Kernel("RETRIEVE ((FILE = course) and (course = '" + key + "')) (title)");
  EXPECT_TRUE(check.records.empty());
  EXPECT_FALSE(machine_->cit().run_unit().has_value());
}

TEST_F(DmlUniversityTest, EraseCourseWithTeachingLinksAborts) {
  auto links = Kernel("RETRIEVE ((FILE = link_1)) (taught_by)");
  ASSERT_FALSE(links.records.empty());
  const std::string course_key =
      links.records[0].GetOrNull("taught_by").AsString();
  Must("MOVE '" + course_key + "' TO course IN course");
  Must("FIND ANY course USING course IN course");
  Status status = Fails("ERASE course");
  EXPECT_EQ(status.code(), StatusCode::kAborted);
}

TEST_F(DmlUniversityTest, EraseWithoutCurrencyFails) {
  Status status = Fails("ERASE course");
  EXPECT_EQ(status.code(), StatusCode::kCurrencyError);
}

// --- Programs and tracing ---

TEST_F(DmlUniversityTest, RunProgramExecutesThesisExample) {
  // The Ch. VI.B.1 running example, as a program.
  auto results = machine_->RunProgram(
      "MOVE 'Advanced Database' TO title IN course\n"
      "FIND ANY course USING title IN course\n"
      "GET title, dept, semester, credits IN course\n");
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_EQ(results->size(), 3u);
}

TEST_F(DmlUniversityTest, TraceRecordsOneToManyCorrespondence) {
  machine_->ClearTrace();
  Must("MOVE 'Advanced Database' TO title IN course");
  Must("FIND ANY course USING title IN course");
  const auto& trace = machine_->trace();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].abdl.size(), 0u);  // MOVE issues no ABDL.
  EXPECT_EQ(trace[1].abdl.size(), 1u);  // FIND ANY issues one RETRIEVE.
}

// --- batch STORE (bulk ingest) ---

TEST_F(DmlUniversityTest, BatchStoreBindsRowsThroughOneTemplate) {
  // Literal assignments apply to every row; each '?' binds one row value
  // in assignment order. UNIQUE (title, semester) holds because titles
  // differ.
  std::vector<std::vector<abdm::Value>> rows;
  for (int i = 0; i < 6; ++i) {
    rows.push_back({abdm::Value::String("Bulk Course " + std::to_string(i)),
                    abdm::Value::Integer(2 + i % 3)});
  }
  auto result = machine_->ExecuteBatch(
      "STORE course (title = ?, semester = 'Fall87', credits = ?)", rows);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->info, "stored 6 record(s)");
  for (int i = 0; i < 6; ++i) {
    auto check = Kernel("RETRIEVE ((FILE = course) and (title = 'Bulk Course " +
                        std::to_string(i) + "')) (semester, credits)");
    ASSERT_EQ(check.records.size(), 1u) << "row " << i;
    EXPECT_EQ(check.records[0].GetOrNull("semester").AsString(), "Fall87");
    EXPECT_EQ(check.records[0].GetOrNull("credits").AsInteger(), 2 + i % 3);
  }
  // The last stored record is the current of the run-unit, as if the
  // rows had been STOREd one by one.
  ASSERT_TRUE(machine_->cit().run_unit().has_value());
  EXPECT_EQ(machine_->cit().run_unit()->record_type, "course");
  auto last = Kernel(
      "RETRIEVE ((FILE = course) and (title = 'Bulk Course 5')) (course)");
  ASSERT_EQ(last.records.size(), 1u);
  EXPECT_EQ(machine_->cit().run_unit()->dbkey,
            last.records[0].GetOrNull("course").AsString());
}

TEST_F(DmlUniversityTest, BatchStoreRejectsHostileShapes) {
  const std::vector<std::vector<abdm::Value>> one_wide = {
      {abdm::Value::String("T"), abdm::Value::String("S"),
       abdm::Value::Integer(1)}};
  // Zero rows, arity mismatch, and unparameterized templates all fail.
  EXPECT_FALSE(machine_
                   ->ExecuteBatch(
                       "STORE course (title = ?, semester = ?, credits = ?)",
                       {})
                   .ok());
  EXPECT_FALSE(machine_
                   ->ExecuteBatch(
                       "STORE course (title = ?, semester = ?, credits = ?)",
                       {{abdm::Value::String("only-one")}})
                   .ok());
  EXPECT_FALSE(machine_->ExecuteBatch("STORE course", one_wide).ok());
  // Direct execution of a parameterized STORE points at the batch
  // interface instead of storing a half-bound UWA.
  EXPECT_FALSE(
      machine_->ExecuteText("STORE course (title = ?, semester = ?)").ok());
}

TEST_F(DmlUniversityTest, BatchStoreDuplicateAgainstKernelRejected) {
  // course_1 already carries (Advanced Database, Fall86): the batch's
  // per-record duplicate probe sees the kernel and aborts the chunk.
  const std::vector<std::vector<abdm::Value>> dup = {
      {abdm::Value::String("Advanced Database"),
       abdm::Value::String("Fall86")}};
  Status status =
      machine_
          ->ExecuteBatch("STORE course (title = ?, semester = ?)", dup)
          .status();
  EXPECT_EQ(status.code(), StatusCode::kConstraintViolation);
}

// --- WALK: CODASYL set traversal lowered to fused JOIN plans ---

TEST_F(DmlUniversityTest, WalkFusesSetChainIntoJoins) {
  // dept: department -> faculty, advisor: faculty -> student. Two set
  // levels lower to exactly two RETRIEVE-COMMON requests — not one
  // FIND OWNER per visited record.
  DmlResult walked = Must("WALK dept THEN advisor");
  EXPECT_EQ(walked.info, "walked 2 set(s): 30 record(s)");
  ASSERT_EQ(walked.records.size(), 30u);
  for (const auto& record : walked.records) {
    EXPECT_EQ(record.GetOrNull("FILE").AsString(), "student");
    // The student's set keyword names its advisor; the join absorbed
    // that faculty record, so its key attribute must agree.
    EXPECT_EQ(record.GetOrNull("advisor").AsString(),
              record.GetOrNull("faculty").AsString());
    EXPECT_TRUE(record.Has("frank"));  // absorbed faculty attribute.
  }
  const TraceEntry& entry = machine_->trace().back();
  ASSERT_EQ(entry.abdl.size(), 2u);
  for (const auto& abdl : entry.abdl) {
    EXPECT_EQ(abdl.rfind("RETRIEVE-COMMON", 0), 0u) << abdl;
  }
}

TEST_F(DmlUniversityTest, WalkSingleLevelAbsorbsOwnerAttributes) {
  DmlResult walked = Must("WALK dept");
  EXPECT_EQ(walked.info, "walked 1 set(s): 8 record(s)");
  ASSERT_EQ(walked.records.size(), 8u);
  for (const auto& record : walked.records) {
    EXPECT_EQ(record.GetOrNull("FILE").AsString(), "faculty");
    EXPECT_FALSE(record.GetOrNull("dname").is_null());  // from department.
  }
}

TEST_F(DmlUniversityTest, ExplainWalkShowsFusedJoinPlan) {
  DmlResult explained = Must("EXPLAIN WALK dept THEN advisor");
  ASSERT_NE(explained.plan, nullptr);
  const std::string plan = explained.plan->ToString();
  EXPECT_NE(plan.find("SEQUENCE"), std::string::npos) << plan;
  EXPECT_NE(plan.find("JOIN"), std::string::npos) << plan;
}

TEST_F(DmlUniversityTest, WalkSystemSetRejected) {
  Status status = Fails("WALK system_person");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("SYSTEM-owned"), std::string::npos)
      << status.message();
}

TEST_F(DmlUniversityTest, WalkManyToManyTraversesLinkRecords) {
  // teaching: faculty -> link_1. The link record is a real member-side
  // set occurrence, so WALK joins link records with their owners.
  DmlResult walked = Must("WALK teaching");
  EXPECT_EQ(walked.records.size(), size_t(config_.teaching_links));
  for (const auto& record : walked.records) {
    EXPECT_EQ(record.GetOrNull("FILE").AsString(), "link_1");
  }
}

TEST(DmlWalkValidationTest, WalkOwnerSideSetRejected) {
  // A SET OF function without an inverse stays on the owner side: the
  // member record carries no set keyword, so there is nothing to join.
  auto schema = daplex::ParseFunctionalSchema(
      "TYPE a IS ENTITY kids : SET OF b; END ENTITY;"
      "TYPE b IS ENTITY x : INTEGER; END ENTITY;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto mapping = transform::TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  kds::Engine engine;
  kc::EngineExecutor executor(&engine);
  DmlMachine machine(&mapping->schema, &*mapping, &executor);
  auto result = machine.ExecuteText("WALK kids");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("owner-side"), std::string::npos)
      << result.status().message();
}

TEST(DmlWalkValidationTest, WalkWideLevelPrunesUnreachableOwners) {
  // Past kWalkProbeLimit reached keys, the owner side of a WALK level
  // runs as a full-file scan and reachability is enforced by a post-join
  // filter; members of never-reached owners must still be pruned.
  auto schema = daplex::ParseFunctionalSchema(
      "TYPE a IS ENTITY label : STRING(8); END ENTITY;"
      "TYPE b IS ENTITY in_a : a; END ENTITY;"
      "TYPE c IS ENTITY in_b : b; END ENTITY;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto mapping = transform::TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  kds::Engine engine;
  kc::EngineExecutor executor(&engine);
  auto descriptor = transform::MapNetworkToAbdm(mapping->schema, &*mapping);
  ASSERT_TRUE(descriptor.ok()) << descriptor.status();
  ASSERT_TRUE(executor.DefineDatabase(*descriptor).ok());

  auto insert = [&](const std::string& file, const std::string& dbkey,
                    const std::string& set_attr, const std::string& owner) {
    abdm::Record r;
    r.Set(std::string(abdm::kFileAttribute), abdm::Value::String(file));
    r.Set(file, abdm::Value::String(dbkey));
    if (!set_attr.empty()) r.Set(set_attr, abdm::Value::String(owner));
    auto resp = executor.Execute(abdl::InsertRequest{std::move(r)});
    ASSERT_TRUE(resp.ok()) << resp.status();
  };
  // One a; 80 b records (2 with dangling owners, pruned at level 0);
  // one c per b. 80 reached b keys exceed the per-key probe limit, so
  // the second level's owner side is the full b file.
  insert("a", transform::MakeDbKey("a", 1), "", "");
  constexpr int kB = 80;
  for (int i = 1; i <= kB; ++i) {
    const bool dangling = i == 3 || i == 57;
    insert("b", transform::MakeDbKey("b", i), "in_a",
           dangling ? transform::MakeDbKey("a", 999)
                    : transform::MakeDbKey("a", 1));
  }
  for (int i = 1; i <= kB; ++i) {
    insert("c", transform::MakeDbKey("c", i), "in_b",
           transform::MakeDbKey("b", i));
  }

  DmlMachine machine(&mapping->schema, &*mapping, &executor);
  auto result = machine.ExecuteText("WALK in_a THEN in_b");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->records.size(), size_t(kB - 2));
  for (const abdm::Record& r : result->records) {
    const std::string owner_key = r.GetOrNull("in_b").AsString();
    EXPECT_NE(owner_key, transform::MakeDbKey("b", 3));
    EXPECT_NE(owner_key, transform::MakeDbKey("b", 57));
  }
}

TEST_F(DmlUniversityTest, WalkBrokenChainRejected) {
  // advisor ends at student; dept is owned by department, so the second
  // level cannot continue from the first.
  Status status = Fails("WALK advisor THEN dept");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("previous level ends at 'student'"),
            std::string::npos)
      << status.message();
}

TEST_F(DmlUniversityTest, WalkUnknownSetIsNotFound) {
  Status status = Fails("WALK nothere");
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace mlds::kms
