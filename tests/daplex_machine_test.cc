// Tests for the Daplex (functional) language interface: FOR EACH queries
// over the AB(functional) University database — and the multi-lingual
// property itself: CODASYL-DML writes observed through Daplex reads.

#include "kms/daplex_machine.h"

#include <gtest/gtest.h>

#include "daplex/query.h"
#include "mlds/mlds.h"
#include "university/university.h"

namespace mlds::kms {
namespace {

// --- Parser ---

TEST(DaplexQueryParserTest, ParsesForEachWithConditionsAndPrint) {
  auto q = daplex::ParseForEach(
      "FOR EACH student SUCH THAT major = 'CS' AND age > 20 "
      "PRINT pname, major");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->type, "student");
  ASSERT_EQ(q->such_that.size(), 2u);
  EXPECT_EQ(q->such_that[0].function, "major");
  EXPECT_EQ(q->such_that[1].op, abdm::RelOp::kGt);
  ASSERT_EQ(q->print.size(), 2u);
  EXPECT_FALSE(q->print_all);
}

TEST(DaplexQueryParserTest, ParsesPrintAll) {
  auto q = daplex::ParseForEach("FOR EACH course PRINT ALL");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->print_all);
  EXPECT_TRUE(q->such_that.empty());
}

TEST(DaplexQueryParserTest, ParsesAggregates) {
  auto q = daplex::ParseForEach(
      "FOR EACH employee PRINT COUNT(employee), AVG(salary)");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ(q->print.size(), 2u);
  EXPECT_EQ(q->print[0].aggregate, daplex::DaplexAggregate::kCount);
  EXPECT_EQ(q->print[1].aggregate, daplex::DaplexAggregate::kAvg);
}

TEST(DaplexQueryParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(daplex::ParseForEach("FOR student PRINT x").ok());
  EXPECT_FALSE(daplex::ParseForEach("FOR EACH student SUCH major = 1 "
                                    "PRINT x").ok());
  EXPECT_FALSE(daplex::ParseForEach("FOR EACH student PRINT").ok());
  EXPECT_FALSE(daplex::ParseForEach("FOR EACH student PRINT x extra junk")
                   .ok());
}

// --- Execution over the University database ---

class DaplexMachineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(system_
                    .LoadFunctionalDatabase(
                        university::kUniversityDaplexDdl)
                    .ok());
    university::UniversityConfig config;
    auto load = university::BuildUniversityDatabaseOnLoaded(
        config, system_.executor());
    ASSERT_TRUE(load.ok()) << load.status();
    auto session = system_.OpenDaplexSession("university");
    ASSERT_TRUE(session.ok()) << session.status();
    machine_ = *session;
  }

  std::vector<abdm::Record> Must(std::string_view query) {
    auto result = machine_->ExecuteText(query);
    EXPECT_TRUE(result.ok()) << query << ": " << result.status();
    return result.ok() ? std::move(*result) : std::vector<abdm::Record>{};
  }

  MldsSystem system_;
  kms::DaplexMachine* machine_ = nullptr;
};

TEST_F(DaplexMachineTest, ForEachWithScalarCondition) {
  auto rows = Must(
      "FOR EACH student SUCH THAT major = 'Computer Science' PRINT major");
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) {
    EXPECT_EQ(r.GetOrNull("major").AsString(), "Computer Science");
  }
}

TEST_F(DaplexMachineTest, ForEachAllOfType) {
  auto rows = Must("FOR EACH department PRINT dname");
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(DaplexMachineTest, InheritedFunctionInPrintList) {
  // pname is declared on person; students inherit it over ISA.
  auto rows = Must("FOR EACH student SUCH THAT student = 'student_1' "
                   "PRINT pname, major");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(
      rows[0].GetOrNull("pname").AsString().starts_with("person_name_"));
}

TEST_F(DaplexMachineTest, InheritedFunctionInCondition) {
  // Filter students by the inherited person.age function.
  auto rows = Must("FOR EACH student SUCH THAT age >= 18 PRINT pname, age");
  ASSERT_FALSE(rows.empty());
  for (const auto& r : rows) {
    EXPECT_GE(r.GetOrNull("age").AsInteger(), 18);
  }
}

TEST_F(DaplexMachineTest, EntityValuedFunctionPrintsTargetKey) {
  auto rows =
      Must("FOR EACH student SUCH THAT student = 'student_2' PRINT advisor");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_TRUE(
      rows[0].GetOrNull("advisor").AsString().starts_with("faculty_"));
}

TEST_F(DaplexMachineTest, ScalarMultiValuedCollapsesDuplicatedRecords) {
  // employee_3 has two kernel records differing in 'degrees'; the Daplex
  // view is one entity whose set-valued function carries both values.
  auto rows = Must(
      "FOR EACH employee SUCH THAT employee = 'employee_3' PRINT degrees");
  ASSERT_EQ(rows.size(), 1u);
  const std::string degrees = rows[0].GetOrNull("degrees").AsString();
  EXPECT_NE(degrees.find(','), std::string::npos) << degrees;
}

TEST_F(DaplexMachineTest, ManyToManyFunctionListsRelatedEntities) {
  auto rows = Must(
      "FOR EACH faculty SUCH THAT faculty = 'faculty_1' PRINT teaching");
  ASSERT_EQ(rows.size(), 1u);
  const abdm::Value teaching = rows[0].GetOrNull("teaching");
  if (!teaching.is_null()) {
    EXPECT_NE(teaching.AsString().find("course_"), std::string::npos);
  }
}

TEST_F(DaplexMachineTest, ManyToManyFunctionInCondition) {
  // A SUCH THAT comparison on a multi-valued function requires the link
  // absorption before filtering: faculty teaching a specific course.
  auto links = machine_->ExecuteText(
      "FOR EACH faculty SUCH THAT faculty = 'faculty_1' PRINT teaching");
  ASSERT_TRUE(links.ok());
  const abdm::Value teaching = (*links)[0].GetOrNull("teaching");
  if (teaching.is_null()) {
    GTEST_SKIP() << "faculty_1 teaches nothing under this seed";
  }
  // Pick the first course key out of the joined list.
  std::string course = teaching.AsString().substr(0, teaching.AsString().find(','));
  auto rows = Must("FOR EACH faculty SUCH THAT teaching = '" + course +
                   "' PRINT faculty");
  ASSERT_FALSE(rows.empty());
  bool found = false;
  for (const auto& r : rows) {
    if (r.GetOrNull("faculty").AsString() == "faculty_1") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(DaplexMachineTest, AggregateQuery) {
  auto rows = Must("FOR EACH course PRINT COUNT(course), AVG(credits)");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetOrNull("COUNT(course)").AsInteger(), 12);
  const double avg = rows[0].GetOrNull("AVG(credits)").AsFloat();
  EXPECT_GE(avg, 1.0);
  EXPECT_LE(avg, 5.0);
}

TEST_F(DaplexMachineTest, UnknownFunctionIsNotFound) {
  auto result = machine_->ExecuteText("FOR EACH student PRINT nothere");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(DaplexMachineTest, UnknownTypeIsNotFound) {
  auto result = machine_->ExecuteText("FOR EACH klingon PRINT x");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(DaplexMachineTest, TraceShowsIssuedAbdl) {
  Must("FOR EACH student SUCH THAT major = 'History' PRINT major");
  ASSERT_FALSE(machine_->trace().empty());
  EXPECT_NE(machine_->trace()[0].find("RETRIEVE"), std::string::npos);
  EXPECT_NE(machine_->trace()[0].find("History"), std::string::npos);
}

TEST_F(DaplexMachineTest, MultiLingualAccessSeesCodasylWrites) {
  // The multi-lingual property: a CODASYL-DML session stores a student;
  // a Daplex session over the same database sees the new entity.
  auto dml = system_.OpenCodasylSession("university");
  ASSERT_TRUE(dml.ok());
  auto run = (*dml)->RunProgram(
      "MOVE 'person_38' TO person IN person\n"
      "FIND ANY person USING person IN person\n"
      "MOVE 'Multi-Lingual Studies' TO major IN student\n"
      "STORE student\n");
  ASSERT_TRUE(run.ok()) << run.status();
  auto rows = Must(
      "FOR EACH student SUCH THAT major = 'Multi-Lingual Studies' "
      "PRINT pname, major");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].GetOrNull("pname").AsString(), "person_name_38");
}

TEST_F(DaplexMachineTest, PrintAllIncludesInheritedValues) {
  auto rows =
      Must("FOR EACH faculty SUCH THAT faculty = 'faculty_2' PRINT ALL");
  ASSERT_EQ(rows.size(), 1u);
  // Own scalar, inherited scalar, and member-side function key all show.
  EXPECT_TRUE(rows[0].Has("frank"));
  EXPECT_TRUE(rows[0].Has("ename"));
  EXPECT_TRUE(rows[0].Has("dept"));
}

}  // namespace
}  // namespace mlds::kms
