#include "abdm/value.h"

#include <gtest/gtest.h>

namespace mlds::abdm {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.kind(), ValueKind::kNull);
}

TEST(ValueTest, IntegerRoundTrip) {
  Value v = Value::Integer(42);
  EXPECT_TRUE(v.is_integer());
  EXPECT_EQ(v.AsInteger(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, FloatRoundTrip) {
  Value v = Value::Float(2.5);
  EXPECT_TRUE(v.is_float());
  EXPECT_DOUBLE_EQ(v.AsFloat(), 2.5);
}

TEST(ValueTest, StringRoundTrip) {
  Value v = Value::String("Advanced Database");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "Advanced Database");
  EXPECT_EQ(v.ToString(), "'Advanced Database'");
  EXPECT_EQ(v.ToDisplayString(), "Advanced Database");
}

TEST(ValueTest, ParseQuotedString) {
  Value v = Value::Parse("'Computer Science'");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "Computer Science");
}

TEST(ValueTest, ParseDoubleQuotedString) {
  Value v = Value::Parse("\"hello\"");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hello");
}

TEST(ValueTest, ParseInteger) {
  Value v = Value::Parse("123");
  ASSERT_TRUE(v.is_integer());
  EXPECT_EQ(v.AsInteger(), 123);
}

TEST(ValueTest, ParseNegativeInteger) {
  Value v = Value::Parse("-7");
  ASSERT_TRUE(v.is_integer());
  EXPECT_EQ(v.AsInteger(), -7);
}

TEST(ValueTest, ParseFloat) {
  Value v = Value::Parse("3.75");
  ASSERT_TRUE(v.is_float());
  EXPECT_DOUBLE_EQ(v.AsFloat(), 3.75);
}

TEST(ValueTest, ParseNull) {
  EXPECT_TRUE(Value::Parse("NULL").is_null());
  EXPECT_TRUE(Value::Parse("null").is_null());
}

TEST(ValueTest, ParseBareWordIsString) {
  Value v = Value::Parse("course");
  ASSERT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "course");
}

TEST(ValueTest, IntegerFloatCompareNumerically) {
  EXPECT_EQ(Value::Integer(2).Compare(Value::Float(2.0)), 0);
  EXPECT_LT(Value::Integer(2).Compare(Value::Float(2.5)), 0);
  EXPECT_GT(Value::Float(3.0).Compare(Value::Integer(2)), 0);
}

TEST(ValueTest, StringComparison) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, NullComparesOnlyToNull) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Integer(0)), 0);
  EXPECT_GT(Value::Integer(0).Compare(Value::Null()), 0);
}

TEST(ValueTest, MixedKindOrdering) {
  // Numeric sorts before string, deterministically.
  EXPECT_LT(Value::Integer(5).Compare(Value::String("5")), 0);
  EXPECT_GT(Value::String("a").Compare(Value::Float(9.0)), 0);
}

TEST(ValueTest, EqualityOperators) {
  EXPECT_TRUE(Value::Integer(1) == Value::Integer(1));
  EXPECT_TRUE(Value::Integer(1) != Value::Integer(2));
  EXPECT_TRUE(Value::Integer(1) < Value::Integer(2));
}

TEST(ValueTest, NullToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

}  // namespace
}  // namespace mlds::abdm
