#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "abdl/parser.h"
#include "common/backoff.h"
#include "mbds/controller.h"

namespace mlds::mbds {
namespace {

using abdm::FileDescriptor;
using abdm::ValueKind;

FileDescriptor ItemFile() {
  FileDescriptor f;
  f.name = "item";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"key", ValueKind::kInteger, 0, true},
      {"payload", ValueKind::kString, 0, false},
  };
  return f;
}

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

/// Four backends with the availability machinery on: a wall-clock
/// deadline (stalls need one to resolve), two retries with a pinned
/// backoff schedule, and small health thresholds so quarantine and
/// reintegration happen within a handful of requests. Backoff delays are
/// simulated (backoff_sleep off), so nothing here sleeps except a
/// deadline wait when a test stalls a backend on purpose.
Controller MakeFaultTolerant(int backends = 4) {
  MbdsOptions options;
  options.num_backends = backends;
  options.engine.block_capacity = 4;
  options.fault_tolerance.request_deadline_ms = 250.0;
  options.fault_tolerance.max_retries = 2;
  options.fault_tolerance.backoff = {.base_ms = 4.0,
                                     .multiplier = 2.0,
                                     .max_ms = 64.0,
                                     .jitter = 0.0};
  // Deliberately NOT the HealthPolicy defaults, so these tests prove the
  // configured thresholds reach the per-backend trackers.
  options.fault_tolerance.health = {.quarantine_after = 2,
                                    .reintegrate_after = 3};
  return Controller(options);
}

void Load(Controller* c, int n) {
  ASSERT_TRUE(c->DefineFile(ItemFile()).ok());
  for (int i = 0; i < n; ++i) {
    auto resp = c->Execute(MustParse("INSERT (<FILE, item>, <key, " +
                                     std::to_string(i) +
                                     ">, <payload, 'x'>)"));
    ASSERT_TRUE(resp.ok()) << resp.status();
  }
}

bool HasWarningFor(const std::vector<kds::PartialResultWarning>& warnings,
                   int backend_id) {
  for (const auto& w : warnings) {
    if (w.backend_id == backend_id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Backoff schedule: purely computational, pinned exactly.

TEST(BackoffTest, UnjitteredScheduleIsExactExponentialWithCap) {
  common::Backoff backoff({.base_ms = 4.0,
                           .multiplier = 2.0,
                           .max_ms = 64.0,
                           .jitter = 0.0},
                          /*seed=*/1);
  const double expected[] = {4.0, 8.0, 16.0, 32.0, 64.0, 64.0, 64.0};
  for (int k = 0; k < 7; ++k) {
    EXPECT_DOUBLE_EQ(backoff.UnjitteredDelayMs(k), expected[k]) << "k=" << k;
  }
  for (int k = 0; k < 7; ++k) {
    EXPECT_DOUBLE_EQ(backoff.NextDelayMs(), expected[k]) << "k=" << k;
  }
  EXPECT_EQ(backoff.attempts(), 7);
}

TEST(BackoffTest, JitterStaysWithinBoundsAndIsSeedDeterministic) {
  common::BackoffPolicy policy{.base_ms = 8.0,
                               .multiplier = 2.0,
                               .max_ms = 512.0,
                               .jitter = 0.5};
  common::Backoff a(policy, /*seed=*/7);
  common::Backoff b(policy, /*seed=*/7);
  common::Backoff c(policy, /*seed=*/8);
  bool seeds_diverged = false;
  for (int k = 0; k < 6; ++k) {
    const double full = a.UnjitteredDelayMs(k);
    const double da = a.NextDelayMs();
    const double db = b.NextDelayMs();
    const double dc = c.NextDelayMs();
    // delay = full * (1 - jitter * u), u in [0, 1).
    EXPECT_GT(da, full * (1.0 - policy.jitter) - 1e-9) << "k=" << k;
    EXPECT_LE(da, full + 1e-9) << "k=" << k;
    EXPECT_DOUBLE_EQ(da, db) << "same seed must replay identically, k=" << k;
    if (da != dc) seeds_diverged = true;
  }
  EXPECT_TRUE(seeds_diverged) << "distinct seeds should spread retriers";
}

// ---------------------------------------------------------------------
// Retries and quarantine on broadcast reads.

TEST(BackendFailoverTest, TransientErrorIsRetriedToSuccess) {
  Controller c = MakeFaultTolerant();
  Load(&c, 40);
  // Two consecutive transient errors, retry budget of two: the third
  // attempt reaches the engine. (The injector counts attempts since
  // construction, so the load phase's inserts are part of the tally.)
  const uint64_t attempts_before = c.backend(1).injector().attempts();
  c.InjectFault(1, {.kind = FaultKind::kError, .at_attempt = 0, .count = 2});
  auto report = c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)"));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->response.records.size(), 40u);
  EXPECT_TRUE(report->response.warnings.empty());
  EXPECT_EQ(c.backend(1).injector().faults_served(), 2u);
  EXPECT_EQ(c.backend(1).injector().attempts() - attempts_before, 3u);
  EXPECT_EQ(c.backend(1).health().state(), BackendHealth::kHealthy);
  // The retries charge their (simulated) backoff to this backend's time:
  // 4 + 8 ms under the pinned schedule.
  ASSERT_EQ(report->backend_times_ms.size(), 4u);
  EXPECT_GE(report->backend_times_ms[1], 12.0);
}

TEST(BackendFailoverTest, PersistentFaultYieldsPartialResultWithWarning) {
  Controller c = MakeFaultTolerant();
  Load(&c, 40);
  c.InjectFault(2, {.kind = FaultKind::kError, .at_attempt = 0, .count = 100});
  auto report = c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)"));
  ASSERT_TRUE(report.ok()) << report.status();
  // The other three backends' shares arrive; the faulty one is reported,
  // never silently dropped.
  EXPECT_EQ(report->response.records.size(), 30u);
  ASSERT_EQ(report->response.warnings.size(), 1u);
  EXPECT_EQ(report->response.warnings[0].backend_id, 2);
  EXPECT_EQ(report->response.warnings[0].state, "suspect");
  EXPECT_EQ(c.backend(2).health().state(), BackendHealth::kSuspect);

  // One more failing read exhausts quarantine_after = 2.
  ASSERT_TRUE(c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)")).ok());
  EXPECT_EQ(c.backend(2).health().state(), BackendHealth::kQuarantined);
  // Quarantined partitions drop out of the global size until they rejoin.
  EXPECT_EQ(c.FileSize("item"), 30u);

  ControllerHealth health = c.Health();
  EXPECT_TRUE(health.degraded);
  EXPECT_EQ(health.backends[2].state, BackendHealth::kQuarantined);
  EXPECT_GE(health.backends[2].faults_injected, 6u);  // 2 requests x 3 tries.
}

TEST(BackendFailoverTest, CrashQuarantinesImmediately) {
  Controller c = MakeFaultTolerant();
  Load(&c, 40);
  c.InjectFault(3, {.kind = FaultKind::kCrash, .at_attempt = 0, .count = 1});
  auto report = c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)"));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->response.records.size(), 30u);
  ASSERT_TRUE(HasWarningFor(report->response.warnings, 3));
  // A crash is fatal on the first strike — no three-failure grace.
  EXPECT_EQ(c.backend(3).health().state(), BackendHealth::kQuarantined);
  EXPECT_NE(c.backend(3).health().last_fault().find("crash"),
            std::string::npos);
}

TEST(BackendFailoverTest, StalledBackendTripsDeadlineInsteadOfHanging) {
  Controller c = MakeFaultTolerant();
  Load(&c, 40);
  c.InjectFault(0, {.kind = FaultKind::kStall, .at_attempt = 0, .count = 1});
  auto report = c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)"));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->response.records.size(), 30u);
  ASSERT_EQ(report->response.warnings.size(), 1u);
  EXPECT_EQ(report->response.warnings[0].backend_id, 0);
  EXPECT_NE(report->response.warnings[0].detail.find("deadline"),
            std::string::npos);
  // The fan-out waited out the 250 ms deadline, not the stall (which
  // never ends on its own). Allow generous scheduler slack.
  EXPECT_LT(report->wall_time_ms, 30000.0);
  EXPECT_EQ(c.backend(0).health().state(), BackendHealth::kSuspect);
}

// ---------------------------------------------------------------------
// Quarantine catch-up and reintegration.

TEST(BackendFailoverTest, QuarantinedBackendReintegratesViaWalReplay) {
  Controller c = MakeFaultTolerant();
  Load(&c, 40);
  ASSERT_EQ(c.backend(1).engine().FileSize("item"), 10u);

  // Strike 1: a crash on a broadcast mutation — fatal, quarantined.
  c.InjectFault(1, {.kind = FaultKind::kCrash, .at_attempt = 0, .count = 1});
  auto crash_report =
      c.Execute(MustParse("UPDATE ((FILE = item)) (payload = 'y')"));
  ASSERT_TRUE(crash_report.ok()) << crash_report.status();
  EXPECT_EQ(crash_report->response.affected, 30u);  // three live partitions.
  ASSERT_TRUE(HasWarningFor(crash_report->response.warnings, 1));
  EXPECT_EQ(c.backend(1).health().state(), BackendHealth::kQuarantined);

  // Three requests while quarantined: the broadcast mutation is appended
  // to the sidelined backend's log as catch-up; the reads are merely
  // missed.
  auto update2 = c.Execute(
      MustParse("UPDATE ((FILE = item) and (key < 4)) (payload = 'z')"));
  ASSERT_TRUE(update2.ok());
  EXPECT_EQ(update2->response.affected, 3u);  // key 1 lives on backend 1.
  ASSERT_TRUE(HasWarningFor(update2->response.warnings, 1));
  for (int i = 0; i < 2; ++i) {
    auto read = c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)"));
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->response.records.size(), 30u);
  }

  // reintegrate_after = 3 requests have been sat out: the next request
  // first reintegrates (torn-tail repair, rebuild from checkpoint + full
  // log replay including the catch-up), then fans out to all four.
  auto healed = c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)"));
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(c.backend(1).health().state(), BackendHealth::kHealthy);
  EXPECT_EQ(healed->response.records.size(), 40u);
  EXPECT_TRUE(healed->response.warnings.empty());
  EXPECT_EQ(c.FileSize("item"), 40u);
  EXPECT_EQ(c.backend(1).engine().FileSize("item"), 10u);
  EXPECT_EQ(c.backend(1).health().quarantine_count(), 1u);

  // The rebuilt partition holds every mutation it missed: both updates
  // applied to its records exactly once.
  auto z = c.Execute(MustParse(
      "RETRIEVE ((FILE = item) and (payload = 'z')) (key) BY key"));
  ASSERT_TRUE(z.ok());
  ASSERT_EQ(z->response.records.size(), 4u);  // keys 0..3 across backends.
  auto y = c.Execute(MustParse(
      "RETRIEVE ((FILE = item) and (payload = 'y')) (key)"));
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->response.records.size(), 36u);
}

TEST(BackendFailoverTest, InsertFailsOverToNextAvailableBackend) {
  Controller c = MakeFaultTolerant();
  ASSERT_TRUE(c.DefineFile(ItemFile()).ok());
  // First insert targets backend 0 (round-robin from zero); its crash
  // fires before the record reaches the engine, so failover is safe.
  c.InjectFault(0, {.kind = FaultKind::kCrash, .at_attempt = 0, .count = 1});
  auto report = c.Execute(
      MustParse("INSERT (<FILE, item>, <key, 0>, <payload, 'x'>)"));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->response.affected, 1u);
  ASSERT_TRUE(HasWarningFor(report->response.warnings, 0));
  EXPECT_EQ(c.backend(0).health().state(), BackendHealth::kQuarantined);
  EXPECT_EQ(c.backend(0).engine().FileSize("item"), 0u);
  EXPECT_EQ(c.FileSize("item"), 1u);
  // The record landed on a live backend and is logged there — not in the
  // dead backend's log, which would resurrect it as a duplicate.
  EXPECT_EQ(c.backend(1).engine().FileSize("item"), 1u);
  EXPECT_EQ(c.backend(1).wal().entry_count(), 2u);  // DEFINE + the insert.
}

TEST(BackendFailoverTest, CheckpointBoundsReplayAndTruncatesLogs) {
  Controller c = MakeFaultTolerant();
  Load(&c, 40);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.backend(i).wal().entry_count(), 11u);  // DEFINE + 10 inserts.
  }
  ASSERT_TRUE(c.CheckpointAll().ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.backend(i).wal().entry_count(), 0u);
    EXPECT_FALSE(c.backend(i).checkpoint().empty());
  }

  // Post-checkpoint: quarantine backend 2, mutate, reintegrate. Recovery
  // now starts from the checkpoint, replaying only the short tail.
  c.InjectFault(2, {.kind = FaultKind::kCrash, .at_attempt = 0, .count = 1});
  ASSERT_TRUE(
      c.Execute(MustParse("UPDATE ((FILE = item)) (payload = 'w')")).ok());
  EXPECT_EQ(c.backend(2).health().state(), BackendHealth::kQuarantined);
  ASSERT_TRUE(
      c.Execute(MustParse("DELETE ((FILE = item) and (key = 0))")).ok());
  ASSERT_TRUE(c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)")).ok());
  ASSERT_TRUE(c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)")).ok());
  auto healed = c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)"));
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(c.backend(2).health().state(), BackendHealth::kHealthy);
  EXPECT_EQ(healed->response.records.size(), 39u);
  auto w = c.Execute(
      MustParse("RETRIEVE ((FILE = item) and (payload = 'w')) (key)"));
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->response.records.size(), 39u);
}

TEST(BackendFailoverTest, AllBackendsQuarantinedReportsUnavailable) {
  Controller c = MakeFaultTolerant(2);
  Load(&c, 8);
  // Quarantine one backend at a time: a mutation with at least one live
  // backend still succeeds (partially, with a warning)...
  c.InjectFault(0, {.kind = FaultKind::kCrash, .at_attempt = 0, .count = 1});
  ASSERT_TRUE(
      c.Execute(MustParse("UPDATE ((FILE = item)) (payload = 'y')")).ok());
  EXPECT_EQ(c.backend(0).health().state(), BackendHealth::kQuarantined);
  // ...but when the sole remaining backend crashes too, there is no
  // partial result left to report.
  c.InjectFault(1, {.kind = FaultKind::kCrash, .at_attempt = 0, .count = 1});
  auto update = c.Execute(MustParse("UPDATE ((FILE = item)) (payload = 'z')"));
  EXPECT_FALSE(update.ok());
  EXPECT_EQ(c.backend(1).health().state(), BackendHealth::kQuarantined);
  auto report = c.Execute(MustParse("RETRIEVE ((FILE = item)) (key)"));
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kUnavailable);
}

TEST(BackendFailoverTest, SeededFaultPlansAreReproducible) {
  FaultPlan a = FaultInjector::Seeded(FaultKind::kError, /*seed=*/99,
                                      /*window=*/32, /*count=*/2);
  FaultPlan b = FaultInjector::Seeded(FaultKind::kError, /*seed=*/99,
                                      /*window=*/32, /*count=*/2);
  EXPECT_EQ(a.at_attempt, b.at_attempt);
  EXPECT_LT(a.at_attempt, 32u);
  EXPECT_EQ(a.count, 2);
  FaultPlan other = FaultInjector::Seeded(FaultKind::kError, /*seed=*/100,
                                          /*window=*/1u << 20, /*count=*/2);
  EXPECT_NE(a.at_attempt, other.at_attempt);
}

}  // namespace
}  // namespace mlds::mbds
