#include "kds/snapshot.h"

#include <gtest/gtest.h>

#include <sstream>

#include "abdl/parser.h"
#include "kc/executor.h"
#include "kms/dml_machine.h"
#include "university/university.h"

namespace mlds::kds {
namespace {

TEST(SnapshotTest, RoundTripsUniversityDatabase) {
  Engine original;
  kc::EngineExecutor executor(&original);
  university::UniversityConfig config;
  auto db = university::BuildUniversityDatabase(config, &executor);
  ASSERT_TRUE(db.ok()) << db.status();

  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(original, stream).ok());

  Engine restored;
  ASSERT_TRUE(LoadSnapshot(stream, &restored).ok());

  // Same files, same sizes, same query answers.
  EXPECT_EQ(original.FileNames(), restored.FileNames());
  for (const auto& file : original.FileNames()) {
    EXPECT_EQ(original.FileSize(file), restored.FileSize(file)) << file;
  }
  auto req = abdl::ParseRequest(
      "RETRIEVE ((FILE = student)) (all attributes) BY student");
  ASSERT_TRUE(req.ok());
  auto a = original.Execute(*req);
  auto b = restored.Execute(*req);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->records, b->records);
}

TEST(SnapshotTest, SaveLoadSaveIsStable) {
  Engine original;
  kc::EngineExecutor executor(&original);
  university::UniversityConfig config;
  config.persons = 10;
  config.students = 5;
  ASSERT_TRUE(university::BuildUniversityDatabase(config, &executor).ok());

  std::stringstream first;
  ASSERT_TRUE(SaveSnapshot(original, first).ok());
  Engine restored;
  std::stringstream copy(first.str());
  ASSERT_TRUE(LoadSnapshot(copy, &restored).ok());
  std::stringstream second;
  ASSERT_TRUE(SaveSnapshot(restored, second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST(SnapshotTest, PreservesValueKindsAndNulls) {
  Engine engine;
  abdm::FileDescriptor f;
  f.name = "t";
  f.attributes = {{"FILE", abdm::ValueKind::kString, 0, true},
                  {"i", abdm::ValueKind::kInteger, 0, true},
                  {"f", abdm::ValueKind::kFloat, 0, false},
                  {"s", abdm::ValueKind::kString, 12, false}};
  ASSERT_TRUE(engine.DefineFile(f).ok());
  auto insert = abdl::ParseRequest(
      "INSERT (<FILE, t>, <i, -7>, <f, 2.5>, <s, 'hi there'>, <n, NULL>)");
  ASSERT_TRUE(insert.ok());
  ASSERT_TRUE(engine.Execute(*insert).ok());

  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(engine, stream).ok());
  Engine restored;
  ASSERT_TRUE(LoadSnapshot(stream, &restored).ok());
  auto all = abdl::ParseRequest("RETRIEVE ((FILE = t)) (all attributes)");
  auto rows = restored.Execute(*all);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->records.size(), 1u);
  EXPECT_EQ(rows->records[0].GetOrNull("i").AsInteger(), -7);
  EXPECT_DOUBLE_EQ(rows->records[0].GetOrNull("f").AsFloat(), 2.5);
  EXPECT_EQ(rows->records[0].GetOrNull("s").AsString(), "hi there");
  EXPECT_TRUE(rows->records[0].GetOrNull("n").is_null());
  // Descriptor survived with kinds and directory flags.
  const abdm::FileDescriptor* desc = restored.FindDescriptor("t");
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(desc->FindAttribute("i")->kind, abdm::ValueKind::kInteger);
  EXPECT_FALSE(desc->FindAttribute("f")->directory);
  EXPECT_EQ(desc->FindAttribute("s")->max_length, 12);
}

TEST(SnapshotTest, RejectsBadHeader) {
  std::stringstream stream("NOT A SNAPSHOT\n");
  Engine engine;
  auto status = LoadSnapshot(stream, &engine);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsParseError());
}

TEST(SnapshotTest, RejectsAttrOutsideFile) {
  std::stringstream stream("MLDS-SNAPSHOT 1\nATTR x string 0 1\n");
  Engine engine;
  EXPECT_FALSE(LoadSnapshot(stream, &engine).ok());
}

TEST(SnapshotTest, RejectsGarbageLine) {
  std::stringstream stream("MLDS-SNAPSHOT 1\nFILE f\nWHAT is this\n");
  Engine engine;
  EXPECT_FALSE(LoadSnapshot(stream, &engine).ok());
}

TEST(SnapshotTest, LoadIntoNonEmptyEngineRejectsDuplicates) {
  Engine engine;
  abdm::FileDescriptor f;
  f.name = "t";
  f.attributes = {{"FILE", abdm::ValueKind::kString, 0, true}};
  ASSERT_TRUE(engine.DefineFile(f).ok());
  std::stringstream snapshot;
  ASSERT_TRUE(SaveSnapshot(engine, snapshot).ok());
  auto status = LoadSnapshot(snapshot, &engine);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(SnapshotTest, RestoredDatabaseServesDmlSessions) {
  // Save a loaded University database, restore it into a fresh engine,
  // and run a CODASYL-DML session against the restored kernel.
  Engine original;
  kc::EngineExecutor build_exec(&original);
  university::UniversityConfig config;
  auto db = university::BuildUniversityDatabase(config, &build_exec);
  ASSERT_TRUE(db.ok());

  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(original, stream).ok());
  Engine restored;
  ASSERT_TRUE(LoadSnapshot(stream, &restored).ok());

  kc::EngineExecutor exec(&restored);
  kms::DmlMachine machine(&db->mapping.schema, &db->mapping, &exec);
  auto run = machine.RunProgram(
      "MOVE 'Advanced Database' TO title IN course\n"
      "FIND ANY course USING title IN course\n"
      "GET title, credits IN course\n");
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->back().records[0].GetOrNull("title").AsString(),
            "Advanced Database");
  // Session statistics reflect the run.
  EXPECT_EQ(machine.statistics().total_statements, 3u);
  EXPECT_EQ(machine.statistics().total_requests, 1u);
  EXPECT_EQ(machine.statistics().abdl_requests.at("RETRIEVE"), 1u);
}

}  // namespace
}  // namespace mlds::kds
