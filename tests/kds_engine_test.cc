#include "kds/engine.h"

#include <gtest/gtest.h>

#include "abdl/parser.h"

namespace mlds::kds {
namespace {

using abdm::AttributeDescriptor;
using abdm::DatabaseDescriptor;
using abdm::FileDescriptor;
using abdm::Record;
using abdm::Value;
using abdm::ValueKind;

FileDescriptor CourseFile() {
  FileDescriptor f;
  f.name = "course";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"course", ValueKind::kString, 0, true},
      {"title", ValueKind::kString, 20, true},
      {"dept", ValueKind::kString, 10, true},
      {"credits", ValueKind::kInteger, 0, false},
  };
  return f;
}

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

class KdsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseDescriptor db;
    db.name = "univ";
    db.files = {CourseFile()};
    ASSERT_TRUE(engine_.DefineDatabase(db).ok());
  }

  void InsertCourse(std::string_view key, std::string_view title,
                    std::string_view dept, int credits) {
    std::string req = "INSERT (<FILE, course>, <course, '" + std::string(key) +
                      "'>, <title, '" + std::string(title) + "'>, <dept, '" +
                      std::string(dept) + "'>, <credits, " +
                      std::to_string(credits) + ">)";
    auto resp = engine_.Execute(MustParse(req));
    ASSERT_TRUE(resp.ok()) << resp.status();
  }

  Engine engine_;
};

TEST_F(KdsEngineTest, InsertThenRetrieve) {
  InsertCourse("c1", "Advanced Database", "CS", 4);
  auto resp = engine_.Execute(MustParse(
      "RETRIEVE ((FILE = course) and (title = 'Advanced Database')) "
      "(all attributes)"));
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].GetOrNull("dept").AsString(), "CS");
}

TEST_F(KdsEngineTest, InsertRequiresFileKeyword) {
  auto resp = engine_.Execute(MustParse("INSERT (<x, 1>)"));
  ASSERT_FALSE(resp.ok());
}

TEST_F(KdsEngineTest, InsertIntoUndefinedFileFails) {
  auto resp = engine_.Execute(MustParse("INSERT (<FILE, nofile>, <x, 1>)"));
  ASSERT_FALSE(resp.ok());
  EXPECT_TRUE(resp.status().IsNotFound());
}

TEST_F(KdsEngineTest, RetrieveProjectsTargetList) {
  InsertCourse("c1", "Databases", "CS", 4);
  auto resp = engine_.Execute(
      MustParse("RETRIEVE ((FILE = course)) (title, credits)"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].size(), 2u);
  EXPECT_TRUE(resp->records[0].Has("title"));
  EXPECT_FALSE(resp->records[0].Has("dept"));
}

TEST_F(KdsEngineTest, RetrieveByAttributeOrdersResults) {
  InsertCourse("c1", "Zeta", "CS", 4);
  InsertCourse("c2", "Alpha", "CS", 3);
  InsertCourse("c3", "Mid", "EE", 2);
  auto resp = engine_.Execute(
      MustParse("RETRIEVE ((FILE = course)) (title) BY title"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 3u);
  EXPECT_EQ(resp->records[0].GetOrNull("title").AsString(), "Alpha");
  EXPECT_EQ(resp->records[2].GetOrNull("title").AsString(), "Zeta");
}

TEST_F(KdsEngineTest, UpdateModifiesMatchingRecords) {
  InsertCourse("c1", "DB", "CS", 3);
  InsertCourse("c2", "OS", "CS", 3);
  InsertCourse("c3", "Net", "EE", 3);
  auto resp = engine_.Execute(MustParse(
      "UPDATE ((FILE = course) and (dept = 'CS')) (credits = 4)"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->affected, 2u);
  auto check = engine_.Execute(
      MustParse("RETRIEVE ((FILE = course) and (credits = 4)) (title)"));
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->records.size(), 2u);
}

TEST_F(KdsEngineTest, UpdateAddModifier) {
  InsertCourse("c1", "DB", "CS", 3);
  auto resp = engine_.Execute(
      MustParse("UPDATE ((FILE = course)) (credits = credits + 2)"));
  ASSERT_TRUE(resp.ok());
  auto check = engine_.Execute(
      MustParse("RETRIEVE ((FILE = course)) (credits)"));
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->records[0].GetOrNull("credits").AsInteger(), 5);
}

TEST_F(KdsEngineTest, UpdateToNullThenNullPredicateFinds) {
  InsertCourse("c1", "DB", "CS", 3);
  ASSERT_TRUE(
      engine_.Execute(MustParse("UPDATE ((FILE = course)) (dept = NULL)"))
          .ok());
  auto check = engine_.Execute(
      MustParse("RETRIEVE ((FILE = course) and (dept = NULL)) (title)"));
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->records.size(), 1u);
}

TEST_F(KdsEngineTest, DeleteRemovesMatching) {
  InsertCourse("c1", "DB", "CS", 3);
  InsertCourse("c2", "OS", "CS", 3);
  auto resp = engine_.Execute(
      MustParse("DELETE ((FILE = course) and (title = 'DB'))"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->affected, 1u);
  EXPECT_EQ(engine_.FileSize("course"), 1u);
}

TEST_F(KdsEngineTest, DisjunctiveQueryAcrossPredicates) {
  InsertCourse("c1", "DB", "CS", 3);
  InsertCourse("c2", "OS", "EE", 4);
  InsertCourse("c3", "Nets", "ME", 5);
  auto resp = engine_.Execute(MustParse(
      "RETRIEVE (((FILE = course) and (dept = 'CS')) or "
      "((FILE = course) and (credits = 5))) (title)"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->records.size(), 2u);
}

TEST_F(KdsEngineTest, AggregateAvgByGroup) {
  InsertCourse("c1", "A", "CS", 4);
  InsertCourse("c2", "B", "CS", 2);
  InsertCourse("c3", "C", "EE", 5);
  auto resp = engine_.Execute(
      MustParse("RETRIEVE ((FILE = course)) (AVG(credits)) BY dept"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 2u);
  // Groups come back ordered by the by-attribute: CS then EE.
  EXPECT_EQ(resp->records[0].GetOrNull("dept").AsString(), "CS");
  EXPECT_DOUBLE_EQ(resp->records[0].GetOrNull("AVG(credits)").AsFloat(), 3.0);
  EXPECT_DOUBLE_EQ(resp->records[1].GetOrNull("AVG(credits)").AsFloat(), 5.0);
}

TEST_F(KdsEngineTest, AggregateCountWithoutBy) {
  InsertCourse("c1", "A", "CS", 4);
  InsertCourse("c2", "B", "CS", 2);
  auto resp = engine_.Execute(
      MustParse("RETRIEVE ((FILE = course)) (COUNT(course))"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].GetOrNull("COUNT(course)").AsInteger(), 2);
}

TEST_F(KdsEngineTest, AggregateMinMaxSum) {
  InsertCourse("c1", "A", "CS", 4);
  InsertCourse("c2", "B", "CS", 2);
  auto resp = engine_.Execute(MustParse(
      "RETRIEVE ((FILE = course)) (MIN(credits), MAX(credits), SUM(credits))"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].GetOrNull("MIN(credits)").AsInteger(), 2);
  EXPECT_EQ(resp->records[0].GetOrNull("MAX(credits)").AsInteger(), 4);
  EXPECT_EQ(resp->records[0].GetOrNull("SUM(credits)").AsInteger(), 6);
}

TEST_F(KdsEngineTest, RetrieveCommonJoinsOnCommonAttribute) {
  FileDescriptor faculty;
  faculty.name = "faculty";
  faculty.attributes = {{"FILE", ValueKind::kString, 0, true},
                        {"name", ValueKind::kString, 0, true},
                        {"dept", ValueKind::kString, 0, true}};
  ASSERT_TRUE(engine_.DefineFile(faculty).ok());
  ASSERT_TRUE(engine_
                  .Execute(MustParse(
                      "INSERT (<FILE, faculty>, <name, 'Hsiao'>, <dept, 'CS'>)"))
                  .ok());
  InsertCourse("c1", "DB", "CS", 4);
  InsertCourse("c2", "Therm", "ME", 3);
  auto resp = engine_.Execute(MustParse(
      "RETRIEVE-COMMON ((FILE = faculty)) (dept) AND ((FILE = course)) "
      "(dept) (name, title)"));
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].GetOrNull("name").AsString(), "Hsiao");
  EXPECT_EQ(resp->records[0].GetOrNull("title").AsString(), "DB");
}

TEST_F(KdsEngineTest, TransactionExecutesSequentially) {
  auto txn = abdl::ParseTransaction(
      "INSERT (<FILE, course>, <course, 'c1'>, <title, 'X'>, <dept, 'CS'>, "
      "<credits, 1>); "
      "UPDATE ((FILE = course) and (title = 'X')) (credits = 9); "
      "RETRIEVE ((FILE = course)) (credits)");
  ASSERT_TRUE(txn.ok()) << txn.status();
  auto responses = engine_.ExecuteTransaction(*txn);
  ASSERT_TRUE(responses.ok()) << responses.status();
  ASSERT_EQ(responses->size(), 3u);
  EXPECT_EQ((*responses)[2].records[0].GetOrNull("credits").AsInteger(), 9);
}

TEST_F(KdsEngineTest, IoStatsAccumulate) {
  InsertCourse("c1", "DB", "CS", 3);
  ASSERT_GT(engine_.cumulative_io().blocks_written, 0u);
  auto before = engine_.cumulative_io().blocks_read;
  ASSERT_TRUE(
      engine_.Execute(MustParse("RETRIEVE ((FILE = course)) (title)")).ok());
  EXPECT_GT(engine_.cumulative_io().blocks_read, before);
}

TEST_F(KdsEngineTest, DuplicateFileDefinitionRejected) {
  EXPECT_EQ(engine_.DefineFile(CourseFile()).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(KdsEngineTest, UnqualifiedQuerySearchesAllFiles) {
  FileDescriptor other;
  other.name = "other";
  other.attributes = {{"FILE", ValueKind::kString, 0, true},
                      {"credits", ValueKind::kInteger, 0, false}};
  ASSERT_TRUE(engine_.DefineFile(other).ok());
  InsertCourse("c1", "DB", "CS", 7);
  ASSERT_TRUE(
      engine_.Execute(MustParse("INSERT (<FILE, other>, <credits, 7>)")).ok());
  auto resp = engine_.Execute(MustParse("RETRIEVE ((credits = 7)) (credits)"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->records.size(), 2u);
}

}  // namespace
}  // namespace mlds::kds
