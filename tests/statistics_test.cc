// Statistics & join subsystem tests: equi-depth attribute histograms
// (build shape, estimates within the documented bounds, incremental
// maintenance, staleness, the single-line codec), their FileStore
// ownership (amortized rebuilds, schema-epoch invalidation, metadata
// persistence across an engine restart), the join strategy /
// cardinality / re-plan helpers, engine-level RETRIEVE-COMMON strategy
// markers and adaptive re-planning, and the stats.* counters' trip
// across the STATS wire frame.

#include "kds/statistics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "abdl/parser.h"
#include "abdl/request.h"
#include "kds/engine.h"
#include "kds/file_store.h"
#include "kds/planner.h"
#include "server/wire.h"

namespace mlds::kds {
namespace {

using abdm::DatabaseDescriptor;
using abdm::EstimateSource;
using abdm::FileDescriptor;
using abdm::Predicate;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;
using abdm::ValueKind;

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

void MustExecute(Engine& engine, std::string_view text) {
  auto response = engine.Execute(MustParse(text));
  ASSERT_TRUE(response.ok()) << text << ": " << response.status();
}

/// (value, count) pairs for integers `lo..hi`, `count` rows each.
std::vector<std::pair<Value, uint64_t>> IntegerRun(int lo, int hi,
                                                   uint64_t count = 1) {
  std::vector<std::pair<Value, uint64_t>> sorted;
  for (int v = lo; v <= hi; ++v) sorted.emplace_back(Value::Integer(v), count);
  return sorted;
}

Predicate Pred(std::string attr, RelOp op, int v) {
  return Predicate{std::move(attr), op, Value::Integer(v)};
}

// ---------------------------------------------------------------------
// AttributeHistogram: build shape and estimates.

TEST(AttributeHistogramTest, BuildIsEquiDepth) {
  AttributeHistogram h = AttributeHistogram::Build(IntegerRun(1, 256));
  EXPECT_EQ(h.total_rows(), 256u);
  EXPECT_EQ(h.distinct_values(), 256u);
  EXPECT_EQ(h.built_rows(), 256u);
  EXPECT_EQ(h.drift(), 0u);
  EXPECT_LE(h.bucket_count(), AttributeHistogram::kDefaultBuckets);
  // 256 rows over 32 buckets: every bucket holds exactly the 8-row target.
  EXPECT_EQ(h.depth(), 8u);
  EXPECT_FALSE(h.Stale());
}

TEST(AttributeHistogramTest, HeavyValueIsNeverSplitAcrossBuckets) {
  // One value carrying half the rows: depth may exceed ceil(N / buckets)
  // only by that value's own count.
  auto sorted = IntegerRun(1, 100);
  sorted.emplace_back(Value::Integer(101), 100);
  AttributeHistogram h = AttributeHistogram::Build(sorted);
  EXPECT_EQ(h.total_rows(), 200u);
  EXPECT_GE(h.depth(), 100u);
  auto est = h.Estimate(Pred("v", RelOp::kEq, 101));
  ASSERT_TRUE(est.has_value());
  // The heavy value sits in a bucket dominated by its own rows with only
  // a handful of distinct values, so its density estimate stays within a
  // small factor of the true count — not the 2-row file-wide average.
  EXPECT_GE(*est, 25u);
}

TEST(AttributeHistogramTest, EqualityEstimateUsesBucketDensity) {
  AttributeHistogram h = AttributeHistogram::Build(IntegerRun(1, 64, 4));
  auto est = h.Estimate(Pred("v", RelOp::kEq, 17));
  ASSERT_TRUE(est.has_value());
  // Uniform density: every value holds exactly rows/distinct = 4 rows.
  EXPECT_EQ(*est, 4u);
  // A value outside the histogram's range estimates to zero.
  EXPECT_EQ(h.Estimate(Pred("v", RelOp::kEq, 1000)).value_or(99), 0u);
}

TEST(AttributeHistogramTest, RangeEstimatesWithinDepthBound) {
  AttributeHistogram h = AttributeHistogram::Build(IntegerRun(1, 500));
  for (int cutoff : {1, 17, 100, 250, 499, 500}) {
    auto est = h.Estimate(Pred("v", RelOp::kLe, cutoff));
    ASSERT_TRUE(est.has_value()) << cutoff;
    const uint64_t actual = uint64_t(cutoff);
    const uint64_t bound = h.depth() + h.drift();
    const uint64_t error = *est > actual ? *est - actual : actual - *est;
    EXPECT_LE(error, bound) << "v <= " << cutoff << ": est " << *est;
    // The complementary bound holds for > with the same boundary bucket.
    auto gt = h.Estimate(Pred("v", RelOp::kGt, cutoff));
    ASSERT_TRUE(gt.has_value());
    const uint64_t gt_actual = 500 - actual;
    const uint64_t gt_error =
        *gt > gt_actual ? *gt - gt_actual : gt_actual - *gt;
    EXPECT_LE(gt_error, bound) << "v > " << cutoff << ": est " << *gt;
  }
}

TEST(AttributeHistogramTest, UnanswerableShapesReturnNullopt) {
  AttributeHistogram h = AttributeHistogram::Build(IntegerRun(1, 10));
  EXPECT_FALSE(h.Estimate(Pred("v", RelOp::kNe, 5)).has_value());
  EXPECT_FALSE(
      h.Estimate(Predicate{"v", RelOp::kEq, Value::Null()}).has_value());
}

TEST(AttributeHistogramTest, AddRemoveMaintainTotalAndDrift) {
  AttributeHistogram h = AttributeHistogram::Build(IntegerRun(1, 100));
  h.Add(Value::Integer(50));
  h.Add(Value::Integer(500));   // beyond the last boundary: stretches it.
  h.Add(Value::Integer(-5));    // below the lower bound: extends bucket 0.
  h.Remove(Value::Integer(10));
  EXPECT_EQ(h.total_rows(), 102u);
  EXPECT_EQ(h.drift(), 4u);
  // The stretched last bucket now covers the out-of-range value.
  auto est = h.Estimate(Pred("v", RelOp::kLe, 500));
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(*est, 90u);
}

TEST(AttributeHistogramTest, StaleAfterQuarterDrift) {
  AttributeHistogram h = AttributeHistogram::Build(IntegerRun(1, 100));
  // Threshold: drift >= built/4 + 16 = 41.
  for (int i = 0; i < 40; ++i) h.Add(Value::Integer(i % 100 + 1));
  EXPECT_FALSE(h.Stale());
  h.Add(Value::Integer(1));
  EXPECT_TRUE(h.Stale());
}

TEST(AttributeHistogramTest, EncodeDecodeRoundTrips) {
  std::vector<std::pair<Value, uint64_t>> sorted = {
      {Value::String("alpha"), 2},
      {Value::String("beta with space\nand newline"), 5},
      {Value::String("gamma"), 7},
      {Value::String("zed"), 1},
  };
  AttributeHistogram h = AttributeHistogram::Build(sorted, 2);
  h.Add(Value::String("delta"));
  auto decoded = AttributeHistogram::Decode(h.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->Encode(), h.Encode());
  EXPECT_EQ(decoded->total_rows(), h.total_rows());
  EXPECT_EQ(decoded->drift(), h.drift());
  EXPECT_EQ(decoded->bucket_count(), h.bucket_count());
  // Estimates answer identically after the round trip.
  const Predicate range{"v", RelOp::kLe, Value::String("gamma")};
  EXPECT_EQ(decoded->Estimate(range), h.Estimate(range));
}

TEST(AttributeHistogramTest, DecodeRejectsTruncatedText) {
  AttributeHistogram h = AttributeHistogram::Build(IntegerRun(1, 10));
  std::string text = h.Encode();
  EXPECT_FALSE(AttributeHistogram::Decode(text.substr(0, 5)).ok());
  EXPECT_FALSE(AttributeHistogram::Decode("").ok());
}

// ---------------------------------------------------------------------
// FileStatistics: epoch invalidation and build counting.

TEST(FileStatisticsTest, InstallCountsBuildsRestoreDoesNot) {
  FileStatistics stats;
  stats.Install("v", AttributeHistogram::Build(IntegerRun(1, 10)));
  stats.Install("w", AttributeHistogram::Build(IntegerRun(1, 10)));
  EXPECT_EQ(stats.builds(), 2u);
  stats.Restore("x", AttributeHistogram::Build(IntegerRun(1, 10)));
  EXPECT_EQ(stats.builds(), 2u);
  EXPECT_NE(stats.Find("x"), nullptr);
}

TEST(FileStatisticsTest, BumpEpochDropsEveryHistogram) {
  FileStatistics stats;
  stats.Install("v", AttributeHistogram::Build(IntegerRun(1, 10)));
  ASSERT_NE(stats.Find("v"), nullptr);
  const uint64_t before = stats.epoch();
  stats.BumpEpoch();
  EXPECT_EQ(stats.epoch(), before + 1);
  EXPECT_EQ(stats.Find("v"), nullptr);
  EXPECT_TRUE(stats.histograms().empty());
}

// ---------------------------------------------------------------------
// Planner join helpers.

TEST(JoinHelpersTest, ChooseJoinStrategyMergeNeedsLargeBalancedSides) {
  EXPECT_EQ(ChooseJoinStrategy(64, 64), JoinStrategy::kMerge);
  EXPECT_EQ(ChooseJoinStrategy(100, 80), JoinStrategy::kMerge);
  EXPECT_EQ(ChooseJoinStrategy(64, 255), JoinStrategy::kMerge);
  EXPECT_EQ(ChooseJoinStrategy(64, 256), JoinStrategy::kHash);  // 4x skew.
  EXPECT_EQ(ChooseJoinStrategy(63, 63), JoinStrategy::kHash);   // too small.
  EXPECT_EQ(ChooseJoinStrategy(5, 100000), JoinStrategy::kHash);
  EXPECT_EQ(ChooseJoinStrategy(0, 0), JoinStrategy::kHash);
}

TEST(JoinHelpersTest, EstimateJoinRowsDividesByMaxDistinct) {
  EXPECT_EQ(EstimateJoinRows(100, 100, 10, 20), 500u);
  // Missing distinct counts default to the all-rows-match worst case.
  EXPECT_EQ(EstimateJoinRows(100, 100, std::nullopt, std::nullopt), 10000u);
  EXPECT_EQ(EstimateJoinRows(0, 100, 10, 10), 0u);
  // A sub-row quotient still estimates at least one row.
  EXPECT_EQ(EstimateJoinRows(2, 2, 1000, 1000), 1u);
}

TEST(JoinHelpersTest, EstimateMissedRequiresTenfoldAndFloor) {
  EXPECT_TRUE(EstimateMissed(31, 1));
  EXPECT_TRUE(EstimateMissed(1, 31));  // symmetric.
  EXPECT_TRUE(EstimateMissed(10, 1));
  EXPECT_TRUE(EstimateMissed(0, 10));
  EXPECT_FALSE(EstimateMissed(9, 1));    // larger side under the floor.
  EXPECT_FALSE(EstimateMissed(100, 15)); // under 10x apart.
  EXPECT_FALSE(EstimateMissed(5, 5));
  EXPECT_FALSE(EstimateMissed(0, 0));
}

// ---------------------------------------------------------------------
// FileStore histogram maintenance.

FileDescriptor MetricFile(const std::string& name = "metric") {
  FileDescriptor f;
  f.name = name;
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"v", ValueKind::kInteger, 0, true},
      {"note", ValueKind::kString, 20, false},
  };
  return f;
}

Record MetricRecord(const std::string& file, int v) {
  Record r;
  r.Set("FILE", Value::String(file));
  r.Set("v", Value::Integer(v));
  return r;
}

TEST(FileStoreStatisticsTest, RebuildsAmortizeOverInserts) {
  FileStore store(MetricFile(), /*block_capacity=*/16);
  IoStats io;
  constexpr int kRows = 600;
  for (int i = 1; i <= kRows; ++i) {
    ASSERT_TRUE(store.Insert(MetricRecord("metric", i), &io).ok());
  }
  const AttributeHistogram* h = store.statistics().Find("v");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_rows(), uint64_t(kRows));
  EXPECT_FALSE(h->Stale());
  // Rebuilds follow the geometric staleness schedule (~x1.25 growth), so
  // builds stay logarithmic in the insert count — not one per insert.
  // 600 inserts maintain histograms for v AND the FILE keyword.
  EXPECT_GE(store.statistics().builds(), 2u);
  EXPECT_LE(store.statistics().builds(), 64u);
}

TEST(FileStoreStatisticsTest, RangeEstimatesComeFromHistogram) {
  FileStore store(MetricFile(), 16);
  IoStats io;
  for (int i = 1; i <= 400; ++i) {
    ASSERT_TRUE(store.Insert(MetricRecord("metric", i), &io).ok());
  }
  auto range = store.EstimateWithSource(Pred("v", RelOp::kLt, 100));
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->source, EstimateSource::kHistogram);
  const AttributeHistogram* h = store.statistics().Find("v");
  ASSERT_NE(h, nullptr);
  const uint64_t bound = h->depth() + h->drift();
  const uint64_t actual = 99;
  const uint64_t error =
      range->rows > actual ? range->rows - actual : actual - range->rows;
  EXPECT_LE(error, bound);
  // Equality stays on the exact directory bucket count.
  auto eq = store.EstimateWithSource(Pred("v", RelOp::kEq, 7));
  ASSERT_TRUE(eq.has_value());
  EXPECT_EQ(eq->source, EstimateSource::kDirectory);
  EXPECT_EQ(eq->rows, 1u);
}

TEST(FileStoreStatisticsTest, DeletesMaintainHistogramTotals) {
  FileStore store(MetricFile(), 16);
  IoStats io;
  for (int i = 1; i <= 300; ++i) {
    ASSERT_TRUE(store.Insert(MetricRecord("metric", i), &io).ok());
  }
  ASSERT_TRUE(
      store.Delete(abdm::Query::And({Pred("v", RelOp::kLe, 100)}), &io).ok());
  const AttributeHistogram* h = store.statistics().Find("v");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_rows(), 200u);
}

TEST(FileStoreStatisticsTest, SecondaryIndexBumpsEpochAndRebuilds) {
  FileStore store(MetricFile(), 16);
  IoStats io;
  for (int i = 1; i <= 200; ++i) {
    Record r = MetricRecord("metric", i);
    r.Set("note", Value::String("n" + std::to_string(i % 5)));
    ASSERT_TRUE(store.Insert(std::move(r), &io).ok());
  }
  const uint64_t epoch = store.statistics().epoch();
  ASSERT_TRUE(store.BuildSecondaryIndex("note", &io).ok());
  // The whole statistics set was invalidated and rebuilt from the
  // post-change directory, now including the new index's attribute.
  EXPECT_GT(store.statistics().epoch(), epoch);
  EXPECT_NE(store.statistics().Find("v"), nullptr);
  EXPECT_NE(store.statistics().Find("note"), nullptr);
}

TEST(FileStoreStatisticsTest, MetaCodecRoundTripsHistograms) {
  FileStore store(MetricFile(), 16);
  IoStats io;
  for (int i = 1; i <= 150; ++i) {
    ASSERT_TRUE(store.Insert(MetricRecord("metric", i), &io).ok());
  }
  auto meta = FileStore::DecodeMeta(store.EncodeMeta());
  ASSERT_TRUE(meta.ok()) << meta.status();
  EXPECT_EQ(meta->stats_epoch, store.statistics().epoch());
  bool found_v = false;
  for (const auto& histogram : meta->histograms) {
    EXPECT_EQ(histogram.epoch, meta->stats_epoch);
    if (histogram.attr == "v") {
      found_v = true;
      auto decoded = AttributeHistogram::Decode(histogram.encoded);
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      EXPECT_EQ(decoded->total_rows(), 150u);
    }
  }
  EXPECT_TRUE(found_v);
}

TEST(FileStoreStatisticsTest, RestoreDiscardsMismatchedEpoch) {
  FileStore store(MetricFile(), 16);
  IoStats io;
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(store.Insert(MetricRecord("metric", i), &io).ok());
  }
  FileStore::Meta meta;
  meta.stats_epoch = 7;
  meta.histograms.push_back(
      {7, "v", AttributeHistogram::Build(IntegerRun(1, 10)).Encode()});
  meta.histograms.push_back(
      {3, "note_stale", AttributeHistogram::Build(IntegerRun(1, 10)).Encode()});
  store.RestoreStatistics(meta);
  EXPECT_EQ(store.statistics().epoch(), 7u);
  // The matching-epoch histogram was installed; "v" is still indexed.
  const AttributeHistogram* v = store.statistics().Find("v");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->total_rows(), 10u);
  // The mismatched-epoch histogram was discarded.
  EXPECT_EQ(store.statistics().Find("note_stale"), nullptr);
}

// ---------------------------------------------------------------------
// Histograms persist in page-file metadata across an engine restart.

std::string FreshDataDir(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / ("mlds_stats_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

TEST(StatisticsPersistenceTest, HistogramsSurviveCleanRestart) {
  const std::string dir = FreshDataDir("restart");
  EngineOptions options;
  options.data_dir = dir;
  uint64_t builds_before = 0;
  {
    Engine engine(options);
    DatabaseDescriptor db;
    db.name = "metrics";
    db.files = {MetricFile()};
    ASSERT_TRUE(engine.DefineDatabase(db).ok());
    for (int i = 1; i <= 300; ++i) {
      MustExecute(engine, "INSERT (<FILE, metric>, <v, " + std::to_string(i) +
                              ">)");
    }
    builds_before = engine.statistics_stats().histogram_builds;
    EXPECT_GT(builds_before, 0u);
  }
  Engine reopened(options);
  ASSERT_TRUE(reopened.restore_status().ok()) << reopened.restore_status();
  ASSERT_EQ(reopened.FileSize("metric"), 300u);
  // No rebuild happened on restore — the histograms came from metadata.
  EXPECT_EQ(reopened.statistics_stats().histogram_builds, 0u);
  // A range plan is served from the restored histogram immediately.
  abdl::Request request =
      MustParse("RETRIEVE ((FILE = metric) and (v < 100)) (v)");
  abdl::SetExplain(request, true);
  auto response = reopened.Execute(request);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_NE(response->plan, nullptr);
  EXPECT_NE(response->plan->ToString().find("[histogram]"), std::string::npos)
      << response->plan->ToString();
  EXPECT_EQ(response->records.size(), 99u);
}

TEST(StatisticsPersistenceTest, TinyPagesDropHistogramLinesNotFlushes) {
  // Histogram persistence is best-effort: on pages too small to hold the
  // metadata blob the HISTOGRAM lines are dropped (and rebuilt lazily),
  // but flush/checkpoint must keep working.
  const std::string dir = FreshDataDir("tiny_pages");
  EngineOptions options;
  options.data_dir = dir;
  options.page_bytes = 256;
  {
    Engine engine(options);
    DatabaseDescriptor db;
    db.name = "metrics";
    db.files = {MetricFile()};
    ASSERT_TRUE(engine.DefineDatabase(db).ok());
    for (int i = 1; i <= 100; ++i) {
      MustExecute(engine, "INSERT (<FILE, metric>, <v, " + std::to_string(i) +
                              ">)");
    }
    ASSERT_TRUE(engine.Flush().ok());
  }
  Engine reopened(options);
  ASSERT_TRUE(reopened.restore_status().ok()) << reopened.restore_status();
  EXPECT_EQ(reopened.FileSize("metric"), 100u);
  // The data survived; the histogram rebuilds on the next mutation.
  MustExecute(reopened, "INSERT (<FILE, metric>, <v, 101>)");
  EXPECT_GT(reopened.statistics_stats().histogram_builds, 0u);
}

// ---------------------------------------------------------------------
// Engine-level RETRIEVE-COMMON: strategy choice, markers, counters, and
// the adaptive re-plan.

class EngineJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseDescriptor db;
    db.name = "joins";
    db.files = {MetricFile("left"), MetricFile("right")};
    ASSERT_TRUE(engine_.DefineDatabase(db).ok());
  }

  void Fill(const std::string& file, int rows) {
    for (int i = 0; i < rows; ++i) {
      MustExecute(engine_, "INSERT (<FILE, " + file + ">, <v, " +
                               std::to_string(i) + ">)");
    }
  }

  Response Explained(std::string_view text) {
    abdl::Request request = MustParse(text);
    abdl::SetExplain(request, true);
    auto response = engine_.Execute(request);
    EXPECT_TRUE(response.ok()) << text << ": " << response.status();
    return response.ok() ? std::move(*response) : Response{};
  }

  Engine engine_;
};

TEST_F(EngineJoinTest, SkewedSidesHashJoin) {
  Fill("left", 5);
  Fill("right", 100);
  Response response = Explained(
      "RETRIEVE-COMMON ((FILE = left)) (v) AND ((FILE = right)) (v) (v)");
  EXPECT_EQ(response.records.size(), 5u);
  ASSERT_NE(response.plan, nullptr);
  EXPECT_EQ(response.plan->kind, PlanNodeKind::kJoin);
  EXPECT_EQ(response.plan->join_strategy, JoinStrategy::kHash);
  EXPECT_FALSE(response.plan->replanned);
  EXPECT_NE(response.plan->ToString().find("JOIN [hash]"), std::string::npos)
      << response.plan->ToString();
  const StatisticsCounters stats = engine_.statistics_stats();
  EXPECT_EQ(stats.hash_joins, 1u);
  EXPECT_EQ(stats.merge_joins, 0u);
  EXPECT_EQ(stats.replans, 0u);
}

TEST_F(EngineJoinTest, LargeBalancedSidesMergeJoin) {
  Fill("left", 80);
  Fill("right", 100);
  Response response = Explained(
      "RETRIEVE-COMMON ((FILE = left)) (v) AND ((FILE = right)) (v) (v)");
  EXPECT_EQ(response.records.size(), 80u);
  ASSERT_NE(response.plan, nullptr);
  EXPECT_EQ(response.plan->join_strategy, JoinStrategy::kMerge);
  EXPECT_NE(response.plan->ToString().find("JOIN [merge]"), std::string::npos)
      << response.plan->ToString();
  const StatisticsCounters stats = engine_.statistics_stats();
  EXPECT_EQ(stats.merge_joins, 1u);
  EXPECT_EQ(stats.hash_joins, 0u);
}

TEST_F(EngineJoinTest, StrategyNeverChangesJoinOutput) {
  // The merge- and hash-strategy regimes must produce byte-identical
  // records: run the same join once small (hash) and once after growing
  // both sides into the merge regime, and check the overlap.
  Fill("left", 40);
  Fill("right", 48);
  Response hash = Explained(
      "RETRIEVE-COMMON ((FILE = left)) (v) AND ((FILE = right)) (v) (v)");
  EXPECT_EQ(hash.plan->join_strategy, JoinStrategy::kHash);
  Fill("left", 80);   // appends v = 0..79 again: now 120 rows.
  Fill("right", 80);  // now 128 rows.
  Response merge = Explained(
      "RETRIEVE-COMMON ((FILE = left)) (v) AND ((FILE = right)) (v) (v)");
  EXPECT_EQ(merge.plan->join_strategy, JoinStrategy::kMerge);
  ASSERT_EQ(hash.records.size(), 40u);
  // Pair count is strategy-independent: v in 0..39 has 2x2 copies,
  // 40..47 has 1x2, 48..79 has 1x1 -> 160 + 16 + 32.
  EXPECT_EQ(merge.records.size(), 208u);
}

TEST_F(EngineJoinTest, HistogramMissTriggersAdaptiveReplan) {
  // Skew: values 1..2000 plus a single outlier at 0. The histogram
  // estimates "v < 1" at roughly half a boundary bucket (tens of rows);
  // the actual result is 1 row — a >= 10x miss, so the join re-plans
  // against the actuals.
  Fill("right", 100);
  for (int i = 1; i <= 2000; ++i) {
    MustExecute(engine_, "INSERT (<FILE, left>, <v, " + std::to_string(i) +
                             ">)");
  }
  MustExecute(engine_, "INSERT (<FILE, left>, <v, 0>)");
  Response response = Explained(
      "RETRIEVE-COMMON ((FILE = left) and (v < 1)) (v) "
      "AND ((FILE = right)) (v) (v)");
  EXPECT_EQ(response.records.size(), 1u);
  ASSERT_NE(response.plan, nullptr);
  EXPECT_TRUE(response.plan->replanned);
  EXPECT_NE(response.plan->ToString().find("[replanned]"), std::string::npos)
      << response.plan->ToString();
  // The miss came from a histogram-sourced range estimate.
  EXPECT_NE(response.plan->ToString().find("[histogram]"), std::string::npos)
      << response.plan->ToString();
  EXPECT_EQ(engine_.statistics_stats().replans, 1u);
}

TEST_F(EngineJoinTest, AccurateEstimatesDoNotReplan) {
  Fill("left", 30);
  Fill("right", 30);
  Response response = Explained(
      "RETRIEVE-COMMON ((FILE = left)) (v) AND ((FILE = right)) (v) (v)");
  EXPECT_FALSE(response.plan->replanned);
  EXPECT_EQ(engine_.statistics_stats().replans, 0u);
}

// ---------------------------------------------------------------------
// stats.* counters across the STATS wire frame.

TEST(StatsWireTest, StatisticsCountersRoundTripStatsReply) {
  wire::StatsReply stats;
  stats.stats_histogram_builds = 11;
  stats.stats_replans = 3;
  stats.stats_hash_joins = 7;
  stats.stats_merge_joins = 5;
  stats.health = "h";
  auto decoded = wire::DecodeStatsReply(wire::EncodeStatsReply(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats_histogram_builds, 11u);
  EXPECT_EQ(decoded->stats_replans, 3u);
  EXPECT_EQ(decoded->stats_hash_joins, 7u);
  EXPECT_EQ(decoded->stats_merge_joins, 5u);
  EXPECT_EQ(decoded->health, "h");
  const std::string text = decoded->ToText();
  EXPECT_NE(text.find("stats.histogram_builds 11"), std::string::npos) << text;
  EXPECT_NE(text.find("stats.replans 3"), std::string::npos) << text;
  EXPECT_NE(text.find("stats.hash_joins 7"), std::string::npos) << text;
  EXPECT_NE(text.find("stats.merge_joins 5"), std::string::npos) << text;
}

// ---------------------------------------------------------------------
// Concurrent histogram maintenance (TSan stage: tools/check.sh runs this
// suite under ThreadSanitizer).

TEST(StatisticsStressTest, ConcurrentMaintenanceAndEstimates) {
  Engine engine;
  DatabaseDescriptor db;
  db.name = "stress";
  db.files = {MetricFile()};
  ASSERT_TRUE(engine.DefineDatabase(db).ok());

  constexpr int kWriters = 4;
  constexpr int kRowsPerWriter = 150;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 2);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&engine, w] {
      for (int i = 0; i < kRowsPerWriter; ++i) {
        auto response = engine.Execute(MustParse(
            "INSERT (<FILE, metric>, <v, " +
            std::to_string(w * kRowsPerWriter + i) + ">)"));
        ASSERT_TRUE(response.ok()) << response.status();
      }
    });
  }
  // Readers exercise the histogram-estimate path (shared file lock)
  // while writers rebuild and maintain the histograms (exclusive lock).
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&engine] {
      for (int i = 0; i < 60; ++i) {
        auto response = engine.Execute(
            MustParse("RETRIEVE ((FILE = metric) and (v < 250)) (v)"));
        ASSERT_TRUE(response.ok()) << response.status();
        (void)engine.statistics_stats();
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(engine.FileSize("metric"), size_t(kWriters * kRowsPerWriter));
  const StatisticsCounters stats = engine.statistics_stats();
  EXPECT_GT(stats.histogram_builds, 0u);
  auto final_count = engine.Execute(
      MustParse("RETRIEVE ((FILE = metric) and (v < 250)) (v)"));
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->records.size(), 250u);
}

}  // namespace
}  // namespace mlds::kds
