// Chapter VI fidelity: the exact ABDL request sequences KMS generates for
// each CODASYL-DML statement, asserted against the thesis's translation
// templates in its own notation.

#include <gtest/gtest.h>

#include <memory>

#include "kds/engine.h"
#include "kms/dml_machine.h"
#include "university/university.h"

namespace mlds::kms {
namespace {

class TranslationTemplateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    university::UniversityConfig config;
    auto db = university::BuildUniversityDatabase(config, executor_.get());
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<university::UniversityDatabase>(std::move(*db));
    machine_ = std::make_unique<DmlMachine>(&db_->mapping.schema,
                                            &db_->mapping, executor_.get());
  }

  void Must(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    ASSERT_TRUE(result.ok()) << dml << ": " << result.status();
  }

  /// The ABDL requests of the most recent statement.
  const std::vector<std::string>& LastAbdl() {
    return machine_->trace().back().abdl;
  }

  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<university::UniversityDatabase> db_;
  std::unique_ptr<DmlMachine> machine_;
};

TEST_F(TranslationTemplateTest, FindAnyTemplate) {
  // Ch. VI.B.1:
  //   RETRIEVE ((FILE = record_type_x) AND (item_1 = value_1) ...)
  //            (all attributes) [by record_type_x]
  Must("MOVE 'Advanced Database' TO title IN course");
  Must("MOVE 'Fall86' TO semester IN course");
  Must("FIND ANY course USING title, semester IN course");
  ASSERT_EQ(LastAbdl().size(), 1u);
  EXPECT_EQ(LastAbdl()[0],
            "RETRIEVE ((FILE = 'course') and (title = 'Advanced Database') "
            "and (semester = 'Fall86')) (all attributes) BY course");
}

TEST_F(TranslationTemplateTest, FindFirstWithinIsaSetTemplate) {
  // Ch. VI.B.4 (ISA set): RETRIEVE ((FILE = record_type_x) AND
  //   (MEMBER-set_type_y = owner dbkey)) (all attributes)
  Must("MOVE 'person_3' TO person IN person");
  Must("FIND ANY person USING person IN person");
  Must("FIND FIRST student WITHIN person_student");
  ASSERT_EQ(LastAbdl().size(), 1u);
  EXPECT_EQ(LastAbdl()[0],
            "RETRIEVE ((FILE = 'student') and (person_student = "
            "'person_3')) (all attributes)");
}

TEST_F(TranslationTemplateTest, FindOwnerTemplate) {
  // Ch. VI.B.5: RETRIEVE ((FILE = CIT.set.owner) AND
  //   (CIT.set.owner = CIT.set.dbkey)) (all attributes)
  Must("MOVE 'student_1' TO student IN student");
  Must("FIND ANY student USING student IN student");
  const std::string advisor_key =
      machine_->cit().CurrentOfSet("advisor")->owner_dbkey;
  Must("FIND OWNER WITHIN advisor");
  ASSERT_EQ(LastAbdl().size(), 1u);
  EXPECT_EQ(LastAbdl()[0], "RETRIEVE ((FILE = 'faculty') and (faculty = '" +
                               advisor_key + "')) (all attributes)");
}

TEST_F(TranslationTemplateTest, StoreTemplate) {
  // Ch. VI.G: a RETRIEVE to determine the status of duplicates, then
  //   INSERT (<FILE, record_type_x>, <record_type_x, key>, <items...>).
  Must("MOVE 'Template Course' TO title IN course");
  Must("MOVE 'Tmpl88' TO semester IN course");
  Must("MOVE 3 TO credits IN course");
  Must("STORE course");
  // Requests: key-allocation probe, duplicates probe, INSERT.
  ASSERT_EQ(LastAbdl().size(), 3u);
  EXPECT_TRUE(LastAbdl()[0].starts_with(
      "RETRIEVE ((FILE = 'course') and (course = 'course_"))
      << LastAbdl()[0];
  EXPECT_EQ(LastAbdl()[1],
            "RETRIEVE ((FILE = 'course') and (title = 'Template Course') "
            "and (semester = 'Tmpl88')) (course)");
  EXPECT_TRUE(LastAbdl()[2].starts_with("INSERT (<FILE, 'course'>, <course, "))
      << LastAbdl()[2];
  EXPECT_NE(LastAbdl()[2].find("<title, 'Template Course'>"),
            std::string::npos);
}

TEST_F(TranslationTemplateTest, ModifyTemplate) {
  // Ch. VI.F: UPDATE ((FILE = record) AND (record = run-unit dbkey))
  //   (data_item_i = user_value_i), repeated per field.
  Must("MOVE 'course_2' TO course IN course");
  Must("FIND ANY course USING course IN course");
  Must("MOVE 9 TO credits IN course");
  Must("MODIFY credits IN course");
  ASSERT_EQ(LastAbdl().size(), 1u);
  EXPECT_EQ(LastAbdl()[0],
            "UPDATE ((FILE = 'course') and (course = 'course_2')) "
            "(credits = 9)");
}

TEST_F(TranslationTemplateTest, DisconnectTemplate) {
  // Ch. VI.E (member side): UPDATE ((FILE = record) AND (record = run-unit
  //   dbkey) AND (set = owner dbkey)) (set = NULL).
  Must("MOVE 'student_2' TO student IN student");
  Must("FIND ANY student USING student IN student");
  const std::string owner =
      machine_->cit().CurrentOfSet("advisor")->owner_dbkey;
  Must("DISCONNECT student FROM advisor");
  ASSERT_GE(LastAbdl().size(), 1u);
  EXPECT_EQ(LastAbdl()[0],
            "UPDATE ((FILE = 'student') and (student = 'student_2') and "
            "(advisor = '" +
                owner + "')) (advisor = NULL)");
}

TEST_F(TranslationTemplateTest, EraseTemplate) {
  // Ch. VI.H.1: constraint-check RETRIEVEs (one per owned/referencing
  // set), then DELETE ((FILE = record) AND (record = run-unit dbkey)).
  Must("MOVE 'Erase Target' TO title IN course");
  Must("MOVE 'Er88' TO semester IN course");
  Must("MOVE 1 TO credits IN course");
  Must("STORE course");
  const std::string key = machine_->cit().run_unit()->dbkey;
  Must("ERASE course");
  const auto& abdl = LastAbdl();
  ASSERT_GE(abdl.size(), 2u);
  // course owns taught_by (member link_1): one membership probe.
  EXPECT_EQ(abdl[0], "RETRIEVE ((FILE = 'link_1') and (taught_by = '" + key +
                         "')) (taught_by)");
  EXPECT_EQ(abdl.back(),
            "DELETE ((FILE = 'course') and (course = '" + key + "'))");
}

TEST_F(TranslationTemplateTest, GetIssuesNoAbdl) {
  // Ch. VI.C: GET statements are served through KC from the buffers, not
  // mapped into ABDL retrieves.
  Must("MOVE 'course_1' TO course IN course");
  Must("FIND ANY course USING course IN course");
  Must("GET");
  EXPECT_TRUE(LastAbdl().empty());
}

TEST_F(TranslationTemplateTest, FindCurrentIssuesOneRefreshAtMost) {
  // Ch. VI.B.2: "the only function of this statement is to update CIT" —
  // the single request fetches the current member's record for the cache.
  Must("MOVE 'student_1' TO student IN student");
  Must("FIND ANY student USING student IN student");
  Must("FIND CURRENT student WITHIN advisor");
  EXPECT_EQ(LastAbdl().size(), 1u);
}

}  // namespace
}  // namespace mlds::kms
