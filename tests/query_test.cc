#include "abdm/query.h"

#include <gtest/gtest.h>

#include "abdm/record.h"

namespace mlds::abdm {
namespace {

Record CourseRecord() {
  Record r;
  r.Set(std::string(kFileAttribute), Value::String("course"));
  r.Set("title", Value::String("Advanced Database"));
  r.Set("credits", Value::Integer(4));
  r.Set("rating", Value::Float(4.5));
  return r;
}

TEST(PredicateTest, EqualityMatch) {
  Predicate p{"title", RelOp::kEq, Value::String("Advanced Database")};
  EXPECT_TRUE(p.Matches(CourseRecord()));
  p.value = Value::String("Intro");
  EXPECT_FALSE(p.Matches(CourseRecord()));
}

TEST(PredicateTest, MissingAttributeNeverMatches) {
  Predicate p{"nonexistent", RelOp::kNe, Value::Integer(0)};
  EXPECT_FALSE(p.Matches(CourseRecord()));
}

TEST(PredicateTest, OrderingOperators) {
  Record r = CourseRecord();
  EXPECT_TRUE((Predicate{"credits", RelOp::kGt, Value::Integer(3)}).Matches(r));
  EXPECT_TRUE((Predicate{"credits", RelOp::kGe, Value::Integer(4)}).Matches(r));
  EXPECT_FALSE((Predicate{"credits", RelOp::kLt, Value::Integer(4)}).Matches(r));
  EXPECT_TRUE((Predicate{"credits", RelOp::kLe, Value::Integer(4)}).Matches(r));
  EXPECT_TRUE((Predicate{"credits", RelOp::kNe, Value::Integer(3)}).Matches(r));
}

TEST(PredicateTest, NumericCrossKindComparison) {
  Record r = CourseRecord();
  EXPECT_TRUE(
      (Predicate{"rating", RelOp::kGt, Value::Integer(4)}).Matches(r));
}

TEST(PredicateTest, NullSemantics) {
  Record r;
  r.Set("f", Value::Null());
  EXPECT_TRUE((Predicate{"f", RelOp::kEq, Value::Null()}).Matches(r));
  EXPECT_FALSE((Predicate{"f", RelOp::kNe, Value::Null()}).Matches(r));
  EXPECT_FALSE((Predicate{"f", RelOp::kLt, Value::Integer(1)}).Matches(r));
  r.Set("f", Value::Integer(1));
  EXPECT_FALSE((Predicate{"f", RelOp::kEq, Value::Null()}).Matches(r));
  EXPECT_TRUE((Predicate{"f", RelOp::kNe, Value::Null()}).Matches(r));
}

TEST(QueryTest, EmptyQueryMatchesNothing) {
  Query q;
  EXPECT_FALSE(q.Matches(CourseRecord()));
}

TEST(QueryTest, EmptyConjunctionMatchesEverything) {
  Query q({Conjunction{}});
  EXPECT_TRUE(q.Matches(CourseRecord()));
}

TEST(QueryTest, ConjunctionRequiresAllPredicates) {
  Query q = Query::And({{"title", RelOp::kEq, Value::String("Advanced Database")},
                        {"credits", RelOp::kEq, Value::Integer(4)}});
  EXPECT_TRUE(q.Matches(CourseRecord()));
  Query q2 = Query::And({{"title", RelOp::kEq, Value::String("Advanced Database")},
                         {"credits", RelOp::kEq, Value::Integer(3)}});
  EXPECT_FALSE(q2.Matches(CourseRecord()));
}

TEST(QueryTest, DisjunctionRequiresAnyConjunction) {
  Query q({Conjunction{{{"credits", RelOp::kEq, Value::Integer(9)}}},
           Conjunction{{{"credits", RelOp::kEq, Value::Integer(4)}}}});
  EXPECT_TRUE(q.Matches(CourseRecord()));
}

TEST(QueryTest, ForFileLeadsWithFilePredicate) {
  Query q = Query::ForFile("course",
                           {{"credits", RelOp::kGt, Value::Integer(2)}});
  ASSERT_EQ(q.disjuncts().size(), 1u);
  ASSERT_EQ(q.disjuncts()[0].predicates.size(), 2u);
  EXPECT_EQ(q.disjuncts()[0].predicates[0].attribute, kFileAttribute);
  EXPECT_TRUE(q.Matches(CourseRecord()));
}

TEST(QueryTest, SingleFileDetectsCommonFile) {
  Query q = Query::ForFile("course");
  EXPECT_EQ(q.SingleFile(), "course");
}

TEST(QueryTest, SingleFileEmptyWhenFilesDiffer) {
  Query q({Conjunction{{{"FILE", RelOp::kEq, Value::String("a")}}},
           Conjunction{{{"FILE", RelOp::kEq, Value::String("b")}}}});
  EXPECT_EQ(q.SingleFile(), "");
}

TEST(QueryTest, SingleFileEmptyWhenUnqualified) {
  Query q = Query::And({{"credits", RelOp::kGt, Value::Integer(2)}});
  EXPECT_EQ(q.SingleFile(), "");
}

TEST(QueryTest, ToStringNotation) {
  Query q = Query::ForFile("course",
                           {{"title", RelOp::kEq, Value::String("DB")}});
  EXPECT_EQ(q.ToString(), "((FILE = 'course') and (title = 'DB'))");
}

}  // namespace
}  // namespace mlds::abdm
