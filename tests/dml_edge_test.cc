// Edge-case DML coverage: BY VALUE set selection, multi-member sets,
// FIND DUPLICATE within function sets, and currency subtleties.

#include <gtest/gtest.h>

#include <memory>

#include "abdl/parser.h"
#include "kds/engine.h"
#include "kms/dml_machine.h"
#include "network/ddl_parser.h"
#include "transform/abdm_mapping.h"
#include "university/university.h"

namespace mlds::kms {
namespace {

class ByValueSelectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto schema = network::ParseSchema(
        "SCHEMA NAME IS ledger;"
        "RECORD NAME IS account;"
        "  ITEM acct_no TYPE IS INTEGER;"
        "  DUPLICATES ARE NOT ALLOWED FOR acct_no;"
        "RECORD NAME IS entry;"
        "  ITEM amount TYPE IS FLOAT;"
        "SET NAME IS postings;"
        "  OWNER IS account; MEMBER IS entry;"
        "  INSERTION IS AUTOMATIC; RETENTION IS MANDATORY;"
        "  SET SELECTION IS BY VALUE OF acct_no IN account;");
    ASSERT_TRUE(schema.ok()) << schema.status();
    schema_ = std::move(*schema);
    auto db = transform::MapNetworkToAbdm(schema_);
    ASSERT_TRUE(db.ok());
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    ASSERT_TRUE(executor_->DefineDatabase(*db).ok());
    machine_ =
        std::make_unique<DmlMachine>(&schema_, nullptr, executor_.get());
    auto setup = machine_->RunProgram(
        "MOVE 101 TO acct_no IN account\nSTORE account\n"
        "MOVE 102 TO acct_no IN account\nSTORE account\n");
    ASSERT_TRUE(setup.ok()) << setup.status();
  }

  network::Schema schema_;
  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<DmlMachine> machine_;
};

TEST_F(ByValueSelectionTest, StoreSelectsOwnerByItemValue) {
  // No FIND establishes the postings currency; the BY VALUE clause
  // resolves the owner from the UWA's account template.
  auto run = machine_->RunProgram(
      "MOVE 102 TO acct_no IN account\n"
      "MOVE 25.5 TO amount IN entry\n"
      "STORE entry\n");
  ASSERT_TRUE(run.ok()) << run.status();
  auto req = abdl::ParseRequest("RETRIEVE ((FILE = entry)) (postings)");
  auto check = engine_.Execute(*req);
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->records.size(), 1u);
  EXPECT_EQ(check->records[0].GetOrNull("postings").AsString(), "account_2");
}

TEST_F(ByValueSelectionTest, StoreFailsWithoutSelectorValueOrCurrency) {
  DmlMachine machine(&schema_, nullptr, executor_.get());
  auto run = machine.RunProgram(
      "MOVE 1.0 TO amount IN entry\nSTORE entry\n");
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kCurrencyError);
}

TEST(MultiMemberSetTest, FindIteratesEachMemberTypeSeparately) {
  // CODASYL sets may have several member record types; FIND FIRST <type>
  // WITHIN <set> iterates only that type's members.
  auto schema = network::ParseSchema(
      "SCHEMA NAME IS office;"
      "RECORD NAME IS manager; ITEM mname TYPE IS CHARACTER 8;"
      "RECORD NAME IS analyst; ITEM aname TYPE IS CHARACTER 8;"
      "RECORD NAME IS clerk; ITEM cname TYPE IS CHARACTER 8;"
      "SET NAME IS supervises;"
      "  OWNER IS manager; MEMBER IS analyst; MEMBER IS clerk;"
      "  INSERTION IS MANUAL; RETENTION IS OPTIONAL;"
      "  SET SELECTION IS BY APPLICATION;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto db = transform::MapNetworkToAbdm(*schema);
  ASSERT_TRUE(db.ok());
  kds::Engine engine;
  kc::EngineExecutor executor(&engine);
  ASSERT_TRUE(executor.DefineDatabase(*db).ok());
  DmlMachine machine(&*schema, nullptr, &executor);

  auto setup = machine.RunProgram(
      "MOVE 'boss' TO mname IN manager\nSTORE manager\n"
      "MOVE 'ann' TO aname IN analyst\nSTORE analyst\n"
      "CONNECT analyst TO supervises\n"
      "MOVE 'carl' TO cname IN clerk\nSTORE clerk\n"
      "CONNECT clerk TO supervises\n"
      "MOVE 'cathy' TO cname IN clerk\nSTORE clerk\n"
      "CONNECT clerk TO supervises\n");
  ASSERT_TRUE(setup.ok()) << setup.status();

  // Iterate clerks within the occurrence: two of them.
  auto first = machine.ExecuteText("FIND FIRST clerk WITHIN supervises");
  ASSERT_TRUE(first.ok()) << first.status();
  auto second = machine.ExecuteText("FIND NEXT clerk WITHIN supervises");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(
      machine.ExecuteText("FIND NEXT clerk WITHIN supervises").status()
          .IsNotFound());
  // Analysts: one.
  auto analyst = machine.ExecuteText("FIND FIRST analyst WITHIN supervises");
  ASSERT_TRUE(analyst.ok());
  EXPECT_EQ(analyst->records[0].GetOrNull("aname").AsString(), "ann");
  EXPECT_TRUE(
      machine.ExecuteText("FIND NEXT analyst WITHIN supervises").status()
          .IsNotFound());
}

class DmlCurrencyEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    university::UniversityConfig config;
    auto db = university::BuildUniversityDatabase(config, executor_.get());
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<university::UniversityDatabase>(std::move(*db));
    machine_ = std::make_unique<DmlMachine>(&db_->mapping.schema,
                                            &db_->mapping, executor_.get());
  }

  DmlResult Must(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_TRUE(result.ok()) << dml << ": " << result.status();
    return result.ok() ? std::move(*result) : DmlResult{};
  }

  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<university::UniversityDatabase> db_;
  std::unique_ptr<DmlMachine> machine_;
};

TEST_F(DmlCurrencyEdgeTest, FindDuplicateWithinFunctionSetBuffer) {
  // Load the advisor set buffer via FIND FIRST, then FIND DUPLICATE walks
  // members sharing the current member's major.
  Must("MOVE 'faculty_4' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  auto first = machine_->ExecuteText("FIND FIRST student WITHIN advisor");
  if (!first.ok()) {
    GTEST_SKIP() << "faculty_4 advises no one under this seed";
  }
  auto dup = machine_->ExecuteText(
      "FIND DUPLICATE WITHIN advisor USING advisor IN student");
  // Either another advisee exists (same advisor value) or NotFound; both
  // exercise the buffer path.
  if (dup.ok()) {
    EXPECT_EQ(dup->records[0].GetOrNull("advisor").AsString(), "faculty_4");
  } else {
    EXPECT_TRUE(dup.status().IsNotFound());
  }
}

TEST_F(DmlCurrencyEdgeTest, GetThenStoreCopiesRecord) {
  // GET loads the UWA; STORE of the same type then duplicates the record
  // except where the user MOVEs new values — the classic copy pattern.
  Must("MOVE 'course_3' TO course IN course");
  Must("FIND ANY course USING course IN course");
  Must("GET");
  Must("MOVE 'Copied Title' TO title IN course");
  DmlResult stored = Must("STORE course");
  const std::string new_key =
      stored.records[0].GetOrNull("course").AsString();
  EXPECT_NE(new_key, "course_3");
  EXPECT_EQ(stored.records[0].GetOrNull("title").AsString(), "Copied Title");
  // Semester came from the GET of course_3.
  auto req = abdl::ParseRequest(
      "RETRIEVE ((FILE = course) and (course = 'course_3')) (semester)");
  auto original = engine_.Execute(*req);
  ASSERT_TRUE(original.ok());
  EXPECT_EQ(stored.records[0].GetOrNull("semester"),
            original->records[0].GetOrNull("semester"));
}

TEST_F(DmlCurrencyEdgeTest, EraseClearsRunUnitButNotRecordCurrency) {
  Must("MOVE 'Doomed' TO title IN course");
  Must("MOVE 'Never88' TO semester IN course");
  Must("MOVE 1 TO credits IN course");
  Must("STORE course");
  Must("ERASE course");
  EXPECT_FALSE(machine_->cit().run_unit().has_value());
  // A fresh FIND works immediately after.
  Must("MOVE 'course_1' TO course IN course");
  Must("FIND ANY course USING course IN course");
  EXPECT_TRUE(machine_->cit().run_unit().has_value());
}

TEST_F(DmlCurrencyEdgeTest, FindWithinCurrentOnIsaSet) {
  // Members of person_student under a specific person: at most one
  // (students and persons pair 1:1 in the generated data).
  Must("MOVE 'person_5' TO person IN person");
  Must("FIND ANY person USING person IN person");
  Must("MOVE 'student_5' TO student IN student");
  auto found = machine_->ExecuteText(
      "FIND student WITHIN person_student CURRENT USING student IN student");
  ASSERT_TRUE(found.ok()) << found.status();
  EXPECT_EQ(found->records[0].GetOrNull("student").AsString(), "student_5");
}

}  // namespace
}  // namespace mlds::kms
