// Property tests over randomly generated functional schemas: the Ch. V
// transformation invariants must hold for every valid schema, not just
// the University example.

#include <gtest/gtest.h>

#include <random>

#include "daplex/ddl_parser.h"
#include "network/ddl_parser.h"
#include "daplex/schema.h"
#include "transform/abdm_mapping.h"
#include "transform/fun_to_net.h"

namespace mlds::transform {
namespace {

using daplex::Function;
using daplex::FunctionClass;
using daplex::FunctionalSchema;

/// Generates a random valid functional schema: `entities` entity types,
/// up to `subtypes` subtypes hanging off random earlier types, and random
/// functions of every class.
FunctionalSchema RandomSchema(std::mt19937* rng, int entities, int subtypes) {
  FunctionalSchema schema("random");
  std::vector<std::string> type_names;
  std::uniform_int_distribution<int> fn_count(1, 4);
  std::uniform_int_distribution<int> fn_kind(0, 5);

  auto make_functions = [&](const std::string& owner) {
    std::vector<Function> functions;
    const int n = fn_count(*rng);
    for (int i = 0; i < n; ++i) {
      Function fn;
      fn.name = owner + "_f" + std::to_string(i);
      switch (fn_kind(*rng)) {
        case 0:
          fn.result = daplex::FunctionResult::kInteger;
          break;
        case 1:
          fn.result = daplex::FunctionResult::kString;
          fn.max_length = 10;
          break;
        case 2:
          fn.result = daplex::FunctionResult::kFloat;
          break;
        case 3:
          fn.result = daplex::FunctionResult::kString;
          fn.set_valued = true;  // scalar multi-valued
          break;
        case 4:
        case 5: {
          if (type_names.empty()) {
            fn.result = daplex::FunctionResult::kInteger;
            break;
          }
          std::uniform_int_distribution<size_t> pick(0, type_names.size() - 1);
          fn.result = daplex::FunctionResult::kEntity;
          fn.target = type_names[pick(*rng)];
          fn.set_valued = fn_kind(*rng) >= 3;  // mv or sv at random
          break;
        }
      }
      functions.push_back(std::move(fn));
    }
    return functions;
  };

  for (int e = 0; e < entities; ++e) {
    daplex::EntityType entity;
    entity.name = "e" + std::to_string(e);
    entity.functions = make_functions(entity.name);
    EXPECT_TRUE(schema.AddEntity(std::move(entity)).ok());
    type_names.push_back("e" + std::to_string(e));
  }
  for (int s = 0; s < subtypes; ++s) {
    daplex::Subtype sub;
    sub.name = "s" + std::to_string(s);
    std::uniform_int_distribution<size_t> pick(0, type_names.size() - 1);
    sub.supertypes = {type_names[pick(*rng)]};
    sub.functions = make_functions(sub.name);
    EXPECT_TRUE(schema.AddSubtype(std::move(sub)).ok());
    type_names.push_back("s" + std::to_string(s));
  }
  return schema;
}

class TransformPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TransformPropertyTest, ChapterFiveInvariantsHold) {
  std::mt19937 rng(GetParam());
  std::uniform_int_distribution<int> entity_count(1, 6);
  std::uniform_int_distribution<int> subtype_count(0, 4);

  for (int trial = 0; trial < 12; ++trial) {
    FunctionalSchema schema =
        RandomSchema(&rng, entity_count(rng), subtype_count(rng));
    ASSERT_TRUE(schema.Validate().ok());
    auto mapping = TransformFunctionalToNetwork(schema);
    ASSERT_TRUE(mapping.ok()) << mapping.status();

    // Invariant 1: every entity type and subtype has a record type.
    for (const auto& e : schema.entities()) {
      EXPECT_NE(mapping->schema.FindRecord(e.name), nullptr) << e.name;
    }
    for (const auto& s : schema.subtypes()) {
      EXPECT_NE(mapping->schema.FindRecord(s.name), nullptr) << s.name;
    }

    // Invariant 2: entities have SYSTEM sets; subtypes have ISA sets per
    // supertype instead.
    for (const auto& e : schema.entities()) {
      const network::SetType* sys =
          mapping->schema.FindSet(SystemSetName(e.name));
      ASSERT_NE(sys, nullptr) << e.name;
      EXPECT_TRUE(sys->IsSystemOwned());
    }
    for (const auto& s : schema.subtypes()) {
      EXPECT_EQ(mapping->schema.FindSet(SystemSetName(s.name)), nullptr);
      for (const auto& super : s.supertypes) {
        const network::SetType* isa =
            mapping->schema.FindSet(IsaSetName(super, s.name));
        ASSERT_NE(isa, nullptr);
        EXPECT_EQ(isa->owner, super);
        EXPECT_EQ(isa->insertion, network::InsertionMode::kAutomatic);
        EXPECT_EQ(isa->retention, network::RetentionMode::kFixed);
      }
    }

    // Invariant 3: record/set counts follow the Ch. V formulas.
    size_t sv = 0, mv = 0, scalar_attrs = 0;
    size_t isa_sets = 0;
    auto count_functions = [&](const std::string& type) {
      for (const auto& fn : *schema.FunctionsOf(type)) {
        switch (schema.Classify(fn)) {
          case FunctionClass::kSingleValued:
            ++sv;
            break;
          case FunctionClass::kMultiValued:
            ++mv;
            break;
          default:
            ++scalar_attrs;
        }
      }
    };
    for (const auto& e : schema.entities()) count_functions(e.name);
    for (const auto& s : schema.subtypes()) {
      count_functions(s.name);
      isa_sets += s.supertypes.size();
    }
    const size_t links = mapping->link_records.size();
    // Every multi-valued function yields exactly one set; a many-to-many
    // pair consumes two of them and adds one link record.
    EXPECT_EQ(mapping->schema.sets().size(),
              schema.entities().size() + isa_sets + sv + mv);
    EXPECT_EQ(mapping->schema.records().size(),
              schema.entities().size() + schema.subtypes().size() + links);

    // Invariant 4: scalar functions landed as attributes of their type's
    // record; entity-valued ones did not.
    auto check_attrs = [&](const std::string& type) {
      const network::RecordType* record = mapping->schema.FindRecord(type);
      size_t expected = 0;
      for (const auto& fn : *schema.FunctionsOf(type)) {
        const FunctionClass cls = schema.Classify(fn);
        if (cls == FunctionClass::kScalar ||
            cls == FunctionClass::kScalarMultiValued) {
          ++expected;
          EXPECT_NE(record->FindAttribute(fn.name), nullptr) << fn.name;
        } else {
          EXPECT_EQ(record->FindAttribute(fn.name), nullptr) << fn.name;
        }
      }
      EXPECT_EQ(record->attributes.size(), expected) << type;
    };
    for (const auto& e : schema.entities()) check_attrs(e.name);
    for (const auto& s : schema.subtypes()) check_attrs(s.name);

    // Invariant 5: the AB mapping yields one file per record type, each
    // leading with FILE + key, and it defines cleanly.
    auto db = MapNetworkToAbdm(mapping->schema, &*mapping);
    ASSERT_TRUE(db.ok()) << db.status();
    EXPECT_EQ(db->files.size(), mapping->schema.records().size());
    for (const auto& file : db->files) {
      ASSERT_GE(file.attributes.size(), 2u);
      EXPECT_EQ(file.attributes[0].name, "FILE");
      EXPECT_EQ(file.attributes[1].name, file.name);
    }

    // Invariant 6: the transformed schema's DDL round-trips.
    auto reparsed = network::ParseSchema(mapping->schema.ToDdl());
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(*reparsed, mapping->schema);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformPropertyTest,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17, 19));

}  // namespace
}  // namespace mlds::transform
