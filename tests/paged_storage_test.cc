// Paged storage engine tests: on-disk persistence by default (page
// files + clean-shutdown marker, no snapshot calls), buffer-pool
// caching and eviction accounting, secondary indexes surviving
// restarts and WAL recovery, crash-at-every-boundary recovery onto
// page files, and backward compatibility with pre-paged snapshots.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "abdl/parser.h"
#include "kds/engine.h"
#include "kds/snapshot.h"
#include "kds/wal.h"
#include "kfs/formatter.h"
#include "kms/daplex_machine.h"
#include "kms/dli_machine.h"
#include "kms/dml_machine.h"
#include "kms/sql_machine.h"
#include "mlds/mlds.h"
#include "university/university.h"

namespace mlds {
namespace {

using abdm::DatabaseDescriptor;
using abdm::FileDescriptor;
using abdm::ValueKind;
using kds::Engine;
using kds::EngineOptions;
using kds::PoolCounters;

/// A fresh per-test scratch directory under the test temp root; any
/// leftovers from a previous run of the same test are removed first.
std::string FreshDataDir(const std::string& name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / ("mlds_paged_" + name);
  std::error_code ec;
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);
  return dir.string();
}

FileDescriptor AccountFile() {
  FileDescriptor f;
  f.name = "account";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"acct", ValueKind::kString, 0, true},
      {"balance", ValueKind::kInteger, 0, true},
      {"note", ValueKind::kString, 40, false},
  };
  return f;
}

DatabaseDescriptor BankSchema() {
  DatabaseDescriptor db;
  db.name = "bank";
  db.files = {AccountFile()};
  return db;
}

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

std::string SnapshotOf(const Engine& engine) {
  std::ostringstream out;
  EXPECT_TRUE(kds::SaveSnapshot(engine, out).ok());
  return out.str();
}

void MustExecute(Engine& engine, std::string_view text) {
  auto response = engine.Execute(MustParse(text));
  ASSERT_TRUE(response.ok()) << text << ": " << response.status();
}

std::string InsertAccount(int i) {
  return "INSERT (<FILE, account>, <acct, 'a" + std::to_string(i) +
         "'>, <balance, " + std::to_string(i * 10) +
         ">, <note, 'note-" + std::to_string(i) + "'>)";
}

// ---------------------------------------------------------------------
// Persistence across a clean restart: the tentpole contract. No
// snapshot call anywhere — the page files and the clean-shutdown
// marker alone carry the database.

TEST(PagedStorageTest, CleanRestartRestoresByteIdenticalState) {
  const std::string dir = FreshDataDir("clean_restart");
  std::string before;
  {
    EngineOptions options;
    options.data_dir = dir;
    Engine engine(options);
    ASSERT_TRUE(engine.restore_status().ok());
    ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
    for (int i = 0; i < 100; ++i) MustExecute(engine, InsertAccount(i));
    // Mutations and a record long enough to overflow one slot chain.
    MustExecute(engine,
                "UPDATE ((FILE = account) and (acct = 'a7')) (balance = 777)");
    MustExecute(engine, "DELETE ((FILE = account) and (acct = 'a13'))");
    MustExecute(engine,
                "INSERT (<FILE, account>, <acct, 'big'>, <balance, 1>, "
                "<note, '" + std::string(200, 'x') + "'>)");
    before = SnapshotOf(engine);
  }  // destructor flushes and writes the clean-shutdown marker.

  EngineOptions options;
  options.data_dir = dir;
  Engine revived(options);
  ASSERT_TRUE(revived.restore_status().ok());
  EXPECT_EQ(revived.FileSize("account"), 100u);  // 100 + big - a13.
  EXPECT_EQ(SnapshotOf(revived), before);

  // The restored store answers queries without any re-definition.
  auto response = revived.Execute(MustParse(
      "RETRIEVE ((FILE = account) and (acct = 'a7')) (all attributes)"));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->records.size(), 1u);
  EXPECT_EQ(response->records[0].GetOrNull("balance").AsInteger(), 777);

  // Re-running the DDL (as a restarted server does) re-attaches to the
  // restored files instead of failing or wiping them.
  EXPECT_TRUE(revived.DefineDatabase(BankSchema()).ok());
  EXPECT_EQ(revived.FileSize("account"), 100u);
}

TEST(PagedStorageTest, RestartWithLargerPoolPreservesState) {
  const std::string dir = FreshDataDir("pool_restart");
  std::string before;
  {
    EngineOptions options;
    options.data_dir = dir;
    options.pool_pages = 2;  // tiny pool: constant eviction traffic.
    Engine engine(options);
    ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
    for (int i = 0; i < 64; ++i) MustExecute(engine, InsertAccount(i));
    before = SnapshotOf(engine);
  }
  EngineOptions options;
  options.data_dir = dir;
  options.pool_pages = 64;  // pool size is a cache knob, not a format knob.
  Engine revived(options);
  ASSERT_TRUE(revived.restore_status().ok());
  EXPECT_EQ(SnapshotOf(revived), before);
}

// ---------------------------------------------------------------------
// Buffer-pool accounting: hits, misses, evictions, and dirty
// write-backs are real events, not derived estimates.

TEST(PagedStorageTest, PoolCountersTrackHitsMissesEvictionsWritebacks) {
  EngineOptions options;
  options.data_dir = FreshDataDir("pool_counters");
  options.pool_pages = 2;
  Engine engine(options);
  ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
  for (int i = 0; i < 64; ++i) MustExecute(engine, InsertAccount(i));

  const PoolCounters after_load = engine.pool_stats();
  // Filling many blocks through a 2-frame pool forces dirty evictions.
  EXPECT_GT(after_load.evictions, 0u);
  EXPECT_GT(after_load.dirty_writebacks, 0u);

  // A full scan touches more distinct pages than the pool holds: the
  // first pass misses, and a popular page re-fetched while resident is
  // a hit.
  MustExecute(engine, "RETRIEVE (FILE = account) (all attributes)");
  MustExecute(engine, "RETRIEVE (FILE = account) (all attributes)");
  const PoolCounters after_scan = engine.pool_stats();
  EXPECT_GT(after_scan.misses, after_load.misses);
  EXPECT_GT(after_scan.hits, after_load.hits);
  EXPECT_GT(after_scan.evictions, after_load.evictions);

  // A pool big enough for the whole file turns the second scan into
  // pure hits: zero physical reads.
  EngineOptions big;
  big.data_dir = FreshDataDir("pool_counters_big");
  big.pool_pages = 256;
  Engine cached(big);
  ASSERT_TRUE(cached.DefineDatabase(BankSchema()).ok());
  for (int i = 0; i < 64; ++i) MustExecute(cached, InsertAccount(i));
  MustExecute(cached, "RETRIEVE (FILE = account) (all attributes)");
  cached.ResetStats();
  const PoolCounters warm = cached.pool_stats();
  MustExecute(cached, "RETRIEVE (FILE = account) (all attributes)");
  EXPECT_EQ(cached.pool_stats().misses, warm.misses);
  EXPECT_EQ(cached.cumulative_io().blocks_read, 0u);
}

// ---------------------------------------------------------------------
// Secondary indexes: built on demand, persisted in the page-file
// metadata, recovered from the WAL, and chosen by the planner.

TEST(PagedStorageTest, SecondaryIndexSurvivesCleanRestart) {
  const std::string dir = FreshDataDir("secondary_restart");
  {
    EngineOptions options;
    options.data_dir = dir;
    Engine engine(options);
    ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
    for (int i = 0; i < 10; ++i) MustExecute(engine, InsertAccount(i));
    ASSERT_TRUE(engine.CreateIndex("account", "note").ok());
    ASSERT_EQ(engine.SecondaryIndexes("account"),
              std::vector<std::string>{"note"});
  }
  EngineOptions options;
  options.data_dir = dir;
  Engine revived(options);
  ASSERT_TRUE(revived.restore_status().ok());
  EXPECT_EQ(revived.SecondaryIndexes("account"),
            std::vector<std::string>{"note"});
  // The revived index is an access path, not a scan: an equality probe
  // on the indexed attribute reads no more than the matching blocks.
  revived.ResetStats();
  auto response = revived.Execute(MustParse(
      "RETRIEVE ((FILE = account) and (note = 'note-4')) (all attributes)"));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->records.size(), 1u);
  EXPECT_LE(response->io.blocks_read, 2u);
}

TEST(PagedStorageTest, CreateIndexIsLoggedAndRecovered) {
  kds::WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);
  ASSERT_TRUE(engine.DefineDatabase(BankSchema()).ok());
  for (int i = 0; i < 6; ++i) MustExecute(engine, InsertAccount(i));
  ASSERT_TRUE(engine.CreateIndex("account", "note").ok());
  MustExecute(engine, InsertAccount(6));  // post-index write stays indexed.

  Engine recovered;
  std::istringstream no_checkpoint("");
  auto report = kds::RecoverEngine(no_checkpoint, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(recovered.SecondaryIndexes("account"),
            std::vector<std::string>{"note"});
  EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(engine));
}

// ---------------------------------------------------------------------
// Crash recovery: page files are a cache of the WAL + checkpoint
// truth. Crash the log at every entry boundary of a mixed workload;
// the engine restarted over the crashed data dir must discard the
// stale pages and rebuild exactly the committed prefix.

struct Unit {
  std::vector<std::string> requests;
  bool transactional = false;
};

std::vector<Unit> MakeWorkload(int units) {
  std::vector<Unit> workload;
  int next_key = 0;
  for (int u = 0; u < units; ++u) {
    Unit unit;
    if (u % 4 == 3) {
      unit.transactional = true;
      unit.requests = {
          InsertAccount(next_key++),
          "UPDATE ((FILE = account) and (acct = 'a0')) (balance = balance + 1)",
      };
    } else if (u % 5 == 2 && next_key > 1) {
      unit.requests = {"DELETE ((FILE = account) and (acct = 'a" +
                       std::to_string(next_key - 2) + "'))"};
    } else {
      unit.requests = {InsertAccount(next_key++)};
    }
    workload.push_back(std::move(unit));
  }
  return workload;
}

void ApplyUnit(Engine& engine, const Unit& unit) {
  if (unit.transactional) {
    abdl::Transaction txn;
    for (const auto& text : unit.requests) txn.push_back(MustParse(text));
    (void)engine.ExecuteTransaction(txn);
  } else {
    (void)engine.Execute(MustParse(unit.requests[0]));
  }
}

TEST(PagedStorageTest, CrashAtEveryBoundaryRecoversOntoPageFiles) {
  const std::vector<Unit> workload = MakeWorkload(/*units=*/12);

  // Schema checkpoint (the schema predates the log, as on a backend
  // that checkpoints right after definition).
  std::string schema_checkpoint;
  {
    Engine schema_only;
    ASSERT_TRUE(schema_only.DefineDatabase(BankSchema()).ok());
    schema_checkpoint = SnapshotOf(schema_only);
  }

  // Clean reference run to map crash points to committed units.
  kds::WalWriter clean_wal;
  Engine clean_engine;
  ASSERT_TRUE(clean_engine.DefineDatabase(BankSchema()).ok());
  clean_engine.AttachWal(&clean_wal);
  std::vector<uint64_t> entries_after_unit;
  for (const auto& unit : workload) {
    ApplyUnit(clean_engine, unit);
    entries_after_unit.push_back(clean_wal.entry_count());
  }
  const uint64_t total_entries = clean_wal.entry_count();

  // "Crashed" victims park here so their destructors — which would
  // flush pages and write the clean-shutdown marker — run only after
  // the whole grid has been asserted, over dirs nothing reads again.
  std::vector<std::unique_ptr<Engine>> crashed;

  for (uint64_t crash_at = 0; crash_at <= total_entries; ++crash_at) {
    const std::string dir =
        FreshDataDir("crash_grid_" + std::to_string(crash_at));
    // Victim writes through page files in `dir`. Simulate the process
    // dying by parking the engine undestructed: no flush runs and no
    // clean-shutdown marker certifies the page files.
    kds::WalWriter wal;
    {
      EngineOptions options;
      options.data_dir = dir;
      auto victim = std::make_unique<Engine>(options);
      ASSERT_TRUE(victim->restore_status().ok());
      ASSERT_TRUE(victim->DefineDatabase(BankSchema()).ok());
      victim->AttachWal(&wal);
      wal.ArmCrash({.entries_until_crash = static_cast<int>(crash_at),
                    .torn_bytes = static_cast<size_t>(crash_at % 7)});
      for (const auto& unit : workload) ApplyUnit(*victim, unit);
      victim->AttachWal(nullptr);  // the stack-scoped log dies first.
      crashed.push_back(std::move(victim));  // crash: dtor deferred.
    }

    // Restarting over the crashed dir must wipe the stale page files
    // and leave WAL recovery authoritative.
    EngineOptions options;
    options.data_dir = dir;
    Engine restarted(options);
    ASSERT_TRUE(restarted.restore_status().ok());
    EXPECT_TRUE(restarted.FileNames().empty())
        << "crash_at=" << crash_at << ": stale page files survived";

    std::istringstream checkpoint(schema_checkpoint);
    auto report =
        kds::RecoverEngine(checkpoint, wal.contents(), &restarted);
    ASSERT_TRUE(report.ok()) << "crash_at=" << crash_at << ": "
                             << report.status();

    // Oracle: exactly the committed units.
    Engine reference;
    ASSERT_TRUE(reference.DefineDatabase(BankSchema()).ok());
    for (size_t u = 0; u < workload.size(); ++u) {
      if (entries_after_unit[u] <= crash_at) ApplyUnit(reference, workload[u]);
    }
    EXPECT_EQ(SnapshotOf(restarted), SnapshotOf(reference))
        << "recovered state diverges at crash point " << crash_at;
  }
}

TEST(PagedStorageTest, CrashBetweenWritebackAndCheckpointRecoversExactly) {
  const std::string dir = FreshDataDir("writeback_crash");
  kds::WalWriter wal;
  std::string schema_checkpoint;
  {
    Engine schema_only;
    ASSERT_TRUE(schema_only.DefineDatabase(BankSchema()).ok());
    schema_checkpoint = SnapshotOf(schema_only);
  }
  std::string full_state;
  std::unique_ptr<Engine> victim;  // parked: its dtor must not run yet.
  {
    EngineOptions options;
    options.data_dir = dir;
    options.pool_pages = 8;
    auto engine = std::make_unique<Engine>(options);
    ASSERT_TRUE(engine->DefineDatabase(BankSchema()).ok());
    engine->AttachWal(&wal);
    for (int i = 0; i < 20; ++i) MustExecute(*engine, InsertAccount(i));
    // Dirty pages reach the disk files here — but no checkpoint and no
    // clean marker follow, so the page files are *ahead* of any
    // checkpoint yet uncertified.
    ASSERT_TRUE(engine->Flush().ok());
    for (int i = 20; i < 30; ++i) MustExecute(*engine, InsertAccount(i));
    full_state = SnapshotOf(*engine);
    engine->AttachWal(nullptr);
    victim = std::move(engine);  // kill between write-back and checkpoint.
  }

  EngineOptions options;
  options.data_dir = dir;
  Engine restarted(options);
  ASSERT_TRUE(restarted.restore_status().ok());
  EXPECT_TRUE(restarted.FileNames().empty());
  std::istringstream checkpoint(schema_checkpoint);
  auto report = kds::RecoverEngine(checkpoint, wal.contents(), &restarted);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(SnapshotOf(restarted), full_state);  // byte-identical.
  EXPECT_EQ(restarted.FileSize("account"), 30u);
}

// ---------------------------------------------------------------------
// Backward compatibility: snapshots written before the paged engine
// (four-field ATTR lines, no INDEX lines) still load.

TEST(PagedStorageTest, LegacyFourFieldSnapshotStillLoads) {
  const std::string path =
      std::string(MLDS_TEST_DATA_DIR) + "/legacy_snapshot_v1.snap";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture " << path;
  Engine engine;
  ASSERT_TRUE(kds::LoadSnapshot(in, &engine).ok());
  ASSERT_TRUE(engine.HasFile("parts"));
  EXPECT_EQ(engine.FileSize("parts"), 3u);
  const abdm::FileDescriptor* desc = engine.FindDescriptor("parts");
  ASSERT_NE(desc, nullptr);
  ASSERT_EQ(desc->attributes.size(), 3u);
  EXPECT_TRUE(desc->attributes[1].directory);   // pno was a directory attr.
  EXPECT_FALSE(desc->attributes[2].indexed);    // legacy: no indexed flag.
  EXPECT_TRUE(engine.SecondaryIndexes("parts").empty());
  auto response = engine.Execute(MustParse(
      "RETRIEVE ((FILE = parts) and (pno = 'p2')) (all attributes)"));
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->records.size(), 1u);
  EXPECT_EQ(response->records[0].GetOrNull("weight").AsInteger(), 17);

  // A round trip through today's writer emits five-field ATTR lines
  // (legacy attributes stay unindexed) without changing the data.
  std::string modern = SnapshotOf(engine);
  EXPECT_NE(modern.find("ATTR pno string 0 1 0"), std::string::npos)
      << modern;
  Engine reloaded;
  std::istringstream modern_in(modern);
  ASSERT_TRUE(kds::LoadSnapshot(modern_in, &reloaded).ok());
  EXPECT_EQ(SnapshotOf(reloaded), modern);
}

// ---------------------------------------------------------------------
// The planner chooses secondary indexes, and says so in EXPLAIN —
// including range predicates over non-directory attributes.

TEST(PagedStorageTest, ExplainShowsSecondaryRangePath) {
  MldsSystem system;
  ASSERT_TRUE(system
                  .LoadRelationalDatabase(
                      "SCHEMA registrar;"
                      "CREATE TABLE course (title CHAR(20) NOT NULL, "
                      "credits INTEGER, UNIQUE (title));")
                  .ok());
  auto session = system.OpenSqlSession("registrar");
  ASSERT_TRUE(session.ok());
  kms::SqlMachine* machine = *session;
  for (int i = 0; i < 8; ++i) {
    auto insert = machine->ExecuteText(
        "INSERT INTO course (title, credits) VALUES ('C" + std::to_string(i) +
        "', " + std::to_string(i) + ")");
    ASSERT_TRUE(insert.ok()) << insert.status();
  }
  auto outcome =
      machine->ExecuteText("EXPLAIN SELECT title FROM course WHERE credits > 5");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_NE(outcome->plan, nullptr);
  const std::string rendered = kfs::FormatPlan(*outcome->plan);
  EXPECT_NE(rendered.find("INDEX RANGE [secondary] (credits > 5)"),
            std::string::npos)
      << rendered;
  EXPECT_EQ(outcome->rows.size(), 2u);
}

// ---------------------------------------------------------------------
// The full stack: all four language interfaces write through one
// persistent kernel; a restarted system re-attaches via its DDL and
// every language reads its own rows back. No snapshot calls.

constexpr char kShopDdl[] =
    "SCHEMA NAME IS shop;"
    "RECORD NAME IS customer;"
    "  ITEM cname TYPE IS CHARACTER 20;"
    "SET NAME IS system_customer;"
    "  OWNER IS SYSTEM; MEMBER IS customer;"
    "  INSERTION IS AUTOMATIC; RETENTION IS FIXED;"
    "  SET SELECTION IS BY APPLICATION;";

constexpr char kPayrollDdl[] =
    "SCHEMA payroll;"
    "CREATE TABLE staff (name CHAR(12) NOT NULL, wage FLOAT, UNIQUE (name));";

constexpr char kClinicDdl[] =
    "SCHEMA clinic;"
    "SEGMENT patient; FIELD pname CHAR(12);"
    "SEGMENT visit PARENT patient; FIELD vdate CHAR(8); FIELD cost FLOAT;";

void LoadAllFour(MldsSystem& system) {
  ASSERT_TRUE(system.LoadNetworkDatabase(kShopDdl).ok());
  ASSERT_TRUE(
      system.LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
  ASSERT_TRUE(system.LoadRelationalDatabase(kPayrollDdl).ok());
  ASSERT_TRUE(system.LoadHierarchicalDatabase(kClinicDdl).ok());
}

TEST(PagedStorageTest, FourLanguagesSurviveRestart) {
  const std::string dir = FreshDataDir("four_languages");

  {
    MldsSystem::Options options;
    options.engine.data_dir = dir;
    MldsSystem system(options);
    LoadAllFour(system);

    // CODASYL-DML over the network database.
    auto dml = system.OpenCodasylSession("shop");
    ASSERT_TRUE(dml.ok());
    auto stored = (*dml)->RunProgram(
        "MOVE 'nakamura' TO cname IN customer\nSTORE customer\n");
    ASSERT_TRUE(stored.ok()) << stored.status();

    // Daplex over the functional database.
    auto daplex = system.OpenDaplexSession("university");
    ASSERT_TRUE(daplex.ok());
    auto created =
        (*daplex)->ExecuteStatement("CREATE department (dname = 'Philosophy')");
    ASSERT_TRUE(created.ok()) << created.status();

    // SQL over the relational database.
    auto sql = system.OpenSqlSession("payroll");
    ASSERT_TRUE(sql.ok());
    auto inserted = (*sql)->ExecuteText(
        "INSERT INTO staff (name, wage) VALUES ('ada', 91.5)");
    ASSERT_TRUE(inserted.ok()) << inserted.status();

    // DL/I over the hierarchical database.
    auto dli = system.OpenDliSession("clinic");
    ASSERT_TRUE(dli.ok());
    auto isrt = (*dli)->ExecuteText("ISRT patient (pname = 'smith')");
    ASSERT_TRUE(isrt.ok()) << isrt.status();
  }  // system (and its engine) shut down cleanly here.

  MldsSystem::Options options;
  options.engine.data_dir = dir;
  MldsSystem revived(options);
  LoadAllFour(revived);  // DDL re-attaches to the restored kernel files.

  auto dml = revived.OpenCodasylSession("shop");
  ASSERT_TRUE(dml.ok());
  auto found = (*dml)->RunProgram(
      "MOVE 'nakamura' TO cname IN customer\n"
      "FIND ANY customer USING cname IN customer\n"
      "GET cname IN customer\n");
  ASSERT_TRUE(found.ok()) << found.status();
  ASSERT_EQ(found->back().records.size(), 1u);
  EXPECT_EQ(found->back().records[0].GetOrNull("cname").AsString(),
            "nakamura");

  auto daplex = revived.OpenDaplexSession("university");
  ASSERT_TRUE(daplex.ok());
  auto depts = (*daplex)->ExecuteText(
      "FOR EACH department SUCH THAT dname = 'Philosophy' PRINT dname");
  ASSERT_TRUE(depts.ok()) << depts.status();
  ASSERT_EQ(depts->size(), 1u);

  auto sql = revived.OpenSqlSession("payroll");
  ASSERT_TRUE(sql.ok());
  auto rows = (*sql)->ExecuteText("SELECT name, wage FROM staff");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0].GetOrNull("name").AsString(), "ada");

  auto dli = revived.OpenDliSession("clinic");
  ASSERT_TRUE(dli.ok());
  auto gu = (*dli)->ExecuteText("GU patient (pname = 'smith')");
  ASSERT_TRUE(gu.ok()) << gu.status();
  ASSERT_EQ(gu->segments.size(), 1u);
}

}  // namespace
}  // namespace mlds
