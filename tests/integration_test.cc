// End-to-end integration: complete DML programs driven through the MLDS
// facade, executed against both kernel realizations (single engine and
// MBDS), with record-identical results — the thesis's missing KCS-to-KDS
// integration, demonstrated working.

#include <gtest/gtest.h>

#include <memory>

#include "kfs/formatter.h"
#include "mlds/mlds.h"
#include "university/university.h"

namespace mlds {
namespace {

/// Builds a fully loaded university MLDS over the chosen kernel.
std::unique_ptr<MldsSystem> MakeSystem(bool use_mbds) {
  MldsSystem::Options options;
  options.use_mbds = use_mbds;
  options.backends = 4;
  auto system = std::make_unique<MldsSystem>(options);
  EXPECT_TRUE(
      system->LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
  university::UniversityConfig config;
  EXPECT_TRUE(
      university::BuildUniversityDatabaseOnLoaded(config, system->executor())
          .ok());
  return system;
}

class KernelParityTest : public ::testing::TestWithParam<bool> {};

TEST_P(KernelParityTest, ChapterSixSessionProducesSameRecords) {
  auto system = MakeSystem(GetParam());
  auto session = system->OpenCodasylSession("university");
  ASSERT_TRUE(session.ok());
  kms::DmlMachine* dml = *session;

  // A long mixed session covering every statement family.
  auto results = dml->RunProgram(
      "MOVE 'Computer Science' TO major IN student\n"
      "FIND ANY student USING major IN student\n"
      "GET student, major, advisor IN student\n"
      "FIND OWNER WITHIN advisor\n"
      "GET faculty, frank IN faculty\n"
      "FIND OWNER WITHIN employee_faculty\n"
      "MOVE 'person_37' TO person IN person\n"
      "FIND ANY person USING person IN person\n"
      "MOVE 'Integration' TO major IN student\n"
      "MOVE 'faculty_2' TO advisor IN student\n"
      "STORE student\n"
      "MOVE 77 TO age IN person\n"
      "MODIFY age IN person\n");
  // MODIFY age: run-unit is the student... statement must fail; split
  // below instead.
  if (!results.ok()) {
    // Expected: MODIFY age IN person fails because the run-unit is the
    // student; re-establish currency and retry, proving the session
    // survives statement-level errors.
    EXPECT_EQ(results.status().code(), StatusCode::kCurrencyError);
    auto retry = dml->RunProgram(
        "FIND ANY person USING person IN person\n"
        "MODIFY age IN person\n");
    ASSERT_TRUE(retry.ok()) << retry.status();
  }

  // The stored student exists with the expected shape on this kernel.
  auto check = dml->RunProgram(
      "MOVE 'Integration' TO major IN student\n"
      "FIND ANY student USING major IN student\n"
      "GET major, advisor, person_student IN student\n");
  ASSERT_TRUE(check.ok()) << check.status();
  const abdm::Record& student = check->back().records[0];
  EXPECT_EQ(student.GetOrNull("advisor").AsString(), "faculty_2");
  EXPECT_EQ(student.GetOrNull("person_student").AsString(), "person_37");
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelParityTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Mbds" : "SingleEngine";
                         });

TEST(KernelParityTest, IdenticalAnswersAcrossKernels) {
  auto single = MakeSystem(false);
  auto multi = MakeSystem(true);
  auto s1 = single->OpenCodasylSession("university");
  auto s2 = multi->OpenCodasylSession("university");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());

  const char* kProbes[] = {
      "FIND FIRST person WITHIN system_person",
      "FIND NEXT person WITHIN system_person",
      "FIND LAST person WITHIN system_person",
  };
  for (const char* probe : kProbes) {
    auto a = (*s1)->ExecuteText(probe);
    auto b = (*s2)->ExecuteText(probe);
    ASSERT_TRUE(a.ok()) << probe << ": " << a.status();
    ASSERT_TRUE(b.ok()) << probe << ": " << b.status();
    EXPECT_EQ(a->records, b->records) << probe;
  }

  // Daplex interface parity too.
  auto d1 = single->OpenDaplexSession("university");
  auto d2 = multi->OpenDaplexSession("university");
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  const char* kQueries[] = {
      "FOR EACH student SUCH THAT major = 'Computer Science' PRINT pname",
      "FOR EACH course PRINT COUNT(course), AVG(credits)",
      "FOR EACH faculty PRINT frank, dept",
  };
  for (const char* query : kQueries) {
    auto a = (*d1)->ExecuteText(query);
    auto b = (*d2)->ExecuteText(query);
    ASSERT_TRUE(a.ok()) << query << ": " << a.status();
    ASSERT_TRUE(b.ok()) << query << ": " << b.status();
    EXPECT_EQ(*a, *b) << query;
  }
}

TEST(KernelParityTest, SqlAndDliParityAcrossKernels) {
  for (bool use_mbds : {false, true}) {
    MldsSystem::Options options;
    options.use_mbds = use_mbds;
    options.backends = 3;
    MldsSystem system(options);
    ASSERT_TRUE(system
                    .LoadRelationalDatabase(
                        "SCHEMA shopdb;"
                        "CREATE TABLE item (label CHAR(8), price FLOAT);"
                        "CREATE TABLE tag (label CHAR(8), color CHAR(6));")
                    .ok());
    ASSERT_TRUE(system
                    .LoadHierarchicalDatabase(
                        "SCHEMA docs;"
                        "SEGMENT folder; FIELD fname CHAR(8);"
                        "SEGMENT note PARENT folder; FIELD body CHAR(20);")
                    .ok());
    auto sql = system.OpenSqlSession("shopdb");
    ASSERT_TRUE(sql.ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*sql)
                      ->ExecuteText("INSERT INTO item (label, price) VALUES "
                                    "('l" +
                                    std::to_string(i) + "', " +
                                    std::to_string(i) + ".5)")
                      .ok());
      ASSERT_TRUE((*sql)
                      ->ExecuteText("INSERT INTO tag (label, color) VALUES "
                                    "('l" +
                                    std::to_string(i) + "', 'blue')")
                      .ok());
    }
    // The join spans partitions on the MBDS kernel.
    auto joined = (*sql)->ExecuteText(
        "SELECT price, color FROM item, tag WHERE item.label = tag.label");
    ASSERT_TRUE(joined.ok()) << joined.status();
    EXPECT_EQ(joined->rows.size(), 6u) << (use_mbds ? "mbds" : "engine");

    auto dli = system.OpenDliSession("docs");
    ASSERT_TRUE(dli.ok());
    auto run = (*dli)->RunProgram(
        "ISRT folder (fname = 'inbox')\n"
        "ISRT note (body = 'first')\n"
        "GU folder (fname = 'inbox')\n"
        "ISRT note (body = 'second')\n"
        "GU folder (fname = 'inbox')\n"
        "GNP note\n");
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_EQ(run->back().segments[0].GetOrNull("body").AsString(), "first");
  }
}

TEST(KernelParityTest, FormatterRendersSessionOutput) {
  auto system = MakeSystem(false);
  auto session = system->OpenCodasylSession("university");
  ASSERT_TRUE(session.ok());
  auto results = (*session)->RunProgram(
      "MOVE 'Advanced Database' TO title IN course\n"
      "FIND ANY course USING title IN course\n"
      "GET\n");
  ASSERT_TRUE(results.ok());
  const network::Schema* view = system->NetworkViewOf("university");
  kfs::FormatOptions options;
  options.hide_set_keywords = true;
  std::string table = kfs::FormatTable(results->back().records,
                                       view->FindRecord("course"), view,
                                       options);
  EXPECT_NE(table.find("Advanced Database"), std::string::npos);
  EXPECT_EQ(table.find("FILE"), std::string::npos);
}

}  // namespace
}  // namespace mlds
