// Direct unit tests for the currency machinery: the User Work Area, the
// Currency Indicator Table, and the Request Buffers (thesis Ch. IV data
// structures), plus ABDL printer round-trips not covered elsewhere.

#include <gtest/gtest.h>

#include "abdl/parser.h"
#include "abdl/request.h"
#include "codasyl/cit.h"
#include "codasyl/uwa.h"

namespace mlds {
namespace {

using abdm::Record;
using abdm::Value;

TEST(UserWorkAreaTest, MoveAndGet) {
  codasyl::UserWorkArea uwa;
  uwa.Move("course", "title", Value::String("DB"));
  auto v = uwa.Get("course", "title");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->AsString(), "DB");
  EXPECT_FALSE(uwa.Get("course", "credits").has_value());
  EXPECT_FALSE(uwa.Get("student", "title").has_value());
}

TEST(UserWorkAreaTest, TemplatesAreIndependentPerRecordType) {
  codasyl::UserWorkArea uwa;
  uwa.Move("a", "x", Value::Integer(1));
  uwa.Move("b", "x", Value::Integer(2));
  EXPECT_EQ(uwa.Get("a", "x")->AsInteger(), 1);
  EXPECT_EQ(uwa.Get("b", "x")->AsInteger(), 2);
}

TEST(UserWorkAreaTest, DeliverMergesRetrievedRecord) {
  codasyl::UserWorkArea uwa;
  uwa.Move("course", "title", Value::String("kept"));
  Record r;
  r.Set("credits", Value::Integer(4));
  r.Set("title", Value::String("overwritten"));
  uwa.Deliver("course", r);
  EXPECT_EQ(uwa.Get("course", "title")->AsString(), "overwritten");
  EXPECT_EQ(uwa.Get("course", "credits")->AsInteger(), 4);
}

TEST(UserWorkAreaTest, ClearRemovesTemplate) {
  codasyl::UserWorkArea uwa;
  uwa.Move("course", "title", Value::String("x"));
  uwa.Clear("course");
  EXPECT_EQ(uwa.Template("course"), nullptr);
}

TEST(CurrencyIndicatorTableTest, RunUnitLifecycle) {
  codasyl::CurrencyIndicatorTable cit;
  EXPECT_FALSE(cit.run_unit().has_value());
  Record r;
  r.Set("course", Value::String("course_1"));
  cit.SetRunUnit("course", "course_1", r);
  ASSERT_TRUE(cit.run_unit().has_value());
  EXPECT_EQ(cit.run_unit()->record_type, "course");
  EXPECT_EQ(cit.run_unit()->dbkey, "course_1");
  cit.ClearRunUnit();
  EXPECT_FALSE(cit.run_unit().has_value());
}

TEST(CurrencyIndicatorTableTest, RecordAndSetCurrency) {
  codasyl::CurrencyIndicatorTable cit;
  EXPECT_FALSE(cit.CurrentOfRecord("course").has_value());
  cit.SetCurrentOfRecord("course", "course_2");
  EXPECT_EQ(*cit.CurrentOfRecord("course"), "course_2");

  EXPECT_EQ(cit.CurrentOfSet("advisor"), nullptr);
  cit.SetCurrentOfSet("advisor", {"faculty_1", "student_3"});
  const codasyl::SetCurrency* c = cit.CurrentOfSet("advisor");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->owner_dbkey, "faculty_1");
  EXPECT_EQ(c->member_dbkey, "student_3");
  cit.SetSetMember("advisor", "");
  EXPECT_EQ(cit.CurrentOfSet("advisor")->member_dbkey, "");
  cit.SetSetOwner("advisor", "faculty_9");
  EXPECT_EQ(cit.CurrentOfSet("advisor")->owner_dbkey, "faculty_9");
}

TEST(CurrencyIndicatorTableTest, ClearResetsEverything) {
  codasyl::CurrencyIndicatorTable cit;
  Record r;
  cit.SetRunUnit("a", "a_1", r);
  cit.SetCurrentOfRecord("a", "a_1");
  cit.SetCurrentOfSet("s", {"o", "m"});
  cit.Clear();
  EXPECT_FALSE(cit.run_unit().has_value());
  EXPECT_FALSE(cit.CurrentOfRecord("a").has_value());
  EXPECT_EQ(cit.CurrentOfSet("s"), nullptr);
}

TEST(RequestBufferTest, LoadFindAndCursor) {
  codasyl::RequestBuffer rb;
  EXPECT_EQ(rb.Find("advisor"), nullptr);
  std::vector<Record> records(3);
  auto& buffer = rb.Load("advisor", std::move(records));
  EXPECT_EQ(buffer.cursor, -1);
  EXPECT_EQ(buffer.records.size(), 3u);
  buffer.cursor = 2;
  EXPECT_EQ(rb.Find("advisor")->cursor, 2);
  // Reloading resets the cursor.
  rb.Load("advisor", std::vector<Record>(1));
  EXPECT_EQ(rb.Find("advisor")->cursor, -1);
  rb.Clear();
  EXPECT_EQ(rb.Find("advisor"), nullptr);
}

TEST(AbdlPrinterTest, RetrieveCommonRoundTrips) {
  const char* text =
      "RETRIEVE-COMMON ((FILE = 'faculty') and (dept = 'CS')) (dept) AND "
      "((FILE = 'course')) (dept) (name, title)";
  auto first = abdl::ParseRequest(text);
  ASSERT_TRUE(first.ok()) << first.status();
  auto printed = abdl::ToString(*first);
  auto second = abdl::ParseRequest(printed);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_EQ(*first, *second);
  EXPECT_EQ(abdl::RequestOperation(*first), "RETRIEVE-COMMON");
}

TEST(AbdlPrinterTest, ModifierFormats) {
  abdl::Modifier set{"credits", abdl::ModifierKind::kSet,
                     Value::Integer(4)};
  EXPECT_EQ(set.ToString(), "(credits = 4)");
  abdl::Modifier add{"salary", abdl::ModifierKind::kAdd,
                     Value::Float(100.0)};
  EXPECT_EQ(add.ToString(), "(salary = salary + 100)");
}

TEST(AbdlPrinterTest, AggregateTargetFormats) {
  abdl::TargetItem plain{"credits", abdl::AggregateOp::kNone};
  EXPECT_EQ(plain.ToString(), "credits");
  abdl::TargetItem avg{"credits", abdl::AggregateOp::kAvg};
  EXPECT_EQ(avg.ToString(), "AVG(credits)");
}

}  // namespace
}  // namespace mlds
