// Tests for the controller's true parallel broadcast path: concurrent
// client sessions over one multi-backend controller, deterministic merge
// order, and wall-clock overlap of the backends' (injected) disk latency.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "abdl/parser.h"
#include "mbds/controller.h"

namespace mlds::mbds {
namespace {

abdm::FileDescriptor ItemFile() {
  abdm::FileDescriptor f;
  f.name = "item";
  f.attributes = {
      {"FILE", abdm::ValueKind::kString, 0, true},
      {"key", abdm::ValueKind::kInteger, 0, true},
      {"payload", abdm::ValueKind::kString, 0, false},
  };
  return f;
}

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

std::unique_ptr<Controller> MakeController(int backends) {
  MbdsOptions options;
  options.num_backends = backends;
  options.engine.block_capacity = 4;
  return std::make_unique<Controller>(options);
}

abdl::Request InsertOf(int key) {
  return MustParse("INSERT (<FILE, item>, <key, " + std::to_string(key) +
                   ">, <payload, 'x'>)");
}

abdl::Request DeleteOf(int key) {
  return MustParse("DELETE ((FILE = item) and (key = " + std::to_string(key) +
                   "))");
}

/// Sorted keys of every live item record, fetched through the controller.
std::vector<int64_t> AllKeys(Controller* c) {
  auto report = c->Execute(MustParse("RETRIEVE ((FILE = item)) (key) BY key"));
  EXPECT_TRUE(report.ok()) << report.status();
  std::vector<int64_t> keys;
  if (report.ok()) {
    for (const auto& r : report->response.records) {
      keys.push_back(r.GetOrNull("key").AsInteger());
    }
  }
  return keys;
}

// The headline stress test: many client threads drive broadcasts, inserts
// and deletes through one 4-backend controller at once. Writers touch
// disjoint key ranges, so every interleaving must converge to the same
// final state as a serial replay of the same operations.
TEST(ParallelControllerTest, ConcurrentMixedWorkloadMatchesSerialReplay) {
  constexpr int kBackends = 4;
  constexpr int kPreload = 400;
  constexpr int kWriters = 4;
  constexpr int kInsertsPerWriter = 100;
  constexpr int kDeletesPerWriter = 50;

  auto concurrent = MakeController(kBackends);
  ASSERT_TRUE(concurrent->DefineFile(ItemFile()).ok());
  for (int i = 0; i < kPreload; ++i) {
    ASSERT_TRUE(concurrent->Execute(InsertOf(i)).ok());
  }

  std::atomic<int> failures{0};
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      // Inserts land in a fresh per-writer range; deletes target a
      // preloaded range no other writer touches.
      for (int i = 0; i < kInsertsPerWriter; ++i) {
        if (!concurrent->Execute(InsertOf(1000 * (t + 1) + i)).ok()) {
          failures.fetch_add(1);
        }
      }
      for (int i = 0; i < kDeletesPerWriter; ++i) {
        auto report = concurrent->Execute(DeleteOf(t * kDeletesPerWriter + i));
        if (!report.ok() || report->response.affected != 1) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      auto count_req = MustParse("RETRIEVE ((FILE = item)) (COUNT(key))");
      auto range_req =
          MustParse("RETRIEVE ((FILE = item) and (key < 1000)) (key)");
      while (!stop_readers.load()) {
        auto counted = concurrent->Execute(count_req);
        if (!counted.ok() || counted->response.records.size() != 1) {
          failures.fetch_add(1);
          continue;
        }
        const int64_t count =
            counted->response.records[0].GetOrNull("COUNT(key)").AsInteger();
        // Never fewer than the fully-deleted floor, never more than
        // preload plus every insert.
        if (count < kPreload - kWriters * kDeletesPerWriter ||
            count > kPreload + kWriters * kInsertsPerWriter) {
          failures.fetch_add(1);
        }
        if (!concurrent->Execute(range_req).ok()) failures.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  stop_readers.store(true);
  for (size_t t = kWriters; t < threads.size(); ++t) threads[t].join();
  ASSERT_EQ(failures.load(), 0);

  // Serial replay of the same operation set, in canonical order.
  auto serial = MakeController(kBackends);
  ASSERT_TRUE(serial->DefineFile(ItemFile()).ok());
  for (int i = 0; i < kPreload; ++i) {
    ASSERT_TRUE(serial->Execute(InsertOf(i)).ok());
  }
  for (int t = 0; t < kWriters; ++t) {
    for (int i = 0; i < kInsertsPerWriter; ++i) {
      ASSERT_TRUE(serial->Execute(InsertOf(1000 * (t + 1) + i)).ok());
    }
    for (int i = 0; i < kDeletesPerWriter; ++i) {
      ASSERT_TRUE(serial->Execute(DeleteOf(t * kDeletesPerWriter + i)).ok());
    }
  }

  EXPECT_EQ(concurrent->FileSize("item"), serial->FileSize("item"));
  EXPECT_EQ(AllKeys(concurrent.get()), AllKeys(serial.get()));
  // The merged count equals the sum over partitions.
  size_t partition_sum = 0;
  for (int b = 0; b < kBackends; ++b) {
    partition_sum += concurrent->backend(b).engine().FileSize("item");
  }
  EXPECT_EQ(partition_sum, concurrent->FileSize("item"));
}

TEST(ParallelControllerTest, BroadcastMergeIsDeterministic) {
  auto c = MakeController(8);
  ASSERT_TRUE(c->DefineFile(ItemFile()).ok());
  for (int i = 0; i < 64; ++i) ASSERT_TRUE(c->Execute(InsertOf(i)).ok());
  // Without BY, merge order is backend-id order — identical on every run
  // no matter which backend finishes first.
  auto req = MustParse("RETRIEVE ((FILE = item)) (key)");
  auto first = c->Execute(req);
  ASSERT_TRUE(first.ok());
  for (int run = 0; run < 5; ++run) {
    auto again = c->Execute(req);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->response.records.size(),
              first->response.records.size());
    for (size_t i = 0; i < first->response.records.size(); ++i) {
      EXPECT_EQ(again->response.records[i].GetOrNull("key").AsInteger(),
                first->response.records[i].GetOrNull("key").AsInteger())
          << "run " << run << " position " << i;
    }
  }
}

TEST(ParallelControllerTest, ParallelDefineReportsDuplicateExactlyOnce) {
  auto c = MakeController(4);
  ASSERT_TRUE(c->DefineFile(ItemFile()).ok());
  Status dup = c->DefineFile(ItemFile());
  EXPECT_FALSE(dup.ok());
  // Every backend still agrees on the catalog.
  for (int b = 0; b < 4; ++b) {
    EXPECT_TRUE(c->backend(b).engine().HasFile("item"));
  }
}

TEST(ParallelControllerTest, InjectedLatencyOverlapsAcrossBackends) {
  // With latency injection on, each backend really waits its simulated
  // disk time. Backends wait on pool threads concurrently, so a broadcast
  // must complete in roughly the slowest backend's time, not the sum —
  // the observable proof that the fan-out is parallel, even on one core.
  constexpr int kBackends = 4;
  auto c = MakeController(kBackends);
  ASSERT_TRUE(c->DefineFile(ItemFile()).ok());
  for (int i = 0; i < 256; ++i) ASSERT_TRUE(c->Execute(InsertOf(i)).ok());

  const double scale = 0.1;  // a few ms of injected wait per backend
  c->set_latency_scale(scale);
  auto report = c->Execute(MustParse("RETRIEVE ((payload = 'x')) (key)"));
  c->set_latency_scale(0.0);
  ASSERT_TRUE(report.ok());

  double sum_ms = 0.0;
  double max_ms = 0.0;
  for (double ms : report->backend_times_ms) {
    sum_ms += ms;
    max_ms = std::max(max_ms, ms);
  }
  ASSERT_EQ(report->backend_times_ms.size(), size_t{kBackends});
  EXPECT_GT(report->wall_time_ms, 0.0);
  // At least the slowest backend's injected wait...
  EXPECT_GE(report->wall_time_ms, max_ms * scale * 0.9);
  // ...but well under the serial sum (generous margin for slow CI).
  EXPECT_LT(report->wall_time_ms, sum_ms * scale * 0.75);
}

}  // namespace
}  // namespace mlds::mbds
