// Tests for storage compaction and MBDS placement policies.

#include <gtest/gtest.h>

#include "abdl/parser.h"
#include "kds/engine.h"
#include "mbds/controller.h"

namespace mlds {
namespace {

abdm::FileDescriptor ItemFile() {
  abdm::FileDescriptor f;
  f.name = "item";
  f.attributes = {{"FILE", abdm::ValueKind::kString, 0, true},
                  {"key", abdm::ValueKind::kInteger, 0, true},
                  {"payload", abdm::ValueKind::kString, 0, false}};
  return f;
}

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

void Load(kds::Engine* engine, int n) {
  ASSERT_TRUE(engine->DefineFile(ItemFile()).ok());
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(engine
                    ->Execute(MustParse("INSERT (<FILE, item>, <key, " +
                                        std::to_string(i) +
                                        ">, <payload, 'x'>)"))
                    .ok());
  }
}

TEST(CompactionTest, ReclaimsBlocksAfterMassDeletion) {
  kds::Engine engine(kds::EngineOptions{.block_capacity = 8});
  Load(&engine, 800);
  const uint64_t before = engine.TotalBlocks();
  ASSERT_TRUE(
      engine.Execute(MustParse("DELETE ((FILE = item) and (key >= 100))"))
          .ok());
  // Tombstones keep the blocks allocated until compaction.
  EXPECT_EQ(engine.TotalBlocks(), before);
  const uint64_t reclaimed = engine.CompactAll();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_LT(engine.TotalBlocks(), before);
  EXPECT_EQ(engine.FileSize("item"), 100u);
}

TEST(CompactionTest, QueriesAnswerIdenticallyAfterCompaction) {
  kds::Engine engine(kds::EngineOptions{.block_capacity = 4});
  Load(&engine, 200);
  ASSERT_TRUE(engine
                  .Execute(MustParse(
                      "DELETE ((FILE = item) and (key < 150) and (key >= 50))"))
                  .ok());
  auto probe = MustParse("RETRIEVE ((FILE = item)) (key) BY key");
  auto before = engine.Execute(probe);
  ASSERT_TRUE(before.ok());
  engine.CompactAll();
  auto after = engine.Execute(probe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->records, after->records);
  // And indexed point lookups still work off the rebuilt directory.
  auto point = engine.Execute(
      MustParse("RETRIEVE ((FILE = item) and (key = 180)) (key)"));
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->records.size(), 1u);
}

TEST(CompactionTest, ScanCostDropsAfterCompaction) {
  kds::Engine engine(kds::EngineOptions{.block_capacity = 4});
  Load(&engine, 400);
  ASSERT_TRUE(
      engine.Execute(MustParse("DELETE ((FILE = item) and (key >= 40))"))
          .ok());
  auto scan = MustParse("RETRIEVE ((payload = 'x')) (key)");
  auto costly = engine.Execute(scan);
  ASSERT_TRUE(costly.ok());
  engine.CompactAll();
  auto cheap = engine.Execute(scan);
  ASSERT_TRUE(cheap.ok());
  EXPECT_LT(cheap->io.blocks_read, costly->io.blocks_read);
  EXPECT_EQ(cheap->records.size(), costly->records.size());
}

TEST(PlacementPolicyTest, HashPlacementIsOrderIndependent) {
  mbds::MbdsOptions options;
  options.num_backends = 4;
  options.placement = mbds::PlacementPolicy::kHashKey;
  mbds::Controller forward(options);
  mbds::Controller backward(options);
  ASSERT_TRUE(forward.DefineFile(ItemFile()).ok());
  ASSERT_TRUE(backward.DefineFile(ItemFile()).ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(forward
                    .Execute(MustParse("INSERT (<FILE, item>, <key, " +
                                       std::to_string(i) + ">)"))
                    .ok());
    ASSERT_TRUE(backward
                    .Execute(MustParse("INSERT (<FILE, item>, <key, " +
                                       std::to_string(63 - i) + ">)"))
                    .ok());
  }
  for (int b = 0; b < 4; ++b) {
    EXPECT_EQ(forward.backend(b).engine().FileSize("item"),
              backward.backend(b).engine().FileSize("item"))
        << "backend " << b;
  }
}

TEST(PlacementPolicyTest, HashPlacementStillAnswersQueriesCorrectly) {
  mbds::MbdsOptions options;
  options.num_backends = 3;
  options.placement = mbds::PlacementPolicy::kHashKey;
  mbds::Controller controller(options);
  ASSERT_TRUE(controller.DefineFile(ItemFile()).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(controller
                    .Execute(MustParse("INSERT (<FILE, item>, <key, " +
                                       std::to_string(i) + ">)"))
                    .ok());
  }
  auto all = controller.Execute(
      MustParse("RETRIEVE ((FILE = item)) (key) BY key"));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->response.records.size(), 30u);
}

}  // namespace
}  // namespace mlds
