#include <gtest/gtest.h>

#include <sstream>

#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace mlds {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::CurrencyError("x").code(), StatusCode::kCurrencyError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
}

TEST(StatusTest, PredicatesAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::ParseError("bad token");
  EXPECT_EQ(os.str(), "ParseError: bad token");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Result<int> Doubled(int v) {
  MLDS_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto good = Doubled(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  auto bad = Doubled(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ(ParsePositive(5).value_or(-1), 5);
  EXPECT_EQ(ParsePositive(0).value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("CoDaSyL"), "codasyl");
  EXPECT_EQ(ToUpper("daplex"), "DAPLEX");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n a b \r"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, SplitAndJoin) {
  auto parts = Split("a, b ,c", ',');
  EXPECT_EQ(parts, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Join(parts, "-"), "a-b-c");
  EXPECT_EQ(Split("", ','), std::vector<std::string>{""});
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("FIND", "find"));
  EXPECT_FALSE(EqualsIgnoreCase("FIND", "FINDS"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
}

TEST(StringsTest, StartsWithIgnoreCase) {
  EXPECT_TRUE(StartsWithIgnoreCase("FOR EACH student", "for "));
  EXPECT_FALSE(StartsWithIgnoreCase("FOR", "FOR EACH"));
}

}  // namespace
}  // namespace mlds
