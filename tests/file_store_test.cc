#include "kds/file_store.h"

#include <gtest/gtest.h>

namespace mlds::kds {
namespace {

using abdm::AttributeDescriptor;
using abdm::Conjunction;
using abdm::FileDescriptor;
using abdm::Predicate;
using abdm::Query;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;
using abdm::ValueKind;

FileDescriptor Descriptor(bool key_indexed) {
  FileDescriptor f;
  f.name = "f";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"key", ValueKind::kInteger, 0, key_indexed},
      {"payload", ValueKind::kString, 0, false},
  };
  return f;
}

Record MakeRecord(int key) {
  Record r;
  r.Set("FILE", Value::String("f"));
  r.Set("key", Value::Integer(key));
  r.Set("payload", Value::String("p" + std::to_string(key)));
  return r;
}

TEST(FileStoreTest, InsertAndSelectByIndexedEquality) {
  FileStore store(Descriptor(/*key_indexed=*/true), /*block_capacity=*/4);
  IoStats io;
  for (int i = 0; i < 100; ++i) store.Insert(MakeRecord(i), &io);

  io.Reset();
  Query q = Query::And({{"key", RelOp::kEq, Value::Integer(42)}});
  auto ids = store.Select(q, &io);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(store.Get(ids[0])->GetOrNull("key").AsInteger(), 42);
  // Index-assisted: only the candidate's block is read.
  EXPECT_EQ(io.blocks_read, 1u);
  EXPECT_EQ(io.records_examined, 1u);
}

TEST(FileStoreTest, RangePredicateUsesIndex) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  for (int i = 0; i < 64; ++i) store.Insert(MakeRecord(i), &io);
  io.Reset();
  Query q = Query::And({{"key", RelOp::kLt, Value::Integer(8)}});
  auto ids = store.Select(q, &io);
  EXPECT_EQ(ids.size(), 8u);
  // 8 records in blocks of 4, inserted in order: exactly 2 blocks.
  EXPECT_EQ(io.blocks_read, 2u);
}

TEST(FileStoreTest, NonIndexedPredicateScansAllBlocks) {
  // The descriptor marks 'payload' non-directory; a query on it must scan.
  FileStore store(Descriptor(true), 4);
  IoStats io;
  for (int i = 0; i < 64; ++i) store.Insert(MakeRecord(i), &io);
  io.Reset();
  Query q = Query::And({{"payload", RelOp::kEq, Value::String("p7")}});
  auto ids = store.Select(q, &io);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(io.blocks_read, store.block_count());
  EXPECT_EQ(io.records_examined, 64u);
}

TEST(FileStoreTest, DeleteRemovesAndFreesSlots) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  for (int i = 0; i < 10; ++i) store.Insert(MakeRecord(i), &io);
  Query q = Query::And({{"key", RelOp::kLt, Value::Integer(5)}});
  EXPECT_EQ(store.Delete(q, &io), 5u);
  EXPECT_EQ(store.size(), 5u);
  // Deleted records no longer match.
  auto ids = store.Select(Query::And({{"key", RelOp::kEq, Value::Integer(0)}}),
                          &io);
  EXPECT_TRUE(ids.empty());
}

TEST(FileStoreTest, ReplaceUpdatesIndex) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  RecordId id = store.Insert(MakeRecord(1), &io);
  Record updated = MakeRecord(99);
  store.Replace(id, updated, &io);
  auto old_ids =
      store.Select(Query::And({{"key", RelOp::kEq, Value::Integer(1)}}), &io);
  EXPECT_TRUE(old_ids.empty());
  auto new_ids =
      store.Select(Query::And({{"key", RelOp::kEq, Value::Integer(99)}}), &io);
  ASSERT_EQ(new_ids.size(), 1u);
  EXPECT_EQ(new_ids[0], id);
}

TEST(FileStoreTest, NullValuedPredicateFallsBackToScan) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  Record with_null = MakeRecord(1);
  with_null.Set("key", Value::Null());
  store.Insert(with_null, &io);
  store.Insert(MakeRecord(2), &io);
  auto ids =
      store.Select(Query::And({{"key", RelOp::kEq, Value::Null()}}), &io);
  ASSERT_EQ(ids.size(), 1u);
}

TEST(FileStoreTest, UndeclaredAttributesAreStillIndexed) {
  // Set-membership attributes added by transformations may be absent from
  // the descriptor; the directory indexes them anyway.
  FileStore store(Descriptor(true), 4);
  IoStats io;
  Record r = MakeRecord(1);
  r.Set("owner_set", Value::String("emp_3"));
  store.Insert(r, &io);
  for (int i = 2; i < 50; ++i) store.Insert(MakeRecord(i), &io);
  io.Reset();
  auto ids = store.Select(
      Query::And({{"owner_set", RelOp::kEq, Value::String("emp_3")}}), &io);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(io.blocks_read, 1u);
}

TEST(FileStoreTest, BlockCountGrowsWithInserts) {
  FileStore store(Descriptor(true), 8);
  IoStats io;
  EXPECT_EQ(store.block_count(), 0u);
  for (int i = 0; i < 17; ++i) store.Insert(MakeRecord(i), &io);
  EXPECT_EQ(store.block_count(), 3u);
}

// Property sweep: for random-ish mixes of indexed and scanned selection,
// the same ids come back regardless of access path.
class FileStoreAccessPathTest : public ::testing::TestWithParam<int> {};

TEST_P(FileStoreAccessPathTest, IndexAndScanAgree) {
  const int n = GetParam();
  FileStore indexed(Descriptor(true), 4);
  FileStore scanned(Descriptor(false), 4);
  IoStats io;
  for (int i = 0; i < n; ++i) {
    Record r = MakeRecord(i % 17);  // duplicate keys on purpose
    indexed.Insert(r, &io);
    scanned.Insert(r, &io);
  }
  for (int probe : {0, 3, 16, 42}) {
    Query q = Query::And({{"key", RelOp::kEq, Value::Integer(probe)}});
    auto a = indexed.Select(q, &io);
    auto b = scanned.Select(q, &io);
    EXPECT_EQ(a, b) << "n=" << n << " probe=" << probe;
  }
  for (int bound : {1, 8, 20}) {
    Query q = Query::And({{"key", RelOp::kGe, Value::Integer(bound)}});
    auto a = indexed.Select(q, &io);
    auto b = scanned.Select(q, &io);
    EXPECT_EQ(a, b) << "n=" << n << " bound=" << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FileStoreAccessPathTest,
                         ::testing::Values(0, 1, 7, 32, 100, 333));

}  // namespace
}  // namespace mlds::kds
