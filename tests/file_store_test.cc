#include "kds/file_store.h"

#include <gtest/gtest.h>

namespace mlds::kds {
namespace {

using abdm::AttributeDescriptor;
using abdm::Conjunction;
using abdm::FileDescriptor;
using abdm::Predicate;
using abdm::Query;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;
using abdm::ValueKind;

FileDescriptor Descriptor(bool key_indexed) {
  FileDescriptor f;
  f.name = "f";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"key", ValueKind::kInteger, 0, key_indexed},
      {"payload", ValueKind::kString, 0, false},
  };
  return f;
}

Record MakeRecord(int key) {
  Record r;
  r.Set("FILE", Value::String("f"));
  r.Set("key", Value::Integer(key));
  r.Set("payload", Value::String("p" + std::to_string(key)));
  return r;
}

TEST(FileStoreTest, InsertAndSelectByIndexedEquality) {
  FileStore store(Descriptor(/*key_indexed=*/true), /*block_capacity=*/4);
  IoStats io;
  for (int i = 0; i < 100; ++i) store.Insert(MakeRecord(i), &io);

  io.Reset();
  Query q = Query::And({{"key", RelOp::kEq, Value::Integer(42)}});
  auto ids = *store.Select(q, &io);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(store.Get(ids[0])->GetOrNull("key").AsInteger(), 42);
  // Index-assisted: only the candidate's block is read.
  EXPECT_EQ(io.blocks_read, 1u);
  EXPECT_EQ(io.records_examined, 1u);
}

TEST(FileStoreTest, RangePredicateUsesIndex) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  for (int i = 0; i < 64; ++i) store.Insert(MakeRecord(i), &io);
  io.Reset();
  Query q = Query::And({{"key", RelOp::kLt, Value::Integer(8)}});
  auto ids = *store.Select(q, &io);
  EXPECT_EQ(ids.size(), 8u);
  // 8 records in blocks of 4, inserted in order: exactly 2 blocks.
  EXPECT_EQ(io.blocks_read, 2u);
}

TEST(FileStoreTest, NonIndexedPredicateScansAllBlocks) {
  // The descriptor marks 'payload' non-directory; a query on it must scan.
  FileStore store(Descriptor(true), 4);
  IoStats io;
  for (int i = 0; i < 64; ++i) store.Insert(MakeRecord(i), &io);
  io.Reset();
  Query q = Query::And({{"payload", RelOp::kEq, Value::String("p7")}});
  auto ids = *store.Select(q, &io);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(io.blocks_read, store.block_count());
  EXPECT_EQ(io.records_examined, 64u);
}

TEST(FileStoreTest, DeleteRemovesAndFreesSlots) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  for (int i = 0; i < 10; ++i) store.Insert(MakeRecord(i), &io);
  Query q = Query::And({{"key", RelOp::kLt, Value::Integer(5)}});
  EXPECT_EQ(*store.Delete(q, &io), 5u);
  EXPECT_EQ(store.size(), 5u);
  // Deleted records no longer match.
  auto ids = *store.Select(
      Query::And({{"key", RelOp::kEq, Value::Integer(0)}}), &io);
  EXPECT_TRUE(ids.empty());
}

TEST(FileStoreTest, ReplaceUpdatesIndex) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  RecordId id = *store.Insert(MakeRecord(1), &io);
  Record updated = MakeRecord(99);
  store.Replace(id, updated, &io);
  auto old_ids =
      *store.Select(Query::And({{"key", RelOp::kEq, Value::Integer(1)}}), &io);
  EXPECT_TRUE(old_ids.empty());
  auto new_ids =
      *store.Select(Query::And({{"key", RelOp::kEq, Value::Integer(99)}}), &io);
  ASSERT_EQ(new_ids.size(), 1u);
  EXPECT_EQ(new_ids[0], id);
}

TEST(FileStoreTest, NullValuedPredicateFallsBackToScan) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  Record with_null = MakeRecord(1);
  with_null.Set("key", Value::Null());
  store.Insert(with_null, &io);
  store.Insert(MakeRecord(2), &io);
  auto ids =
      *store.Select(Query::And({{"key", RelOp::kEq, Value::Null()}}), &io);
  ASSERT_EQ(ids.size(), 1u);
}

TEST(FileStoreTest, UndeclaredAttributesAreStillIndexed) {
  // Set-membership attributes added by transformations may be absent from
  // the descriptor; the directory indexes them anyway.
  FileStore store(Descriptor(true), 4);
  IoStats io;
  Record r = MakeRecord(1);
  r.Set("owner_set", Value::String("emp_3"));
  store.Insert(r, &io);
  for (int i = 2; i < 50; ++i) store.Insert(MakeRecord(i), &io);
  io.Reset();
  auto ids = *store.Select(
      Query::And({{"owner_set", RelOp::kEq, Value::String("emp_3")}}), &io);
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(io.blocks_read, 1u);
}

TEST(FileStoreTest, BlockCountGrowsWithInserts) {
  FileStore store(Descriptor(true), 8);
  IoStats io;
  EXPECT_EQ(store.block_count(), 0u);
  for (int i = 0; i < 17; ++i) store.Insert(MakeRecord(i), &io);
  EXPECT_EQ(store.block_count(), 3u);
}

TEST(FileStoreTest, RangeBoundariesAreExact) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  for (int i = 1; i <= 10; ++i) store.Insert(MakeRecord(i), &io);
  auto keys_of = [&](const Query& q) {
    std::vector<int64_t> keys;
    const std::vector<RecordId> ids = *store.Select(q, &io);
    for (RecordId id : ids) {
      keys.push_back(store.Get(id)->GetOrNull("key").AsInteger());
    }
    return keys;
  };
  EXPECT_EQ(keys_of(Query::And({{"key", RelOp::kGe, Value::Integer(8)}})),
            (std::vector<int64_t>{8, 9, 10}));
  EXPECT_EQ(keys_of(Query::And({{"key", RelOp::kGt, Value::Integer(8)}})),
            (std::vector<int64_t>{9, 10}));
  EXPECT_EQ(keys_of(Query::And({{"key", RelOp::kLe, Value::Integer(3)}})),
            (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(keys_of(Query::And({{"key", RelOp::kLt, Value::Integer(3)}})),
            (std::vector<int64_t>{1, 2}));
  // Bounds outside the stored domain.
  EXPECT_EQ(keys_of(Query::And({{"key", RelOp::kGt, Value::Integer(10)}})),
            (std::vector<int64_t>{}));
  EXPECT_EQ(keys_of(Query::And({{"key", RelOp::kGe, Value::Integer(-5)}})).size(),
            10u);
  // Bound value absent from the file: lower/upper bound still lands right.
  store.Insert(MakeRecord(20), &io);
  EXPECT_EQ(keys_of(Query::And({{"key", RelOp::kGt, Value::Integer(15)}})),
            (std::vector<int64_t>{20}));
}

TEST(FileStoreTest, RangeLookupSkipsDeadSlots) {
  // Deleted records leave dead slots; an indexed range must neither
  // return them nor fetch blocks that hold only dead slots.
  FileStore store(Descriptor(true), /*block_capacity=*/2);
  IoStats io;
  for (int i = 0; i < 10; ++i) store.Insert(MakeRecord(i), &io);  // 5 blocks
  (void)store.Delete(Query::And({{"key", RelOp::kGe, Value::Integer(4)}}), &io);
  io.Reset();
  Query q = Query::And({{"key", RelOp::kGe, Value::Integer(0)}});
  auto ids = *store.Select(q, &io);
  EXPECT_EQ(ids.size(), 4u);  // keys 0..3 survive
  // Keys 0..3 sit in blocks 0 and 1; blocks 2..4 hold only dead slots and
  // are never touched because the directory no longer lists their ids.
  EXPECT_EQ(io.blocks_read, 2u);
}

TEST(FileStoreTest, RangeBeatsBroadEqualityAsAccessPath) {
  // (FILE = f) AND (key >= 60): the FILE bucket holds all 64 records, the
  // range holds 4. The cost-based planner must drive from the range, so
  // only the range's blocks are fetched — not the whole file.
  FileStore store(Descriptor(true), 4);
  IoStats io;
  for (int i = 0; i < 64; ++i) store.Insert(MakeRecord(i), &io);
  io.Reset();
  Query q = Query::And({{"FILE", RelOp::kEq, Value::String("f")},
                        {"key", RelOp::kGe, Value::Integer(60)}});
  auto ids = *store.Select(q, &io);
  EXPECT_EQ(ids.size(), 4u);
  EXPECT_EQ(io.blocks_read, 1u);  // keys 60..63 share one block of 4
  EXPECT_EQ(io.records_examined, 4u);
  EXPECT_LT(io.blocks_read, store.block_count());
}

TEST(FileStoreTest, CheapestBucketDrivesConjunction) {
  // Two indexed equalities with very different selectivities: the planner
  // must fetch via the narrow one regardless of predicate order.
  FileDescriptor d = Descriptor(true);
  d.attributes.push_back({"tag", ValueKind::kString, 0, true});
  FileStore store(d, 4);
  IoStats io;
  for (int i = 0; i < 80; ++i) {
    Record r = MakeRecord(i % 5);  // 'key' buckets hold 16 records each
    r.Set("tag", Value::String(i == 40 ? "rare" : "common"));
    store.Insert(r, &io);
  }
  for (bool rare_first : {true, false}) {
    io.Reset();
    std::vector<Predicate> preds = {
        {"tag", RelOp::kEq, Value::String("rare")},
        {"key", RelOp::kEq, Value::Integer(40 % 5)}};
    if (!rare_first) std::swap(preds[0], preds[1]);
    auto ids = *store.Select(Query::And(preds), &io);
    ASSERT_EQ(ids.size(), 1u) << "rare_first=" << rare_first;
    // Driven by tag='rare' (1 candidate) and intersected with the key
    // bucket: a single block and a single record examined.
    EXPECT_EQ(io.blocks_read, 1u);
    EXPECT_EQ(io.records_examined, 1u);
  }
}

TEST(FileStoreTest, EmptyRangeIsProvenByDirectoryAlone) {
  FileStore store(Descriptor(true), 4);
  IoStats io;
  for (int i = 0; i < 32; ++i) store.Insert(MakeRecord(i), &io);
  io.Reset();
  auto ids = *store.Select(
      Query::And({{"key", RelOp::kGt, Value::Integer(1000)}}), &io);
  EXPECT_TRUE(ids.empty());
  EXPECT_EQ(io.blocks_read, 0u);
  EXPECT_EQ(io.records_examined, 0u);
}

// Property sweep: for random-ish mixes of indexed and scanned selection,
// the same ids come back regardless of access path.
class FileStoreAccessPathTest : public ::testing::TestWithParam<int> {};

TEST_P(FileStoreAccessPathTest, IndexAndScanAgree) {
  const int n = GetParam();
  FileStore indexed(Descriptor(true), 4);
  FileStore scanned(Descriptor(false), 4);
  IoStats io;
  for (int i = 0; i < n; ++i) {
    Record r = MakeRecord(i % 17);  // duplicate keys on purpose
    indexed.Insert(r, &io);
    scanned.Insert(r, &io);
  }
  for (int probe : {0, 3, 16, 42}) {
    Query q = Query::And({{"key", RelOp::kEq, Value::Integer(probe)}});
    auto a = *indexed.Select(q, &io);
    auto b = *scanned.Select(q, &io);
    EXPECT_EQ(a, b) << "n=" << n << " probe=" << probe;
  }
  for (int bound : {1, 8, 20}) {
    Query q = Query::And({{"key", RelOp::kGe, Value::Integer(bound)}});
    auto a = *indexed.Select(q, &io);
    auto b = *scanned.Select(q, &io);
    EXPECT_EQ(a, b) << "n=" << n << " bound=" << bound;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FileStoreAccessPathTest,
                         ::testing::Values(0, 1, 7, 32, 100, 333));

}  // namespace
}  // namespace mlds::kds
