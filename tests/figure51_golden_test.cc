// Golden test: the complete network DDL produced by transforming the
// University functional schema — the reproduction of thesis Figure 5.1,
// pinned byte-for-byte so any change to the Ch. V transformation rules is
// caught immediately.

#include <gtest/gtest.h>

#include "transform/fun_to_net.h"
#include "university/university.h"

namespace mlds::transform {
namespace {

constexpr char kGoldenUniversityNetworkDdl[] = R"GOLDEN(SCHEMA NAME IS university;

RECORD NAME IS person;
  ITEM pname TYPE IS CHARACTER 30;
  ITEM age TYPE IS INTEGER;

RECORD NAME IS employee;
  ITEM ename TYPE IS CHARACTER 30;
  ITEM salary TYPE IS FLOAT;
  ITEM degrees TYPE IS CHARACTER 10;
  DUPLICATES ARE NOT ALLOWED FOR degrees;

RECORD NAME IS department;
  ITEM dname TYPE IS CHARACTER 20;

RECORD NAME IS course;
  ITEM title TYPE IS CHARACTER 20;
  ITEM semester TYPE IS CHARACTER 10;
  ITEM credits TYPE IS INTEGER;
  DUPLICATES ARE NOT ALLOWED FOR title, semester;

RECORD NAME IS student;
  ITEM major TYPE IS CHARACTER 15;

RECORD NAME IS faculty;
  ITEM frank TYPE IS CHARACTER 10;

RECORD NAME IS support_staff;
  ITEM hours TYPE IS INTEGER;

RECORD NAME IS link_1;

SET NAME IS system_person;
  OWNER IS SYSTEM;
  MEMBER IS person;
  INSERTION IS AUTOMATIC;
  RETENTION IS FIXED;
  SET SELECTION IS BY APPLICATION;

SET NAME IS system_employee;
  OWNER IS SYSTEM;
  MEMBER IS employee;
  INSERTION IS AUTOMATIC;
  RETENTION IS FIXED;
  SET SELECTION IS BY APPLICATION;

SET NAME IS system_department;
  OWNER IS SYSTEM;
  MEMBER IS department;
  INSERTION IS AUTOMATIC;
  RETENTION IS FIXED;
  SET SELECTION IS BY APPLICATION;

SET NAME IS system_course;
  OWNER IS SYSTEM;
  MEMBER IS course;
  INSERTION IS AUTOMATIC;
  RETENTION IS FIXED;
  SET SELECTION IS BY APPLICATION;

SET NAME IS person_student;
  OWNER IS person;
  MEMBER IS student;
  INSERTION IS AUTOMATIC;
  RETENTION IS FIXED;
  SET SELECTION IS BY APPLICATION;

SET NAME IS employee_faculty;
  OWNER IS employee;
  MEMBER IS faculty;
  INSERTION IS AUTOMATIC;
  RETENTION IS FIXED;
  SET SELECTION IS BY APPLICATION;

SET NAME IS employee_support_staff;
  OWNER IS employee;
  MEMBER IS support_staff;
  INSERTION IS AUTOMATIC;
  RETENTION IS FIXED;
  SET SELECTION IS BY APPLICATION;

SET NAME IS taught_by;
  OWNER IS course;
  MEMBER IS link_1;
  INSERTION IS MANUAL;
  RETENTION IS OPTIONAL;
  SET SELECTION IS BY APPLICATION;

SET NAME IS teaching;
  OWNER IS faculty;
  MEMBER IS link_1;
  INSERTION IS MANUAL;
  RETENTION IS OPTIONAL;
  SET SELECTION IS BY APPLICATION;

SET NAME IS advisor;
  OWNER IS faculty;
  MEMBER IS student;
  INSERTION IS MANUAL;
  RETENTION IS OPTIONAL;
  SET SELECTION IS BY APPLICATION;

SET NAME IS dept;
  OWNER IS department;
  MEMBER IS faculty;
  INSERTION IS MANUAL;
  RETENTION IS OPTIONAL;
  SET SELECTION IS BY APPLICATION;

SET NAME IS supervisor;
  OWNER IS employee;
  MEMBER IS support_staff;
  INSERTION IS MANUAL;
  RETENTION IS OPTIONAL;
  SET SELECTION IS BY APPLICATION;

)GOLDEN";

TEST(Figure51GoldenTest, TransformedUniversityDdlMatchesGolden) {
  auto schema = university::UniversitySchema();
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto mapping = TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok()) << mapping.status();
  EXPECT_EQ(mapping->schema.ToDdl(), kGoldenUniversityNetworkDdl);
}

}  // namespace
}  // namespace mlds::transform
