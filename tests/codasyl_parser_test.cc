#include "codasyl/parser.h"

#include <gtest/gtest.h>

#include "codasyl/ast.h"

namespace mlds::codasyl {
namespace {

template <typename T>
T MustParseAs(std::string_view text) {
  auto stmt = ParseStatement(text);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status();
  const T* typed = std::get_if<T>(&*stmt);
  EXPECT_NE(typed, nullptr) << text << " parsed as " << StatementKind(*stmt);
  return typed != nullptr ? *typed : T{};
}

TEST(CodasylParserTest, Move) {
  auto s = MustParseAs<MoveStatement>(
      "MOVE 'Advanced Database' TO title IN course");
  EXPECT_EQ(s.value.AsString(), "Advanced Database");
  EXPECT_EQ(s.item, "title");
  EXPECT_EQ(s.record, "course");
}

TEST(CodasylParserTest, MoveNumericLiteral) {
  auto s = MustParseAs<MoveStatement>("MOVE 4 TO credits IN course");
  EXPECT_EQ(s.value.AsInteger(), 4);
}

TEST(CodasylParserTest, MoveFloatLiteral) {
  auto s = MustParseAs<MoveStatement>("MOVE 99.5 TO salary IN employee");
  EXPECT_DOUBLE_EQ(s.value.AsFloat(), 99.5);
}

TEST(CodasylParserTest, MoveUnquotedWordLiteral) {
  auto s = MustParseAs<MoveStatement>("MOVE YES TO eof IN status");
  EXPECT_EQ(s.value.AsString(), "YES");
}

TEST(CodasylParserTest, FindAnyWithItems) {
  auto s = MustParseAs<FindAnyStatement>(
      "FIND ANY course USING title, semester IN course");
  EXPECT_EQ(s.record, "course");
  EXPECT_EQ(s.items, (std::vector<std::string>{"title", "semester"}));
}

TEST(CodasylParserTest, FindAnyWithoutUsing) {
  auto s = MustParseAs<FindAnyStatement>("FIND ANY course");
  EXPECT_TRUE(s.items.empty());
}

TEST(CodasylParserTest, FindAnyRejectsMismatchedRecord) {
  auto stmt = ParseStatement("FIND ANY course USING title IN student");
  ASSERT_FALSE(stmt.ok());
}

TEST(CodasylParserTest, FindCurrent) {
  auto s = MustParseAs<FindCurrentStatement>(
      "FIND CURRENT student WITHIN person_student");
  EXPECT_EQ(s.record, "student");
  EXPECT_EQ(s.set, "person_student");
}

TEST(CodasylParserTest, FindDuplicate) {
  auto s = MustParseAs<FindDuplicateStatement>(
      "FIND DUPLICATE WITHIN person_student USING major IN student");
  EXPECT_EQ(s.set, "person_student");
  EXPECT_EQ(s.items, std::vector<std::string>{"major"});
  EXPECT_EQ(s.record, "student");
}

TEST(CodasylParserTest, FindPositionalVariants) {
  EXPECT_EQ(MustParseAs<FindPositionalStatement>(
                "FIND FIRST student WITHIN advisor")
                .position,
            FindPosition::kFirst);
  EXPECT_EQ(MustParseAs<FindPositionalStatement>(
                "FIND LAST student WITHIN advisor")
                .position,
            FindPosition::kLast);
  EXPECT_EQ(MustParseAs<FindPositionalStatement>(
                "FIND NEXT student WITHIN advisor")
                .position,
            FindPosition::kNext);
  EXPECT_EQ(MustParseAs<FindPositionalStatement>(
                "FIND PRIOR student WITHIN advisor")
                .position,
            FindPosition::kPrior);
}

TEST(CodasylParserTest, FindOwner) {
  auto s = MustParseAs<FindOwnerStatement>("FIND OWNER WITHIN advisor");
  EXPECT_EQ(s.set, "advisor");
}

TEST(CodasylParserTest, FindWithinCurrent) {
  auto s = MustParseAs<FindWithinCurrentStatement>(
      "FIND student WITHIN advisor CURRENT USING major IN student");
  EXPECT_EQ(s.record, "student");
  EXPECT_EQ(s.set, "advisor");
  EXPECT_EQ(s.items, std::vector<std::string>{"major"});
}

TEST(CodasylParserTest, GetVariants) {
  EXPECT_EQ(MustParseAs<GetStatement>("GET").kind, GetStatement::Kind::kAll);
  auto record = MustParseAs<GetStatement>("GET student");
  EXPECT_EQ(record.kind, GetStatement::Kind::kRecord);
  EXPECT_EQ(record.record, "student");
  auto items = MustParseAs<GetStatement>("GET major, advisor IN student");
  EXPECT_EQ(items.kind, GetStatement::Kind::kItems);
  EXPECT_EQ(items.items, (std::vector<std::string>{"major", "advisor"}));
  EXPECT_EQ(items.record, "student");
}

TEST(CodasylParserTest, StoreConnectDisconnect) {
  EXPECT_EQ(MustParseAs<StoreStatement>("STORE course").record, "course");
  auto connect = MustParseAs<ConnectStatement>(
      "CONNECT student TO advisor, person_student");
  EXPECT_EQ(connect.sets,
            (std::vector<std::string>{"advisor", "person_student"}));
  auto disconnect =
      MustParseAs<DisconnectStatement>("DISCONNECT student FROM advisor");
  EXPECT_EQ(disconnect.sets, std::vector<std::string>{"advisor"});
}

TEST(CodasylParserTest, ModifyVariants) {
  auto whole = MustParseAs<ModifyStatement>("MODIFY course");
  EXPECT_TRUE(whole.items.empty());
  auto items = MustParseAs<ModifyStatement>(
      "MODIFY title, credits IN course");
  EXPECT_EQ(items.items, (std::vector<std::string>{"title", "credits"}));
}

TEST(CodasylParserTest, EraseVariants) {
  EXPECT_FALSE(MustParseAs<EraseStatement>("ERASE course").all);
  EXPECT_TRUE(MustParseAs<EraseStatement>("ERASE ALL course").all);
}

TEST(CodasylParserTest, KeywordsAreCaseInsensitive) {
  auto s = MustParseAs<FindAnyStatement>(
      "find any course using title in course");
  EXPECT_EQ(s.record, "course");
}

TEST(CodasylParserTest, RejectsUnknownStatement) {
  EXPECT_FALSE(ParseStatement("FROB course").ok());
}

TEST(CodasylParserTest, RejectsUnterminatedLiteral) {
  EXPECT_FALSE(ParseStatement("MOVE 'oops TO title IN course").ok());
}

TEST(CodasylParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseStatement("STORE course extra").ok());
}

TEST(CodasylParserTest, ProgramSplitsStatementsAndSkipsComments) {
  auto program = ParseProgram(
      "-- setup\n"
      "MOVE 'X' TO title IN course\n"
      "\n"
      "FIND ANY course USING title IN course; GET\n");
  ASSERT_TRUE(program.ok()) << program.status();
  EXPECT_EQ(program->size(), 3u);
}

TEST(CodasylParserTest, EmptyProgramRejected) {
  EXPECT_FALSE(ParseProgram("  \n-- nothing\n").ok());
}

TEST(CodasylParserTest, WalkChain) {
  auto s = MustParseAs<WalkStatement>("WALK dept THEN advisor THEN enrolls");
  ASSERT_EQ(s.sets.size(), 3u);
  EXPECT_EQ(s.sets[0], "dept");
  EXPECT_EQ(s.sets[1], "advisor");
  EXPECT_EQ(s.sets[2], "enrolls");
  EXPECT_EQ(MustParseAs<WalkStatement>("WALK dept").sets.size(), 1u);
}

TEST(CodasylParserTest, WalkRejectsMissingSetName) {
  EXPECT_FALSE(ParseStatement("WALK").ok());
  EXPECT_FALSE(ParseStatement("WALK dept THEN").ok());
}

TEST(CodasylParserTest, ToStringRoundTrip) {
  const char* statements[] = {
      "MOVE 'Advanced Database' TO title IN course",
      "FIND ANY course USING title, semester IN course",
      "FIND CURRENT student WITHIN person_student",
      "FIND DUPLICATE WITHIN advisor USING major IN student",
      "FIND FIRST student WITHIN advisor",
      "FIND OWNER WITHIN advisor",
      "FIND student WITHIN advisor CURRENT USING major IN student",
      "GET",
      "GET student",
      "GET major, advisor IN student",
      "STORE course",
      "CONNECT student TO advisor",
      "DISCONNECT student FROM advisor",
      "MODIFY course",
      "MODIFY title, credits IN course",
      "ERASE course",
      "ERASE ALL course",
      "WALK dept",
      "WALK dept THEN advisor",
  };
  for (const char* text : statements) {
    auto first = ParseStatement(text);
    ASSERT_TRUE(first.ok()) << text;
    auto second = ParseStatement(ToString(*first));
    ASSERT_TRUE(second.ok()) << ToString(*first);
    EXPECT_EQ(ToString(*first), ToString(*second)) << text;
  }
}

}  // namespace
}  // namespace mlds::codasyl
