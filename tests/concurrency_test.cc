// Multi-user tests: concurrent sessions over one shared kernel engine —
// the thesis's "single-user systems that will eventually be modified to
// multi-user systems" (Ch. IV.A), realized through the engine's
// per-request atomicity.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "abdl/parser.h"
#include "kds/engine.h"
#include "mlds/mlds.h"
#include "university/university.h"

namespace mlds {
namespace {

abdm::FileDescriptor ItemFile() {
  abdm::FileDescriptor f;
  f.name = "item";
  f.attributes = {{"FILE", abdm::ValueKind::kString, 0, true},
                  {"key", abdm::ValueKind::kInteger, 0, true},
                  {"owner", abdm::ValueKind::kInteger, 0, true}};
  return f;
}

TEST(ConcurrencyTest, ParallelInsertsAllLand) {
  kds::Engine engine;
  ASSERT_TRUE(engine.DefineFile(ItemFile()).ok());
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto req = abdl::ParseRequest(
            "INSERT (<FILE, item>, <key, " + std::to_string(t * 1000 + i) +
            ">, <owner, " + std::to_string(t) + ">)");
        if (!req.ok() || !engine.Execute(*req).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.FileSize("item"),
            static_cast<size_t>(kThreads * kPerThread));
}

TEST(ConcurrencyTest, ReadersSeeConsistentSnapshotsUnderWrites) {
  kds::Engine engine;
  ASSERT_TRUE(engine.DefineFile(ItemFile()).ok());
  // Writers insert pairs atomically via transactions; readers count and
  // must always observe an even total (per-request atomicity + whole
  // transactions under one lock).
  std::atomic<bool> stop{false};
  std::atomic<int> bad_reads{0};
  std::thread writer([&] {
    int key = 0;
    while (!stop.load() && key < 4000) {
      const int first = key++;
      const int second = key++;
      auto txn = abdl::ParseTransaction(
          "INSERT (<FILE, item>, <key, " + std::to_string(first) +
          ">, <owner, 1>); INSERT (<FILE, item>, <key, " +
          std::to_string(second) + ">, <owner, 1>)");
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(engine.ExecuteTransaction(*txn).ok());
    }
  });
  std::thread reader([&] {
    auto req =
        abdl::ParseRequest("RETRIEVE ((FILE = item)) (COUNT(key))");
    ASSERT_TRUE(req.ok());
    for (int i = 0; i < 60; ++i) {
      auto resp = engine.Execute(*req);
      if (!resp.ok()) {
        bad_reads.fetch_add(1);
        continue;
      }
      const int64_t count =
          resp->records[0].GetOrNull("COUNT(key)").AsInteger();
      if (count % 2 != 0) bad_reads.fetch_add(1);
    }
  });
  reader.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(bad_reads.load(), 0);
}

TEST(ConcurrencyTest, ConcurrentReadersMatchSerialReplay) {
  // Shared-lock retrieves run truly concurrently under the two-level
  // locking scheme; every thread must still see exactly the results a
  // serial replay of its queries produces.
  kds::Engine engine;
  ASSERT_TRUE(engine.DefineFile(ItemFile()).ok());
  constexpr int kRecords = 200;
  for (int i = 0; i < kRecords; ++i) {
    auto req = abdl::ParseRequest(
        "INSERT (<FILE, item>, <key, " + std::to_string(i) + ">, <owner, " +
        std::to_string(i % 7) + ">)");
    ASSERT_TRUE(req.ok());
    ASSERT_TRUE(engine.Execute(*req).ok());
  }

  std::vector<abdl::Request> queries;
  for (int owner = 0; owner < 7; ++owner) {
    auto req = abdl::ParseRequest("RETRIEVE ((FILE = item) and (owner = " +
                                  std::to_string(owner) + ")) (key)");
    ASSERT_TRUE(req.ok());
    queries.push_back(*req);
  }

  // Serial replay first: the expected per-query record counts.
  std::vector<size_t> expected;
  for (const auto& query : queries) {
    auto resp = engine.Execute(query);
    ASSERT_TRUE(resp.ok());
    expected.push_back(resp->records.size());
  }

  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        for (size_t q = 0; q < queries.size(); ++q) {
          auto resp = engine.Execute(queries[q]);
          if (!resp.ok() || resp->records.size() != expected[q]) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  // Concurrently hammer the cumulative-I/O snapshot: under TSan this
  // verifies the atomic counters carry no data race.
  std::atomic<bool> stop{false};
  std::thread stats([&] {
    while (!stop.load()) {
      kds::IoStats io = engine.cumulative_io();
      if (io.blocks_read > (1u << 30)) break;  // keep the load observable
    }
  });
  for (auto& thread : threads) thread.join();
  stop.store(true);
  stats.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ConcurrentDmlSessionsOnSharedDatabase) {
  MldsSystem system;
  ASSERT_TRUE(
      system.LoadFunctionalDatabase(university::kUniversityDaplexDdl).ok());
  university::UniversityConfig config;
  ASSERT_TRUE(
      university::BuildUniversityDatabaseOnLoaded(config, system.executor())
          .ok());
  constexpr int kSessions = 6;
  std::vector<kms::DmlMachine*> machines;
  for (int i = 0; i < kSessions; ++i) {
    auto session = system.OpenCodasylSession("university");
    ASSERT_TRUE(session.ok());
    machines.push_back(*session);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([&, t] {
      kms::DmlMachine* machine = machines[t];
      for (int i = 0; i < 30; ++i) {
        auto result = machine->RunProgram(
            "MOVE 'Computer Science' TO major IN student\n"
            "FIND ANY student USING major IN student\n"
            "GET major IN student\n");
        if (!result.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace mlds
