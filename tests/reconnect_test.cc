// Tests for the RECONNECT statement and the RETAINING clause: moving a
// member record between set occurrences across the retention modes and
// both set representations.

#include <gtest/gtest.h>

#include <memory>

#include "abdl/parser.h"
#include "daplex/ddl_parser.h"
#include "kds/engine.h"
#include "kms/dml_machine.h"
#include "network/ddl_parser.h"
#include "transform/abdm_mapping.h"
#include "university/university.h"

namespace mlds::kms {
namespace {

class ReconnectUniversityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    university::UniversityConfig config;
    auto db = university::BuildUniversityDatabase(config, executor_.get());
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<university::UniversityDatabase>(std::move(*db));
    machine_ = std::make_unique<kms::DmlMachine>(&db_->mapping.schema,
                                                 &db_->mapping,
                                                 executor_.get());
  }

  DmlResult Must(std::string_view dml) {
    auto result = machine_->ExecuteText(dml);
    EXPECT_TRUE(result.ok()) << dml << ": " << result.status();
    return result.ok() ? std::move(*result) : DmlResult{};
  }

  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<university::UniversityDatabase> db_;
  std::unique_ptr<DmlMachine> machine_;
};

TEST_F(ReconnectUniversityTest, ReconnectMovesStudentToNewAdvisor) {
  // Pin faculty_7 as the current owner of advisor, then locate the
  // student RETAINING the advisor currency (its own keyword would
  // otherwise reposition the set), and reconnect in one statement.
  Must("MOVE 'faculty_7' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  Must("MOVE 'student_4' TO student IN student");
  Must("FIND ANY student USING student IN student RETAINING advisor");
  EXPECT_EQ(machine_->cit().CurrentOfSet("advisor")->owner_dbkey,
            "faculty_7");
  Must("RECONNECT student IN advisor");

  auto req = abdl::ParseRequest(
      "RETRIEVE ((FILE = student) and (student = 'student_4')) (advisor)");
  ASSERT_TRUE(req.ok());
  auto check = engine_.Execute(*req);
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->records[0].GetOrNull("advisor").AsString(), "faculty_7");
}

TEST_F(ReconnectUniversityTest, RetainingPreservesSetCurrency) {
  Must("MOVE 'faculty_2' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  // Without RETAINING, the student FIND repositions the advisor set.
  Must("MOVE 'student_9' TO student IN student");
  Must("FIND ANY student USING student IN student");
  const std::string repositioned =
      machine_->cit().CurrentOfSet("advisor")->owner_dbkey;
  // With RETAINING, it does not.
  Must("MOVE 'faculty_2' TO faculty IN faculty");
  Must("FIND ANY faculty USING faculty IN faculty");
  Must("FIND ANY student USING student IN student RETAINING advisor");
  EXPECT_EQ(machine_->cit().CurrentOfSet("advisor")->owner_dbkey,
            "faculty_2");
  // (The unretained FIND had moved it to the student's own advisor.)
  EXPECT_EQ(repositioned, machine_->cit()
                              .run_unit()
                              ->record.GetOrNull("advisor")
                              .AsString());
}

TEST_F(ReconnectUniversityTest, RetainingUnknownSetRejected) {
  Must("MOVE 'student_1' TO student IN student");
  auto result = machine_->ExecuteText(
      "FIND ANY student USING student IN student RETAINING no_such_set");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST_F(ReconnectUniversityTest, ReconnectRejectedOnFixedRetention) {
  Must("MOVE 'student_1' TO student IN student");
  Must("FIND ANY student USING student IN student");
  auto result = machine_->ExecuteText("RECONNECT student IN person_student");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kConstraintViolation);
}

TEST(ReconnectMandatoryTest, MandatoryRetentionAllowsReconnectNotDisconnect) {
  auto schema = network::ParseSchema(
      "SCHEMA NAME IS depot;"
      "RECORD NAME IS site; ITEM sname TYPE IS CHARACTER 8;"
      "RECORD NAME IS crate; ITEM tag TYPE IS INTEGER;"
      "SET NAME IS stores;"
      "  OWNER IS site; MEMBER IS crate;"
      "  INSERTION IS MANUAL; RETENTION IS MANDATORY;"
      "  SET SELECTION IS BY APPLICATION;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  auto db = transform::MapNetworkToAbdm(*schema);
  ASSERT_TRUE(db.ok());
  kds::Engine engine;
  kc::EngineExecutor executor(&engine);
  ASSERT_TRUE(executor.DefineDatabase(*db).ok());
  DmlMachine machine(&*schema, nullptr, &executor);

  auto setup = machine.RunProgram(
      "MOVE 'east' TO sname IN site\nSTORE site\n"
      "MOVE 1 TO tag IN crate\nSTORE crate\nCONNECT crate TO stores\n"
      "MOVE 'west' TO sname IN site\nSTORE site\n");
  ASSERT_TRUE(setup.ok()) << setup.status();

  // DISCONNECT is forbidden under MANDATORY retention...
  auto find = machine.RunProgram(
      "MOVE 1 TO tag IN crate\nFIND ANY crate USING tag IN crate\n");
  ASSERT_TRUE(find.ok()) << find.status();
  auto disconnect = machine.ExecuteText("DISCONNECT crate FROM stores");
  ASSERT_FALSE(disconnect.ok());
  EXPECT_EQ(disconnect.status().code(), StatusCode::kConstraintViolation);

  // ...but RECONNECT to a new owner is allowed: pin 'west' as current of
  // stores, find the crate retaining that currency, reconnect.
  auto move = machine.RunProgram(
      "MOVE 'west' TO sname IN site\nFIND ANY site USING sname IN site\n"
      "MOVE 1 TO tag IN crate\n"
      "FIND ANY crate USING tag IN crate RETAINING stores\n"
      "RECONNECT crate IN stores\n");
  ASSERT_TRUE(move.ok()) << move.status();

  auto req = abdl::ParseRequest(
      "RETRIEVE ((FILE = crate) and (tag = 1)) (stores)");
  ASSERT_TRUE(req.ok());
  auto check = engine.Execute(*req);
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->records.size(), 1u);
  EXPECT_EQ(check->records[0].GetOrNull("stores").AsString(), "site_2");
}

TEST(ReconnectOwnerSideTest, ReconnectMovesChildBetweenParents) {
  // Owner-side one-to-many: moving a child between parents rewrites the
  // duplicated owner records on both sides.
  auto schema = daplex::ParseFunctionalSchema(
      "TYPE parent IS ENTITY pname : STRING(8); kids : SET OF child; "
      "END ENTITY;"
      "TYPE child IS ENTITY cname : STRING(8); END ENTITY;");
  ASSERT_TRUE(schema.ok());
  auto mapping = transform::TransformFunctionalToNetwork(*schema);
  ASSERT_TRUE(mapping.ok());
  auto db = transform::MapNetworkToAbdm(mapping->schema, &*mapping);
  ASSERT_TRUE(db.ok());
  kds::Engine engine;
  kc::EngineExecutor executor(&engine);
  ASSERT_TRUE(executor.DefineDatabase(*db).ok());
  DmlMachine machine(&mapping->schema, &*mapping, &executor);

  auto setup = machine.RunProgram(
      "MOVE 'p1' TO pname IN parent\nSTORE parent\n"
      "MOVE 'c1' TO cname IN child\nSTORE child\nCONNECT child TO kids\n"
      "MOVE 'p2' TO pname IN parent\nSTORE parent\n");
  ASSERT_TRUE(setup.ok()) << setup.status();

  auto move = machine.RunProgram(
      "MOVE 'p2' TO pname IN parent\nFIND ANY parent USING pname IN parent\n"
      "MOVE 'c1' TO cname IN child\n"
      "FIND ANY child USING cname IN child RETAINING kids\n"
      "RECONNECT child IN kids\n");
  ASSERT_TRUE(move.ok()) << move.status();

  auto req = abdl::ParseRequest(
      "RETRIEVE ((FILE = parent)) (all attributes) BY parent");
  ASSERT_TRUE(req.ok());
  auto check = engine.Execute(*req);
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->records.size(), 2u);
  // p1 lost the child (nulled singleton); p2 gained it.
  EXPECT_TRUE(check->records[0].GetOrNull("kids").is_null());
  EXPECT_EQ(check->records[1].GetOrNull("kids").AsString(), "child_1");
}

}  // namespace
}  // namespace mlds::kms
