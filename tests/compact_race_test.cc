// Compaction-vs-retrieve race regression: CompactAll moves live records
// into the holes deletions leave behind, remapping their RecordIds. The
// two-level locking scheme (shared files-map lock + per-FileStore lock)
// must guarantee no reader ever resolves a stale RecordId — every
// retrieve sees either the pre- or post-compaction placement, never a
// moved-out-from-under-it slot. tools/check.sh runs this suite under
// ThreadSanitizer on every PR, so the lock discipline itself is
// race-checked, not just the observable results.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "abdl/parser.h"
#include "kds/engine.h"

namespace mlds::kds {
namespace {

abdm::FileDescriptor ItemFile() {
  abdm::FileDescriptor f;
  f.name = "item";
  f.attributes = {{"FILE", abdm::ValueKind::kString, 0, true},
                  {"key", abdm::ValueKind::kInteger, 0, true},
                  {"owner", abdm::ValueKind::kInteger, 0, true}};
  return f;
}

void Insert(Engine* engine, int key, int owner) {
  auto req = abdl::ParseRequest("INSERT (<FILE, item>, <key, " +
                                std::to_string(key) + ">, <owner, " +
                                std::to_string(owner) + ">)");
  ASSERT_TRUE(req.ok());
  ASSERT_TRUE(engine->Execute(*req).ok());
}

TEST(CompactRaceTest, CompactAllRacingRetrievesServesNoStaleRecords) {
  Engine engine;
  ASSERT_TRUE(engine.DefineFile(ItemFile()).ok());
  constexpr int kKeys = 400;
  for (int key = 0; key < kKeys; ++key) Insert(&engine, key, key % 5);

  // Writer churn: each transaction deletes one owner-3 record and
  // reinserts it atomically, so readers always see the key present while
  // the delete keeps punching fresh holes for the compactor to squeeze.
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int round = 0;
    while (!stop.load()) {
      const int key = 3 + (round++ % (kKeys / 5)) * 5;
      auto txn = abdl::ParseTransaction(
          "DELETE ((FILE = item) and (key = " + std::to_string(key) +
          ")); INSERT (<FILE, item>, <key, " + std::to_string(key) +
          ">, <owner, 3>)");
      ASSERT_TRUE(txn.ok());
      ASSERT_TRUE(engine.ExecuteTransaction(*txn).ok());
    }
  });

  // Compactor: remaps RecordIds while readers and the writer run.
  std::atomic<uint64_t> reclaimed{0};
  std::thread compactor([&] {
    while (!stop.load()) {
      reclaimed.fetch_add(engine.CompactAll());
    }
  });

  // Readers: point lookups on churned and quiet keys plus a full count.
  // A stale RecordId would surface as a missing record, a duplicate, or
  // a count off from the invariant kKeys.
  constexpr int kReaders = 4;
  constexpr int kRounds = 120;
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      auto count_req =
          abdl::ParseRequest("RETRIEVE ((FILE = item)) (COUNT(key))");
      ASSERT_TRUE(count_req.ok());
      for (int round = 0; round < kRounds; ++round) {
        const int churned = 3 + ((t + round) % (kKeys / 5)) * 5;
        const int quiet = 1 + ((t + round) % (kKeys / 5)) * 5;
        for (int key : {churned, quiet}) {
          auto req = abdl::ParseRequest(
              "RETRIEVE ((FILE = item) and (key = " + std::to_string(key) +
              ")) (owner)");
          ASSERT_TRUE(req.ok());
          auto resp = engine.Execute(*req);
          if (!resp.ok() || resp->records.size() != 1 ||
              resp->records[0].GetOrNull("owner").AsInteger() != key % 5) {
            violations.fetch_add(1);
          }
        }
        auto count = engine.Execute(*count_req);
        if (!count.ok() ||
            count->records[0].GetOrNull("COUNT(key)").AsInteger() != kKeys) {
          violations.fetch_add(1);
        }
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true);
  writer.join();
  compactor.join();
  EXPECT_EQ(violations.load(), 0);

  // Quiesced state must replay exactly: every key once, owners intact.
  auto all = abdl::ParseRequest("RETRIEVE ((FILE = item)) (key) BY key");
  ASSERT_TRUE(all.ok());
  auto resp = engine.Execute(*all);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), static_cast<size_t>(kKeys));
  for (int key = 0; key < kKeys; ++key) {
    EXPECT_EQ(resp->records[key].GetOrNull("key").AsInteger(), key);
  }
}

TEST(CompactRaceTest, CompactionChargesCumulativeIo) {
  Engine engine;
  ASSERT_TRUE(engine.DefineFile(ItemFile()).ok());
  for (int key = 0; key < 64; ++key) Insert(&engine, key, key % 3);
  auto del = abdl::ParseRequest("DELETE ((FILE = item) and (owner = 1))");
  ASSERT_TRUE(del.ok());
  ASSERT_TRUE(engine.Execute(*del).ok());

  engine.ResetStats();
  const uint64_t reclaimed = engine.CompactAll();
  EXPECT_GT(reclaimed, 0u);
  const IoStats io = engine.cumulative_io();
  // Compaction reads the old block layout and writes the squeezed one.
  EXPECT_GT(io.blocks_read, 0u);
  EXPECT_GT(io.blocks_written, 0u);
}

}  // namespace
}  // namespace mlds::kds
