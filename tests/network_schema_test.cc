#include "network/ddl_parser.h"
#include "network/schema.h"

#include <gtest/gtest.h>

namespace mlds::network {
namespace {

constexpr char kMiniDdl[] = R"(
SCHEMA NAME IS shop;

RECORD NAME IS customer;
  ITEM cname TYPE IS CHARACTER 20;
  ITEM balance TYPE IS FLOAT 8 2;
  DUPLICATES ARE NOT ALLOWED FOR cname;

RECORD NAME IS invoice;
  ITEM number TYPE IS INTEGER;
  ITEM total TYPE IS FLOAT;

SET NAME IS system_customer;
  OWNER IS SYSTEM;
  MEMBER IS customer;
  INSERTION IS AUTOMATIC;
  RETENTION IS FIXED;
  SET SELECTION IS BY APPLICATION;

SET NAME IS places;
  OWNER IS customer;
  MEMBER IS invoice;
  INSERTION IS MANUAL;
  RETENTION IS OPTIONAL;
  SET SELECTION IS BY APPLICATION;
)";

TEST(NetworkParserTest, ParsesRecordsAndSets) {
  auto schema = ParseSchema(kMiniDdl);
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->name(), "shop");
  EXPECT_EQ(schema->records().size(), 2u);
  EXPECT_EQ(schema->sets().size(), 2u);
}

TEST(NetworkParserTest, ItemTypesAndLengths) {
  auto schema = ParseSchema(kMiniDdl);
  ASSERT_TRUE(schema.ok());
  const RecordType* customer = schema->FindRecord("customer");
  ASSERT_NE(customer, nullptr);
  const Attribute* cname = customer->FindAttribute("cname");
  ASSERT_NE(cname, nullptr);
  EXPECT_EQ(cname->type, AttrType::kString);
  EXPECT_EQ(cname->length, 20);
  EXPECT_FALSE(cname->duplicates_allowed);
  const Attribute* balance = customer->FindAttribute("balance");
  ASSERT_NE(balance, nullptr);
  EXPECT_EQ(balance->type, AttrType::kFloat);
  EXPECT_EQ(balance->length, 8);
  EXPECT_EQ(balance->decimal, 2);
  EXPECT_TRUE(balance->duplicates_allowed);
}

TEST(NetworkParserTest, SetModes) {
  auto schema = ParseSchema(kMiniDdl);
  ASSERT_TRUE(schema.ok());
  const SetType* sys = schema->FindSet("system_customer");
  ASSERT_NE(sys, nullptr);
  EXPECT_TRUE(sys->IsSystemOwned());
  EXPECT_EQ(sys->insertion, InsertionMode::kAutomatic);
  EXPECT_EQ(sys->retention, RetentionMode::kFixed);
  EXPECT_EQ(sys->selection.mode, SelectionMode::kApplication);
  const SetType* places = schema->FindSet("places");
  ASSERT_NE(places, nullptr);
  EXPECT_EQ(places->owner, "customer");
  EXPECT_TRUE(places->HasMember("invoice"));
  EXPECT_EQ(places->insertion, InsertionMode::kManual);
  EXPECT_EQ(places->retention, RetentionMode::kOptional);
}

TEST(NetworkParserTest, MembershipQueries) {
  auto schema = ParseSchema(kMiniDdl);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->SetsWithMember("invoice").size(), 1u);
  EXPECT_EQ(schema->SetsWithOwner("customer").size(), 1u);
  EXPECT_TRUE(schema->SetsWithOwner("invoice").empty());
}

TEST(NetworkParserTest, DdlRoundTrip) {
  auto first = ParseSchema(kMiniDdl);
  ASSERT_TRUE(first.ok());
  auto second = ParseSchema(first->ToDdl());
  ASSERT_TRUE(second.ok()) << second.status() << "\n" << first->ToDdl();
  EXPECT_EQ(*first, *second);
}

TEST(NetworkParserTest, SelectionByValueParses) {
  auto schema = ParseSchema(
      "RECORD NAME IS r; ITEM x TYPE IS INTEGER;"
      "SET NAME IS s; OWNER IS r; MEMBER IS r;"
      "SET SELECTION IS BY VALUE OF x IN r;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  const SetType* s = schema->FindSet("s");
  EXPECT_EQ(s->selection.mode, SelectionMode::kValue);
  EXPECT_EQ(s->selection.item_name, "x");
  EXPECT_EQ(s->selection.record1_name, "r");
}

TEST(NetworkParserTest, SelectionByStructuralParses) {
  auto schema = ParseSchema(
      "RECORD NAME IS a; ITEM x TYPE IS INTEGER;"
      "RECORD NAME IS b; ITEM y TYPE IS INTEGER;"
      "SET NAME IS s; OWNER IS a; MEMBER IS b;"
      "SET SELECTION IS BY STRUCTURAL x IN a = b;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  const SetType* s = schema->FindSet("s");
  EXPECT_EQ(s->selection.mode, SelectionMode::kStructural);
  EXPECT_EQ(s->selection.record2_name, "b");
}

TEST(NetworkParserTest, MultipleMembersAllowed) {
  auto schema = ParseSchema(
      "RECORD NAME IS a; ITEM x TYPE IS INTEGER;"
      "RECORD NAME IS b; ITEM y TYPE IS INTEGER;"
      "RECORD NAME IS c; ITEM z TYPE IS INTEGER;"
      "SET NAME IS s; OWNER IS a; MEMBER IS b; MEMBER IS c;"
      "INSERTION IS MANUAL; RETENTION IS OPTIONAL;"
      "SET SELECTION IS BY APPLICATION;");
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->FindSet("s")->members.size(), 2u);
}

TEST(NetworkParserTest, RejectsSetWithUnknownOwner) {
  auto schema = ParseSchema(
      "RECORD NAME IS a; ITEM x TYPE IS INTEGER;"
      "SET NAME IS s; OWNER IS nope; MEMBER IS a;");
  ASSERT_FALSE(schema.ok());
}

TEST(NetworkParserTest, RejectsSetWithUnknownMember) {
  auto schema = ParseSchema(
      "RECORD NAME IS a; ITEM x TYPE IS INTEGER;"
      "SET NAME IS s; OWNER IS a; MEMBER IS nope;");
  ASSERT_FALSE(schema.ok());
}

TEST(NetworkParserTest, RejectsDuplicateRecordNames) {
  auto schema = ParseSchema(
      "RECORD NAME IS a; ITEM x TYPE IS INTEGER;"
      "RECORD NAME IS a; ITEM y TYPE IS INTEGER;");
  ASSERT_FALSE(schema.ok());
}

TEST(NetworkParserTest, RejectsDuplicatesClauseOnUnknownItem) {
  auto schema = ParseSchema(
      "RECORD NAME IS a; ITEM x TYPE IS INTEGER;"
      "DUPLICATES ARE NOT ALLOWED FOR zz;");
  ASSERT_FALSE(schema.ok());
}

TEST(NetworkParserTest, RejectsMissingSemicolon) {
  auto schema = ParseSchema("RECORD NAME IS a");
  ASSERT_FALSE(schema.ok());
  EXPECT_TRUE(schema.status().IsParseError());
}

TEST(NetworkParserTest, CommentsIgnored) {
  auto schema = ParseSchema(
      "-- header comment\nRECORD NAME IS a; -- inline\nITEM x TYPE IS "
      "INTEGER;");
  ASSERT_TRUE(schema.ok()) << schema.status();
}

}  // namespace
}  // namespace mlds::network
