#include "kds/wal.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "abdl/parser.h"
#include "kds/engine.h"
#include "kds/snapshot.h"

namespace mlds::kds {
namespace {

using abdm::DatabaseDescriptor;
using abdm::FileDescriptor;
using abdm::ValueKind;

FileDescriptor AccountFile() {
  FileDescriptor f;
  f.name = "account";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"acct", ValueKind::kString, 0, true},
      {"balance", ValueKind::kInteger, 0, true},
      {"note", ValueKind::kString, 40, false},
  };
  return f;
}

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

std::string SnapshotOf(const Engine& engine) {
  std::ostringstream out;
  EXPECT_TRUE(SaveSnapshot(engine, out).ok());
  return out.str();
}

/// One unit of the workload: a single auto-committed request or a whole
/// transaction. Units are the granularity of the durability contract —
/// after a crash, recovery must yield exactly the units whose log
/// entries (through COMMIT) were fully framed.
struct Unit {
  std::vector<std::string> requests;  // size 1: single request.
  bool transactional = false;
};

/// Deterministic mixed workload: inserts, updates, deletes, and small
/// transactions over one file, with quoted strings thrown in so replay
/// exercises the printer/parser round trip.
std::vector<Unit> MakeWorkload(uint32_t seed, int units) {
  std::mt19937 rng(seed);
  std::vector<Unit> workload;
  int next_key = 0;
  auto insert = [&]() {
    std::string key = "a" + std::to_string(next_key++);
    std::string note = (next_key % 3 == 0) ? "pays ''rent''" : "savings";
    return "INSERT (<FILE, account>, <acct, '" + key + "'>, <balance, " +
           std::to_string(static_cast<int>(rng() % 1000)) + ">, <note, '" +
           note + "'>)";
  };
  auto mutate = [&]() -> std::string {
    std::string key = "a" + std::to_string(rng() % std::max(next_key, 1));
    switch (rng() % 3) {
      case 0:
        return "UPDATE ((FILE = account) and (acct = '" + key +
               "')) (balance = balance + 7)";
      case 1:
        return "DELETE ((FILE = account) and (acct = '" + key + "'))";
      default:
        return insert();
    }
  };
  for (int u = 0; u < units; ++u) {
    Unit unit;
    if (next_key > 2 && rng() % 3 == 0) {
      unit.transactional = true;
      int statements = 2 + static_cast<int>(rng() % 2);
      for (int s = 0; s < statements; ++s) unit.requests.push_back(mutate());
    } else {
      unit.requests.push_back(next_key < 3 ? insert() : mutate());
    }
    workload.push_back(std::move(unit));
  }
  return workload;
}

/// Applies `unit` to `engine`, ignoring failures: a crashed WAL refuses
/// the mutation and the workload driver (like a real client) moves on.
void ApplyUnit(Engine& engine, const Unit& unit) {
  if (unit.transactional) {
    abdl::Transaction txn;
    for (const auto& text : unit.requests) txn.push_back(MustParse(text));
    (void)engine.ExecuteTransaction(txn);
  } else {
    (void)engine.Execute(MustParse(unit.requests[0]));
  }
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  DatabaseDescriptor Schema() {
    DatabaseDescriptor db;
    db.name = "bank";
    db.files = {AccountFile()};
    return db;
  }
};

/// The tentpole durability property: crash the log after *every* entry
/// boundary of a mixed workload (with a torn tail of varying length) and
/// check that recovery rebuilds exactly the committed prefix — byte-
/// identical to an engine that executed only the committed units.
TEST_F(WalRecoveryTest, CrashAfterEveryPrefixYieldsExactlyCommittedUnits) {
  const std::vector<Unit> workload = MakeWorkload(/*seed=*/42, /*units=*/18);

  // The schema is checkpointed rather than logged, so crash points count
  // only workload entries (mirrors a backend that checkpoints right after
  // its files are defined).
  std::string schema_checkpoint;
  {
    Engine schema_only;
    ASSERT_TRUE(schema_only.DefineDatabase(Schema()).ok());
    schema_checkpoint = SnapshotOf(schema_only);
  }

  // Reference run, no crash: record the cumulative entry count after each
  // unit so crash points map to committed-unit sets without hand-counting
  // the framing (transactions log BEGIN + writes + COMMIT).
  WalWriter clean_wal;
  Engine clean_engine;
  ASSERT_TRUE(clean_engine.DefineDatabase(Schema()).ok());
  clean_engine.AttachWal(&clean_wal);  // schema predates the log's arming.
  std::vector<uint64_t> entries_after_unit;
  for (const auto& unit : workload) {
    ApplyUnit(clean_engine, unit);
    entries_after_unit.push_back(clean_wal.entry_count());
  }
  const uint64_t total_entries = clean_wal.entry_count();
  ASSERT_GT(total_entries, workload.size());  // some units were txns.

  for (uint64_t crash_at = 0; crash_at <= total_entries; ++crash_at) {
    // Victim: same workload, log dies after `crash_at` appends, leaving
    // a torn tail of varying length (0 = clean cut at the boundary).
    WalWriter wal;
    Engine victim;
    ASSERT_TRUE(victim.DefineDatabase(Schema()).ok());
    victim.AttachWal(&wal);
    wal.ArmCrash({.entries_until_crash = static_cast<int>(crash_at),
                  .torn_bytes = static_cast<size_t>(crash_at % 9)});
    for (const auto& unit : workload) ApplyUnit(victim, unit);
    EXPECT_EQ(wal.entry_count(), crash_at);

    // Recover from (schema checkpoint, surviving log).
    Engine recovered;
    std::istringstream checkpoint(schema_checkpoint);
    auto report = RecoverEngine(checkpoint, wal.contents(), &recovered);
    ASSERT_TRUE(report.ok()) << "crash_at=" << crash_at << ": "
                             << report.status();
    EXPECT_EQ(report->entries_scanned, crash_at);

    // Oracle: an engine that executed exactly the committed units.
    Engine reference;
    ASSERT_TRUE(reference.DefineDatabase(Schema()).ok());
    for (size_t u = 0; u < workload.size(); ++u) {
      if (entries_after_unit[u] <= crash_at) ApplyUnit(reference, workload[u]);
    }
    EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(reference))
        << "recovered state diverges at crash point " << crash_at;
  }
}

TEST_F(WalRecoveryTest, TornTailIsDetectedDiscardedAndRepairable) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);  // before DefineDatabase: DEFINEs must be logged.
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a0'>, "
                                     "<balance, 10>)"))
                  .ok());
  // Crash mid-frame on the second insert: 5 bytes of its frame land.
  wal.ArmCrash({.entries_until_crash = 0, .torn_bytes = 5});
  EXPECT_FALSE(engine
                   .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a1'>, "
                                      "<balance, 20>)"))
                   .ok());
  EXPECT_TRUE(wal.crashed());
  // Further mutations are refused: nothing unlogged is ever applied.
  EXPECT_FALSE(engine
                   .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a2'>, "
                                      "<balance, 30>)"))
                   .ok());
  EXPECT_EQ(engine.FileSize("account"), 1u);

  WalScan scan = ScanWal(wal.contents());
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.torn_bytes, 5u);
  ASSERT_EQ(scan.entries.size(), 2u);  // DEFINE + first insert.

  // Repair truncates the torn frame and re-opens the log for appends.
  EXPECT_EQ(wal.RepairTail(), 5u);
  EXPECT_FALSE(wal.crashed());
  EXPECT_FALSE(ScanWal(wal.contents()).torn);
  EXPECT_TRUE(engine
                  .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a3'>, "
                                     "<balance, 40>)"))
                  .ok());

  Engine recovered;
  std::istringstream no_checkpoint("");
  auto report = RecoverEngine(no_checkpoint, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(recovered.FileSize("account"), 2u);  // a0 and a3, not a1/a2.
  EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(engine));
}

TEST_F(WalRecoveryTest, UncommittedTransactionIsDiscardedWhole) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a0'>, "
                                     "<balance, 10>)"))
                  .ok());
  // Transaction of two writes; the log dies before COMMIT can be framed
  // (DEFINE + insert = 2 entries so far; BEGIN + 2 TREQUESTs land, the
  // COMMIT append is the crash).
  wal.ArmCrash({.entries_until_crash = 3, .torn_bytes = 0});
  abdl::Transaction txn;
  txn.push_back(MustParse(
      "INSERT (<FILE, account>, <acct, 'a1'>, <balance, 20>)"));
  txn.push_back(MustParse(
      "UPDATE ((FILE = account) and (acct = 'a0')) (balance = 99)"));
  EXPECT_FALSE(engine.ExecuteTransaction(txn).ok());

  Engine recovered;
  std::istringstream no_checkpoint("");
  auto report = RecoverEngine(no_checkpoint, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->discarded_uncommitted, 2u);
  EXPECT_EQ(recovered.FileSize("account"), 1u);
  auto resp = recovered.Execute(MustParse(
      "RETRIEVE ((FILE = account) and (acct = 'a0')) (all attributes)"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].GetOrNull("balance").AsInteger(), 10);
}

TEST_F(WalRecoveryTest, CheckpointTruncatesLogAndSeedsRecovery) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine
                    .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a" +
                                       std::to_string(i) + "'>, <balance, " +
                                       std::to_string(i * 10) + ">)"))
                    .ok());
  }
  std::ostringstream checkpoint;
  ASSERT_TRUE(Checkpoint(engine, checkpoint, &wal).ok());
  EXPECT_EQ(wal.entry_count(), 0u);

  // Post-checkpoint mutations accumulate in the (now short) log.
  ASSERT_TRUE(engine
                  .Execute(MustParse("UPDATE ((FILE = account) and "
                                     "(acct = 'a2')) (balance = 777)"))
                  .ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse(
                      "DELETE ((FILE = account) and (acct = 'a4'))"))
                  .ok());
  EXPECT_EQ(wal.entry_count(), 2u);

  Engine recovered;
  std::istringstream snapshot(checkpoint.str());
  auto report = RecoverEngine(snapshot, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->replayed, 2u);
  EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(engine));
}

TEST_F(WalRecoveryTest, FailedRequestsRefailDeterministicallyOnReplay) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  // Logged before applied, so a request that fails validation still lands
  // in the log — and must fail identically on replay, not corrupt state.
  EXPECT_FALSE(
      engine.Execute(MustParse("INSERT (<FILE, nofile>, <x, 1>)")).ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a0'>, "
                                     "<balance, 10>)"))
                  .ok());

  Engine recovered;
  std::istringstream no_checkpoint("");
  auto report = RecoverEngine(no_checkpoint, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->failed_replays, 1u);
  EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(engine));
}

TEST_F(WalRecoveryTest, QuotedStringsSurviveTheLogRoundTrip) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse(
                      "INSERT (<FILE, account>, <acct, 'a''0'>, "
                      "<balance, 1>, <note, 'it''s, <odd> ''stuff'''>)"))
                  .ok());
  Engine recovered;
  std::istringstream no_checkpoint("");
  ASSERT_TRUE(RecoverEngine(no_checkpoint, wal.contents(), &recovered).ok());
  auto resp = recovered.Execute(
      MustParse("RETRIEVE ((FILE = account)) (all attributes)"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].GetOrNull("acct").AsString(), "a'0");
  EXPECT_EQ(resp->records[0].GetOrNull("note").AsString(),
            "it's, <odd> 'stuff'");
  EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(engine));
}

}  // namespace
}  // namespace mlds::kds
