#include "kds/wal.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "abdl/parser.h"
#include "kds/engine.h"
#include "kds/snapshot.h"

namespace mlds::kds {
namespace {

using abdm::DatabaseDescriptor;
using abdm::FileDescriptor;
using abdm::ValueKind;

FileDescriptor AccountFile() {
  FileDescriptor f;
  f.name = "account";
  f.attributes = {
      {"FILE", ValueKind::kString, 0, true},
      {"acct", ValueKind::kString, 0, true},
      {"balance", ValueKind::kInteger, 0, true},
      {"note", ValueKind::kString, 40, false},
  };
  return f;
}

abdl::Request MustParse(std::string_view text) {
  auto r = abdl::ParseRequest(text);
  EXPECT_TRUE(r.ok()) << text << ": " << r.status();
  return *r;
}

std::string SnapshotOf(const Engine& engine) {
  std::ostringstream out;
  EXPECT_TRUE(SaveSnapshot(engine, out).ok());
  return out.str();
}

/// One unit of the workload: a single auto-committed request or a whole
/// transaction. Units are the granularity of the durability contract —
/// after a crash, recovery must yield exactly the units whose log
/// entries (through COMMIT) were fully framed.
struct Unit {
  std::vector<std::string> requests;  // size 1: single request.
  bool transactional = false;
};

/// Deterministic mixed workload: inserts, updates, deletes, and small
/// transactions over one file, with quoted strings thrown in so replay
/// exercises the printer/parser round trip.
std::vector<Unit> MakeWorkload(uint32_t seed, int units) {
  std::mt19937 rng(seed);
  std::vector<Unit> workload;
  int next_key = 0;
  auto insert = [&]() {
    std::string key = "a" + std::to_string(next_key++);
    std::string note = (next_key % 3 == 0) ? "pays ''rent''" : "savings";
    return "INSERT (<FILE, account>, <acct, '" + key + "'>, <balance, " +
           std::to_string(static_cast<int>(rng() % 1000)) + ">, <note, '" +
           note + "'>)";
  };
  auto mutate = [&]() -> std::string {
    std::string key = "a" + std::to_string(rng() % std::max(next_key, 1));
    switch (rng() % 3) {
      case 0:
        return "UPDATE ((FILE = account) and (acct = '" + key +
               "')) (balance = balance + 7)";
      case 1:
        return "DELETE ((FILE = account) and (acct = '" + key + "'))";
      default:
        return insert();
    }
  };
  for (int u = 0; u < units; ++u) {
    Unit unit;
    if (next_key > 2 && rng() % 3 == 0) {
      unit.transactional = true;
      int statements = 2 + static_cast<int>(rng() % 2);
      for (int s = 0; s < statements; ++s) unit.requests.push_back(mutate());
    } else {
      unit.requests.push_back(next_key < 3 ? insert() : mutate());
    }
    workload.push_back(std::move(unit));
  }
  return workload;
}

/// Applies `unit` to `engine`, ignoring failures: a crashed WAL refuses
/// the mutation and the workload driver (like a real client) moves on.
void ApplyUnit(Engine& engine, const Unit& unit) {
  if (unit.transactional) {
    abdl::Transaction txn;
    for (const auto& text : unit.requests) txn.push_back(MustParse(text));
    (void)engine.ExecuteTransaction(txn);
  } else {
    (void)engine.Execute(MustParse(unit.requests[0]));
  }
}

class WalRecoveryTest : public ::testing::Test {
 protected:
  DatabaseDescriptor Schema() {
    DatabaseDescriptor db;
    db.name = "bank";
    db.files = {AccountFile()};
    return db;
  }
};

/// The tentpole durability property: crash the log after *every* entry
/// boundary of a mixed workload (with a torn tail of varying length) and
/// check that recovery rebuilds exactly the committed prefix — byte-
/// identical to an engine that executed only the committed units.
TEST_F(WalRecoveryTest, CrashAfterEveryPrefixYieldsExactlyCommittedUnits) {
  const std::vector<Unit> workload = MakeWorkload(/*seed=*/42, /*units=*/18);

  // The schema is checkpointed rather than logged, so crash points count
  // only workload entries (mirrors a backend that checkpoints right after
  // its files are defined).
  std::string schema_checkpoint;
  {
    Engine schema_only;
    ASSERT_TRUE(schema_only.DefineDatabase(Schema()).ok());
    schema_checkpoint = SnapshotOf(schema_only);
  }

  // Reference run, no crash: record the cumulative entry count after each
  // unit so crash points map to committed-unit sets without hand-counting
  // the framing (transactions log BEGIN + writes + COMMIT).
  WalWriter clean_wal;
  Engine clean_engine;
  ASSERT_TRUE(clean_engine.DefineDatabase(Schema()).ok());
  clean_engine.AttachWal(&clean_wal);  // schema predates the log's arming.
  std::vector<uint64_t> entries_after_unit;
  for (const auto& unit : workload) {
    ApplyUnit(clean_engine, unit);
    entries_after_unit.push_back(clean_wal.entry_count());
  }
  const uint64_t total_entries = clean_wal.entry_count();
  ASSERT_GT(total_entries, workload.size());  // some units were txns.

  for (uint64_t crash_at = 0; crash_at <= total_entries; ++crash_at) {
    // Victim: same workload, log dies after `crash_at` appends, leaving
    // a torn tail of varying length (0 = clean cut at the boundary).
    WalWriter wal;
    Engine victim;
    ASSERT_TRUE(victim.DefineDatabase(Schema()).ok());
    victim.AttachWal(&wal);
    wal.ArmCrash({.entries_until_crash = static_cast<int>(crash_at),
                  .torn_bytes = static_cast<size_t>(crash_at % 9)});
    for (const auto& unit : workload) ApplyUnit(victim, unit);
    EXPECT_EQ(wal.entry_count(), crash_at);

    // Recover from (schema checkpoint, surviving log).
    Engine recovered;
    std::istringstream checkpoint(schema_checkpoint);
    auto report = RecoverEngine(checkpoint, wal.contents(), &recovered);
    ASSERT_TRUE(report.ok()) << "crash_at=" << crash_at << ": "
                             << report.status();
    EXPECT_EQ(report->entries_scanned, crash_at);

    // Oracle: an engine that executed exactly the committed units.
    Engine reference;
    ASSERT_TRUE(reference.DefineDatabase(Schema()).ok());
    for (size_t u = 0; u < workload.size(); ++u) {
      if (entries_after_unit[u] <= crash_at) ApplyUnit(reference, workload[u]);
    }
    EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(reference))
        << "recovered state diverges at crash point " << crash_at;
  }
}

TEST_F(WalRecoveryTest, TornTailIsDetectedDiscardedAndRepairable) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);  // before DefineDatabase: DEFINEs must be logged.
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a0'>, "
                                     "<balance, 10>)"))
                  .ok());
  // Crash mid-frame on the second insert: 5 bytes of its frame land.
  wal.ArmCrash({.entries_until_crash = 0, .torn_bytes = 5});
  EXPECT_FALSE(engine
                   .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a1'>, "
                                      "<balance, 20>)"))
                   .ok());
  EXPECT_TRUE(wal.crashed());
  // Further mutations are refused: nothing unlogged is ever applied.
  EXPECT_FALSE(engine
                   .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a2'>, "
                                      "<balance, 30>)"))
                   .ok());
  EXPECT_EQ(engine.FileSize("account"), 1u);

  WalScan scan = ScanWal(wal.contents());
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.torn_bytes, 5u);
  ASSERT_EQ(scan.entries.size(), 2u);  // DEFINE + first insert.

  // Repair truncates the torn frame and re-opens the log for appends.
  EXPECT_EQ(wal.RepairTail(), 5u);
  EXPECT_FALSE(wal.crashed());
  EXPECT_FALSE(ScanWal(wal.contents()).torn);
  EXPECT_TRUE(engine
                  .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a3'>, "
                                     "<balance, 40>)"))
                  .ok());

  Engine recovered;
  std::istringstream no_checkpoint("");
  auto report = RecoverEngine(no_checkpoint, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(recovered.FileSize("account"), 2u);  // a0 and a3, not a1/a2.
  EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(engine));
}

TEST_F(WalRecoveryTest, UncommittedTransactionIsDiscardedWhole) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a0'>, "
                                     "<balance, 10>)"))
                  .ok());
  // Transaction of two writes; the log dies before COMMIT can be framed
  // (DEFINE + insert = 2 entries so far; BEGIN + 2 TREQUESTs land, the
  // COMMIT append is the crash).
  wal.ArmCrash({.entries_until_crash = 3, .torn_bytes = 0});
  abdl::Transaction txn;
  txn.push_back(MustParse(
      "INSERT (<FILE, account>, <acct, 'a1'>, <balance, 20>)"));
  txn.push_back(MustParse(
      "UPDATE ((FILE = account) and (acct = 'a0')) (balance = 99)"));
  EXPECT_FALSE(engine.ExecuteTransaction(txn).ok());

  Engine recovered;
  std::istringstream no_checkpoint("");
  auto report = RecoverEngine(no_checkpoint, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->discarded_uncommitted, 2u);
  EXPECT_EQ(recovered.FileSize("account"), 1u);
  auto resp = recovered.Execute(MustParse(
      "RETRIEVE ((FILE = account) and (acct = 'a0')) (all attributes)"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].GetOrNull("balance").AsInteger(), 10);
}

TEST_F(WalRecoveryTest, CheckpointTruncatesLogAndSeedsRecovery) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine
                    .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a" +
                                       std::to_string(i) + "'>, <balance, " +
                                       std::to_string(i * 10) + ">)"))
                    .ok());
  }
  std::ostringstream checkpoint;
  ASSERT_TRUE(Checkpoint(engine, checkpoint, &wal).ok());
  EXPECT_EQ(wal.entry_count(), 0u);

  // Post-checkpoint mutations accumulate in the (now short) log.
  ASSERT_TRUE(engine
                  .Execute(MustParse("UPDATE ((FILE = account) and "
                                     "(acct = 'a2')) (balance = 777)"))
                  .ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse(
                      "DELETE ((FILE = account) and (acct = 'a4'))"))
                  .ok());
  EXPECT_EQ(wal.entry_count(), 2u);

  Engine recovered;
  std::istringstream snapshot(checkpoint.str());
  auto report = RecoverEngine(snapshot, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->replayed, 2u);
  EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(engine));
}

TEST_F(WalRecoveryTest, FailedRequestsRefailDeterministicallyOnReplay) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  // Logged before applied, so a request that fails validation still lands
  // in the log — and must fail identically on replay, not corrupt state.
  EXPECT_FALSE(
      engine.Execute(MustParse("INSERT (<FILE, nofile>, <x, 1>)")).ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse("INSERT (<FILE, account>, <acct, 'a0'>, "
                                     "<balance, 10>)"))
                  .ok());

  Engine recovered;
  std::istringstream no_checkpoint("");
  auto report = RecoverEngine(no_checkpoint, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->failed_replays, 1u);
  EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(engine));
}

TEST_F(WalRecoveryTest, QuotedStringsSurviveTheLogRoundTrip) {
  WalWriter wal;
  Engine engine;
  engine.AttachWal(&wal);
  ASSERT_TRUE(engine.DefineDatabase(Schema()).ok());
  ASSERT_TRUE(engine
                  .Execute(MustParse(
                      "INSERT (<FILE, account>, <acct, 'a''0'>, "
                      "<balance, 1>, <note, 'it''s, <odd> ''stuff'''>)"))
                  .ok());
  Engine recovered;
  std::istringstream no_checkpoint("");
  ASSERT_TRUE(RecoverEngine(no_checkpoint, wal.contents(), &recovered).ok());
  auto resp = recovered.Execute(
      MustParse("RETRIEVE ((FILE = account)) (all attributes)"));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->records.size(), 1u);
  EXPECT_EQ(resp->records[0].GetOrNull("acct").AsString(), "a'0");
  EXPECT_EQ(resp->records[0].GetOrNull("note").AsString(),
            "it's, <odd> 'stuff'");
  EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(engine));
}

// ---------------------------------------------------------------------
// Group commit: concurrent appends coalesce into shared flushes, and a
// crash at any boundary of the coalesced log still recovers a byte-
// identical committed prefix.
// ---------------------------------------------------------------------

/// Concurrent appenders with a widened coalescing window: every append
/// returns only once its entry is durable, the durable log carries every
/// entry exactly once with each thread's entries in submission order,
/// and the flush count proves real coalescing (fewer flushes than
/// entries). The recovered engine then holds every appended record.
TEST_F(WalRecoveryTest, ConcurrentAppendsCoalesceIntoSharedFlushes) {
  std::string schema_checkpoint;
  {
    Engine schema_only;
    ASSERT_TRUE(schema_only.DefineDatabase(Schema()).ok());
    schema_checkpoint = SnapshotOf(schema_only);
  }

  WalWriter wal;
  wal.set_flush_latency_us(300);  // hold flushes open so groups form.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  std::vector<int> durability_misses(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&wal, &durability_misses, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const std::string acct =
            "t" + std::to_string(t) + "_" + std::to_string(i);
        const std::string payload = "REQUEST INSERT (<FILE, account>, "
                                    "<acct, '" + acct + "'>, <balance, 1>)";
        if (!wal.Append(payload).ok()) {
          ++durability_misses[t];
          continue;
        }
        // Group commit must not weaken the durability contract: once
        // Append returns, the durable image already frames this entry.
        if (i % 8 == 0 &&
            wal.contents().find("'" + acct + "'") == std::string::npos) {
          ++durability_misses[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(durability_misses[t], 0);

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(wal.entry_count(), kTotal);
  const WalScan scan = ScanWal(wal.contents());
  EXPECT_FALSE(scan.torn);
  ASSERT_EQ(scan.entries.size(), kTotal);
  // Per-thread order is preserved (flushes are LSN-ordered prefixes);
  // cross-thread interleaving is free.
  std::vector<int> next_index(kThreads, 0);
  for (const WalEntry& entry : scan.entries) {
    for (int t = 0; t < kThreads; ++t) {
      const std::string tag =
          "'t" + std::to_string(t) + "_" + std::to_string(next_index[t]) + "'";
      if (entry.payload.find(tag) != std::string::npos) {
        ++next_index[t];
        break;
      }
    }
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(next_index[t], kPerThread) << "thread " << t;
  }

  const WalWriter::GroupCommitStats stats = wal.group_commit_stats();
  EXPECT_EQ(stats.entries, kTotal);
  EXPECT_GE(stats.max_group, 2u);
  EXPECT_LT(stats.flushes, stats.entries)
      << "no append ever joined another's flush";

  Engine recovered;
  std::istringstream checkpoint(schema_checkpoint);
  auto report = RecoverEngine(checkpoint, wal.contents(), &recovered);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->replayed, kTotal);
  EXPECT_EQ(recovered.FileSize("account"), kTotal);
}

/// Crash the log at every entry boundary of a workload whose units are
/// themselves multi-entry flush groups — kernel batch INSERTs (one wide
/// entry) and transactions (BEGIN..COMMIT appended as one AppendBatch) —
/// and check recovery rebuilds exactly the committed units, byte-
/// identical to an engine that executed only those. A crash landing
/// inside a transaction's coalesced entries must discard it whole.
TEST_F(WalRecoveryTest, GroupCommittedLogRecoversExactlyAtEveryBoundary) {
  struct Op {
    std::vector<std::string> requests;  // size 1: single auto-commit.
    bool transactional = false;
    int batch_rows = 0;  // > 0: batch INSERT of this many records.
  };
  auto batch_record = [](int key) {
    abdm::Record record;
    record.Set("FILE", abdm::Value::String("account"));
    record.Set("acct", abdm::Value::String("b" + std::to_string(key)));
    record.Set("balance", abdm::Value::Integer(key * 3));
    return record;
  };
  std::vector<Op> workload;
  int next_batch_key = 0;
  std::mt19937 rng(7);
  for (int u = 0; u < 14; ++u) {
    Op op;
    switch (u % 3) {
      case 0:
        op.batch_rows = 1 + static_cast<int>(rng() % 4);
        break;
      case 1:
        op.transactional = true;
        op.requests = {
            "INSERT (<FILE, account>, <acct, 'tx" + std::to_string(u) +
                "'>, <balance, 5>)",
            "UPDATE ((FILE = account) and (acct = 'tx" + std::to_string(u) +
                "')) (balance = balance + 2)",
        };
        break;
      default:
        op.requests = {"INSERT (<FILE, account>, <acct, 's" +
                       std::to_string(u) + "'>, <balance, 9>)"};
        break;
    }
    workload.push_back(std::move(op));
  }
  auto apply = [&](Engine& engine, const Op& op, int* batch_key) {
    if (op.batch_rows > 0) {
      abdl::BatchInsertRequest batch;
      for (int r = 0; r < op.batch_rows; ++r) {
        batch.records.push_back(batch_record((*batch_key)++));
      }
      (void)engine.Execute(abdl::Request(std::move(batch)));
      return;
    }
    if (op.transactional) {
      abdl::Transaction txn;
      for (const auto& text : op.requests) txn.push_back(MustParse(text));
      (void)engine.ExecuteTransaction(txn);
      return;
    }
    (void)engine.Execute(MustParse(op.requests[0]));
  };

  std::string schema_checkpoint;
  {
    Engine schema_only;
    ASSERT_TRUE(schema_only.DefineDatabase(Schema()).ok());
    schema_checkpoint = SnapshotOf(schema_only);
  }

  // Reference run: map entry counts to completed ops.
  WalWriter clean_wal;
  Engine clean_engine;
  ASSERT_TRUE(clean_engine.DefineDatabase(Schema()).ok());
  clean_engine.AttachWal(&clean_wal);
  std::vector<uint64_t> entries_after_op;
  next_batch_key = 0;
  for (const Op& op : workload) {
    apply(clean_engine, op, &next_batch_key);
    entries_after_op.push_back(clean_wal.entry_count());
  }
  const uint64_t total_entries = clean_wal.entry_count();
  // Transactions contribute BEGIN + bodies + COMMIT; batches one entry.
  ASSERT_GT(total_entries, workload.size());

  for (uint64_t crash_at = 0; crash_at <= total_entries; ++crash_at) {
    WalWriter wal;
    Engine victim;
    ASSERT_TRUE(victim.DefineDatabase(Schema()).ok());
    victim.AttachWal(&wal);
    wal.ArmCrash({.entries_until_crash = static_cast<int>(crash_at),
                  .torn_bytes = static_cast<size_t>(crash_at % 7)});
    int victim_key = 0;
    for (const Op& op : workload) apply(victim, op, &victim_key);
    EXPECT_EQ(wal.entry_count(), crash_at);

    Engine recovered;
    std::istringstream checkpoint(schema_checkpoint);
    auto report = RecoverEngine(checkpoint, wal.contents(), &recovered);
    ASSERT_TRUE(report.ok()) << "crash_at=" << crash_at << ": "
                             << report.status();
    EXPECT_EQ(report->entries_scanned, crash_at);

    Engine reference;
    ASSERT_TRUE(reference.DefineDatabase(Schema()).ok());
    int reference_key = 0;
    for (size_t u = 0; u < workload.size(); ++u) {
      if (entries_after_op[u] <= crash_at) {
        apply(reference, workload[u], &reference_key);
      } else if (workload[u].batch_rows > 0) {
        // Skipped batches still consume their keys so later batches
        // insert the same records as the victim run did.
        reference_key += workload[u].batch_rows;
      }
    }
    EXPECT_EQ(SnapshotOf(recovered), SnapshotOf(reference))
        << "recovered state diverges at crash point " << crash_at;
  }
}

}  // namespace
}  // namespace mlds::kds
