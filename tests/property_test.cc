// Property-based tests: randomized sweeps checking cross-component
// invariants — DNF normalization preserves query semantics, the kernel
// file store agrees with a naive reference model, DML navigation agrees
// with direct kernel counts, and MBDS agrees with the single engine.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "abdl/parser.h"
#include "kds/engine.h"
#include "kds/file_store.h"
#include "mbds/controller.h"

namespace mlds {
namespace {

using abdm::Conjunction;
using abdm::Predicate;
using abdm::Query;
using abdm::Record;
using abdm::RelOp;
using abdm::Value;

// --- Property 1: DNF normalization preserves semantics ---

/// A random boolean expression over predicates, with its own evaluator.
struct Expr {
  enum class Kind { kPred, kAnd, kOr } kind = Kind::kPred;
  Predicate pred;
  std::vector<Expr> children;

  bool Eval(const Record& r) const {
    switch (kind) {
      case Kind::kPred:
        return pred.Matches(r);
      case Kind::kAnd:
        return std::all_of(children.begin(), children.end(),
                           [&](const Expr& e) { return e.Eval(r); });
      case Kind::kOr:
        return std::any_of(children.begin(), children.end(),
                           [&](const Expr& e) { return e.Eval(r); });
    }
    return false;
  }

  std::string ToText() const {
    switch (kind) {
      case Kind::kPred:
        return pred.ToString();
      case Kind::kAnd:
      case Kind::kOr: {
        std::string out = "(";
        for (size_t i = 0; i < children.size(); ++i) {
          if (i > 0) out += kind == Kind::kAnd ? " and " : " or ";
          out += children[i].ToText();
        }
        out += ")";
        return out;
      }
    }
    return "";
  }
};

Expr RandomExpr(std::mt19937* rng, int depth) {
  std::uniform_int_distribution<int> attr_dist(0, 3);
  std::uniform_int_distribution<int> val_dist(0, 4);
  std::uniform_int_distribution<int> op_dist(0, 5);
  std::uniform_int_distribution<int> kind_dist(0, depth <= 0 ? 0 : 2);
  std::uniform_int_distribution<int> fanout_dist(2, 3);

  Expr e;
  const int kind = kind_dist(*rng);
  if (kind == 0) {
    e.kind = Expr::Kind::kPred;
    const char* attrs[] = {"a", "b", "c", "d"};
    e.pred.attribute = attrs[attr_dist(*rng)];
    e.pred.op = static_cast<RelOp>(op_dist(*rng));
    e.pred.value = Value::Integer(val_dist(*rng));
    return e;
  }
  e.kind = kind == 1 ? Expr::Kind::kAnd : Expr::Kind::kOr;
  const int fanout = fanout_dist(*rng);
  for (int i = 0; i < fanout; ++i) {
    e.children.push_back(RandomExpr(rng, depth - 1));
  }
  return e;
}

Record RandomRecord(std::mt19937* rng) {
  std::uniform_int_distribution<int> val_dist(0, 4);
  std::uniform_int_distribution<int> present_dist(0, 4);
  Record r;
  for (const char* attr : {"a", "b", "c", "d"}) {
    if (present_dist(*rng) > 0) {  // 20% missing-attribute records
      r.Set(attr, Value::Integer(val_dist(*rng)));
    }
  }
  return r;
}

class DnfEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(DnfEquivalenceTest, ParsedDnfMatchesDirectEvaluation) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    Expr expr = RandomExpr(&rng, 3);
    auto query = abdl::ParseQuery(expr.ToText());
    ASSERT_TRUE(query.ok()) << expr.ToText() << ": " << query.status();
    for (int probe = 0; probe < 25; ++probe) {
      Record r = RandomRecord(&rng);
      EXPECT_EQ(query->Matches(r), expr.Eval(r))
          << "expr: " << expr.ToText() << "\nrecord: " << r.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- Property 2: FileStore agrees with a naive reference model ---

class FileStoreFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FileStoreFuzzTest, RandomOperationsMatchReferenceModel) {
  std::mt19937 rng(GetParam());
  abdm::FileDescriptor desc;
  desc.name = "f";
  desc.attributes = {{"FILE", abdm::ValueKind::kString, 0, true},
                     {"k", abdm::ValueKind::kInteger, 0, true},
                     {"v", abdm::ValueKind::kInteger, 0, false}};
  kds::FileStore store(desc, 4);
  // Reference: slot-indexed live records.
  std::vector<std::pair<bool, Record>> reference;

  std::uniform_int_distribution<int> op_dist(0, 9);
  std::uniform_int_distribution<int> key_dist(0, 9);
  std::uniform_int_distribution<int> val_dist(0, 9);
  kds::IoStats io;

  auto make_query = [&](RelOp op, int key) {
    return Query::And({Predicate{"k", op, Value::Integer(key)}});
  };

  for (int step = 0; step < 400; ++step) {
    const int op = op_dist(rng);
    if (op < 5) {  // insert
      Record r;
      r.Set("FILE", Value::String("f"));
      r.Set("k", Value::Integer(key_dist(rng)));
      r.Set("v", Value::Integer(val_dist(rng)));
      store.Insert(r, &io);
      reference.emplace_back(true, std::move(r));
    } else if (op < 7) {  // delete by key
      Query q = make_query(RelOp::kEq, key_dist(rng));
      size_t deleted = *store.Delete(q, &io);
      size_t expected = 0;
      for (auto& [live, r] : reference) {
        if (live && q.Matches(r)) {
          live = false;
          ++expected;
        }
      }
      EXPECT_EQ(deleted, expected) << "step " << step;
    } else {  // select with a random operator
      const RelOp rel = static_cast<RelOp>(op_dist(rng) % 6);
      Query q = make_query(rel, key_dist(rng));
      auto ids = *store.Select(q, &io);
      std::vector<uint64_t> expected;
      for (uint64_t id = 0; id < reference.size(); ++id) {
        if (reference[id].first && q.Matches(reference[id].second)) {
          expected.push_back(id);
        }
      }
      EXPECT_EQ(ids, expected) << "step " << step;
    }
  }
  EXPECT_EQ(store.size(),
            static_cast<size_t>(std::count_if(
                reference.begin(), reference.end(),
                [](const auto& p) { return p.first; })));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FileStoreFuzzTest,
                         ::testing::Values(7, 11, 42, 1987, 2024));

// --- Property 3: MBDS agrees with a single engine ---

class MbdsEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(MbdsEquivalenceTest, SameResultsAsSingleEngine) {
  std::mt19937 rng(GetParam());
  abdm::FileDescriptor desc;
  desc.name = "f";
  desc.attributes = {{"FILE", abdm::ValueKind::kString, 0, true},
                     {"k", abdm::ValueKind::kInteger, 0, true},
                     {"v", abdm::ValueKind::kInteger, 0, false}};

  kds::Engine engine;
  ASSERT_TRUE(engine.DefineFile(desc).ok());
  mbds::MbdsOptions options;
  options.num_backends = 1 + GetParam() % 7;
  mbds::Controller controller(options);
  ASSERT_TRUE(controller.DefineFile(desc).ok());

  std::uniform_int_distribution<int> op_dist(0, 9);
  std::uniform_int_distribution<int> key_dist(0, 20);

  auto normalize = [](std::vector<Record> records) {
    std::sort(records.begin(), records.end(),
              [](const Record& a, const Record& b) {
                return a.ToString() < b.ToString();
              });
    return records;
  };

  for (int step = 0; step < 250; ++step) {
    const int op = op_dist(rng);
    const int key = key_dist(rng);
    std::string text;
    if (op < 5) {
      text = "INSERT (<FILE, f>, <k, " + std::to_string(key) + ">, <v, " +
             std::to_string(step) + ">)";
    } else if (op < 6) {
      text = "DELETE ((FILE = f) and (k = " + std::to_string(key) + "))";
    } else if (op < 7) {
      text = "UPDATE ((FILE = f) and (k = " + std::to_string(key) +
             ")) (v = " + std::to_string(step) + ")";
    } else {
      text = "RETRIEVE ((FILE = f) and (k >= " + std::to_string(key) +
             ")) (all attributes)";
    }
    auto req = abdl::ParseRequest(text);
    ASSERT_TRUE(req.ok()) << text;
    auto single = engine.Execute(*req);
    auto multi = controller.Execute(*req);
    ASSERT_TRUE(single.ok()) << text;
    ASSERT_TRUE(multi.ok()) << text;
    EXPECT_EQ(single->affected, multi->response.affected) << text;
    EXPECT_EQ(normalize(single->records),
              normalize(multi->response.records))
        << text << " at step " << step;
  }
  EXPECT_EQ(engine.FileSize("f"), controller.FileSize("f"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbdsEquivalenceTest,
                         ::testing::Values(3, 4, 9, 16, 25, 36));

}  // namespace
}  // namespace mlds
