// Tests reproducing Figures 2.1/2.2: the University Daplex schema, plus
// the generated database instance used by examples and benchmarks.

#include "university/university.h"

#include <gtest/gtest.h>

#include "abdl/parser.h"
#include "kds/engine.h"

namespace mlds::university {
namespace {

TEST(UniversitySchemaTest, ParsesWithExpectedShape) {
  auto schema = UniversitySchema();
  ASSERT_TRUE(schema.ok()) << schema.status();
  EXPECT_EQ(schema->name(), "university");
  EXPECT_EQ(schema->entities().size(), 4u);
  EXPECT_EQ(schema->subtypes().size(), 3u);
  EXPECT_EQ(schema->nonentities().size(), 3u);
  EXPECT_EQ(schema->uniqueness().size(), 1u);
  EXPECT_EQ(schema->overlaps().size(), 1u);
}

TEST(UniversitySchemaTest, IsaGraphMatchesFigure22) {
  auto schema = UniversitySchema();
  ASSERT_TRUE(schema.ok());
  const daplex::Subtype* student = schema->FindSubtype("student");
  ASSERT_NE(student, nullptr);
  EXPECT_EQ(student->supertypes, std::vector<std::string>{"person"});
  const daplex::Subtype* faculty = schema->FindSubtype("faculty");
  ASSERT_NE(faculty, nullptr);
  EXPECT_EQ(faculty->supertypes, std::vector<std::string>{"employee"});
  const daplex::Subtype* staff = schema->FindSubtype("support_staff");
  ASSERT_NE(staff, nullptr);
  EXPECT_EQ(staff->supertypes, std::vector<std::string>{"employee"});
}

TEST(UniversitySchemaTest, FunctionClassesMatchThesis) {
  auto schema = UniversitySchema();
  ASSERT_TRUE(schema.ok());
  auto classify = [&](const char* type, const char* fn) {
    const auto* functions = schema->FunctionsOf(type);
    EXPECT_NE(functions, nullptr) << type;
    for (const auto& f : *functions) {
      if (f.name == fn) return schema->Classify(f);
    }
    ADD_FAILURE() << type << "." << fn << " not found";
    return daplex::FunctionClass::kScalar;
  };
  EXPECT_EQ(classify("employee", "degrees"),
            daplex::FunctionClass::kScalarMultiValued);
  EXPECT_EQ(classify("student", "advisor"),
            daplex::FunctionClass::kSingleValued);
  EXPECT_EQ(classify("faculty", "teaching"),
            daplex::FunctionClass::kMultiValued);
  EXPECT_EQ(classify("course", "title"), daplex::FunctionClass::kScalar);
}

class UniversityDataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    executor_ = std::make_unique<kc::EngineExecutor>(&engine_);
    auto db = BuildUniversityDatabase(config_, executor_.get());
    ASSERT_TRUE(db.ok()) << db.status();
    db_ = std::make_unique<UniversityDatabase>(std::move(*db));
  }

  kds::Response MustExecute(std::string_view text) {
    auto req = abdl::ParseRequest(text);
    EXPECT_TRUE(req.ok()) << req.status();
    auto resp = engine_.Execute(*req);
    EXPECT_TRUE(resp.ok()) << resp.status();
    return std::move(*resp);
  }

  UniversityConfig config_;
  kds::Engine engine_;
  std::unique_ptr<kc::EngineExecutor> executor_;
  std::unique_ptr<UniversityDatabase> db_;
};

TEST_F(UniversityDataTest, LoadCountsMatchConfig) {
  EXPECT_EQ(engine_.FileSize("department"),
            static_cast<size_t>(config_.departments));
  EXPECT_EQ(engine_.FileSize("person"), static_cast<size_t>(config_.persons));
  EXPECT_EQ(engine_.FileSize("student"),
            static_cast<size_t>(config_.students));
  EXPECT_EQ(engine_.FileSize("faculty"), static_cast<size_t>(config_.faculty));
  EXPECT_EQ(engine_.FileSize("course"), static_cast<size_t>(config_.courses));
  EXPECT_EQ(engine_.FileSize("link_1"),
            static_cast<size_t>(config_.teaching_links));
  // Employees: one record each plus a duplicate for every third (the
  // scalar multi-valued degrees representation).
  EXPECT_EQ(engine_.FileSize("employee"),
            static_cast<size_t>(config_.employees + config_.employees / 3));
}

TEST_F(UniversityDataTest, EveryStudentLinksToAPerson) {
  auto students = MustExecute("RETRIEVE ((FILE = student)) (all attributes)");
  ASSERT_EQ(students.records.size(), static_cast<size_t>(config_.students));
  for (const auto& s : students.records) {
    auto person_key = s.GetOrNull("person_student");
    ASSERT_TRUE(person_key.is_string());
    auto person = MustExecute(
        "RETRIEVE ((FILE = person) and (person = '" + person_key.AsString() +
        "')) (all attributes)");
    EXPECT_EQ(person.records.size(), 1u) << person_key.AsString();
  }
}

TEST_F(UniversityDataTest, AdvisorsReferenceExistingFaculty) {
  auto students = MustExecute("RETRIEVE ((FILE = student)) (advisor)");
  for (const auto& s : students.records) {
    auto fac = MustExecute("RETRIEVE ((FILE = faculty) and (faculty = '" +
                           s.GetOrNull("advisor").AsString() +
                           "')) (faculty)");
    EXPECT_EQ(fac.records.size(), 1u);
  }
}

TEST_F(UniversityDataTest, TeachingLinksReferenceBothSides) {
  auto links = MustExecute("RETRIEVE ((FILE = link_1)) (all attributes)");
  ASSERT_EQ(links.records.size(),
            static_cast<size_t>(config_.teaching_links));
  for (const auto& link : links.records) {
    EXPECT_TRUE(link.GetOrNull("teaching").AsString().starts_with("faculty_"));
    EXPECT_TRUE(
        link.GetOrNull("taught_by").AsString().starts_with("course_"));
  }
}

TEST_F(UniversityDataTest, DuplicatedEmployeeRecordsShareDbKeyDifferInDegrees) {
  // Every third employee has two AB records with the same dbkey and
  // different 'degrees' values (scalar multi-valued representation).
  auto dups = MustExecute(
      "RETRIEVE ((FILE = employee) and (employee = 'employee_3')) "
      "(all attributes)");
  ASSERT_EQ(dups.records.size(), 2u);
  EXPECT_EQ(dups.records[0].GetOrNull("ename"),
            dups.records[1].GetOrNull("ename"));
  EXPECT_NE(dups.records[0].GetOrNull("degrees"),
            dups.records[1].GetOrNull("degrees"));
}

TEST_F(UniversityDataTest, GenerationIsDeterministicInSeed) {
  kds::Engine other_engine;
  kc::EngineExecutor other_exec(&other_engine);
  auto other = BuildUniversityDatabase(config_, &other_exec);
  ASSERT_TRUE(other.ok());
  auto a = MustExecute("RETRIEVE ((FILE = student)) (major) BY student");
  auto req = abdl::ParseRequest("RETRIEVE ((FILE = student)) (major) BY student");
  ASSERT_TRUE(req.ok());
  auto b = other_engine.Execute(*req);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.records, b->records);
}

TEST_F(UniversityDataTest, SummaryTalliesAllFiles) {
  size_t total = 0;
  for (const auto& [file, count] : db_->summary.per_file) {
    total += count;
    EXPECT_EQ(engine_.FileSize(file), count) << file;
  }
  EXPECT_EQ(total, db_->summary.records);
}

TEST_F(UniversityDataTest, ThesisExampleAdvancedDatabaseCourseExists) {
  // The thesis's running FIND ANY example: a course titled
  // 'Advanced Database'.
  auto resp = MustExecute(
      "RETRIEVE ((FILE = course) and (title = 'Advanced Database')) "
      "(title, semester, credits)");
  EXPECT_GE(resp.records.size(), 1u);
}

}  // namespace
}  // namespace mlds::university
